"""Ablation A6 — is the paper's LRU strawman too weak?

The paper compares against an *ideal LRU*; a skeptical reviewer would
ask for GreedyDual-Size (Cao & Irani 1997), the strongest size-aware
web-cache policy of the era.  This bench reruns the Figure 1 comparison
with both cache policies at several byte budgets.

Expected (and observed): GDS improves on LRU at tight budgets — its
credit decay stops large stale objects from hoarding the cache — but
both caching schemes serialise every hit onto the single local
connection, so the proposed policy's parallel-stream advantage survives
the stronger baseline.
"""

import numpy as np
import pytest

from repro.core.policy import RepositoryReplicationPolicy
from repro.experiments.runner import iter_runs
from repro.experiments.scaling import (
    clone_with_capacities,
    storage_capacities_for_fraction,
)
from repro.simulation.lru_sim import GreedyDualSizeCache, LruCache, simulate_lru
from repro.util.tables import format_table

FRACTIONS = (0.35, 0.65, 1.0)


@pytest.fixture(scope="module")
def ablation(bench_config, save_artifact):
    rows: dict[tuple[float, str], list[float]] = {}
    for ctx in iter_runs(bench_config):
        for frac in FRACTIONS:
            budget = frac * ctx.reference.stored_bytes_all()
            caps = storage_capacities_for_fraction(ctx.model, ctx.reference, frac)
            clone = clone_with_capacities(ctx.model, storage=caps)
            ours = RepositoryReplicationPolicy().run(clone).allocation
            rows.setdefault((frac, "proposed"), []).append(
                ctx.relative_increase(ctx.simulate(ours, ctx.retrace(clone)))
            )
            for label, factory in (
                ("ideal-lru", LruCache),
                ("greedydual-size", GreedyDualSizeCache),
            ):
                sim, _ = simulate_lru(
                    ctx.trace,
                    cache_bytes=budget,
                    perturbation=bench_config.perturbation,
                    seed=ctx.sim_seed,
                    cache_factory=factory,
                )
                rows.setdefault((frac, label), []).append(
                    ctx.relative_increase(sim)
                )
    strategies = ("proposed", "ideal-lru", "greedydual-size")
    table = format_table(
        ["storage"] + list(strategies),
        [
            tuple(
                [f"{frac:.0%}"]
                + [f"{np.mean(rows[(frac, s)]):+.1%}" for s in strategies]
            )
            for frac in FRACTIONS
        ],
        title=(
            "Ablation A6: cache policy strength (% increase over "
            "unconstrained proposed)"
        ),
    )
    save_artifact("ablation_cache_policy", table)
    return rows


def test_bench_proposed_survives_stronger_baseline(ablation):
    for frac in FRACTIONS:
        proposed = np.mean(ablation[(frac, "proposed")])
        gds = np.mean(ablation[(frac, "greedydual-size")])
        assert proposed <= gds + 0.03


def test_bench_gds_no_worse_than_lru_when_tight(ablation):
    tight = FRACTIONS[0]
    gds = np.mean(ablation[(tight, "greedydual-size")])
    lru = np.mean(ablation[(tight, "ideal-lru")])
    assert gds <= lru + 0.05


def test_bench_gds_timing(benchmark, bench_config, ablation):
    ctx = next(iter(iter_runs(bench_config)))
    budget = 0.5 * ctx.reference.stored_bytes_all()
    benchmark(
        lambda: simulate_lru(
            ctx.trace,
            cache_bytes=budget,
            seed=3,
            cache_factory=GreedyDualSizeCache,
        )
    )

"""Experiment F2 — Figure 2: response time vs local processing capacity.

Regenerates the double-exponential curve at 100% storage, asserts its
endpoints (Remote at 0%, optimal at 100%), and times the processing
restoration at 40% capacity.
"""

import pytest

from repro.core.cost_model import CostModel
from repro.core.partition import partition_all
from repro.core.restoration import restore_processing_capacity
from repro.experiments.fig2_processing import run_fig2
from repro.experiments.runner import iter_runs
from repro.experiments.scaling import (
    clone_with_capacities,
    processing_capacities_for_fraction,
)

FRACTIONS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


@pytest.fixture(scope="module")
def fig2(bench_config, save_artifact):
    result = run_fig2(bench_config, fractions=FRACTIONS)
    save_artifact("fig2_processing", result.render())
    return result


def test_bench_fig2_shape(fig2):
    ys = fig2.series["proposed"]
    remote = fig2.scalars["remote (all from repository)"]
    # endpoint behaviours
    assert ys[0] == pytest.approx(remote, rel=0.05)
    assert ys[-1] == pytest.approx(0.0, abs=0.02)
    # monotone decreasing and flat near full capacity
    assert all(a >= b - 0.02 for a, b in zip(ys, ys[1:]))
    assert ys[0] - ys[5] > ys[5] - ys[10]


def test_bench_fig2_processing_restoration(benchmark, bench_config, fig2):
    ctx = next(iter(iter_runs(bench_config)))
    caps = processing_capacities_for_fraction(ctx.model, 0.4)
    clone = clone_with_capacities(ctx.model, processing=caps)
    cost = CostModel(clone)

    def run():
        alloc = partition_all(clone)
        restore_processing_capacity(alloc, cost)
        return alloc

    benchmark(run)

"""Kernel bench — batched vs scalar greedy restoration / OFF_LOADING.

Times the three Section 4.2 greedy loops (storage restoration,
processing restoration, repository off-loading) under both kernels on
two seeded paper-shaped workloads and asserts the acceptance floor for
:mod:`repro.core.fast_restoration`: **the batched restoration/offload
path is ≥5× scalar on the dense paper-scale workload**, with
bit-identical decision sequences verified in the same run (final
allocations and phase statistics are compared before any timing).

Workloads
---------
``table1``
    The verbatim Table 1 shape.  Its pages reference only 5-45
    compulsory objects, so each greedy event rescores a handful of
    candidates and the batched kernel's bulk scoring has little to
    amortise — the floor here is only "not slower".
``table1-dense``
    Table 1 volume at 10× page density (tenfold objects per page, a
    tenth the pages — the same total entry count).  Restoration cost
    concentrates in candidate rescoring exactly as at table1 scale, but
    per-event batches are wide enough for the vectorised Eq. 3-5
    pipeline to dominate the Python-loop scalar path.  This mirrors
    ``bench_partition_kernel.py``, which pins its ≥5× floor on the 10×
    page-count workload.

Each phase restores against capacities cut to ``FRAC`` of the
unconstrained policy's need (storage bytes, processing load and
repository load respectively) — the mid-range operating point of the
paper's Figure 1/2 sweeps.

Scale note: ``REPRO_BENCH_SCALE`` does not apply here — the bench always
measures the paper shapes (that is what the acceptance criterion pins);
use ``REPRO_BENCH_KERNEL_REPEATS`` (default 2) to change the timing
repeats.  One repeat already implies a full scalar dense run (~2 min).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.constraints import (
    html_request_load,
    local_processing_load,
    repository_load,
)
from repro.core.cost_model import CostModel
from repro.core.offload import OffloadConfig, offload_repository
from repro.core.partition import partition_all
from repro.core.restoration import (
    restore_processing_capacity,
    restore_storage_capacity,
)
from repro.core.types import (
    RepositorySpec,
    ServerSpec,
    StreamTopology,
    SystemModel,
)
from repro.util.tables import format_table
from repro.workload.generator import generate_workload
from repro.workload.params import WorkloadParams

SEED = 123
REPEATS = int(os.environ.get("REPRO_BENCH_KERNEL_REPEATS", "2"))
FRAC = 0.5

WORKLOADS = {
    "table1": WorkloadParams.paper(),
    "table1-dense": WorkloadParams.paper().with_(
        pages_per_server=(40, 80),
        compulsory_per_page=(50, 450),
        optional_per_page=(100, 850),
    ),
    # the k-stream arm: Table 1 volume over a 4-stream replica mesh.
    # Mesh scenarios keep the repository uncapacitated (OFF_LOADING is
    # k=2-only), so this arm times the storage/processing loops; the
    # ≥5x floor stays pinned to the k=2 dense arm above.
    "table1-k4": WorkloadParams.paper().with_(n_streams=4, n_repositories=3),
}

PHASES = ("storage", "processing", "offload")


def _with_capacities(
    model: SystemModel, storage=None, processing=None, repo=None
) -> SystemModel:
    """Clone ``model`` with per-server capacity overrides."""
    servers = [
        ServerSpec(
            server_id=s.server_id,
            storage_capacity=(
                s.storage_capacity if storage is None else float(storage[i])
            ),
            processing_capacity=(
                s.processing_capacity
                if processing is None
                else float(processing[i])
            ),
            rate=s.rate,
            overhead=s.overhead,
            repo_rate=s.repo_rate,
            repo_overhead=s.repo_overhead,
        )
        for i, s in enumerate(model.servers)
    ]
    repo_spec = model.repository
    if repo is not None:
        repo_spec = RepositorySpec(processing_capacity=float(repo))
    topology = None
    if model.n_streams > 2:
        topology = StreamTopology(
            rates=model.stream_rates, overheads=model.stream_overheads
        )
    return SystemModel(
        servers, repo_spec, model.pages, model.objects, topology=topology
    )


def _scenarios(model: SystemModel) -> dict:
    """One constrained model + phase callable per greedy loop."""
    ref = partition_all(model)
    html = model.html_bytes_by_server()
    caps = html + FRAC * ref.stored_bytes_all() + 1.0
    hl = html_request_load(model)
    load = local_processing_load(ref)
    pcaps = np.maximum(hl + FRAC * np.maximum(load - hl, 0.0) + 1e-9, 1e-6)
    scenarios = {
        "storage": (
            _with_capacities(model, storage=caps),
            lambda a, c, k: restore_storage_capacity(a, c, kernel=k),
        ),
        "processing": (
            _with_capacities(model, processing=pcaps),
            lambda a, c, k: restore_processing_capacity(a, c, kernel=k),
        ),
    }
    if model.n_streams == 2:
        # OFF_LOADING is k=2-only; mesh arms keep the repository
        # uncapacitated, matching the replica-mesh scenario convention
        rload = repository_load(ref)
        scenarios["offload"] = (
            _with_capacities(model, repo=max(FRAC * rload, 1e-6)),
            lambda a, c, k: offload_repository(a, c, OffloadConfig(), kernel=k),
        )
    return scenarios


def _assert_identical(a, b, tag: str) -> None:
    assert np.array_equal(a.comp_local, b.comp_local), f"{tag}: comp_local"
    assert np.array_equal(a.opt_local, b.opt_local), f"{tag}: opt_local"
    for i in range(a.model.n_servers):
        assert a.replicas[i] == b.replicas[i], f"{tag}: replicas[{i}]"


@pytest.fixture(scope="module")
def kernel_results(save_artifact, save_timings):
    rows = []
    results: dict[str, dict] = {}
    for wname, params in WORKLOADS.items():
        model = generate_workload(
            params.with_(
                storage_capacity=float("inf"), processing_capacity=float("inf")
            ),
            seed=SEED,
        )
        results[wname] = {"phases": {}, "streams": model.n_streams}
        totals = {"scalar": 0.0, "batched": 0.0}
        for phase, (m2, fn) in _scenarios(model).items():
            cost = CostModel(m2)
            best: dict[str, float] = {}
            first: dict[str, tuple] = {}
            for kern in ("scalar", "batched"):
                t_best = float("inf")
                for rep in range(REPEATS):
                    alloc = partition_all(m2)
                    t0 = time.perf_counter()
                    stats = fn(alloc, cost, kern)
                    t_best = min(t_best, time.perf_counter() - t0)
                    if rep == 0:
                        first[kern] = (alloc, stats)
                best[kern] = t_best
            # decision identity, verified on the same runs just timed
            tag = f"{wname}/{phase}"
            _assert_identical(first["scalar"][0], first["batched"][0], tag)
            assert first["scalar"][1] == first["batched"][1], (
                f"{tag}: phase statistics diverged"
            )
            speedup = best["scalar"] / best["batched"]
            results[wname]["phases"][phase] = {
                "scalar_seconds": best["scalar"],
                "batched_seconds": best["batched"],
                "speedup": speedup,
            }
            if phase == "offload":
                # Negotiation depth next to the timings: the serial
                # default runs through offload_repository's scatter
                # seam (lifecycle hooks are a no-op without a sharded
                # scatter), so rounds/messages drifting here would
                # flag a protocol change before any golden does.
                outcome = first["batched"][1]
                results[wname]["offload_rounds"] = outcome.rounds
                results[wname]["offload_messages"] = outcome.messages
            totals["scalar"] += best["scalar"]
            totals["batched"] += best["batched"]
            rows.append(
                (
                    wname,
                    phase,
                    f"{best['scalar']:.2f}",
                    f"{best['batched']:.2f}",
                    f"{speedup:.1f}x",
                )
            )
        combined = totals["scalar"] / totals["batched"]
        results[wname]["scalar_seconds"] = totals["scalar"]
        results[wname]["batched_seconds"] = totals["batched"]
        results[wname]["combined_speedup"] = combined
        rows.append(
            (
                wname,
                "combined",
                f"{totals['scalar']:.2f}",
                f"{totals['batched']:.2f}",
                f"{combined:.1f}x",
            )
        )
    table = format_table(
        ["workload", "phase", "scalar s", "batched s", "speedup"],
        rows,
        title="restoration/OFF_LOADING kernel wall-clock (best of "
        f"{REPEATS}, bit-identical decisions)",
    )
    save_artifact("restoration_kernel", table)
    save_timings(
        "restoration_kernel",
        {"seed": SEED, "repeats": REPEATS, "frac": FRAC, "workloads": results},
    )
    return results


def test_bench_batched_at_least_5x_on_dense_workload(kernel_results):
    """The ISSUE 4 acceptance floor: ≥5× on the dense paper workload."""
    assert kernel_results["table1-dense"]["combined_speedup"] >= 5.0


def test_bench_batched_not_slower_at_table1_scale(kernel_results):
    """Table 1's 5-45 objects/page leave little to vectorise per event;
    the batched path must still win overall at that scale."""
    assert kernel_results["table1"]["combined_speedup"] > 1.0


def test_bench_multipath_batched_not_slower_at_k4(kernel_results):
    """The k-stream restoration arm: batched must win at k=4 too, and
    the arm only exercises the k-supporting phases (no OFF_LOADING)."""
    k4 = kernel_results["table1-k4"]
    assert k4["streams"] == 4
    assert sorted(k4["phases"]) == ["processing", "storage"]
    assert k4["combined_speedup"] > 1.0


def test_bench_batched_kernel_timing(benchmark):
    """pytest-benchmark probe: one batched storage restoration."""
    model = generate_workload(
        WorkloadParams.small().with_(storage_capacity=float("inf")),
        seed=SEED,
    )
    ref = partition_all(model)
    caps = model.html_bytes_by_server() + FRAC * ref.stored_bytes_all() + 1.0
    m2 = _with_capacities(model, storage=caps)
    cost = CostModel(m2)

    def run():
        alloc = partition_all(m2)
        restore_storage_capacity(alloc, cost, kernel="batched")

    benchmark(run)

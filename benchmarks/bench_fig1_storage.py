"""Experiment F1 — Figure 1: response time vs local storage capacity.

Regenerates the figure (proposed policy vs ideal LRU over storage
fractions, with Remote/Local reference lines), asserts the paper's
qualitative shape, and times the constrained policy run (PARTITION +
storage restoration) at 50% storage.
"""

import pytest

from repro.core.policy import RepositoryReplicationPolicy
from repro.experiments.fig1_storage import run_fig1
from repro.experiments.runner import iter_runs
from repro.experiments.scaling import (
    clone_with_capacities,
    storage_capacities_for_fraction,
)

FRACTIONS = (0.2, 0.35, 0.5, 0.65, 0.8, 1.0)


@pytest.fixture(scope="module")
def fig1(bench_config, save_artifact):
    result = run_fig1(bench_config, fractions=FRACTIONS)
    save_artifact("fig1_storage", result.render())
    return result


def test_bench_fig1_shape(fig1):
    """Figure 1's qualitative claims hold at this scale."""
    ours = fig1.series["proposed"]
    lru = fig1.series["ideal-lru"]
    assert all(o <= l + 0.02 for o, l in zip(ours, lru))
    assert ours[-1] == pytest.approx(0.0, abs=0.02)
    assert fig1.scalars["remote (all from repository)"] > 1.0


def test_bench_fig1_policy_at_half_storage(benchmark, bench_config, fig1):
    """Time one constrained policy run (the figure's inner loop body)."""
    ctx = next(iter(iter_runs(bench_config)))
    caps = storage_capacities_for_fraction(ctx.model, ctx.reference, 0.5)
    clone = clone_with_capacities(ctx.model, storage=caps)

    benchmark(lambda: RepositoryReplicationPolicy().run(clone))

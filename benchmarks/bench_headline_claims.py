"""Experiment S1 — the scalar Section 5.2 claims.

Regenerates the claims table (Remote +335%, Local +23.8%, LRU@100% ~
Local, ours@65% ~ LRU@100%, ~1.8 GB/server) and times the request-level
simulator — the measurement machinery all experiments share.
"""

import time

import pytest

from repro.experiments.claims import run_headline_claims
from repro.experiments.runner import iter_runs
from repro.simulation.engine import simulate_allocation
from repro.simulation.lru_sim import simulate_lru


@pytest.fixture(scope="module")
def claims(bench_config, save_artifact, save_timings):
    t0 = time.perf_counter()
    result = run_headline_claims(bench_config)
    elapsed = time.perf_counter() - t0
    save_artifact("headline_claims", result.render())
    save_timings(
        "headline_claims",
        {
            "elapsed_seconds": elapsed,
            "n_runs": result.n_runs,
            "claims": {
                "remote_increase": result.remote_increase,
                "local_increase": result.local_increase,
                "lru_full_increase": result.lru_full_increase,
                "ours_at_65pct_increase": result.ours_at_65pct_increase,
                "avg_storage_gb": result.avg_storage_gb,
            },
        },
    )
    return result


def test_bench_headline_orderings(claims):
    assert claims.orderings_hold
    assert claims.remote_increase > 1.0
    assert 0.0 < claims.local_increase < 0.6


def test_bench_simulate_allocation(benchmark, bench_config, claims):
    ctx = next(iter(iter_runs(bench_config)))
    benchmark(
        simulate_allocation,
        ctx.reference,
        ctx.trace,
        bench_config.perturbation,
        ctx.sim_seed,
    )


def test_bench_simulate_lru(benchmark, bench_config):
    ctx = next(iter(iter_runs(bench_config)))
    cache = ctx.reference.stored_bytes_all()
    benchmark(lambda: simulate_lru(ctx.trace, cache_bytes=cache, seed=3))

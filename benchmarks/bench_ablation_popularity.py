"""Ablation A5 — where does the win come from: replication or balancing?

The measurement core lives in
:mod:`repro.experiments.ablation_popularity` (shared with the CLI and
the executor determinism tests); this module runs it at benchmark scale,
asserts the paper-facing claims, and records the artifact table.
"""

import numpy as np
import pytest

from repro.baselines.popularity import PopularityPolicy
from repro.experiments.ablation_popularity import (
    DEFAULT_FRACTIONS as FRACTIONS,
    STRATEGIES,
    run_ablation_popularity,
)
from repro.experiments.runner import iter_runs


@pytest.fixture(scope="module")
def ablation(bench_config, save_artifact):
    result = run_ablation_popularity(bench_config, FRACTIONS)
    save_artifact("ablation_popularity", result.render())
    return result.per_run


def test_bench_balanced_marking_never_hurts(ablation):
    for frac in FRACTIONS:
        allstored = np.mean(ablation[(frac, "popularity all-stored")])
        balanced = np.mean(ablation[(frac, "popularity balanced")])
        assert balanced <= allstored + 0.01


def test_bench_balancing_closes_gap_at_full_storage(ablation):
    """With every referenced object storable, marking is the only
    difference — balanced marking must recover most of the gap.

    (On tiny workloads the gap itself is small and noisy, so the bound
    is a half rather than a quarter; at small/paper scale the recovery
    is essentially total — see EXPERIMENTS.md.)"""
    allstored = np.mean(ablation[(1.0, "popularity all-stored")])
    balanced = np.mean(ablation[(1.0, "popularity balanced")])
    proposed = np.mean(ablation[(1.0, "proposed")])
    gap_without = allstored - proposed
    gap_with = balanced - proposed
    assert gap_with < 0.5 * max(gap_without, 0.02)


def test_bench_proposed_best(ablation):
    for frac in FRACTIONS:
        proposed = np.mean(ablation[(frac, "proposed")])
        for s in STRATEGIES[1:]:
            assert proposed <= np.mean(ablation[(frac, s)]) + 0.03


def test_bench_popularity_timing(benchmark, bench_config, ablation):
    ctx = next(iter(iter_runs(bench_config)))
    budget = 0.5 * ctx.reference.stored_bytes_all()
    policy = PopularityPolicy(storage_bytes=budget, marking="balanced")
    benchmark(policy.allocate, ctx.model)

"""Ablation A5 — where does the win come from: replication or balancing?

At equal storage budgets, four strategies are compared:

* the proposed policy (D-aware replica set + PARTITION marking),
* popularity-per-byte replicas with *all-stored-local* marking (a
  conventional push cache),
* the same popularity replicas with *balanced* marking (PARTITION
  restricted to the stored set),
* ideal LRU with the same cache bytes.

The headline is two-sided: with generous storage, balanced marking
alone recovers essentially the whole gap (the two-parallel-connections
insight carries the paper there); at tight budgets the *replica
selection* dominates — popularity-per-byte hoards small popular objects
while the balanced split needs the right large objects on disk, which is
exactly what the policy's size-amortised D-aware eviction provides.
"""

import numpy as np
import pytest

from repro.baselines.popularity import PopularityPolicy
from repro.core.policy import RepositoryReplicationPolicy
from repro.experiments.runner import iter_runs
from repro.experiments.scaling import (
    clone_with_capacities,
    storage_capacities_for_fraction,
)
from repro.simulation.lru_sim import simulate_lru
from repro.util.tables import format_table

FRACTIONS = (0.5, 1.0)
STRATEGIES = ("proposed", "popularity all-stored", "popularity balanced", "ideal-lru")


@pytest.fixture(scope="module")
def ablation(bench_config, save_artifact):
    rows: dict[tuple[float, str], list[float]] = {
        (f, s): [] for f in FRACTIONS for s in STRATEGIES
    }
    for ctx in iter_runs(bench_config):
        for frac in FRACTIONS:
            budget = frac * ctx.reference.stored_bytes_all()
            caps = storage_capacities_for_fraction(ctx.model, ctx.reference, frac)
            clone = clone_with_capacities(ctx.model, storage=caps)
            trace_c = ctx.retrace(clone)

            ours = RepositoryReplicationPolicy().run(clone).allocation
            rows[(frac, "proposed")].append(
                ctx.relative_increase(ctx.simulate(ours, trace_c))
            )
            for marking, label in (
                ("all-stored", "popularity all-stored"),
                ("balanced", "popularity balanced"),
            ):
                alloc = PopularityPolicy(
                    storage_bytes=budget, marking=marking
                ).allocate(ctx.model)
                rows[(frac, label)].append(
                    ctx.relative_increase(ctx.simulate(alloc))
                )
            lru_sim, _ = simulate_lru(
                ctx.trace,
                cache_bytes=budget,
                perturbation=bench_config.perturbation,
                seed=ctx.sim_seed,
            )
            rows[(frac, "ideal-lru")].append(ctx.relative_increase(lru_sim))

    table = format_table(
        ["storage"] + list(STRATEGIES),
        [
            tuple(
                [f"{frac:.0%}"]
                + [f"{np.mean(rows[(frac, s)]):+.1%}" for s in STRATEGIES]
            )
            for frac in FRACTIONS
        ],
        title=(
            "Ablation A5: replica selection vs stream balancing "
            "(% increase over unconstrained proposed)"
        ),
    )
    save_artifact("ablation_popularity", table)
    return rows


def test_bench_balanced_marking_never_hurts(ablation):
    for frac in FRACTIONS:
        allstored = np.mean(ablation[(frac, "popularity all-stored")])
        balanced = np.mean(ablation[(frac, "popularity balanced")])
        assert balanced <= allstored + 0.01


def test_bench_balancing_closes_gap_at_full_storage(ablation):
    """With every referenced object storable, marking is the only
    difference — balanced marking must recover most of the gap.

    (On tiny workloads the gap itself is small and noisy, so the bound
    is a half rather than a quarter; at small/paper scale the recovery
    is essentially total — see EXPERIMENTS.md.)"""
    allstored = np.mean(ablation[(1.0, "popularity all-stored")])
    balanced = np.mean(ablation[(1.0, "popularity balanced")])
    proposed = np.mean(ablation[(1.0, "proposed")])
    gap_without = allstored - proposed
    gap_with = balanced - proposed
    assert gap_with < 0.5 * max(gap_without, 0.02)


def test_bench_proposed_best(ablation):
    for frac in FRACTIONS:
        proposed = np.mean(ablation[(frac, "proposed")])
        for s in STRATEGIES[1:]:
            assert proposed <= np.mean(ablation[(frac, s)]) + 0.03


def test_bench_popularity_timing(benchmark, bench_config, ablation):
    ctx = next(iter(iter_runs(bench_config)))
    budget = 0.5 * ctx.reference.stored_bytes_all()
    policy = PopularityPolicy(storage_bytes=budget, marking="balanced")
    benchmark(policy.allocate, ctx.model)

"""Ablation A3 — greedy vs the exact ILP optimum on small instances.

The paper argues the allocation problem is NP-complete and solves it
greedily.  This bench quantifies the optimality gap of PARTITION (and of
the full constrained pipeline) against :mod:`repro.core.ilp` on tiny
generated universes — the greedy is typically within a few percent.
"""

import numpy as np
import pytest

from repro.core.cost_model import CostModel
from repro.core.ilp import solve_optimal_allocation
from repro.core.partition import partition_all
from repro.core.policy import RepositoryReplicationPolicy
from repro.experiments.scaling import (
    clone_with_capacities,
    storage_capacities_for_fraction,
)
from repro.util.tables import format_table
from repro.workload.generator import generate_workload
from repro.workload.params import WorkloadParams

N_INSTANCES = 8


@pytest.fixture(scope="module")
def gaps(save_artifact):
    params = WorkloadParams.tiny()
    unconstrained, constrained = [], []
    for seed in range(N_INSTANCES):
        model = generate_workload(params, seed=seed)
        cost = CostModel(model)
        greedy = cost.D(partition_all(model))
        opt = solve_optimal_allocation(model).objective
        unconstrained.append(greedy / opt - 1.0)

        ref = partition_all(model)
        caps = storage_capacities_for_fraction(model, ref, 0.6)
        clone = clone_with_capacities(model, storage=caps)
        result = RepositoryReplicationPolicy().run(clone)
        opt_c = solve_optimal_allocation(clone).objective
        constrained.append(result.objective / opt_c - 1.0)
    table = format_table(
        ["setting", "mean gap", "max gap"],
        [
            (
                "unconstrained PARTITION",
                f"{np.mean(unconstrained):+.2%}",
                f"{np.max(unconstrained):+.2%}",
            ),
            (
                "60% storage, full pipeline",
                f"{np.mean(constrained):+.2%}",
                f"{np.max(constrained):+.2%}",
            ),
        ],
        title=f"Ablation A3: greedy vs ILP optimum ({N_INSTANCES} tiny instances)",
    )
    save_artifact("ablation_ilp_gap", table)
    return unconstrained, constrained


def test_bench_greedy_near_optimal_unconstrained(gaps):
    unconstrained, _ = gaps
    assert all(g >= -1e-6 for g in unconstrained)  # ILP is a lower bound
    assert np.mean(unconstrained) < 0.05

def test_bench_greedy_reasonable_constrained(gaps):
    _, constrained = gaps
    assert all(g >= -1e-6 for g in constrained)
    assert np.mean(constrained) < 0.25


def test_bench_ilp_solver_timing(benchmark, gaps):
    model = generate_workload(WorkloadParams.tiny(), seed=0)
    benchmark(solve_optimal_allocation, model)

"""Ablation A1 — PARTITION's decreasing-size iteration order.

The paper sorts each page's compulsory MOs by *decreasing* size before
the greedy stream assignment.  This bench compares the objective ``D``
under three orders — decreasing (paper), increasing, and document order —
on fresh workloads, demonstrating why big-objects-first balances better
(small objects act as fine-grained fill at the end).
"""

import numpy as np
import pytest

from repro.core.cost_model import CostModel
from repro.core.partition import partition_all
from repro.experiments.runner import iter_runs
from repro.util.tables import format_table

ORDERS = ("decreasing", "increasing", "document")


@pytest.fixture(scope="module")
def ablation(bench_config, save_artifact):
    rows = {order: [] for order in ORDERS}
    for ctx in iter_runs(bench_config):
        cost = CostModel(ctx.model)
        base = None
        for order in ORDERS:
            d = cost.D(partition_all(ctx.model, order=order))
            if order == "decreasing":
                base = d
            rows[order].append(d / base - 1.0)
    table = format_table(
        ["sort order", "D vs decreasing (mean)", "worst run"],
        [
            (
                order,
                f"{np.mean(rows[order]):+.2%}",
                f"{np.max(rows[order]):+.2%}",
            )
            for order in ORDERS
        ],
        title="Ablation A1: PARTITION iteration order (objective D, lower is better)",
    )
    save_artifact("ablation_sort_order", table)
    return rows


def test_bench_decreasing_never_loses_on_average(ablation):
    assert np.mean(ablation["increasing"]) >= -0.005
    assert np.mean(ablation["document"]) >= -0.005


def test_bench_partition_order_timing(benchmark, bench_config, ablation):
    ctx = next(iter(iter_runs(bench_config)))
    benchmark(partition_all, ctx.model)

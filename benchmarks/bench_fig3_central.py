"""Experiment F3 — Figure 3: constrained repository capacity.

Regenerates the three central-capacity curves over the local-capacity
sweep, asserts the paper's dominance claims, and times one off-loading
negotiation.
"""

import pytest

from repro.core.cost_model import CostModel
from repro.core.offload import OffloadConfig, offload_repository
from repro.core.partition import partition_all
from repro.core.constraints import repository_load
from repro.experiments.fig3_central import run_fig3
from repro.experiments.runner import iter_runs

LOCAL_FRACTIONS = (0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)
CENTRAL_FRACTIONS = (0.9, 0.7, 0.5)


@pytest.fixture(scope="module")
def fig3(bench_config, save_artifact):
    result = run_fig3(
        bench_config,
        local_fractions=LOCAL_FRACTIONS,
        central_fractions=CENTRAL_FRACTIONS,
    )
    save_artifact("fig3_central", result.render())
    return result


def test_bench_fig3_shape(fig3):
    # tighter central capacity is never better
    for i in range(len(fig3.x_values)):
        assert fig3.series["central 90%"][i] <= fig3.series["central 70%"][i] + 0.02
        assert fig3.series["central 70%"][i] <= fig3.series["central 50%"][i] + 0.02
    # local capacity dominates central capacity
    assert fig3.series["central 50%"][-1] < fig3.series["central 90%"][0]
    # high local + 50% central stays acceptable (paper: ~ +40%)
    assert fig3.series["central 50%"][-1] < 1.0


def test_bench_fig3_offload_negotiation(benchmark, bench_config, fig3):
    ctx = next(iter(iter_runs(bench_config)))
    base = partition_all(ctx.model)
    cost = CostModel(ctx.model)
    capacity = 0.5 * repository_load(base)

    def run():
        alloc = base.copy()
        return offload_repository(alloc, cost, OffloadConfig(), capacity=capacity)

    outcome = benchmark(run)
    assert outcome.rounds >= 1

"""Ablation A2 — the size-amortised deallocation criterion.

Storage restoration evicts the object minimising ``ΔD / size`` (the
paper: amortisation makes the criterion "more judicious over large and
frequently accessed objects").  The ablation compares against raw-``ΔD``
ranking at several storage fractions: amortisation frees the same bytes
with fewer, larger, cheaper-per-byte evictions.
"""

import numpy as np
import pytest

from repro.core.cost_model import CostModel
from repro.core.partition import partition_all
from repro.core.restoration import restore_storage_capacity
from repro.experiments.runner import iter_runs
from repro.experiments.scaling import (
    clone_with_capacities,
    storage_capacities_for_fraction,
)
from repro.util.tables import format_table

FRACTIONS = (0.3, 0.5, 0.7)


@pytest.fixture(scope="module")
def ablation(bench_config, save_artifact):
    deltas = {frac: [] for frac in FRACTIONS}
    evictions = {frac: [] for frac in FRACTIONS}
    for ctx in iter_runs(bench_config):
        for frac in FRACTIONS:
            caps = storage_capacities_for_fraction(ctx.model, ctx.reference, frac)
            clone = clone_with_capacities(ctx.model, storage=caps)
            cost = CostModel(clone)

            a = partition_all(clone)
            restore_storage_capacity(a, cost, amortise=True)
            b = partition_all(clone)
            stats_b = restore_storage_capacity(b, cost, amortise=False)
            stats_a_evictions = len(
                restore_storage_capacity(partition_all(clone), cost).evicted_objects
            )
            deltas[frac].append(cost.D(b) / cost.D(a) - 1.0)
            evictions[frac].append(stats_b.evictions - stats_a_evictions)
    table = format_table(
        ["storage", "raw-ΔD vs amortised (D, mean)", "extra evictions (mean)"],
        [
            (
                f"{frac:.0%}",
                f"{np.mean(deltas[frac]):+.2%}",
                f"{np.mean(evictions[frac]):+.1f}",
            )
            for frac in FRACTIONS
        ],
        title="Ablation A2: deallocation criterion (positive = amortised wins)",
    )
    save_artifact("ablation_amortisation", table)
    return deltas


def test_bench_amortisation_helps_on_average(ablation):
    overall = np.mean([v for vals in ablation.values() for v in vals])
    assert overall >= -0.01  # amortised criterion must not lose


def test_bench_storage_restoration_timing(benchmark, bench_config, ablation):
    ctx = next(iter(iter_runs(bench_config)))
    caps = storage_capacities_for_fraction(ctx.model, ctx.reference, 0.5)
    clone = clone_with_capacities(ctx.model, storage=caps)
    cost = CostModel(clone)

    def run():
        alloc = partition_all(clone)
        return restore_storage_capacity(alloc, cost)

    benchmark(run)

"""Experiment T1 — Table 1: the synthetic workload.

Regenerates the nominal-vs-realised parameter table (the workload
generator's acceptance artifact) and times workload generation and
trace sampling at the configured scale.
"""

import time

import pytest

from repro.experiments.table1 import run_table1
from repro.workload.generator import generate_workload
from repro.workload.trace import generate_trace


@pytest.fixture(scope="module")
def table1(bench_config, save_artifact, save_timings):
    t0 = time.perf_counter()
    report = run_table1(bench_config.params, seed=0)
    elapsed = time.perf_counter() - t0
    save_artifact("table1_workload", report.render())
    save_timings(
        "table1_workload",
        {
            "elapsed_seconds": elapsed,
            "seed": 0,
            "n_rows": len(report.rows),
            "n_pages": report.model.n_pages,
            "n_servers": report.model.n_servers,
        },
    )
    return report


def test_bench_table1_report(table1):
    """The realised workload matches every nominal Table 1 row."""
    labels = {r[0] for r in table1.rows}
    assert len(labels) >= 20


def test_bench_generate_workload(benchmark, bench_config, table1):
    benchmark(generate_workload, bench_config.params, 0)


def test_bench_generate_trace(benchmark, bench_config, table1):
    model = table1.model
    benchmark(generate_trace, model, bench_config.params, 1)

"""Benchmark the parallel experiment executor (wall-clock + identity).

Times one representative sweep — Figure 2 over a fraction subset —
serially and with four workers, each from a **cold start** (artifact
cache dropped, worker pool recycled) so neither phase inherits the
other's warm artifacts.  The benchmark asserts two things:

* the parallel result is **bit-identical** to the serial one (always),
* at four workers the sweep is at least 2x faster (only on machines
  with >= 4 CPU cores — on smaller hosts the speedup is recorded in the
  artifact but not asserted, since four workers time-slicing one core
  cannot beat the serial loop).

The artifact table also records the warm-cache serial time, isolating
the cross-sweep cache's own contribution.
"""

import os
import time
from dataclasses import replace

import pytest

from repro.experiments.cache import artifact_cache, clear_artifact_cache
from repro.experiments.executor import shutdown_pool
from repro.experiments.fig2_processing import run_fig2
from repro.experiments.runner import ExperimentConfig
from repro.util.tables import format_table
from repro.workload.params import WorkloadParams

#: Explicit scale (independent of REPRO_BENCH_*): large enough that the
#: per-unit work dominates process/pickling overhead.
BENCH_PARAMS = WorkloadParams.small().with_(requests_per_server=800)
N_RUNS = 8
FRACTIONS = (0.0, 0.25, 0.5, 0.75, 1.0)
JOBS = 4
#: Required parallel speedup at 4 workers (asserted only with >= 4 cores).
SPEEDUP_FLOOR = 2.0


def _timed_fig2(jobs: int) -> tuple[float, object]:
    cfg = ExperimentConfig(params=BENCH_PARAMS, n_runs=N_RUNS, jobs=jobs)
    start = time.perf_counter()
    result = run_fig2(cfg, fractions=FRACTIONS)
    return time.perf_counter() - start, result


@pytest.fixture(scope="module")
def executor_timings(save_artifact):
    clear_artifact_cache()
    shutdown_pool()
    serial_seconds, serial = _timed_fig2(jobs=1)
    hits_before, misses_before = artifact_cache().stats()
    warm_seconds, warm = _timed_fig2(jobs=1)
    hits_after, misses_after = artifact_cache().stats()

    clear_artifact_cache()
    shutdown_pool()
    parallel_seconds, parallel = _timed_fig2(jobs=JOBS)
    shutdown_pool()

    speedup = serial_seconds / parallel_seconds
    table = format_table(
        ["phase", "seconds", "vs serial"],
        [
            ("serial (jobs=1, cold)", f"{serial_seconds:.2f}", "1.00x"),
            (
                "serial (jobs=1, warm cache)",
                f"{warm_seconds:.2f}",
                f"{serial_seconds / warm_seconds:.2f}x",
            ),
            (
                f"parallel (jobs={JOBS}, cold)",
                f"{parallel_seconds:.2f}",
                f"{speedup:.2f}x",
            ),
        ],
        title=(
            f"Executor: fig2 sweep, {N_RUNS} runs x "
            f"{len(FRACTIONS)} fractions ({os.cpu_count()} cores)"
        ),
    )
    save_artifact("executor", table)
    return {
        "serial_seconds": serial_seconds,
        "warm_seconds": warm_seconds,
        "parallel_seconds": parallel_seconds,
        "serial": serial,
        "warm": warm,
        "parallel": parallel,
        "warm_hits": hits_after - hits_before,
        "warm_misses": misses_after - misses_before,
    }


def test_bench_parallel_bit_identical(executor_timings):
    assert executor_timings["parallel"] == executor_timings["serial"]


def test_bench_warm_cache_bit_identical(executor_timings):
    assert executor_timings["warm"] == executor_timings["serial"]


def test_bench_warm_cache_skips_regeneration(executor_timings):
    """The warm rerun must serve every run from the artifact cache —
    one hit per work unit, zero rebuilds."""
    assert executor_timings["warm_misses"] == 0
    # one hit per work unit: the fractions plus the Remote scalar point
    assert executor_timings["warm_hits"] == N_RUNS * (len(FRACTIONS) + 1)


def test_bench_parallel_speedup(executor_timings):
    cores = os.cpu_count() or 1
    speedup = (
        executor_timings["serial_seconds"]
        / executor_timings["parallel_seconds"]
    )
    if cores < JOBS:
        pytest.skip(
            f"only {cores} cores: {JOBS}-worker speedup floor needs >= "
            f"{JOBS} (measured {speedup:.2f}x)"
        )
    assert speedup >= SPEEDUP_FLOOR, (
        f"expected >= {SPEEDUP_FLOOR}x at {JOBS} workers, got {speedup:.2f}x"
    )


def test_bench_executor_timing(benchmark):
    """pytest-benchmark unit: one cold single-run single-point sweep."""
    cfg = ExperimentConfig(
        params=WorkloadParams.tiny().with_(requests_per_server=200),
        n_runs=1,
    )

    def unit():
        clear_artifact_cache()
        return run_fig2(replace(cfg), fractions=(0.5,))

    benchmark(unit)

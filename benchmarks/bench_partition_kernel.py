"""Kernel bench — batched vs scalar PARTITION throughput.

Times :func:`repro.core.partition.partition_all` under both kernels on
the seeded Table 1 workload and a 10× variant (pages_per_server scaled
tenfold), reporting pages/second and the speedup.  The acceptance floor
for the batched kernel is **≥5× scalar throughput on the 10× workload**;
the differential property suite
(``tests/properties/test_property_fast_partition.py``) separately proves
the two kernels produce bit-identical allocations, so the speedup is
free of result drift by construction.

Scale note: ``REPRO_BENCH_SCALE`` does not apply here — the bench always
measures the Table 1 shape (that is what the acceptance criterion pins);
use ``REPRO_BENCH_KERNEL_REPEATS`` to change the timing repeats.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.partition import partition_all
from repro.util.tables import format_table
from repro.workload.generator import generate_workload
from repro.workload.params import WorkloadParams

SEED = 123
REPEATS = int(os.environ.get("REPRO_BENCH_KERNEL_REPEATS", "3"))

WORKLOADS = {
    "table1": WorkloadParams.paper(),
    "table1-10x": WorkloadParams.paper().with_(pages_per_server=(4000, 8000)),
    # the k-stream arm: same Table 1 volume over a 4-stream replica
    # mesh, so the argmin-over-k batched kernel is timed against the
    # scalar k-way reference (the ≥5x floor stays pinned to the k=2
    # arms above — this arm guards the multipath path's own speedup)
    "table1-k4": WorkloadParams.paper().with_(n_streams=4, n_repositories=3),
}


def _best_time(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.fixture(scope="module")
def kernel_results(save_artifact, save_timings):
    rows = []
    results = {}
    for name, params in WORKLOADS.items():
        model = generate_workload(
            params.with_(
                storage_capacity=float("inf"), processing_capacity=float("inf")
            ),
            seed=SEED,
        )
        model.fast_comp  # warm the scalar path's list cache before timing
        scalar_alloc = partition_all(model, kernel="scalar")
        batched_alloc = partition_all(model, kernel="batched")
        assert scalar_alloc == batched_alloc, "kernels diverged"
        t_scalar = _best_time(lambda: partition_all(model, kernel="scalar"))
        t_batched = _best_time(lambda: partition_all(model, kernel="batched"))
        results[name] = {
            "pages": model.n_pages,
            "streams": model.n_streams,
            "scalar_seconds": t_scalar,
            "batched_seconds": t_batched,
            "scalar_pps": model.n_pages / t_scalar,
            "batched_pps": model.n_pages / t_batched,
            "speedup": t_scalar / t_batched,
        }
        rows.append(
            (
                name,
                f"{model.n_pages}",
                f"{results[name]['scalar_pps']:.0f}",
                f"{results[name]['batched_pps']:.0f}",
                f"{results[name]['speedup']:.1f}x",
            )
        )
    table = format_table(
        ["workload", "pages", "scalar pages/s", "batched pages/s", "speedup"],
        rows,
        title="PARTITION kernel throughput (best of "
        f"{REPEATS}, bit-identical outputs)",
    )
    save_artifact("partition_kernel", table)
    save_timings(
        "partition_kernel",
        {"seed": SEED, "repeats": REPEATS, "workloads": results},
    )
    return results


def test_bench_batched_at_least_5x_on_10x_workload(kernel_results):
    assert kernel_results["table1-10x"]["speedup"] >= 5.0


def test_bench_batched_faster_at_table1_scale(kernel_results):
    assert kernel_results["table1"]["speedup"] > 1.0


def test_bench_multipath_batched_faster_at_k4(kernel_results):
    assert kernel_results["table1-k4"]["streams"] == 4
    assert kernel_results["table1-k4"]["speedup"] > 1.0


def test_bench_batched_kernel_timing(benchmark):
    model = generate_workload(
        WorkloadParams.paper().with_(
            storage_capacity=float("inf"), processing_capacity=float("inf")
        ),
        seed=SEED,
    )
    benchmark(partition_all, model, kernel="batched")

"""Extension E1 — dynamic re-replication under access drift.

Not a paper artifact: this bench quantifies the Section 4.1 discussion
("allocation decisions made off-line using the past access patterns may
be inaccurate due to the dynamic nature of the Web, e.g., breaking
news") by comparing allocate-once, nightly re-allocation from observed
statistics, and a perfect-knowledge oracle across drift regimes.
"""

import numpy as np
import pytest

from repro.dynamic.epochs import EpochConfig, run_dynamic_experiment
from repro.util.tables import format_table


@pytest.fixture(scope="module")
def dynamic(bench_config, save_artifact):
    results = {}
    for label, drift_every in (("persistent news cycle", 2), ("per-epoch churn", 1)):
        results[label] = run_dynamic_experiment(
            params=bench_config.params,
            config=EpochConfig(
                n_epochs=6,
                drift_every=drift_every,
                requests_per_server=min(
                    bench_config.params.requests_per_server, 1000
                ),
            ),
            seed=bench_config.base_seed,
        )
    table = format_table(
        ["drift regime", "static vs oracle", "periodic vs oracle"],
        [
            (
                label,
                f"{res.staleness_penalty():+.1%}",
                f"{res.periodic_gap():+.1%}",
            )
            for label, res in results.items()
        ],
        title="Extension E1: re-allocation cadence vs drift regime",
    )
    details = "\n\n".join(res.render() for res in results.values())
    save_artifact("extension_dynamic", f"{table}\n\n{details}")
    return results


def test_bench_staleness_costs_under_persistent_drift(dynamic):
    res = dynamic["persistent news cycle"]
    assert res.staleness_penalty() > 0.0


def test_bench_periodic_tracks_oracle_under_persistent_drift(dynamic):
    res = dynamic["persistent news cycle"]
    assert res.periodic_gap() < res.staleness_penalty() + 0.05


def test_bench_dynamic_timing(benchmark, bench_config, dynamic):
    cfg = EpochConfig(n_epochs=2, requests_per_server=300)
    benchmark(
        lambda: run_dynamic_experiment(
            bench_config.params, cfg, seed=bench_config.base_seed
        )
    )

"""Extension E1 — dynamic re-replication under access drift.

Not a paper artifact: this bench quantifies the Section 4.1 discussion
("allocation decisions made off-line using the past access patterns may
be inaccurate due to the dynamic nature of the Web, e.g., breaking
news") by comparing allocate-once, nightly re-allocation from observed
statistics, the incremental re-planner, and a perfect-knowledge oracle
across drift regimes.

``test_bench_incremental_vs_full`` additionally times the incremental
re-plan against a from-scratch ``policy.run`` per epoch under gentle
(<5% dirty) drift and asserts the speedup/objective-gap floors; the raw
numbers land in ``BENCH_extension_dynamic.json``.
"""

import os
import time

import numpy as np
import pytest

from repro.core.partition import partition_all
from repro.core.policy import RepositoryReplicationPolicy
from repro.dynamic.drift import rotate_hot_set
from repro.dynamic.epochs import EpochConfig, run_dynamic_experiment
from repro.dynamic.incremental import IncrementalConfig, IncrementalReplanner
from repro.experiments.scaling import (
    clone_with_capacities,
    storage_capacities_for_fraction,
)
from repro.util.tables import format_table
from repro.workload.generator import generate_workload


@pytest.fixture(scope="module")
def dynamic(bench_config, save_artifact):
    results = {}
    for label, drift_every in (("persistent news cycle", 2), ("per-epoch churn", 1)):
        results[label] = run_dynamic_experiment(
            params=bench_config.params,
            config=EpochConfig(
                n_epochs=6,
                drift_every=drift_every,
                requests_per_server=min(
                    bench_config.params.requests_per_server, 1000
                ),
            ),
            seed=bench_config.base_seed,
        )
    table = format_table(
        [
            "drift regime",
            "static vs oracle",
            "periodic vs oracle",
            "incremental vs oracle",
        ],
        [
            (
                label,
                f"{res.staleness_penalty():+.1%}",
                f"{res.periodic_gap():+.1%}",
                f"{res.incremental_gap():+.1%}",
            )
            for label, res in results.items()
        ],
        title="Extension E1: re-allocation cadence vs drift regime",
    )
    details = "\n\n".join(res.render() for res in results.values())
    save_artifact("extension_dynamic", f"{table}\n\n{details}")
    return results


def test_bench_staleness_costs_under_persistent_drift(dynamic):
    res = dynamic["persistent news cycle"]
    assert res.staleness_penalty() > 0.0


def test_bench_periodic_tracks_oracle_under_persistent_drift(dynamic):
    res = dynamic["persistent news cycle"]
    assert res.periodic_gap() < res.staleness_penalty() + 0.05


def test_bench_incremental_tracks_oracle(dynamic):
    res = dynamic["persistent news cycle"]
    assert res.incremental_gap() < res.staleness_penalty() + 0.05


def test_bench_incremental_vs_full(bench_config, save_timings):
    """Per-epoch planning cost: incremental re-plan vs from-scratch run.

    Gentle, localized drift (one server's hot set rotates per epoch —
    a news cycle rarely hits every site at once) on a
    storage-constrained universe.  Floors: at paper scale the
    incremental path must be >= 3x faster per epoch with the objective
    within 1% of the from-scratch solve; smaller scales assert the same
    gap and a sanity speedup >= 1 (fixed per-epoch overheads weigh more
    when the universe is tiny).
    """
    scale = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
    base = generate_workload(bench_config.params, seed=bench_config.base_seed)
    caps = storage_capacities_for_fraction(base, partition_all(base), 0.6)
    truth = clone_with_capacities(base, storage=caps)
    policy = RepositoryReplicationPolicy(kernel=bench_config.kernel)
    replanner = IncrementalReplanner(
        policy, truth, IncrementalConfig(audit_every=0)
    )

    epochs = []
    for epoch in range(1, 4):
        truth = rotate_hot_set(
            truth,
            fraction=0.5,
            seed=epoch,
            servers=[epoch % truth.n_servers],
        )
        t0 = time.perf_counter()
        stats = replanner.replan(truth)
        t_inc = time.perf_counter() - t0
        t0 = time.perf_counter()
        full = policy.run(truth)
        t_full = time.perf_counter() - t0
        assert stats.mode == "incremental"
        assert stats.dirty_fraction < 0.05
        gap = (replanner.objective - full.objective) / abs(full.objective)
        assert gap <= 0.01, f"epoch {epoch}: objective gap {gap:.3%}"
        epochs.append(
            {
                "epoch": epoch,
                "incremental_s": t_inc,
                "full_s": t_full,
                "speedup": t_full / t_inc,
                "dirty_fraction": stats.dirty_fraction,
                "objective_gap": gap,
            }
        )

    speedup = sum(e["full_s"] for e in epochs) / sum(
        e["incremental_s"] for e in epochs
    )
    save_timings(
        "extension_dynamic",
        {
            "seed": bench_config.base_seed,
            "kernel": bench_config.kernel,
            "n_pages": truth.n_pages,
            "n_servers": truth.n_servers,
            "drift": "rotate_hot_set(fraction=0.5, servers=[1 of N])",
            "storage_fraction": 0.6,
            "epochs": epochs,
            "speedup": speedup,
        },
    )
    floor = 3.0 if scale == "paper" else 1.0
    assert speedup >= floor, (
        f"incremental replan speedup {speedup:.2f}x below the "
        f"{floor:.1f}x floor at scale={scale}"
    )


def test_bench_dynamic_timing(benchmark, bench_config, dynamic):
    cfg = EpochConfig(n_epochs=2, requests_per_server=300)
    benchmark(
        lambda: run_dynamic_experiment(
            bench_config.params, cfg, seed=bench_config.base_seed
        )
    )

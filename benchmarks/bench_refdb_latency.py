"""Substrate check — reference-database rewrite latency (Section 2).

The paper's argument for server-side URL rewriting over client
redirection: "Assuming a fast indexing scheme for the reference
database, the computational latency occurred due to querying and
changing URLs on the fly is minimal compared to the network latency due
to request redirection."  This bench measures our implementation's
serve() latency on Table 1-sized documents and reports the ratio to the
smallest Table 1 connection overhead (1.275 s) — it comes out around
five orders of magnitude.
"""

import time

import pytest

from repro.core.partition import partition_all
from repro.refdb import ReferenceDatabase
from repro.util.tables import format_table
from repro.workload.generator import generate_workload
from repro.workload.params import WorkloadParams

MIN_TABLE1_OVERHEAD_S = 1.275


@pytest.fixture(scope="module")
def refdb_setup(bench_config):
    model = generate_workload(bench_config.params, seed=0)
    db = ReferenceDatabase.build(model)
    alloc = partition_all(model)
    return model, db, alloc


@pytest.fixture(scope="module")
def latency_report(refdb_setup, save_artifact):
    model, db, alloc = refdb_setup
    n = min(model.n_pages, 500)
    t0 = time.perf_counter()
    for j in range(n):
        db.serve(j, alloc)
    per_serve = (time.perf_counter() - t0) / n
    ratio = MIN_TABLE1_OVERHEAD_S / per_serve
    table = format_table(
        ["quantity", "value"],
        [
            ("documents rewritten", n),
            ("mean rewrite latency", f"{per_serve * 1e6:.1f} us"),
            ("smallest Table 1 connection overhead", f"{MIN_TABLE1_OVERHEAD_S} s"),
            ("network / rewrite ratio", f"{ratio:,.0f}x"),
        ],
        title="Reference database: rewrite latency vs network latency",
    )
    save_artifact("refdb_latency", table)
    return per_serve


def test_bench_rewrite_negligible_vs_network(latency_report):
    # "minimal compared to the network latency": at least 1000x smaller
    assert latency_report < MIN_TABLE1_OVERHEAD_S / 1000


def test_bench_serve_timing(benchmark, refdb_setup, latency_report):
    model, db, alloc = refdb_setup
    benchmark(db.serve, 0, alloc)


def test_bench_index_timing(benchmark, refdb_setup, latency_report):
    model, db, alloc = refdb_setup
    benchmark(db.index_page, 0)

"""Substrate check — off-loading protocol cost (Section 6's argument).

The paper criticises prior dynamic-replication schemes for "a rather
high amount of messages to be exchanged between hosts" and positions its
own negotiation as cheap: one status message per server, a couple of
rounds, an END broadcast.  This bench quantifies that across repository
capacities, using the message bus's byte accounting and the virtual-time
latency model (100 ms one-way, the Table 1 RTT estimate):

* total messages and wire bytes per negotiation,
* negotiation makespan — the slice of the off-peak window it consumes,
* comparison line: naive per-object replication chatter would need one
  message per replica created (thousands), not tens.
"""

import numpy as np
import pytest

from repro.network import LatencyModel, run_distributed_policy
from repro.util.tables import format_table
from repro.workload.generator import generate_workload

CAPACITY_FRACTIONS = (None, 0.7, 0.4, 0.1)  # None = unconstrained


@pytest.fixture(scope="module")
def traffic(bench_config, save_artifact):
    rows = []
    data = {}
    params = bench_config.params
    base = generate_workload(params, seed=bench_config.base_seed)
    # reference: how many replicas the allocation creates (the message
    # count a create-one-message-per-replica scheme would need)
    probe = run_distributed_policy(base)
    n_replicas = sum(len(r) for r in probe.allocation.replicas)

    from repro.core.constraints import repository_load

    base_load = repository_load(
        run_distributed_policy(base).allocation
    )
    for frac in CAPACITY_FRACTIONS:
        if frac is None:
            model = base
            label = "unconstrained"
        else:
            from repro.experiments.scaling import clone_with_capacities

            model = clone_with_capacities(
                base, repo_capacity=max(frac * base_load, 1e-6)
            )
            label = f"C(R) = {frac:.0%} of imposed load"
        result = run_distributed_policy(
            model, latency=LatencyModel(default_delay=0.1)
        )
        data[frac] = result
        rows.append(
            (
                label,
                result.offload_rounds,
                result.bus_stats.messages,
                f"{result.bus_stats.bytes} B",
                f"{result.makespan:.1f} s",
                "yes" if result.offload_restored else "no",
            )
        )
    table = format_table(
        ["repository capacity", "rounds", "messages", "wire bytes", "makespan", "restored"],
        rows,
        title=(
            "Off-loading protocol cost (0.1 s one-way links); a "
            f"per-replica scheme would send >= {n_replicas} messages"
        ),
    )
    save_artifact("protocol_traffic", table)
    return data, n_replicas


def test_bench_messages_scale_with_servers_not_objects(traffic):
    data, n_replicas = traffic
    for result in data.values():
        # exact protocol bound: n statuses + n ENDs + per round at most
        # one NewReq and one answer per server — O(servers x rounds),
        # independent of object/replica counts
        n = len(result.allocation.replicas)
        bound = 2 * n + 2 * n * result.offload_rounds
        assert result.bus_stats.messages <= bound
        if n_replicas > 1000:  # realistic scale: tens vs thousands
            assert result.bus_stats.messages < n_replicas / 10


def test_bench_unconstrained_is_minimal(traffic):
    data, _ = traffic
    base = data[None]
    assert base.offload_rounds == 0
    # one status per server + one END per server
    n = len(base.allocation.replicas)
    assert base.bus_stats.messages == 2 * n


def test_bench_tighter_capacity_more_rounds(traffic):
    data, _ = traffic
    r_07 = data[0.7].offload_rounds
    r_01 = data[0.1].offload_rounds
    assert r_01 >= r_07


def test_bench_makespan_fits_offpeak_window(traffic):
    data, _ = traffic
    for result in data.values():
        # even the tightest negotiation finishes in seconds — a rounding
        # error against an hours-long off-peak window
        assert result.makespan < 60.0


def test_bench_protocol_timing(benchmark, bench_config, traffic):
    params = bench_config.params
    model = generate_workload(params, seed=bench_config.base_seed)
    benchmark(lambda: run_distributed_policy(model))

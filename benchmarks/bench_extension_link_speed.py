"""Extension E2 — repository link-speed sensitivity (see
:mod:`repro.experiments.extension_link_speed`)."""

import numpy as np
import pytest

from repro.experiments.extension_link_speed import (
    DEFAULT_MULTIPLIERS,
    run_link_speed,
)


@pytest.fixture(scope="module")
def linkspeed(bench_config, save_artifact):
    result = run_link_speed(bench_config, multipliers=DEFAULT_MULTIPLIERS)
    save_artifact("extension_link_speed", result.render())
    return result


def test_bench_remote_share_monotone(linkspeed):
    """A faster repository attracts more downloads — monotonically."""
    shares = linkspeed.remote_share
    assert all(a <= b + 0.02 for a, b in zip(shares, shares[1:]))


def test_bench_gain_vs_local_grows(linkspeed):
    """The parallelism dividend grows with the second connection's speed."""
    assert linkspeed.gain_vs_local[-1] > linkspeed.gain_vs_local[0]


def test_bench_gain_vs_remote_shrinks(linkspeed):
    """The replication dividend shrinks as the premise weakens."""
    assert linkspeed.gain_vs_remote[-1] < linkspeed.gain_vs_remote[0]


def test_bench_never_loses_to_local(linkspeed):
    """A second (repository) connection can only help vs all-local."""
    assert all(g >= -0.03 for g in linkspeed.gain_vs_local)


def test_bench_remote_competitive_only_at_extremes(linkspeed):
    """Under the *estimates* PARTITION never loses to Remote (a property
    test guarantees that on D).  Under the Section 5.1 perturbations —
    which degrade local rates ~1.8x while the repository stays accurate —
    the balanced split can measure worse than all-remote once the
    repository link is ~an order of magnitude faster than assumed: the
    planner over-trusts the local connection.  Assert the crossover sits
    at the extreme end, not in the paper's regime."""
    for mult, g in zip(linkspeed.multipliers, linkspeed.gain_vs_remote):
        if mult <= 4.0:
            assert g > 0.0
        else:
            assert g >= -0.35


def test_bench_link_speed_timing(benchmark, bench_config, linkspeed):
    from repro.experiments.runner import iter_runs
    from repro.experiments.extension_link_speed import _scale_repo_rate

    ctx = next(iter(iter_runs(bench_config)))
    benchmark(_scale_repo_rate, ctx.model, 4.0)

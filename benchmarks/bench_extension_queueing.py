"""Extension E3 — stress-testing the constant-processing-time assumption.

Section 3 assumes HTTP-request processing time is constant ("since we
assumed peak hours, i.e., almost fixed server utilization").  This bench
relaxes it with M/M/1 utilisation scaling
(:mod:`repro.simulation.queueing`) and measures the response-time shift
for each policy.

Two findings, both favourable to the paper:

* for the **proposed policy** the approximation is numerically safe
  (~1% shift): PARTITION runs servers at ~80-85% utilisation and
  multimedia transfer times dwarf even several-fold overhead blow-ups;
* the **Local policy** — which pins servers at ~100% utilisation —
  pays an order of magnitude more, i.e. relaxing the assumption *widens*
  the proposed policy's margin.  The constant-time simplification, if
  anything, understates the paper's result.
"""

import numpy as np
import pytest

from repro.baselines.local import LocalPolicy
from repro.baselines.remote import RemotePolicy
from repro.core.policy import RepositoryReplicationPolicy
from repro.experiments.runner import iter_runs
from repro.experiments.scaling import clone_with_capacities, processing_capacities_for_fraction
from repro.simulation.engine import simulate_allocation
from repro.simulation.queueing import simulate_with_queueing, utilisation_slowdowns
from repro.util.tables import format_table


@pytest.fixture(scope="module")
def queueing(bench_config, save_artifact):
    rows = []
    deltas: dict[str, list[float]] = {}
    for ctx in iter_runs(bench_config):
        # give servers the Table 1-style finite capacity (100% of the
        # all-local load) so utilisation is meaningful
        caps = processing_capacities_for_fraction(ctx.model, 1.0)
        clone = clone_with_capacities(ctx.model, processing=caps)
        trace_c = ctx.retrace(clone)
        allocs = {
            "proposed": RepositoryReplicationPolicy().run(clone).allocation,
            "local": LocalPolicy().allocate(clone),
            "remote": RemotePolicy().allocate(clone),
        }
        for name, alloc in allocs.items():
            const = simulate_allocation(
                alloc, trace_c, bench_config.perturbation, seed=ctx.sim_seed
            ).mean_page_time
            queued = simulate_with_queueing(
                alloc, trace_c, bench_config.perturbation, seed=ctx.sim_seed
            ).mean_page_time
            deltas.setdefault(name, []).append(queued / const - 1.0)
    for name, vals in deltas.items():
        rows.append((name, f"{np.mean(vals):+.3%}", f"{np.max(vals):+.3%}"))
    table = format_table(
        ["policy", "queueing vs constant (mean)", "worst run"],
        rows,
        title=(
            "Extension E3: relaxing the constant-processing-time "
            "assumption (M/M/1 overhead scaling)"
        ),
    )
    save_artifact("extension_queueing", table)
    return deltas


def test_bench_assumption_safe_for_proposed(queueing):
    """For the proposed policy the approximation shifts results <3%."""
    assert np.mean(queueing["proposed"]) < 0.03


def test_bench_local_policy_most_affected(queueing):
    """All-local allocations run at ~100% utilisation and pay the most —
    relaxing the assumption widens the proposed policy's margin."""
    assert np.mean(queueing["local"]) >= np.mean(queueing["proposed"]) - 1e-4
    assert np.mean(queueing["local"]) >= np.mean(queueing["remote"]) - 1e-4


def test_bench_slowdown_factors_ordering(bench_config, queueing):
    """Sanity: Local's utilisation factors dominate the proposed policy's."""
    ctx = next(iter(iter_runs(bench_config)))
    caps = processing_capacities_for_fraction(ctx.model, 1.0)
    clone = clone_with_capacities(ctx.model, processing=caps)
    ours, _ = utilisation_slowdowns(
        RepositoryReplicationPolicy().run(clone).allocation
    )
    local, _ = utilisation_slowdowns(LocalPolicy().allocate(clone))
    assert local.mean() >= ours.mean() - 1e-9


def test_bench_queueing_sim_timing(benchmark, bench_config, queueing):
    ctx = next(iter(iter_runs(bench_config)))
    benchmark(
        simulate_with_queueing,
        ctx.reference,
        ctx.trace,
        bench_config.perturbation,
        ctx.sim_seed,
    )

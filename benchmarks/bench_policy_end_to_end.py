"""End-to-end policy bench — shared EvalContext vs per-consumer rebuilds.

Times the full four-phase :meth:`RepositoryReplicationPolicy.run`
(PARTITION → storage restoration → processing restoration →
OFF_LOADING) on a capacity-constrained workload, comparing two arms:

* **shared** — the production configuration: one
  :class:`~repro.core.context.EvalContext` per model, built once and
  reused by every consumer (cost model, allocation, kernels,
  constraints);
* **rebuild** — the same run inside
  :func:`~repro.core.context.rebuild_contexts`, which disables the
  per-model cache so every consumer re-derives its own columns — the
  pre-consolidation behaviour, where ``CostModel``, ``Allocation``,
  the fast kernels and the constraint evaluators each rebuilt the
  derived state they needed.

Both arms produce bit-identical objectives (asserted) — the context is
a pure function of the model — so the ratio isolates exactly the
derived-state consolidation.  The acceptance floor is **≥1.15× at paper
scale** (``REPRO_BENCH_SCALE=paper``; measured ≈7× there); smaller
scales assert a looser sanity floor because a sub-second run's ratio is
dominated by fixed costs.

A third arm times the **sharded** process-parallel kernel
(:mod:`repro.core.shard`): the same constrained run split into
``SHARD_COUNT`` per-server shards on a persistent worker pool, with the
reconciled result asserted **bit-identical** to the shared arm's
(allocation marks, replica sets, objective and phase list).  The
acceptance floor there is **≥4× at paper scale with ≥4 cores**
(skipped on smaller machines — a 1-core box serialises the shards and
only measures dispatch overhead).  The sharded warm run also records
the off-loading scatter's per-round transport accounting — actual
delta-protocol bytes next to the full-state-protocol baseline — and
asserts the **≥10× reduction** the worker-resident delta rounds are
for (paper scale; recorded, not gated, at smaller scales).

Capacities are set to the fractions (storage 0.6, processing 0.6,
repository 0.7 of the unconstrained footprint) that force all four
phases to run — an unconstrained model is partition-only and would not
exercise the restoration/off-loading loops where sharing pays.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.context import rebuild_contexts
from repro.core.partition import partition_all
from repro.core.policy import RepositoryReplicationPolicy
from repro.core.shard import default_pool, shutdown_shard_pool
from repro.experiments.scaling import (
    clone_with_capacities,
    processing_capacities_for_fraction,
    repo_capacity_for_fraction,
    storage_capacities_for_fraction,
)
from repro.workload.generator import generate_workload

SEED = 0
STORAGE_FRACTION = 0.6
PROCESSING_FRACTION = 0.6
REPO_FRACTION = 0.7

#: Hard acceptance floor at paper scale; smaller scales only sanity-check
#: that sharing is not a regression (their runs are too short for the
#: ratio to be stable).
PAPER_FLOOR = 1.15
SANITY_FLOOR = 1.0

#: Sharded-kernel arm: shard count (capped at the model's server count)
#: and the speedup floor asserted at paper scale on a ≥4-core machine.
#: Raised from 2x once workers stopped paying O(model) setup (shard-local
#: contexts + shm column transport), then from 3x once off-loading rounds
#: became delta rounds over worker-resident shard state (batched
#: absorptions, O(round-delta) transport).
SHARD_COUNT = 4
SHARD_FLOOR = 4.0
SHARD_MIN_CORES = 4

#: Steady-state off-loading transport: bytes shipped by the delta
#: protocol must undercut the full-state baseline by this factor at
#: paper scale (recorded at every scale).
DELTA_BYTES_FLOOR = 10.0

SCALE = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
REPEATS = int(
    os.environ.get("REPRO_BENCH_E2E_REPEATS", "2" if SCALE == "paper" else "5")
)
#: The rebuild arm at paper scale is ~7x slower per run; one timing is
#: enough there (the arms' gap dwarfs run-to-run noise).
REBUILD_REPEATS = 1 if SCALE == "paper" else REPEATS


def _median(times: list[float]) -> float:
    return float(np.median(times))


@pytest.fixture(scope="module")
def e2e_results(bench_config, save_timings):
    params = bench_config.params
    model = generate_workload(params.with_(storage_capacity=np.inf), seed=SEED)
    reference = partition_all(model)
    storage = storage_capacities_for_fraction(model, reference, STORAGE_FRACTION)
    processing = processing_capacities_for_fraction(
        model, PROCESSING_FRACTION, reference
    )
    repo_capacity = repo_capacity_for_fraction(reference, REPO_FRACTION)
    policy = RepositoryReplicationPolicy(
        alpha1=params.alpha1, alpha2=params.alpha2
    )

    def fresh():
        # Each timed run gets a fresh clone so the shared arm pays its
        # one context build inside the measurement (an honest end-to-end
        # cold start, not a warm-cache flatter).
        return clone_with_capacities(
            model,
            storage=storage,
            processing=processing,
            repo_capacity=repo_capacity,
        )

    warm = policy.run(fresh())
    assert warm.phases_run == [
        "partition",
        "storage-restoration",
        "processing-restoration",
        "off-loading",
    ], f"constrained run must exercise all phases, got {warm.phases_run}"

    def timed(repeats: int, rebuild: bool) -> list[float]:
        times = []
        for _ in range(repeats):
            m = fresh()
            if rebuild:
                with rebuild_contexts():
                    t0 = time.perf_counter()
                    result = policy.run(m)
                    times.append(time.perf_counter() - t0)
            else:
                t0 = time.perf_counter()
                result = policy.run(m)
                times.append(time.perf_counter() - t0)
            assert result.objective == warm.objective, (
                "shared/rebuild arms must be bit-identical: "
                f"{result.objective!r} != {warm.objective!r}"
            )
        return times

    shared = timed(REPEATS, rebuild=False)
    rebuild = timed(REBUILD_REPEATS, rebuild=True)

    # --- sharded arm: same run, per-server shards on a process pool ---
    shards = min(SHARD_COUNT, model.n_servers)
    workers = min(shards, os.cpu_count() or 1)
    sharded_policy = RepositoryReplicationPolicy(
        alpha1=params.alpha1,
        alpha2=params.alpha2,
        kernel="sharded",
        shards=shards,
        pool=default_pool(workers),
    )
    sharded: list[float] = []
    try:
        # Warm-up outside the timings: pool spin-up + first model
        # transfer (subsequent runs hit the workers' digest cache).
        sharded_warm = sharded_policy.run(fresh())
        for _ in range(REPEATS):
            m = fresh()
            t0 = time.perf_counter()
            result = sharded_policy.run(m)
            sharded.append(time.perf_counter() - t0)
            assert result.objective == warm.objective
    finally:
        shutdown_shard_pool()
    # Bit-identity of the reconciled run against the unsharded kernel —
    # not approximate equality: same marks, replicas, phases, objectives.
    assert np.array_equal(
        sharded_warm.allocation.comp_local, warm.allocation.comp_local
    )
    assert np.array_equal(
        sharded_warm.allocation.opt_local, warm.allocation.opt_local
    )
    assert all(
        sharded_warm.allocation.replicas[i] == warm.allocation.replicas[i]
        for i in range(model.n_servers)
    )
    assert sharded_warm.phases_run == warm.phases_run
    assert sharded_warm.objective == warm.objective
    assert sharded_warm.unconstrained_objective == warm.unconstrained_objective

    # Per-round transport accounting from the delta-round scatter: what
    # the worker-resident protocol actually shipped vs what the
    # per-request full-state protocol would have shipped, same rounds.
    round_bytes = list(sharded_warm.offload_outcome.round_bytes)
    delta_total = sum(r["delta_bytes"] for r in round_bytes)
    full_total = sum(r["full_bytes"] for r in round_bytes)

    results = {
        "seed": SEED,
        "scale": SCALE,
        "repeats": REPEATS,
        "rebuild_repeats": REBUILD_REPEATS,
        "fractions": {
            "storage": STORAGE_FRACTION,
            "processing": PROCESSING_FRACTION,
            "repository": REPO_FRACTION,
        },
        "objective": warm.objective,
        "phases_run": warm.phases_run,
        "shared_seconds": shared,
        "rebuild_seconds": rebuild,
        "shared_median": _median(shared),
        "rebuild_median": _median(rebuild),
        "speedup": _median(rebuild) / _median(shared),
        "shards": shards,
        "shard_workers": workers,
        "sharded_seconds": sharded,
        "sharded_median": _median(sharded),
        "sharded_speedup": _median(shared) / _median(sharded),
        "offload_round_bytes": round_bytes,
        "offload_rounds": len(round_bytes),
        "offload_delta_bytes": delta_total,
        "offload_full_bytes": full_total,
        # max(…, 1) keeps the record finite when a tiny run's rounds
        # flip nothing (zero delta bytes shipped)
        "offload_delta_reduction": full_total / max(delta_total, 1.0),
    }
    save_timings("policy_end_to_end", results)
    return results


def test_bench_policy_end_to_end_floor(e2e_results):
    """Shared-context runs beat per-consumer rebuilds (≥1.15x at paper)."""
    floor = PAPER_FLOOR if SCALE == "paper" else SANITY_FLOOR
    assert e2e_results["speedup"] >= floor, (
        f"end-to-end speedup {e2e_results['speedup']:.2f}x below the "
        f"{floor}x floor at scale {SCALE!r}"
    )


def test_bench_policy_end_to_end_all_phases(e2e_results):
    assert len(e2e_results["phases_run"]) == 4


def test_bench_sharded_kernel_floor(e2e_results):
    """The sharded kernel beats the single-process run ≥4x at paper
    scale with 4 workers; elsewhere the arm only pins bit-identity
    (asserted inside the fixture) and records its timings."""
    cores = os.cpu_count() or 1
    if SCALE != "paper" or cores < SHARD_MIN_CORES:
        pytest.skip(
            f"sharded floor needs paper scale and >={SHARD_MIN_CORES} cores "
            f"(scale={SCALE!r}, cores={cores})"
        )
    assert e2e_results["sharded_speedup"] >= SHARD_FLOOR, (
        f"sharded speedup {e2e_results['sharded_speedup']:.2f}x below the "
        f"{SHARD_FLOOR}x floor with {e2e_results['shard_workers']} workers"
    )


def test_bench_delta_round_bytes(e2e_results):
    """Off-loading steady-state transport is O(round delta): the bytes
    the worker-resident protocol shipped undercut the full-state
    baseline recorded for the same rounds by ≥10x at paper scale."""
    assert e2e_results["offload_rounds"] >= 1, (
        "constrained run produced no off-loading rounds to account"
    )
    if SCALE != "paper":
        pytest.skip(
            f"delta-bytes floor is gated at paper scale (scale={SCALE!r}); "
            f"recorded reduction: "
            f"{e2e_results['offload_delta_reduction']:.1f}x"
        )
    assert e2e_results["offload_delta_reduction"] >= DELTA_BYTES_FLOOR, (
        f"delta rounds shipped {e2e_results['offload_delta_bytes']:.0f} "
        f"bytes vs {e2e_results['offload_full_bytes']:.0f} full-state — "
        f"{e2e_results['offload_delta_reduction']:.1f}x, below the "
        f"{DELTA_BYTES_FLOOR}x floor"
    )

"""Shared benchmark infrastructure.

Every bench module regenerates one paper artifact (a table or figure) and
additionally times a representative unit of work with pytest-benchmark.
The regenerated artifact is

* printed to stdout (visible with ``pytest -s``), and
* written to ``benchmarks/out/<name>.txt`` so results persist without
  capturing flags.

Scale knobs (environment):

* ``REPRO_BENCH_SCALE``    — ``paper`` | ``small`` (default) | ``tiny``
* ``REPRO_BENCH_RUNS``     — runs per experiment (default 5)
* ``REPRO_BENCH_REQUESTS`` — trace length per server

The defaults finish the whole suite in a few minutes; EXPERIMENTS.md
records a ``paper``-scale run.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.runner import ExperimentConfig

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """The experiment configuration honouring REPRO_BENCH_* overrides."""
    return ExperimentConfig.from_env()


@pytest.fixture(scope="session")
def save_artifact(bench_config):
    """Persist + print a regenerated table/figure.

    Artifacts are namespaced by workload scale (``out/<scale>/…``) so a
    quick small-scale run never clobbers a paper-scale record, and each
    file carries a provenance header.
    """
    import os

    scale = os.environ.get("REPRO_BENCH_SCALE", "small").lower()

    def _save(name: str, text: str) -> pathlib.Path:
        out = OUT_DIR / scale
        out.mkdir(parents=True, exist_ok=True)
        path = out / f"{name}.txt"
        header = (
            f"# scale={scale} runs={bench_config.n_runs} "
            f"requests/server={bench_config.params.requests_per_server}\n"
        )
        path.write_text(header + text + "\n")
        print(f"\n{text}\n[saved to {path}]")
        return path

    return _save

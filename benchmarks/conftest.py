"""Shared benchmark infrastructure.

Every bench module regenerates one paper artifact (a table or figure) and
additionally times a representative unit of work with pytest-benchmark.
The regenerated artifact is

* printed to stdout (visible with ``pytest -s``), and
* written to ``benchmarks/out/<name>.txt`` so results persist without
  capturing flags.

The whole suite runs with the :mod:`repro.obs` observability layer
enabled: alongside each ``.txt`` artifact a structured **run manifest**
(``benchmarks/out/<scale>/manifests/<name>.json``) records per-phase
wall-clock spans, restoration/simulation counters, and provenance
(seed, scale, kernel, git SHA), so the performance trajectory stays
diffable across PRs.

Scale knobs (environment; integer values are validated — non-positive
or non-integer settings fail fast naming the variable):

* ``REPRO_BENCH_SCALE``    — ``paper`` | ``small`` (default) | ``tiny``
* ``REPRO_BENCH_RUNS``     — runs per experiment (default 5)
* ``REPRO_BENCH_REQUESTS`` — trace length per server
* ``REPRO_JOBS``           — sweep worker processes (default 1 = serial;
  results are bit-identical — see ``repro.experiments.executor``)

The defaults finish the whole suite in a few minutes; EXPERIMENTS.md
records a ``paper``-scale run.  Ad-hoc paper-scale console logs belong
under ``benchmarks/out/`` (gitignored), not in the repository root.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro import obs
from repro.experiments.runner import ExperimentConfig

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """The experiment configuration honouring REPRO_BENCH_* overrides."""
    return ExperimentConfig.from_env()


@pytest.fixture(scope="session", autouse=True)
def bench_metrics() -> obs.MetricsRegistry:
    """Session-wide recording registry feeding the run manifests."""
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        yield registry


@pytest.fixture(scope="session")
def save_artifact(bench_config, bench_metrics):
    """Persist + print a regenerated table/figure, plus its manifest.

    Artifacts are namespaced by workload scale (``out/<scale>/…``) so a
    quick small-scale run never clobbers a paper-scale record, and each
    file carries a provenance header.  The metrics collected since the
    previous artifact are snapshotted into
    ``out/<scale>/manifests/<name>.json`` and the registry is cleared, so
    each manifest accounts for exactly one regenerated artifact.
    """
    import os

    scale = os.environ.get("REPRO_BENCH_SCALE", "small").lower()

    def _save(name: str, text: str) -> pathlib.Path:
        out = OUT_DIR / scale
        out.mkdir(parents=True, exist_ok=True)
        path = out / f"{name}.txt"
        header = (
            f"# scale={scale} runs={bench_config.n_runs} "
            f"requests/server={bench_config.params.requests_per_server}\n"
        )
        path.write_text(header + text + "\n")
        manifest = obs.build_manifest(
            bench_metrics,
            run={
                "entry": "benchmarks",
                "artifact": name,
                "scale": scale,
                "runs": bench_config.n_runs,
                "requests_per_server": bench_config.params.requests_per_server,
                "kernel": bench_config.kernel,
                "seed": bench_config.base_seed,
                "jobs": bench_config.jobs,
            },
        )
        # resolve_manifest_path keeps the per-artifact path unique per
        # executor worker (a "-w<pid>" suffix), so a parallel session
        # can never clobber the parent's manifest.
        obs.write_manifest(
            obs.resolve_manifest_path(
                out / "manifests" / f"{name}.json", name=name
            ),
            manifest,
        )
        bench_metrics.clear()
        print(f"\n{text}\n[saved to {path}]")
        return path

    return _save


@pytest.fixture(scope="session")
def save_timings():
    """Persist machine-readable kernel timings as ``BENCH_<name>.json``.

    The kernel benches (``bench_*_kernel.py``) assert speedup floors;
    this fixture additionally records the raw numbers they measured —
    per-workload/per-phase wall-clock seconds and speedups — under
    ``benchmarks/out/<scale>/BENCH_<name>.json`` together with git/seed
    provenance, so the performance trajectory is diffable across PRs
    without re-parsing the human-readable tables.
    """
    import os

    scale = os.environ.get("REPRO_BENCH_SCALE", "small").lower()

    def _save(name: str, payload: dict) -> pathlib.Path:
        out = OUT_DIR / scale
        out.mkdir(parents=True, exist_ok=True)
        path = out / f"BENCH_{name}.json"
        doc = {
            "bench": name,
            "scale": scale,
            "git_sha": obs.git_revision(),
            **payload,
        }
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"[timings saved to {path}]")
        return path

    return _save

"""Ablation A4 — sensitivity to the (alpha1, alpha2) objective weights.

Table 1 fixes (2, 1): "the retrieval time for a web page is more
important than the time for downloading optional objects".  The weights
only matter when a constraint forces trade-offs (unconstrained PARTITION
decides each page by stream balance alone, independent of alpha), so the
bench sweeps the ratio at **50% storage**: the deallocation criterion
then chooses between hurting page retrievals (D1) and optional
downloads (D2), and the measured times shift accordingly.
"""

import numpy as np
import pytest

from repro.core.policy import RepositoryReplicationPolicy
from repro.experiments.runner import iter_runs
from repro.experiments.scaling import (
    clone_with_capacities,
    storage_capacities_for_fraction,
)
from repro.util.tables import format_table

WEIGHTS = ((1.0, 1.0), (2.0, 1.0), (5.0, 1.0), (1.0, 5.0))
STORAGE_FRACTION = 0.5


@pytest.fixture(scope="module")
def ablation(bench_config, save_artifact):
    page_means = {w: [] for w in WEIGHTS}
    opt_means = {w: [] for w in WEIGHTS}
    for ctx in iter_runs(bench_config):
        caps = storage_capacities_for_fraction(
            ctx.model, ctx.reference, STORAGE_FRACTION
        )
        clone = clone_with_capacities(ctx.model, storage=caps)
        trace_c = ctx.retrace(clone)
        for a1, a2 in WEIGHTS:
            result = RepositoryReplicationPolicy(alpha1=a1, alpha2=a2).run(clone)
            sim = ctx.simulate(result.allocation, trace_c)
            page_means[(a1, a2)].append(sim.mean_page_time)
            opt_means[(a1, a2)].append(sim.mean_optional_time)
    base = np.mean(page_means[(2.0, 1.0)])
    base_opt = np.mean(opt_means[(2.0, 1.0)])
    table = format_table(
        ["(alpha1, alpha2)", "page time vs (2,1)", "optional time vs (2,1)"],
        [
            (
                f"({a1:g}, {a2:g})",
                f"{np.mean(page_means[(a1, a2)]) / base - 1:+.2%}",
                f"{np.mean(opt_means[(a1, a2)]) / base_opt - 1:+.2%}",
            )
            for a1, a2 in WEIGHTS
        ],
        title=(
            "Ablation A4: objective-weight sensitivity at "
            f"{STORAGE_FRACTION:.0%} storage (measured times)"
        ),
    )
    save_artifact("ablation_weights", table)
    return page_means


def test_bench_weights_stable(ablation):
    """The Table 1 weighting is robust: page time across weightings
    stays within ~10% (optional traffic is a small share of bytes)."""
    base = np.mean(ablation[(2.0, 1.0)])
    for w, vals in ablation.items():
        assert np.mean(vals) == pytest.approx(base, rel=0.10)


def test_bench_policy_timing(benchmark, bench_config, ablation):
    ctx = next(iter(iter_runs(bench_config)))
    benchmark(lambda: RepositoryReplicationPolicy().run(ctx.model))

#!/usr/bin/env python
"""Planning from measured statistics: how much history is enough?

A real deployment never knows ``f(W_j)``; it counts requests (Section 2:
"based on statistics collected, such as page access frequency").  This
example plans the allocation from frequency estimates built out of
increasingly long observation windows and measures the response-time
penalty versus planning with the truth — at 50% storage, where the
frequency-aware eviction decisions actually bite.

Run:  python examples/estimation_error.py
"""

import numpy as np

from repro import (
    RepositoryReplicationPolicy,
    WorkloadParams,
    generate_trace,
    generate_workload,
    simulate_allocation,
)
from repro.core.allocation import transplant_allocation
from repro.dynamic.estimator import estimate_frequencies, with_frequencies
from repro.experiments.scaling import (
    clone_with_capacities,
    storage_capacities_for_fraction,
)
from repro.util.tables import format_table


def main() -> None:
    params = WorkloadParams.small()
    base = generate_workload(params, seed=31)

    # fix disk budgets at 50% of the unconstrained footprint
    policy = RepositoryReplicationPolicy()
    ref = policy.run(base).allocation
    caps = storage_capacities_for_fraction(base, ref, 0.5)
    truth = clone_with_capacities(base, storage=caps)

    eval_trace = generate_trace(truth, params, seed=32)
    oracle = policy.run(truth).allocation
    oracle_time = simulate_allocation(oracle, eval_trace, seed=33).mean_page_time

    rows = []
    for window in (50, 200, 1000, 5000):
        observed = generate_trace(
            truth, params, seed=40, requests_per_server=window
        )
        est = estimate_frequencies(observed)
        planner_view = with_frequencies(truth, est)
        planned = policy.run(planner_view).allocation
        sim = simulate_allocation(
            transplant_allocation(planned, truth), eval_trace, seed=33
        )
        err = np.abs(est - truth.frequencies).sum() / truth.frequencies.sum()
        rows.append(
            (
                f"{window} req/server",
                f"{err:.0%}",
                f"{sim.mean_page_time:.0f}s",
                f"{sim.mean_page_time / oracle_time - 1:+.1%}",
            )
        )
    rows.append(("truth (oracle)", "0%", f"{oracle_time:.0f}s", "+0.0%"))
    print(
        format_table(
            [
                "observation window",
                "L1 frequency error",
                "mean page time",
                "vs oracle",
            ],
            rows,
            title="Planning from estimated page frequencies (50% storage)",
        )
    )
    print()
    print(
        "A few hundred requests per server — minutes of peak traffic — "
        "already plans within a couple percent of the oracle: the "
        "policy's decisions depend on coarse popularity ranks, not "
        "exact rates."
    )


if __name__ == "__main__":
    main()

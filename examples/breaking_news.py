#!/usr/bin/env python
"""Breaking news: what staleness costs, and when re-allocation pays.

The paper's Section 4.1 caveat — "allocation decisions made off-line
using the past access patterns may be inaccurate due to the dynamic
nature of the Web, e.g., breaking news" — made concrete.  Six epochs of
traffic; every second epoch half of each site's hot pages turn cold and
cold pages become the new front-page stories.  Three operators compete:

* one who allocated replicas on day 0 and never touched them again,
* one who re-runs the paper's algorithm nightly from *observed* request
  counts (the realistic deployment),
* an oracle with perfect knowledge of each day's popularity.

Run:  python examples/breaking_news.py
"""

from repro.dynamic import EpochConfig, run_dynamic_experiment
from repro.workload.params import WorkloadParams


def main() -> None:
    config = EpochConfig(
        n_epochs=6,
        drift_every=2,          # a news cycle persists for two epochs
        rotation_fraction=0.5,  # half the hot set turns over
        jitter_sigma=0.1,
        reallocate_every=1,     # "nightly" re-allocation
        requests_per_server=800,
        storage_fraction=0.6,   # disks hold 60% of the day-0 footprint
    )
    result = run_dynamic_experiment(
        params=WorkloadParams.small(), config=config, seed=7
    )
    print(result.render())
    print()
    print(
        "Reading the table: each rotation (epochs 2 and 4) costs the "
        "stale allocation immediately; the nightly re-planner lags one "
        "epoch (it plans from yesterday's counts) and then matches the "
        "oracle until the next rotation.  When drift outpaces the "
        "statistics window (set drift_every=1), history-based planning "
        "chases noise and the static allocation is the safer choice — "
        "the trade-off the paper's static-vs-dynamic discussion "
        "anticipates."
    )


if __name__ == "__main__":
    main()

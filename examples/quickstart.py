#!/usr/bin/env python
"""Quickstart: generate a workload, run the replication policy, compare.

This is the 60-second tour of the library:

1. generate a Table 1-shaped synthetic workload (scaled down so the
   script finishes in seconds),
2. run the paper's replication policy (PARTITION + constraint
   restoration + off-loading),
3. replay the same 10,000-requests-per-server trace under the proposed
   policy and the three baselines,
4. print the comparison the paper's Figure 1 narrative is built on.

Run:  python examples/quickstart.py
"""

from repro import (
    IdealLRUPolicy,
    LocalPolicy,
    RemotePolicy,
    RepositoryReplicationPolicy,
    WorkloadParams,
    generate_trace,
    generate_workload,
    simulate_allocation,
)
from repro.util.tables import format_table


def main() -> None:
    params = WorkloadParams.small()
    model = generate_workload(params, seed=42)
    print(f"generated {model}")

    # --- the proposed policy -------------------------------------------------
    policy = RepositoryReplicationPolicy(
        alpha1=params.alpha1, alpha2=params.alpha2
    )
    result = policy.run(model)
    print(f"policy run: {result.summary()}")
    n_local = int(result.allocation.comp_local.sum())
    n_total = len(result.allocation.comp_local)
    print(
        f"PARTITION marked {n_local}/{n_total} compulsory downloads local "
        f"({n_local / n_total:.0%}); average replica footprint "
        f"{result.allocation.stored_bytes_all().mean() / 2**20:.0f} MiB/server"
    )

    # --- paired evaluation ---------------------------------------------------
    trace = generate_trace(model, params, seed=1)
    sim_ours = simulate_allocation(result.allocation, trace, seed=2)
    sim_remote = simulate_allocation(RemotePolicy().allocate(model), trace, seed=2)
    sim_local = simulate_allocation(LocalPolicy().allocate(model), trace, seed=2)
    lru = IdealLRUPolicy(cache_bytes=result.allocation.stored_bytes_all())
    sim_lru, lru_stats = lru.evaluate(trace, seed=2)

    base = sim_ours.mean_page_time
    rows = []
    for name, sim in [
        ("proposed (unconstrained)", sim_ours),
        ("ideal LRU (100% storage)", sim_lru),
        ("local (all from local server)", sim_local),
        ("remote (all from repository)", sim_remote),
    ]:
        rows.append(
            (
                name,
                f"{sim.mean_page_time:.0f}s",
                f"{sim.mean_page_time / base - 1:+.1%}",
                f"{sim.percentile_page_time(95):.0f}s",
            )
        )
    print()
    print(
        format_table(
            ["policy", "mean page time", "vs proposed", "p95"],
            rows,
            title=f"{trace.n_requests} page requests, Section 5.1 perturbations",
        )
    )
    print(f"(LRU hit rate: {lru_stats.hit_rate:.1%})")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Capacity planning: how much edge storage do the local sites need?

The Figure 1 machinery answers a practical question: given the company's
workload, what is the smallest per-site disk budget whose response time
is within X% of the unconstrained optimum?  This example sweeps storage
fractions, prints the trade-off curve, and reports the knee — the
paper's observation that ~65% of the full replica footprint already
matches an LRU cache with 100% (the basis of its "saves 35% of the
capacity" argument).

Run:  python examples/capacity_planning.py
"""

import numpy as np

from repro.experiments import (
    ExperimentConfig,
    run_fig1,
)
from repro.util.tables import format_table
from repro.util.units import MB
from repro.workload.params import WorkloadParams


def main() -> None:
    # A modest workload so the sweep finishes in ~10 seconds; swap in
    # WorkloadParams.paper() for the real Table 1 scale.
    cfg = ExperimentConfig(params=WorkloadParams.small(), n_runs=3)
    fractions = (0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)
    fig1 = run_fig1(cfg, fractions=fractions)

    ours = fig1.series["proposed"]
    lru = fig1.series["ideal-lru"]
    lru_full = lru[-1]

    rows = []
    for frac, o, l in zip(fractions, ours, lru):
        marker = "  <-- matches LRU@100%" if o <= lru_full and (
            frac == fractions[0] or ours[fractions.index(frac) - 1] > lru_full
        ) else ""
        rows.append((f"{frac:.0%}", f"{o:+.1%}", f"{l:+.1%}", marker))
    print(
        format_table(
            ["storage", "proposed", "ideal LRU", ""],
            rows,
            title="Response-time increase vs per-site storage budget",
        )
    )

    # the knee: smallest fraction within 10% of optimal
    tolerance = 0.10
    knee = next(
        (f for f, o in zip(fractions, ours) if o <= tolerance), fractions[-1]
    )
    print()
    print(
        f"Smallest storage within {tolerance:.0%} of the unconstrained "
        f"optimum: {knee:.0%} of the full replica footprint."
    )
    match = next(
        (f for f, o in zip(fractions, ours) if o <= lru_full), fractions[-1]
    )
    print(
        f"The proposed policy matches ideal LRU at 100% storage "
        f"({lru_full:+.1%}) using only {match:.0%} of the capacity — the "
        "paper reports ~65% for the Table 1 workload."
    )
    print(
        f"Reference lines: remote "
        f"{fig1.scalars['remote (all from repository)']:+.1%}, local "
        f"{fig1.scalars['local (all from local server)']:+.1%}."
    )


if __name__ == "__main__":
    main()

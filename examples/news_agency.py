#!/usr/bin/env python
"""A hand-built news-agency deployment (the paper's motivating scenario).

A news agency runs three regional sites — London, Singapore, New York —
plus a central multimedia repository at headquarters.  Breaking-news
pages embed video clips and photo galleries stored at the repository.
This example builds the :class:`~repro.core.types.SystemModel` by hand
(no synthetic generator) and walks through what the policy decides:

* which clips each region replicates,
* how each page's downloads split across the two parallel connections,
* the "reference database" view: the per-page URL rewrite table a local
  server would consult when serving the HTML (Section 2).

Run:  python examples/news_agency.py
"""

import math

from repro import (
    CostModel,
    ObjectSpec,
    PageSpec,
    RepositoryReplicationPolicy,
    RepositorySpec,
    ServerSpec,
    SystemModel,
)
from repro.util.tables import format_table
from repro.util.units import KB, MB


def build_model() -> SystemModel:
    """Three regional sites with asymmetric links, nine shared MOs."""
    # The repository's catalogue: video clips (large), photo galleries
    # (medium), teaser images (small).
    clip_names = [
        "clip_election.mpg",       # 0
        "clip_markets.mpg",        # 1
        "clip_weather.mpg",        # 2
        "gallery_summit.zip",      # 3
        "gallery_sports.zip",      # 4
        "gallery_fashion.zip",     # 5
        "teaser_front.gif",        # 6
        "teaser_sports.gif",       # 7
        "teaser_biz.gif",          # 8
    ]
    sizes = [
        3 * MB,
        2 * MB,
        1 * MB,
        700 * KB,
        600 * KB,
        500 * KB,
        60 * KB,
        50 * KB,
        40 * KB,
    ]
    objects = [
        ObjectSpec(object_id=k, size=s) for k, s in enumerate(sizes)
    ]

    servers = [
        # London: good local link, mediocre transatlantic link to HQ.
        ServerSpec(
            server_id=0,
            name="london",
            storage_capacity=5 * MB,
            processing_capacity=100.0,
            rate=8 * KB,
            overhead=1.3,
            repo_rate=1.5 * KB,
            repo_overhead=2.0,
        ),
        # Singapore: slower local link, poor link to HQ.
        ServerSpec(
            server_id=1,
            name="singapore",
            storage_capacity=4 * MB,
            processing_capacity=100.0,
            rate=5 * KB,
            overhead=1.5,
            repo_rate=0.5 * KB,
            repo_overhead=2.4,
        ),
        # New York: HQ is close — the repository link is nearly as good
        # as the local one, so replication buys little here.
        ServerSpec(
            server_id=2,
            name="new-york",
            storage_capacity=6 * MB,
            processing_capacity=100.0,
            rate=9 * KB,
            overhead=1.3,
            repo_rate=6 * KB,
            repo_overhead=1.5,
        ),
    ]

    def page(pid: int, srv: int, html_kb: int, freq: float, comp, opt=()):
        return PageSpec(
            page_id=pid,
            server=srv,
            html_size=html_kb * KB,
            frequency=freq,
            compulsory=tuple(comp),
            optional=tuple(opt),
            optional_prob=0.03 if opt else 0.0,
        )

    pages = [
        # London front page: election clip + summit gallery + teaser.
        page(0, 0, 12, 2.0, comp=(0, 3, 6), opt=(4,)),
        # London business page.
        page(1, 0, 8, 1.0, comp=(1, 8)),
        # Singapore front page: same shared content, weaker links.
        page(2, 1, 12, 1.5, comp=(0, 3, 6), opt=(5,)),
        # Singapore markets page.
        page(3, 1, 9, 0.8, comp=(1, 8)),
        # New York front page.
        page(4, 2, 12, 2.5, comp=(0, 3, 6)),
        # New York sports page: weather clip + sports gallery.
        page(5, 2, 10, 1.2, comp=(2, 4, 7)),
    ]
    return SystemModel(servers, RepositorySpec(math.inf), pages, objects)


def main() -> None:
    model = build_model()
    policy = RepositoryReplicationPolicy()
    result = policy.run(model)
    print(result.summary())
    print()

    # --- replica sets per region ------------------------------------------
    names = [
        "clip_election.mpg", "clip_markets.mpg", "clip_weather.mpg",
        "gallery_summit.zip", "gallery_sports.zip", "gallery_fashion.zip",
        "teaser_front.gif", "teaser_sports.gif", "teaser_biz.gif",
    ]
    rows = []
    for srv in model.servers:
        stored = sorted(result.allocation.replicas[srv.server_id])
        used = result.allocation.stored_bytes(srv.server_id) / MB
        rows.append(
            (
                srv.name,
                ", ".join(names[k] for k in stored) or "(nothing)",
                f"{used:.1f}/{srv.storage_capacity / MB:.0f} MB",
            )
        )
    print(format_table(["site", "replicated objects", "storage"], rows,
                       title="Replica sets chosen by the policy"))
    print()

    # --- the reference-database view per page -------------------------------
    cost = policy.cost_model(model)
    times = cost.page_times(result.allocation)
    rows = []
    for p in model.pages:
        marks = result.allocation.page_comp_marks(p.page_id)
        local = [names[k] for k, m in zip(p.compulsory, marks) if m]
        remote = [names[k] for k, m in zip(p.compulsory, marks) if not m]
        rows.append(
            (
                f"{model.servers[p.server].name}/page{p.page_id}",
                ", ".join(local) or "-",
                ", ".join(remote) or "-",
                f"{times.local[p.page_id]:.0f}s",
                f"{times.remote[p.page_id]:.0f}s",
            )
        )
    print(
        format_table(
            ["page", "rewritten to LOCAL urls", "left on REPOSITORY urls",
             "local stream", "repo stream"],
            rows,
            title="Reference database: URL rewrites and estimated stream times",
        )
    )
    print()
    print(
        "Note how Singapore (poor HQ link) replicates aggressively, while "
        "New York (HQ nearby) keeps most objects remote and lets the two "
        "connections share the load."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Sensitivity of every policy to estimation error (Section 5.1's point).

The paper stresses that its policy keeps winning "even when the network
attributes (latency, transfer rate) significantly vary from the
estimations used during allocation decisions".  This example quantifies
that: the same workload and allocations are replayed under increasingly
hostile perturbation models — from *identity* (actuals = estimates) to
the paper's mixture to an exaggerated congestion regime — and the
relative ranking of the four policies is tabulated per regime.

Run:  python examples/policy_comparison.py
"""

from repro import (
    IdealLRUPolicy,
    LocalPolicy,
    RemotePolicy,
    RepositoryReplicationPolicy,
    WorkloadParams,
    generate_trace,
    generate_workload,
    simulate_allocation,
)
from repro.simulation.perturbation import (
    IDENTITY_PERTURBATION,
    PAPER_PERTURBATION,
    FactorMixture,
    PerturbationModel,
    UniformFactor,
)
from repro.util.tables import format_table

#: Harsher than the paper: half of all local requests are congested.
HARSH_PERTURBATION = PerturbationModel(
    local_rate=FactorMixture(
        weights=(0.50, 0.30, 0.20),
        components=(
            UniformFactor(0.90, 1.10),
            UniformFactor(1 / 3, 1 / 2),
            UniformFactor(1 / 8, 1 / 4),
        ),
    ),
    repo_rate=FactorMixture(weights=(1.0,), components=(UniformFactor(0.6, 1.4),)),
    local_overhead=FactorMixture(
        weights=(1.0,), components=(UniformFactor(0.9, 2.0),)
    ),
    repo_overhead=FactorMixture(
        weights=(1.0,), components=(UniformFactor(0.7, 1.3),)
    ),
)


def main() -> None:
    params = WorkloadParams.small()
    model = generate_workload(params, seed=3)
    trace = generate_trace(model, params, seed=4)

    ours = RepositoryReplicationPolicy().run(model).allocation
    remote = RemotePolicy().allocate(model)
    local = LocalPolicy().allocate(model)
    lru = IdealLRUPolicy(cache_bytes=ours.stored_bytes_all())

    regimes = [
        ("identity (actuals = estimates)", IDENTITY_PERTURBATION),
        ("paper Section 5.1 mixture", PAPER_PERTURBATION),
        ("harsh congestion", HARSH_PERTURBATION),
    ]
    rows = []
    for name, pert in regimes:
        sims = {
            "proposed": simulate_allocation(ours, trace, pert, seed=9),
            "lru": lru.evaluate(trace, pert, seed=9)[0],
            "local": simulate_allocation(local, trace, pert, seed=9),
            "remote": simulate_allocation(remote, trace, pert, seed=9),
        }
        base = sims["proposed"].mean_page_time
        rows.append(
            (
                name,
                f"{base:.0f}s",
                f"{sims['lru'].mean_page_time / base - 1:+.1%}",
                f"{sims['local'].mean_page_time / base - 1:+.1%}",
                f"{sims['remote'].mean_page_time / base - 1:+.1%}",
            )
        )
    print(
        format_table(
            ["perturbation regime", "proposed", "lru vs", "local vs", "remote vs"],
            rows,
            title="Mean page response time by perturbation regime",
        )
    )
    print()
    print(
        "The proposed policy's margin persists across regimes because the "
        "PARTITION split keeps both connections busy; mis-estimation shifts "
        "the bottleneck but cannot idle a stream entirely."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Watch the OFF_LOADING_REPOSITORY negotiation run as a real protocol.

The repository's processing capacity is constrained to a fraction of the
workload the local servers' allocations impose on it, forcing the
Section 4.2 negotiation: status messages flow in, the repository assigns
``NewReq`` shares to ``L1``/``L2`` servers, answers flow back, rounds
repeat until Eq. 9 holds.  The example runs the same scenario both ways:

* centrally, via :class:`repro.core.policy.RepositoryReplicationPolicy`,
* distributed, via :mod:`repro.network`'s message bus,

verifies the allocations are identical, and prints the wire traffic.

Run:  python examples/distributed_offloading.py
"""

import numpy as np

from repro import RepositoryReplicationPolicy, WorkloadParams, generate_workload
from repro.core.constraints import repository_load_by_server
from repro.network import run_distributed_policy
from repro.util.tables import format_table


def main() -> None:
    params = WorkloadParams.small().with_(
        repository_capacity=25.0,  # req/s — well below what PARTITION imposes
        storage_capacity=250e6,
    )
    model = generate_workload(params, seed=11)
    print(f"{model}; repository capacity {params.repository_capacity} req/s")
    print()

    central = RepositoryReplicationPolicy().run(model)
    print("centralised run :", central.summary())
    distributed = run_distributed_policy(model)
    print("distributed run :", distributed.summary())
    print()

    same = (
        np.array_equal(
            central.allocation.comp_local, distributed.allocation.comp_local
        )
        and np.array_equal(
            central.allocation.opt_local, distributed.allocation.opt_local
        )
        and central.allocation.replicas == distributed.allocation.replicas
    )
    print(f"allocations identical: {same}")
    print()

    shares = repository_load_by_server(distributed.allocation)
    rows = [
        (
            model.servers[i].name,
            f"{distributed.absorbed_by_server.get(i, 0.0):.2f} req/s",
            f"{shares[i]:.2f} req/s",
        )
        for i in range(model.n_servers)
    ]
    print(
        format_table(
            ["server", "workload absorbed", "residual repo share"],
            rows,
            title="Off-loading outcome per server",
        )
    )
    print()
    print("wire traffic:", distributed.bus_stats.summary())


if __name__ == "__main__":
    main()

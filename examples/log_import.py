#!/usr/bin/env python
"""From access logs to a replication plan (the operator's on-ramp).

A real deployment starts from Apache-style access logs, not synthetic
traces.  This example synthesises a day of Common Log Format lines from
a ground-truth workload (standing in for your real logs), then walks the
full operator loop:

1. parse the logs into a request trace (``repro.workload.clf``),
2. estimate page frequencies from the observed counts,
3. run the replication policy against the estimates,
4. diff the new plan against the currently deployed one — the replica
   bytes that must be copied during the off-peak window.

Run:  python examples/log_import.py
"""

import numpy as np

from repro import (
    RepositoryReplicationPolicy,
    WorkloadParams,
    generate_trace,
    generate_workload,
)
from repro.analysis.compare import diff_allocations
from repro.core.allocation import transplant_allocation
from repro.dynamic.estimator import estimate_frequencies, with_frequencies
from repro.experiments.scaling import (
    clone_with_capacities,
    storage_capacities_for_fraction,
)
from repro.workload.clf import parse_clf


def synthesize_logs(model, params, seed):
    """Render a ground-truth trace as CLF lines (your web server does
    this part in production)."""
    truth_trace = generate_trace(model, params, seed=seed)
    rng = np.random.default_rng(seed)
    lines = []
    for r, page in enumerate(truth_trace.page_of_request):
        host = f"10.0.{rng.integers(0, 32)}.{rng.integers(1, 255)}"
        lines.append(
            f'{host} - - [05/Jul/2026:09:{r % 60:02d}:00 +0000] '
            f'"GET /page/{int(page)} HTTP/1.0" 200 4096'
        )
    return lines


def main() -> None:
    params = WorkloadParams.small().with_(requests_per_server=1500)
    base = generate_workload(params, seed=51)

    # fix the disks at 60% of the unconstrained footprint
    policy = RepositoryReplicationPolicy()
    ref = policy.run(base).allocation
    caps = storage_capacities_for_fraction(base, ref, 0.6)
    model = clone_with_capacities(base, storage=caps)

    deployed = policy.run(model).allocation  # what is live today

    # --- 1. logs -> trace ---------------------------------------------------
    lines = synthesize_logs(model, params, seed=52)
    parsed = parse_clf(lines, model)
    print(
        f"parsed {len(lines)} log lines: {parsed.page_requests} page "
        f"requests, {parsed.malformed_lines} malformed, "
        f"{parsed.unresolved_paths} unresolved"
    )

    # --- 2. trace -> frequency estimates -------------------------------------
    est = estimate_frequencies(parsed.trace)
    err = np.abs(est - model.frequencies).sum() / model.frequencies.sum()
    print(f"estimated page frequencies (L1 error vs truth: {err:.0%})")

    # --- 3. estimates -> plan -------------------------------------------------
    planner_view = with_frequencies(model, est)
    planned = policy.run(planner_view).allocation
    new_plan = transplant_allocation(planned, model)

    # --- 4. plan -> churn ------------------------------------------------------
    diff = diff_allocations(deployed, new_plan)
    print(f"switchover cost: {diff.summary()}")
    if diff.is_noop:
        print("the observed traffic matches the deployed plan — no action.")
    else:
        print(
            "copy the added replicas during the off-peak window, flip the "
            "reference database, and the new plan is live."
        )


if __name__ == "__main__":
    main()

"""Tests for repro.network.bus and messages."""

import pytest

from repro.core.offload import ServerStatus
from repro.network.bus import BusStats, MessageBus
from repro.network.messages import (
    Message,
    NewRequirementMessage,
    OffloadEndMessage,
    REPOSITORY_NODE,
    StatusMessage,
    WorkloadAnswerMessage,
    server_node,
)


def _status(sid=0):
    return ServerStatus(server_id=sid, free_space=1.0, free_capacity=2.0, repo_share=3.0)


class TestMessages:
    def test_server_node_naming(self):
        assert server_node(3) == "server:3"

    def test_wire_bytes_positive(self):
        msgs = [
            Message("a", "b"),
            StatusMessage("a", "b", status=_status()),
            NewRequirementMessage("a", "b", amount=1.0),
            WorkloadAnswerMessage("a", "b", achieved=1.0, status=_status()),
            OffloadEndMessage("a", "b"),
        ]
        for m in msgs:
            assert m.wire_bytes >= 16

    def test_status_carries_payload(self):
        m = StatusMessage("a", "b", status=_status(5))
        assert m.status.server_id == 5

    def test_answer_defaults(self):
        m = WorkloadAnswerMessage("a", "b", achieved=2.0, status=_status())
        assert m.exhausted is False


class TestMessageBus:
    def test_register_and_deliver(self):
        bus = MessageBus()
        got = []
        bus.register("x", got.append)
        bus.register("y", got.append)
        bus.send(Message("y", "x"))
        assert bus.pending == 1
        delivered = bus.run_until_idle()
        assert delivered == 1
        assert len(got) == 1

    def test_unknown_recipient(self):
        bus = MessageBus()
        with pytest.raises(KeyError, match="unknown"):
            bus.send(Message("a", "nobody"))

    def test_duplicate_registration(self):
        bus = MessageBus()
        bus.register("x", lambda m: None)
        with pytest.raises(ValueError, match="already"):
            bus.register("x", lambda m: None)

    def test_fifo_order(self):
        bus = MessageBus()
        seen = []
        bus.register("x", lambda m: seen.append(m.sender))
        bus.send(Message("1", "x"))
        bus.send(Message("2", "x"))
        bus.run_until_idle()
        assert seen == ["1", "2"]

    def test_cascading_sends(self):
        bus = MessageBus()

        def ping(msg):
            if msg.sender != "done":
                bus.send(Message("done", "pong"))

        got = []
        bus.register("ping", ping)
        bus.register("pong", got.append)
        bus.send(Message("start", "ping"))
        bus.run_until_idle()
        assert len(got) == 1

    def test_livelock_guard(self):
        bus = MessageBus()

        def forever(msg):
            bus.send(Message("a", "a"))

        bus.register("a", forever)
        bus.send(Message("start", "a"))
        with pytest.raises(RuntimeError, match="livelock"):
            bus.run_until_idle(max_deliveries=100)

    def test_stats_accounting(self):
        bus = MessageBus()
        bus.register("x", lambda m: None)
        bus.send(StatusMessage("a", "x", status=_status()))
        bus.send(OffloadEndMessage("a", "x"))
        assert bus.stats.messages == 2
        assert bus.stats.bytes > 0
        assert bus.stats.by_kind["StatusMessage"] == 1
        assert "StatusMessage" in bus.stats.summary()

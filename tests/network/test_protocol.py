"""Tests for repro.network — the distributed policy run."""

import math

import numpy as np
import pytest

from repro.core.policy import RepositoryReplicationPolicy
from repro.network import run_distributed_policy
from repro.network.messages import (
    NewRequirementMessage,
    StatusMessage,
)
from tests.conftest import build_micro_model
from repro.workload.generator import generate_workload
from repro.workload.params import WorkloadParams


def _assert_same_allocation(a, b):
    assert np.array_equal(a.comp_local, b.comp_local)
    assert np.array_equal(a.opt_local, b.opt_local)
    assert a.replicas == b.replicas


class TestEquivalenceWithCentralised:
    def test_unconstrained(self, micro_model):
        cen = RepositoryReplicationPolicy().run(micro_model)
        dist = run_distributed_policy(micro_model)
        _assert_same_allocation(cen.allocation, dist.allocation)
        assert dist.objective == pytest.approx(cen.objective)

    def test_storage_constrained(self):
        m = build_micro_model(storage=(700.0, 900.0))
        cen = RepositoryReplicationPolicy().run(m)
        dist = run_distributed_policy(m)
        _assert_same_allocation(cen.allocation, dist.allocation)

    def test_offload_constrained(self):
        m = build_micro_model(repo_capacity=1.0)
        cen = RepositoryReplicationPolicy(optional_policy="none").run(m)
        dist = run_distributed_policy(m, optional_policy="none")
        _assert_same_allocation(cen.allocation, dist.allocation)
        assert dist.offload_restored == cen.offload_outcome.restored

    def test_generated_workload_constrained(self):
        params = WorkloadParams.tiny().with_(
            repository_capacity=3.0, storage_capacity=5e7
        )
        m = generate_workload(params, seed=13)
        cen = RepositoryReplicationPolicy().run(m)
        dist = run_distributed_policy(m)
        _assert_same_allocation(cen.allocation, dist.allocation)
        assert dist.feasible == cen.feasible


class TestProtocolBehaviour:
    def test_message_counts_unconstrained(self, micro_model):
        dist = run_distributed_policy(micro_model)
        # 2 statuses + 2 END broadcasts, no rounds
        assert dist.offload_rounds == 0
        assert dist.bus_stats.by_kind["StatusMessage"] == 2
        assert dist.bus_stats.by_kind["OffloadEndMessage"] == 2
        assert "NewRequirementMessage" not in dist.bus_stats.by_kind

    def test_rounds_and_answers_match(self):
        m = build_micro_model(repo_capacity=1.0)
        dist = run_distributed_policy(m, optional_policy="none")
        assert dist.offload_rounds >= 1
        assert (
            dist.bus_stats.by_kind["NewRequirementMessage"]
            == dist.bus_stats.by_kind["WorkloadAnswerMessage"]
        )

    def test_unrestorable_flagged(self):
        m = build_micro_model(processing=(3.0, 1.5), repo_capacity=0.1)
        dist = run_distributed_policy(m, optional_policy="none")
        assert not dist.offload_restored
        assert not dist.feasible

    def test_summary_mentions_traffic(self, micro_model):
        s = run_distributed_policy(micro_model).summary()
        assert "messages" in s
        assert "off-loading rounds" in s

    def test_absorbed_by_server_recorded(self):
        m = build_micro_model(repo_capacity=1.0)
        dist = run_distributed_policy(m, optional_policy="none")
        assert dist.absorbed_by_server
        assert sum(dist.absorbed_by_server.values()) > 0

"""Order-independence of the distributed scheme.

The paper's core architectural claim is decentralisation: each server
decides for its own pages.  That only holds if the outcome does not
depend on *when* each server runs.  These tests execute the local
allocation phase in adversarial orders and assert bit-identical results.
"""

import numpy as np
import pytest

from repro.core.allocation import Allocation
from repro.core.cost_model import CostModel
from repro.network.bus import MessageBus
from repro.network.nodes import LocalServerNode, RepositoryNode
from repro.workload.generator import generate_workload
from repro.workload.params import WorkloadParams


@pytest.fixture(scope="module")
def model():
    return generate_workload(
        WorkloadParams.small().with_(
            repository_capacity=25.0, storage_capacity=2.5e8
        ),
        seed=17,
    )


def _run(model, order):
    cost = CostModel(model)
    alloc = Allocation(model)
    bus = MessageBus()
    repo = RepositoryNode(
        capacity=model.repository.processing_capacity,
        n_servers=model.n_servers,
        bus=bus,
    )
    nodes = [LocalServerNode(i, alloc, cost, bus) for i in range(model.n_servers)]
    for i in order:
        nodes[i].run_local_allocation()
    for i in order:
        nodes[i].send_status()
    bus.run_until_idle()
    while not repo.finished:
        repo.recover_from_stall()
        bus.run_until_idle()
    return alloc


class TestOrderIndependence:
    def test_reversed_order(self, model):
        forward = _run(model, list(range(model.n_servers)))
        backward = _run(model, list(reversed(range(model.n_servers))))
        assert np.array_equal(forward.comp_local, backward.comp_local)
        assert np.array_equal(forward.opt_local, backward.opt_local)
        assert forward.replicas == backward.replicas

    def test_shuffled_order(self, model):
        rng = np.random.default_rng(3)
        order = list(rng.permutation(model.n_servers))
        shuffled = _run(model, order)
        forward = _run(model, list(range(model.n_servers)))
        assert np.array_equal(forward.comp_local, shuffled.comp_local)
        assert forward.replicas == shuffled.replicas

    def test_interleaved_status_order(self, model):
        """Status messages arriving in a different order than the local
        allocations ran must not change the outcome (the plan is a
        deterministic function of the status *set*)."""
        cost = CostModel(model)
        alloc = Allocation(model)
        bus = MessageBus()
        repo = RepositoryNode(
            capacity=model.repository.processing_capacity,
            n_servers=model.n_servers,
            bus=bus,
        )
        nodes = [
            LocalServerNode(i, alloc, cost, bus) for i in range(model.n_servers)
        ]
        for node in nodes:
            node.run_local_allocation()
        for node in reversed(nodes):
            node.send_status()
        bus.run_until_idle()
        forward = _run(model, list(range(model.n_servers)))
        assert np.array_equal(forward.comp_local, alloc.comp_local)
        assert forward.replicas == alloc.replicas

"""Tests for virtual-time delivery and protocol makespan."""

import numpy as np
import pytest

from repro.network import LatencyModel, MessageBus, run_distributed_policy
from repro.network.messages import Message
from repro.workload.generator import generate_workload
from repro.workload.params import WorkloadParams


class TestLatencyModel:
    def test_default_delay(self):
        lm = LatencyModel(default_delay=0.2)
        assert lm.delay("a", "b") == 0.2

    def test_per_link_override(self):
        lm = LatencyModel(default_delay=0.2, per_link={("a", "b"): 0.05})
        assert lm.delay("a", "b") == 0.05
        assert lm.delay("b", "a") == 0.2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(default_delay=-1.0)
        with pytest.raises(ValueError):
            LatencyModel(per_link={("a", "b"): -0.1})


class TestVirtualTimeBus:
    def test_clock_advances(self):
        bus = MessageBus(latency=LatencyModel(default_delay=0.5))
        bus.register("x", lambda m: None)
        bus.send(Message("a", "x"))
        bus.run_until_idle()
        assert bus.clock == pytest.approx(0.5)

    def test_reply_chains_add_delay(self):
        lm = LatencyModel(default_delay=0.5)
        bus = MessageBus(latency=lm)

        def ponger(msg):
            if msg.sender != "pong":
                bus.send(Message("ping", "pong"))

        bus.register("ping", ponger)
        bus.register("pong", lambda m: None)
        bus.send(Message("start", "ping"))
        bus.run_until_idle()
        assert bus.clock == pytest.approx(1.0)  # two hops

    def test_arrival_order_beats_send_order(self):
        lm = LatencyModel(
            default_delay=1.0, per_link={("fast", "x"): 0.1}
        )
        bus = MessageBus(latency=lm)
        seen = []
        bus.register("x", lambda m: seen.append(m.sender))
        bus.send(Message("slow", "x"))
        bus.send(Message("fast", "x"))
        bus.run_until_idle()
        assert seen == ["fast", "slow"]

    def test_no_latency_is_fifo(self):
        bus = MessageBus()
        seen = []
        bus.register("x", lambda m: seen.append(m.sender))
        for s in ("1", "2", "3"):
            bus.send(Message(s, "x"))
        bus.run_until_idle()
        assert seen == ["1", "2", "3"]
        assert bus.clock == 0.0


class TestProtocolMakespan:
    @pytest.fixture(scope="class")
    def model(self):
        return generate_workload(
            WorkloadParams.small().with_(repository_capacity=25.0), seed=11
        )

    def test_makespan_counts_hops(self, model):
        res = run_distributed_policy(
            model, latency=LatencyModel(default_delay=0.1)
        )
        # status + per round (NewReq + answer) + END
        expected = 0.1 * (1 + 2 * res.offload_rounds + 1)
        assert res.makespan == pytest.approx(expected)

    def test_uniform_latency_identical_allocation(self, model):
        base = run_distributed_policy(model)
        timed = run_distributed_policy(
            model, latency=LatencyModel(default_delay=0.2)
        )
        assert np.array_equal(
            base.allocation.comp_local, timed.allocation.comp_local
        )
        assert base.allocation.replicas == timed.allocation.replicas

    def test_no_latency_zero_makespan(self, model):
        assert run_distributed_policy(model).makespan == 0.0

"""Direct state-machine tests for RepositoryNode (beyond protocol runs)."""

import math

import pytest

from repro.core.offload import ServerStatus
from repro.network.bus import MessageBus
from repro.network.messages import (
    NewRequirementMessage,
    OffloadEndMessage,
    REPOSITORY_NODE,
    StatusMessage,
    WorkloadAnswerMessage,
    server_node,
)
from repro.network.nodes import RepositoryNode


def _status(sid, share, cap=10.0, space=100.0):
    return ServerStatus(
        server_id=sid, free_space=space, free_capacity=cap, repo_share=share
    )


class _Sink:
    """Registers server addresses and records deliveries."""

    def __init__(self, bus: MessageBus, n: int):
        self.received: list = []
        for i in range(n):
            bus.register(server_node(i), self.received.append)


class TestRepositoryNode:
    def test_waits_for_all_statuses(self):
        bus = MessageBus()
        repo = RepositoryNode(capacity=5.0, n_servers=2, bus=bus)
        sink = _Sink(bus, 2)
        bus.send(
            StatusMessage(server_node(0), REPOSITORY_NODE, status=_status(0, 10.0))
        )
        bus.run_until_idle()
        assert not repo.finished
        assert repo.rounds == 0

    def test_finishes_immediately_when_under_capacity(self):
        bus = MessageBus()
        repo = RepositoryNode(capacity=50.0, n_servers=2, bus=bus)
        sink = _Sink(bus, 2)
        for i in range(2):
            bus.send(
                StatusMessage(
                    server_node(i), REPOSITORY_NODE, status=_status(i, 10.0)
                )
            )
        bus.run_until_idle()
        assert repo.finished and repo.restored
        assert repo.rounds == 0
        ends = [m for m in sink.received if isinstance(m, OffloadEndMessage)]
        assert len(ends) == 2

    def test_starts_round_when_over_capacity(self):
        bus = MessageBus()
        repo = RepositoryNode(capacity=5.0, n_servers=2, bus=bus)
        sink = _Sink(bus, 2)
        for i in range(2):
            bus.send(
                StatusMessage(
                    server_node(i), REPOSITORY_NODE, status=_status(i, 10.0)
                )
            )
        bus.run_until_idle()
        assert repo.rounds == 1
        reqs = [m for m in sink.received if isinstance(m, NewRequirementMessage)]
        assert len(reqs) == 2
        assert sum(r.amount for r in reqs) == pytest.approx(15.0)

    def test_answer_updates_and_finishes(self):
        bus = MessageBus()
        repo = RepositoryNode(capacity=5.0, n_servers=1, bus=bus)
        sink = _Sink(bus, 1)
        bus.send(
            StatusMessage(server_node(0), REPOSITORY_NODE, status=_status(0, 10.0))
        )
        bus.run_until_idle()
        assert repo.rounds == 1
        bus.send(
            WorkloadAnswerMessage(
                server_node(0),
                REPOSITORY_NODE,
                achieved=5.0,
                status=_status(0, 5.0, cap=5.0),
            )
        )
        bus.run_until_idle()
        assert repo.finished and repo.restored
        assert repo.absorbed_by_server[0] == pytest.approx(5.0)

    def test_exhausted_server_demoted(self):
        bus = MessageBus()
        repo = RepositoryNode(capacity=5.0, n_servers=1, bus=bus)
        sink = _Sink(bus, 1)
        bus.send(
            StatusMessage(server_node(0), REPOSITORY_NODE, status=_status(0, 10.0))
        )
        bus.run_until_idle()
        bus.send(
            WorkloadAnswerMessage(
                server_node(0),
                REPOSITORY_NODE,
                achieved=1.0,
                exhausted=True,
                status=_status(0, 9.0),
            )
        )
        bus.run_until_idle()
        # only server demoted -> plan returns None -> finished, unrestored
        assert 0 in repo.demoted
        assert repo.finished and not repo.restored

    def test_max_rounds_guard(self):
        bus = MessageBus()
        repo = RepositoryNode(capacity=5.0, n_servers=1, bus=bus, max_rounds=2)

        # a server that always absorbs a little but never enough
        def echo(msg):
            if isinstance(msg, NewRequirementMessage):
                bus.send(
                    WorkloadAnswerMessage(
                        server_node(0),
                        REPOSITORY_NODE,
                        achieved=msg.amount,  # claims success -> not demoted
                        status=_status(0, 8.0),  # ...but share barely moves
                    )
                )

        bus.register(server_node(0), echo)
        bus.send(
            StatusMessage(server_node(0), REPOSITORY_NODE, status=_status(0, 10.0))
        )
        bus.run_until_idle()
        assert repo.finished
        assert repo.rounds == 2  # stopped by the guard

    def test_recover_from_stall_missing_statuses(self):
        bus = MessageBus()
        repo = RepositoryNode(capacity=50.0, n_servers=2, bus=bus)
        sink = _Sink(bus, 2)
        bus.send(
            StatusMessage(server_node(0), REPOSITORY_NODE, status=_status(0, 10.0))
        )
        bus.run_until_idle()
        assert not repo.finished
        assert repo.recover_from_stall()
        bus.run_until_idle()
        assert repo.finished
        assert 1 in repo.demoted

    def test_recover_from_stall_lost_answers(self):
        bus = MessageBus()
        repo = RepositoryNode(capacity=5.0, n_servers=1, bus=bus)
        sink = _Sink(bus, 1)
        bus.send(
            StatusMessage(server_node(0), REPOSITORY_NODE, status=_status(0, 10.0))
        )
        bus.run_until_idle()  # round started, answer never arrives
        assert repo._round.awaiting == {0}
        assert repo.recover_from_stall()
        bus.run_until_idle()
        assert repo.finished
        assert 0 in repo.demoted
        assert not repo.restored

"""Failure injection: the off-loading protocol under loss and crashes.

The guarantee under test is *graceful termination*: whatever messages
are lost and whichever servers crash, the protocol must end (no hangs,
no exceptions), the surviving servers' allocations must stay
constraint-consistent, and the accounting must reflect reality.
"""

import numpy as np
import pytest

from repro.core.constraints import evaluate_constraints
from repro.network import FaultModel, MessageBus, run_distributed_policy
from repro.network.messages import Message, server_node
from repro.workload.generator import generate_workload
from repro.workload.params import WorkloadParams


@pytest.fixture(scope="module")
def constrained_model():
    params = WorkloadParams.small().with_(repository_capacity=25.0)
    return generate_workload(params, seed=11)


class TestFaultModel:
    def test_drop_probability_validated(self):
        with pytest.raises(ValueError, match="drop_probability"):
            FaultModel(drop_probability=1.5)

    def test_no_faults_drops_nothing(self):
        f = FaultModel()
        assert not f.should_drop(Message("a", "b"))
        assert f.dropped == 0

    def test_always_drop(self):
        f = FaultModel(drop_probability=1.0)
        assert f.should_drop(Message("a", "b"))
        assert f.dropped == 1

    def test_crashed_node_blackholed(self):
        f = FaultModel(crashed={"x"})
        assert f.should_drop(Message("a", "x"))
        assert f.should_drop(Message("x", "a"))
        assert not f.should_drop(Message("a", "b"))

    def test_crash_after_construction(self):
        f = FaultModel()
        f.crash("y")
        assert f.should_drop(Message("y", "z"))

    def test_seeded_reproducible(self):
        a = FaultModel(drop_probability=0.5, seed=3)
        b = FaultModel(drop_probability=0.5, seed=3)
        msgs = [Message("a", "b") for _ in range(50)]
        assert [a.should_drop(m) for m in msgs] == [
            b.should_drop(m) for m in msgs
        ]

    def test_bus_integration(self):
        bus = MessageBus(faults=FaultModel(drop_probability=1.0))
        got = []
        bus.register("x", got.append)
        bus.send(Message("a", "x"))
        bus.run_until_idle()
        assert got == []
        assert bus.stats.messages == 1  # sent is recorded, delivery lost


class TestCrashStop:
    def test_terminates_with_crashed_server(self, constrained_model):
        faults = FaultModel(crashed={server_node(1)})
        result = run_distributed_policy(constrained_model, faults=faults)
        # crashed server's pages were never allocated: everything remote
        m = constrained_model
        for j in m.pages_by_server[1]:
            assert not result.allocation.page_comp_marks(j).any()
        assert result.allocation.replicas[1] == set()

    def test_survivors_stay_consistent(self, constrained_model):
        faults = FaultModel(crashed={server_node(0)})
        result = run_distributed_policy(constrained_model, faults=faults)
        result.allocation.check_invariants()
        rep = evaluate_constraints(result.allocation)
        assert rep.storage_ok and rep.local_ok

    def test_all_servers_crashed(self, constrained_model):
        faults = FaultModel(
            crashed={
                server_node(i) for i in range(constrained_model.n_servers)
            }
        )
        result = run_distributed_policy(constrained_model, faults=faults)
        assert not result.allocation.comp_local.any()

    def test_coordinator_view_vs_global_truth(self, constrained_model):
        """The repository can believe Eq. 9 is restored while the global
        report disagrees — the crashed server's remote traffic is
        invisible to the coordinator.  Both views must be reported
        honestly."""
        faults = FaultModel(crashed={server_node(1)})
        result = run_distributed_policy(constrained_model, faults=faults)
        rep = evaluate_constraints(result.allocation)
        # the crashed server's full traffic hits the repository
        assert not rep.repo_ok


class TestLossyLinks:
    @pytest.mark.parametrize("p_drop", [0.1, 0.3, 0.7])
    def test_terminates_under_loss(self, constrained_model, p_drop):
        faults = FaultModel(drop_probability=p_drop, seed=42)
        result = run_distributed_policy(constrained_model, faults=faults)
        result.allocation.check_invariants()
        rep = evaluate_constraints(result.allocation)
        assert rep.storage_ok and rep.local_ok

    def test_loss_never_improves_restoration(self, constrained_model):
        clean = run_distributed_policy(constrained_model)
        lossy = run_distributed_policy(
            constrained_model,
            faults=FaultModel(drop_probability=0.5, seed=1),
        )
        from repro.core.constraints import repository_load

        assert repository_load(lossy.allocation) >= repository_load(
            clean.allocation
        ) - 1e-9

    def test_zero_loss_identical_to_clean(self, constrained_model):
        clean = run_distributed_policy(constrained_model)
        faulted = run_distributed_policy(
            constrained_model, faults=FaultModel(drop_probability=0.0)
        )
        assert np.array_equal(
            clean.allocation.comp_local, faulted.allocation.comp_local
        )
        assert clean.allocation.replicas == faulted.allocation.replicas

    def test_dropped_accounted(self, constrained_model):
        faults = FaultModel(drop_probability=0.5, seed=9)
        run_distributed_policy(constrained_model, faults=faults)
        assert faults.dropped > 0

"""Tests for repro.analysis.compare — allocation diffs."""

import pytest

from repro.analysis.compare import diff_allocations
from repro.baselines.local import LocalPolicy
from repro.baselines.remote import RemotePolicy
from repro.core.partition import partition_all


class TestDiffAllocations:
    def test_identical_is_noop(self, micro_model):
        a = partition_all(micro_model)
        d = diff_allocations(a, a.copy())
        assert d.is_noop
        assert d.total_bytes_added == 0
        assert "+0/-0" in d.summary()

    def test_remote_to_local(self, micro_model):
        d = diff_allocations(
            RemotePolicy().allocate(micro_model),
            LocalPolicy().allocate(micro_model),
        )
        assert d.comp_flips_to_local == 8
        assert d.comp_flips_to_remote == 0
        assert d.opt_flips_to_local == 2
        # every referenced object becomes a replica somewhere
        assert d.total_replicas_added == 4 + 5
        assert sum(s.bytes_removed for s in d.servers) == 0

    def test_local_to_remote(self, micro_model):
        d = diff_allocations(
            LocalPolicy().allocate(micro_model),
            RemotePolicy().allocate(micro_model),
        )
        assert d.comp_flips_to_remote == 8
        assert d.total_replicas_removed == 9
        assert d.total_bytes_added == 0

    def test_bytes_accounting(self, micro_model):
        d = diff_allocations(
            RemotePolicy().allocate(micro_model),
            LocalPolicy().allocate(micro_model),
        )
        # S0 stores {0,1,2,4} = 650 B ; S1 stores {0,1,2,3,5} = 1060 B
        by_server = {s.server_id: s for s in d.servers}
        assert by_server[0].bytes_added == pytest.approx(650.0)
        assert by_server[1].bytes_added == pytest.approx(1060.0)
        assert d.total_bytes_added == pytest.approx(1710.0)

    def test_churn_is_directional(self, micro_model):
        a = RemotePolicy().allocate(micro_model)
        b = LocalPolicy().allocate(micro_model)
        forward = diff_allocations(a, b)
        backward = diff_allocations(b, a)
        assert forward.total_replicas_added == backward.total_replicas_removed
        assert forward.total_bytes_added == pytest.approx(
            sum(s.bytes_removed for s in backward.servers)
        )

    def test_structural_mismatch_rejected(self, micro_model, tiny_model):
        with pytest.raises(ValueError, match="structurally"):
            diff_allocations(
                partition_all(micro_model), partition_all(tiny_model)
            )

    def test_drifted_model_ok(self, micro_model):
        """Frequency drift (same structure) is comparable — the E1 case."""
        from repro.dynamic.drift import replace_frequencies

        drifted = replace_frequencies(
            micro_model, micro_model.frequencies * 2.0
        )
        d = diff_allocations(
            partition_all(micro_model), partition_all(drifted)
        )
        assert d.is_noop  # unconstrained PARTITION is frequency-blind

"""Tests for repro.analysis.describe — allocation reporting."""

import numpy as np
import pytest

from repro.analysis import describe_allocation
from repro.baselines.local import LocalPolicy
from repro.baselines.remote import RemotePolicy
from repro.core.constraints import (
    local_processing_load,
    repository_load_by_server,
    storage_used,
)
from repro.core.cost_model import CostModel
from repro.core.partition import partition_all


class TestServerReports:
    def test_replica_counts(self, micro_model):
        report = describe_allocation(LocalPolicy().allocate(micro_model))
        assert report.servers[0].n_replicas == 4  # {0,1,2,4}
        assert report.servers[1].n_replicas == 5

    def test_loads_match_constraints(self, micro_model):
        alloc = partition_all(micro_model)
        report = describe_allocation(alloc)
        loads = local_processing_load(alloc)
        shares = repository_load_by_server(alloc)
        used = storage_used(alloc)
        for i, srv in enumerate(report.servers):
            assert srv.processing_load == pytest.approx(loads[i])
            assert srv.repo_share == pytest.approx(shares[i])
            assert srv.storage_used == pytest.approx(used[i])

    def test_local_share(self, micro_model):
        remote = describe_allocation(RemotePolicy().allocate(micro_model))
        local = describe_allocation(LocalPolicy().allocate(micro_model))
        assert all(s.local_download_share == 0.0 for s in remote.servers)
        assert all(s.local_download_share == 1.0 for s in local.servers)

    def test_unmarked_counted(self, micro_model):
        alloc = partition_all(micro_model)
        alloc.store(0, 3)  # stored but unmarked
        report = describe_allocation(alloc)
        assert report.servers[0].unmarked_replicas == 1

    def test_storage_utilisation(self):
        from tests.conftest import build_micro_model

        m = build_micro_model(storage=(1900.0, 2920.0))
        report = describe_allocation(LocalPolicy().allocate(m))
        assert report.servers[0].storage_utilisation == pytest.approx(950 / 1900)
        assert report.servers[1].storage_utilisation == pytest.approx(
            1460 / 2920
        )

    def test_infinite_capacity_zero_utilisation(self, micro_model):
        report = describe_allocation(LocalPolicy().allocate(micro_model))
        assert report.servers[0].storage_utilisation == 0.0


class TestBalance:
    def test_partition_balances_better_than_extremes(self, small_model):
        ours = describe_allocation(partition_all(small_model))
        local = describe_allocation(LocalPolicy().allocate(small_model))
        assert ours.balance.mean < local.balance.mean

    def test_remote_policy_mostly_remote_bound(self, small_model):
        report = describe_allocation(RemotePolicy().allocate(small_model))
        assert report.balance.fraction_local_bound < 0.05

    def test_imbalance_in_unit_interval(self, small_model):
        report = describe_allocation(partition_all(small_model))
        assert 0.0 <= report.balance.median <= 1.0
        assert 0.0 <= report.balance.p90 <= 1.0


class TestGlobal:
    def test_objective_matches_cost_model(self, micro_model):
        alloc = partition_all(micro_model)
        report = describe_allocation(alloc)
        assert report.objective == pytest.approx(CostModel(micro_model).D(alloc))

    def test_total_bytes(self, micro_model):
        alloc = partition_all(micro_model)
        report = describe_allocation(alloc)
        assert report.total_replica_bytes == pytest.approx(
            alloc.stored_bytes_all().sum()
        )

    def test_render(self, micro_model):
        out = describe_allocation(partition_all(micro_model)).render()
        assert "Allocation summary" in out
        assert "imbalance" in out

"""Unit tests for the repro.obs metrics registry primitives."""

import pytest

from repro.obs.registry import (
    MetricsRegistry,
    NullRegistry,
    SpanRecord,
    get_registry,
    metrics_enabled,
    set_registry,
    use_registry,
)


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        reg = MetricsRegistry()
        reg.count("a")
        reg.count("a", 2.5)
        reg.count("b", 0.0)
        assert reg.counters == {"a": 3.5, "b": 0.0}

    def test_gauges_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("x", 1.0)
        reg.gauge("x", -2.0)
        assert reg.gauges == {"x": -2.0}

    def test_span_records_wall_clock(self):
        reg = MetricsRegistry()
        with reg.span("work") as rec:
            assert rec.path == "work"
        assert len(reg.spans) == 1
        assert reg.spans[0].seconds >= 0.0
        assert reg.span_seconds("work") == reg.spans[0].seconds

    def test_spans_nest_and_record_paths(self):
        reg = MetricsRegistry()
        with reg.span("outer"):
            with reg.span("inner"):
                pass
            with reg.span("inner"):
                pass
        # inner spans complete (and append) before the outer one
        assert [r.path for r in reg.spans] == [
            "outer/inner",
            "outer/inner",
            "outer",
        ]
        phase = reg.phase_seconds()
        assert set(phase) == {"outer", "outer/inner"}
        assert phase["outer/inner"] == pytest.approx(
            reg.span_seconds("outer/inner")
        )
        # the outer span contains both inner ones
        assert phase["outer"] >= phase["outer/inner"]

    def test_span_pops_stack_on_exception(self):
        reg = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with reg.span("boom"):
                raise RuntimeError("x")
        # the failed span still closed; the next one nests at top level
        with reg.span("after"):
            pass
        assert reg.spans[-1].path == "after"

    def test_timer_is_span_alias(self):
        reg = MetricsRegistry()
        with reg.timer("t"):
            pass
        assert reg.spans[0].path == "t"

    def test_snapshot_is_json_ready(self):
        import json

        reg = MetricsRegistry()
        reg.count("c", 2)
        reg.gauge("g", 1.5)
        with reg.span("s"):
            pass
        snap = reg.snapshot()
        round_trip = json.loads(json.dumps(snap))
        assert round_trip["counters"] == {"c": 2.0}
        assert round_trip["gauges"] == {"g": 1.5}
        assert round_trip["spans"][0]["path"] == "s"
        assert "s" in round_trip["phase_seconds"]

    def test_clear_forgets_everything(self):
        reg = MetricsRegistry()
        reg.count("c")
        reg.gauge("g", 1.0)
        with reg.span("s"):
            pass
        reg.clear()
        assert reg.counters == {} and reg.gauges == {} and reg.spans == []


class TestMergeSnapshot:
    def test_counters_add_and_spans_append(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.count("units", 2)
        worker.count("units", 3)
        worker.count("evictions", 1)
        with worker.span("experiment-prepare"):
            pass
        parent.merge_snapshot(worker.snapshot())
        assert parent.counters == {"units": 5.0, "evictions": 1.0}
        assert [r.path for r in parent.spans] == ["experiment-prepare"]
        assert parent.phase_seconds()["experiment-prepare"] == pytest.approx(
            worker.span_seconds("experiment-prepare")
        )

    def test_gauges_last_write_wins_in_merge_order(self):
        parent = MetricsRegistry()
        parent.gauge("simulation.p95_page_time", 1.0)
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("simulation.p95_page_time", 2.0)
        b.gauge("simulation.p95_page_time", 3.0)
        parent.merge_snapshot(a.snapshot())
        parent.merge_snapshot(b.snapshot())
        assert parent.gauges["simulation.p95_page_time"] == 3.0

    def test_merge_equals_inline_recording(self):
        """Merging worker snapshots reproduces what one registry would
        have recorded in-process (the executor's contract)."""
        inline = MetricsRegistry()
        for _ in range(4):
            inline.count("work", 2)
            inline.gauge("last", 7.0)
        merged = MetricsRegistry()
        for _ in range(2):
            worker = MetricsRegistry()
            for _ in range(2):
                worker.count("work", 2)
                worker.gauge("last", 7.0)
            merged.merge_snapshot(worker.snapshot())
        assert merged.counters == inline.counters
        assert merged.gauges == inline.gauges

    def test_null_registry_merge_is_noop(self):
        null = NullRegistry()
        null.merge_snapshot({"counters": {"a": 1.0}})
        assert null.counters == {}


class TestNullRegistry:
    def test_everything_is_noop(self):
        reg = NullRegistry()
        reg.count("a", 5)
        reg.gauge("b", 1.0)
        with reg.span("s") as rec:
            assert isinstance(rec, SpanRecord)
        with reg.timer("t"):
            pass
        assert reg.counters == {}
        assert reg.gauges == {}
        assert reg.spans == []
        assert not reg.enabled

    def test_null_span_is_reentrant(self):
        reg = NullRegistry()
        with reg.span("outer"):
            with reg.span("inner"):
                pass
        assert reg.spans == []


class TestActiveRegistry:
    def test_default_is_disabled(self):
        assert not metrics_enabled()
        assert not get_registry().enabled

    def test_use_registry_swaps_and_restores(self):
        before = get_registry()
        reg = MetricsRegistry()
        with use_registry(reg) as installed:
            assert installed is reg
            assert get_registry() is reg
            assert metrics_enabled()
        assert get_registry() is before
        assert not metrics_enabled()

    def test_use_registry_restores_on_exception(self):
        before = get_registry()
        with pytest.raises(ValueError):
            with use_registry(MetricsRegistry()):
                raise ValueError("x")
        assert get_registry() is before

    def test_set_registry_none_disables(self):
        reg = MetricsRegistry()
        set_registry(reg)
        try:
            assert metrics_enabled()
        finally:
            set_registry(None)
        assert not metrics_enabled()
        assert isinstance(get_registry(), NullRegistry)

    def test_nested_use_registry(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with use_registry(outer):
            with use_registry(inner):
                get_registry().count("c")
            assert get_registry() is outer
        assert inner.counters == {"c": 1.0}
        assert outer.counters == {}


class TestInstrumentedCallSites:
    """The pipeline reports into the active registry, and only then."""

    def test_policy_reports_when_enabled(self, tiny_model):
        from repro.core.policy import RepositoryReplicationPolicy

        reg = MetricsRegistry()
        with use_registry(reg):
            RepositoryReplicationPolicy().run(tiny_model)
        assert reg.counters["policy.runs"] == 1.0
        assert reg.counters["partition.runs"] == 1.0
        paths = {r.path for r in reg.spans}
        assert "policy" in paths
        assert "policy/partition/partition-all" in paths

    def test_policy_result_identical_with_metrics(self, tiny_model):
        """Instrumentation must not perturb the numerical results."""
        from repro.core.policy import RepositoryReplicationPolicy

        plain = RepositoryReplicationPolicy().run(tiny_model)
        with use_registry(MetricsRegistry()):
            observed = RepositoryReplicationPolicy().run(tiny_model)
        assert observed.objective == plain.objective
        assert observed.allocation == plain.allocation
        # phase_seconds is the only divergence: populated only when
        # a recording registry was active
        assert plain.phase_seconds == {}
        assert set(observed.phase_seconds) >= {"partition"}

    def test_disabled_by_default_records_nothing(self, tiny_model):
        from repro.core.policy import RepositoryReplicationPolicy

        result = RepositoryReplicationPolicy().run(tiny_model)
        assert result.phase_seconds == {}
        assert not get_registry().enabled

"""Tests for run manifests: schema, path resolution, CLI/env wiring."""

import json
import math
import os
import pathlib

import pytest

from repro import obs
from repro.obs.manifest import (
    ENV_VAR,
    SCHEMA,
    build_manifest,
    git_revision,
    policy_section,
    resolve_manifest_path,
    simulation_section,
    write_manifest,
)
from repro.obs.registry import MetricsRegistry


@pytest.fixture
def policy_result(tiny_model):
    """One constrained policy run (storage restoration triggers)."""
    from repro.core.partition import partition_all
    from repro.core.policy import RepositoryReplicationPolicy
    from repro.experiments.scaling import (
        clone_with_capacities,
        storage_capacities_for_fraction,
    )

    ref = partition_all(tiny_model)
    caps = storage_capacities_for_fraction(tiny_model, ref, 0.5)
    clone = clone_with_capacities(tiny_model, storage=caps)
    return RepositoryReplicationPolicy().run(clone)


class TestBuildManifest:
    def test_required_keys_and_schema(self):
        reg = MetricsRegistry()
        reg.count("c")
        reg.gauge("g", 2.0)
        with reg.span("s"):
            pass
        doc = build_manifest(reg, run={"seed": 7})
        assert doc["schema"] == SCHEMA
        assert doc["run"] == {"seed": 7}
        assert doc["counters"] == {"c": 1.0}
        assert doc["gauges"] == {"g": 2.0}
        assert doc["phases"][0]["path"] == "s"
        assert "s" in doc["phase_seconds"]
        # ISO-8601 UTC timestamp
        assert doc["created_at"].endswith("Z")
        assert "policy" not in doc and "simulation" not in doc

    def test_git_sha_matches_checkout(self):
        doc = build_manifest(MetricsRegistry())
        sha = git_revision(cwd=pathlib.Path(__file__).parent)
        assert doc["git_sha"] == sha
        if sha is not None:
            assert len(sha) == 40

    def test_json_serialisable(self, policy_result):
        reg = MetricsRegistry()
        doc = build_manifest(reg, policy=policy_result)
        json.dumps(doc)  # must not raise


class TestSections:
    def test_policy_section(self, policy_result):
        sec = policy_section(policy_result)
        assert sec["objective"] == policy_result.objective
        assert sec["feasible"] == policy_result.feasible
        assert sec["phases_run"] == list(policy_result.phases_run)
        assert set(sec["constraints"]) == {"storage_ok", "local_ok", "repo_ok"}
        assert (
            sec["storage_restoration"]["evictions"]
            == policy_result.storage_stats.evictions
        )
        assert (
            sec["processing_restoration"]["switches"]
            == policy_result.processing_stats.switches
        )
        assert sec["offload"] is None  # repository unconstrained

    def test_simulation_section(self, small_model, small_trace):
        from repro.core.partition import partition_all
        from repro.simulation.engine import simulate_allocation

        sim = simulate_allocation(partition_all(small_model), small_trace)
        sec = simulation_section(sim)
        assert sec["n_requests"] == sim.n_requests
        assert sec["mean_page_time"] == sim.mean_page_time
        assert set(sec["percentiles"]) == {"p50", "p90", "p95", "p99"}
        assert (
            sec["percentiles"]["p50"]
            <= sec["percentiles"]["p99"]
        )
        assert 0.0 <= sec["bottleneck_fraction_remote"] <= 1.0


class TestPathsAndWriting:
    def test_json_suffix_is_file(self, tmp_path):
        spec = tmp_path / "manifest.json"
        assert resolve_manifest_path(spec) == spec

    def test_directory_gets_stamped_name(self, tmp_path):
        path = resolve_manifest_path(tmp_path, name="policy")
        assert path.parent == tmp_path
        assert path.name.startswith("policy-")
        assert path.suffix == ".json"
        assert str(os.getpid()) in path.stem

    def test_write_creates_parents(self, tmp_path):
        target = tmp_path / "a" / "b" / "m.json"
        out = write_manifest(target, {"schema": SCHEMA})
        assert out == target
        assert json.loads(target.read_text())["schema"] == SCHEMA

    def test_worker_suffix_on_explicit_json(self, tmp_path, monkeypatch):
        """Inside an executor worker, explicit .json targets gain a
        -w<pid> suffix so concurrent workers never clobber each other."""
        from repro.obs.manifest import WORKER_ENV_VAR

        monkeypatch.setenv(WORKER_ENV_VAR, "4321")
        spec = tmp_path / "manifests" / "fig1.json"
        path = resolve_manifest_path(spec)
        assert path.parent == spec.parent
        assert path.name == "fig1-w4321.json"

    def test_worker_suffix_absent_outside_workers(self, tmp_path, monkeypatch):
        from repro.obs.manifest import WORKER_ENV_VAR

        monkeypatch.delenv(WORKER_ENV_VAR, raising=False)
        spec = tmp_path / "fig1.json"
        assert resolve_manifest_path(spec) == spec


class TestCollect:
    def test_collect_writes_manifest(self, tmp_path, tiny_model):
        from repro.core.policy import RepositoryReplicationPolicy

        target = tmp_path / "run.json"
        holder = {}
        with obs.collect(
            run={"entry": "test"}, out=target, policy=holder
        ) as reg:
            holder["result"] = RepositoryReplicationPolicy().run(tiny_model)
        doc = json.loads(target.read_text())
        assert doc["schema"] == SCHEMA
        assert doc["run"] == {"entry": "test"}
        assert doc["counters"]["policy.runs"] == 1.0
        assert doc["policy"]["feasible"] is True
        assert reg.counters["policy.runs"] == 1.0

    def test_collect_without_out_writes_nothing(self, tmp_path):
        with obs.collect() as reg:
            reg.count("c")
        assert list(tmp_path.iterdir()) == []

    def test_env_metrics_path(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert obs.env_metrics_path() is None
        monkeypatch.setenv(ENV_VAR, "  ")
        assert obs.env_metrics_path() is None
        monkeypatch.setenv(ENV_VAR, "out/")
        assert obs.env_metrics_path() == "out/"


class TestEndToEndWiring:
    def test_cli_metrics_out_flag(self, tmp_path, capsys):
        from repro.cli import main

        target = tmp_path / "demo.json"
        rc = main(
            [
                "--scale",
                "tiny",
                "--requests",
                "100",
                "--runs",
                "1",
                "--metrics-out",
                str(target),
                "demo",
            ]
        )
        assert rc == 0
        assert capsys.readouterr().out  # the table still prints
        doc = json.loads(target.read_text())
        assert doc["schema"] == SCHEMA
        assert doc["run"]["command"] == "demo"
        assert doc["run"]["kernel"] == "batched"
        assert doc["counters"]["policy.runs"] >= 1.0
        assert doc["counters"]["simulation.replays"] >= 1.0
        assert any(p["path"].startswith("policy") for p in doc["phases"])

    def test_env_var_drives_bare_policy_run(
        self, tmp_path, monkeypatch, tiny_model
    ):
        """REPRO_METRICS alone makes Policy.run emit its own manifest."""
        from repro.core.policy import RepositoryReplicationPolicy

        monkeypatch.setenv(ENV_VAR, str(tmp_path))
        result = RepositoryReplicationPolicy().run(tiny_model)
        assert result.feasible
        files = sorted(tmp_path.glob("policy-*.json"))
        assert len(files) == 1
        doc = json.loads(files[0].read_text())
        assert doc["run"]["entry"] == "RepositoryReplicationPolicy.run"
        assert doc["policy"]["objective"] == result.objective
        assert doc["counters"]["policy.runs"] == 1.0

    def test_env_var_ignored_when_registry_active(
        self, tmp_path, monkeypatch, tiny_model
    ):
        """An explicitly installed registry wins over the env var —
        no nested per-run manifests are written."""
        from repro.core.policy import RepositoryReplicationPolicy

        monkeypatch.setenv(ENV_VAR, str(tmp_path))
        with obs.use_registry(MetricsRegistry()) as reg:
            RepositoryReplicationPolicy().run(tiny_model)
        assert list(tmp_path.iterdir()) == []
        assert reg.counters["policy.runs"] == 1.0

    def test_metrics_do_not_change_constrained_results(self, tiny_model):
        """Same inputs, with and without metrics: identical allocations."""
        from repro.core.partition import partition_all
        from repro.core.policy import RepositoryReplicationPolicy
        from repro.experiments.scaling import (
            clone_with_capacities,
            storage_capacities_for_fraction,
            processing_capacities_for_fraction,
        )

        ref = partition_all(tiny_model)
        clone = clone_with_capacities(
            tiny_model,
            storage=storage_capacities_for_fraction(tiny_model, ref, 0.5),
            processing=processing_capacities_for_fraction(tiny_model, 0.7),
        )
        plain = RepositoryReplicationPolicy().run(clone)
        with obs.use_registry(MetricsRegistry()):
            observed = RepositoryReplicationPolicy().run(clone)
        assert observed.objective == plain.objective
        assert observed.allocation == plain.allocation
        assert (
            observed.storage_stats.evictions == plain.storage_stats.evictions
        )
        assert (
            observed.processing_stats.switches
            == plain.processing_stats.switches
        )

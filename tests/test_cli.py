"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--scale", "huge", "demo"])

    def test_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.scale == "small"
        assert args.runs == 3

    def test_dynamic_options(self):
        args = build_parser().parse_args(
            ["dynamic", "--epochs", "3", "--drift-every", "1"]
        )
        assert args.epochs == 3
        assert args.drift_every == 1


class TestCommands:
    def test_demo(self, capsys):
        rc = main(["--scale", "tiny", "--requests", "100", "demo"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "proposed" in out and "remote" in out

    def test_table1(self, capsys):
        rc = main(["--scale", "tiny", "table1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Table 1" in out

    def test_fig1(self, capsys):
        rc = main(
            ["--scale", "tiny", "--runs", "1", "--requests", "100", "fig1"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "Figure 1" in out

    def test_fig2(self, capsys):
        rc = main(
            ["--scale", "tiny", "--runs", "1", "--requests", "100", "fig2"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "Figure 2" in out

    def test_fig3(self, capsys):
        rc = main(
            ["--scale", "tiny", "--runs", "1", "--requests", "100", "fig3"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "Figure 3" in out

    def test_claims(self, capsys):
        rc = main(
            ["--scale", "tiny", "--runs", "1", "--requests", "100", "claims"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "headline claims" in out

    def test_dynamic(self, capsys):
        rc = main(["--scale", "tiny", "dynamic", "--epochs", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Extension E1" in out


    def test_analyze(self, capsys):
        rc = main(["--scale", "tiny", "analyze"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Allocation summary" in out

    def test_linkspeed(self, capsys):
        rc = main(
            ["--scale", "tiny", "--runs", "1", "--requests", "80", "linkspeed"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "Extension E2" in out

    def test_ksweep(self, capsys):
        rc = main(
            [
                "--scale",
                "tiny",
                "--runs",
                "1",
                "--requests",
                "80",
                "ksweep",
                "--max-streams",
                "3",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "Extension E4" in out

    def test_streams_flag_runs_mesh_analyze(self, capsys):
        rc = main(["--scale", "tiny", "--streams", "3", "analyze"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Allocation summary" in out

    def test_streams_flag_rejects_bad_values(self, capsys):
        with pytest.raises(SystemExit):
            main(["--scale", "tiny", "--streams", "0", "analyze"])
        assert "--streams" in capsys.readouterr().err

    def test_streams_flag_rejects_sharded_kernel(self, capsys):
        with pytest.raises(SystemExit):
            main(
                [
                    "--scale",
                    "tiny",
                    "--streams",
                    "3",
                    "--kernel",
                    "sharded",
                    "analyze",
                ]
            )
        assert "sharded" in capsys.readouterr().err

"""Tests for repro.workload.trace — request trace sampling."""

import numpy as np
import pytest

from repro.workload.trace import generate_trace
from repro.workload.params import WorkloadParams


class TestShape:
    def test_requests_per_server(self, small_model, small_params):
        tr = generate_trace(small_model, small_params, seed=1)
        assert tr.n_requests == small_params.requests_per_server * small_model.n_servers
        for i in range(small_model.n_servers):
            assert len(tr.requests_for_server(i)) == small_params.requests_per_server

    def test_override_requests(self, small_model, small_params):
        tr = generate_trace(
            small_model, small_params, seed=1, requests_per_server=50
        )
        assert tr.n_requests == 50 * small_model.n_servers

    def test_validates(self, small_model, small_params):
        generate_trace(small_model, small_params, seed=2).validate()

    def test_pages_hosted_by_server(self, small_trace):
        m = small_trace.model
        assert np.array_equal(
            m.page_server[small_trace.page_of_request],
            small_trace.server_of_request,
        )


class TestPopularity:
    def test_hot_pages_dominate(self, small_model, small_params):
        tr = generate_trace(small_model, small_params, seed=3)
        counts = np.bincount(tr.page_of_request, minlength=small_model.n_pages)
        # correlation between frequency and realised count must be strong
        f = small_model.frequencies
        corr = np.corrcoef(f, counts)[0, 1]
        assert corr > 0.9

    def test_hot_traffic_share(self, small_model, small_params):
        tr = generate_trace(small_model, small_params, seed=3)
        counts = np.bincount(tr.page_of_request, minlength=small_model.n_pages)
        for i in range(small_model.n_servers):
            ids = np.asarray(small_model.pages_by_server[i], dtype=np.intp)
            n_hot = int(np.ceil(0.10 * len(ids)))
            f = small_model.frequencies[ids]
            hot_ids = ids[np.argsort(f)[::-1][:n_hot]]
            share = counts[hot_ids].sum() / counts[ids].sum()
            assert share == pytest.approx(0.60, abs=0.06)


class TestOptionalDownloads:
    def test_interest_rate(self, small_model, small_params):
        tr = generate_trace(small_model, small_params, seed=4)
        n_links = np.diff(small_model.opt_indptr)
        eligible = int((n_links[tr.page_of_request] > 0).sum())
        interested = len(np.unique(tr.opt_owner))
        if eligible > 50:
            assert interested / eligible == pytest.approx(
                small_params.optional_interest_prob, abs=0.05
            )

    def test_requested_fraction(self, small_model, small_params):
        tr = generate_trace(small_model, small_params, seed=4)
        if tr.n_optional_downloads == 0:
            pytest.skip("no optional downloads sampled")
        n_links = np.diff(small_model.opt_indptr)
        per_owner = {}
        for owner in tr.opt_owner:
            per_owner[int(owner)] = per_owner.get(int(owner), 0) + 1
        for owner, cnt in per_owner.items():
            links = int(n_links[tr.page_of_request[owner]])
            expected = max(1, round(small_params.optional_request_fraction * links))
            assert cnt == expected

    def test_optional_entries_belong_to_owner_page(self, small_model, small_params):
        tr = generate_trace(small_model, small_params, seed=5)
        if tr.n_optional_downloads:
            owner_pages = tr.page_of_request[tr.opt_owner]
            assert np.array_equal(
                small_model.opt_pages[tr.opt_entries], owner_pages
            )

    def test_no_duplicate_optionals_per_request(self, small_model, small_params):
        tr = generate_trace(small_model, small_params, seed=6)
        seen = set()
        for owner, entry in zip(tr.opt_owner, tr.opt_entries):
            key = (int(owner), int(entry))
            assert key not in seen
            seen.add(key)


class TestDeterminism:
    def test_same_seed_same_trace(self, small_model, small_params):
        a = generate_trace(small_model, small_params, seed=8)
        b = generate_trace(small_model, small_params, seed=8)
        assert np.array_equal(a.page_of_request, b.page_of_request)
        assert np.array_equal(a.opt_entries, b.opt_entries)

    def test_different_seeds_differ(self, small_model, small_params):
        a = generate_trace(small_model, small_params, seed=8)
        b = generate_trace(small_model, small_params, seed=9)
        assert not np.array_equal(a.page_of_request, b.page_of_request)

    def test_clone_same_trace(self, small_model, small_params):
        """A capacity clone yields the identical trace (pairing)."""
        from repro.experiments.scaling import clone_with_capacities

        clone = clone_with_capacities(small_model, storage=1e9)
        a = generate_trace(small_model, small_params, seed=8)
        b = generate_trace(clone, small_params, seed=8)
        assert np.array_equal(a.page_of_request, b.page_of_request)
        assert np.array_equal(a.opt_entries, b.opt_entries)
        assert b.model is clone

"""Tests for repro.workload.clf — Common Log Format import."""

import numpy as np
import pytest

from repro.workload.clf import parse_clf


def clf(host, path, status=200):
    return (
        f'{host} - - [05/Jul/2026:10:00:00 +0000] '
        f'"GET {path} HTTP/1.0" {status} 1234'
    )


class TestParseClf:
    def test_page_requests(self, micro_model):
        lines = [clf("1.2.3.4", "/page/0"), clf("1.2.3.4", "/page/1")]
        result = parse_clf(lines, micro_model)
        assert result.page_requests == 2
        assert result.trace.page_of_request.tolist() == [0, 1]
        assert result.trace.server_of_request.tolist() == [0, 0]

    def test_w_alias(self, micro_model):
        result = parse_clf([clf("h", "/w/2")], micro_model)
        assert result.trace.page_of_request.tolist() == [2]

    def test_optional_attributed_to_last_page(self, micro_model):
        # page 0's optional object is 4
        lines = [clf("h", "/page/0"), clf("h", "/mo/4.bin")]
        result = parse_clf(lines, micro_model)
        assert result.optional_downloads == 1
        assert result.trace.opt_owner.tolist() == [0]
        result.trace.validate()

    def test_optional_per_host_attribution(self, micro_model):
        lines = [
            clf("alice", "/page/0"),
            clf("bob", "/page/2"),
            clf("alice", "/mo/4.bin"),   # page 0's optional
            clf("bob", "/mo/5.bin"),     # page 2's optional
        ]
        result = parse_clf(lines, micro_model)
        assert result.optional_downloads == 2
        owners = result.trace.page_of_request[result.trace.opt_owner]
        assert sorted(owners.tolist()) == [0, 2]

    def test_orphan_optional_counted(self, micro_model):
        result = parse_clf([clf("h", "/mo/4.bin")], micro_model)
        assert result.orphan_optionals == 1
        assert result.optional_downloads == 0

    def test_compulsory_mo_not_a_separate_download(self, micro_model):
        # object 0 is compulsory for page 0: rides the pipeline, ignored
        lines = [clf("h", "/page/0"), clf("h", "/mo/0.bin")]
        result = parse_clf(lines, micro_model)
        assert result.optional_downloads == 0
        assert result.orphan_optionals == 1

    def test_malformed_lines_skipped(self, micro_model):
        result = parse_clf(
            ["garbage", clf("h", "/page/0"), "also garbage"], micro_model
        )
        assert result.malformed_lines == 2
        assert result.page_requests == 1

    def test_non_success_skipped(self, micro_model):
        result = parse_clf(
            [clf("h", "/page/0", status=404), clf("h", "/page/0")], micro_model
        )
        assert result.non_success == 1
        assert result.page_requests == 1

    def test_unknown_path_counted(self, micro_model):
        result = parse_clf([clf("h", "/favicon.ico")], micro_model)
        assert result.unresolved_paths == 1

    def test_out_of_range_page(self, micro_model):
        result = parse_clf([clf("h", "/page/99")], micro_model)
        assert result.unresolved_paths == 1
        assert result.page_requests == 0

    def test_custom_resolver(self, micro_model):
        def resolver(path):
            return 3 if path == "/news/today.html" else None

        result = parse_clf(
            [clf("h", "/news/today.html")], micro_model, page_resolver=resolver
        )
        assert result.trace.page_of_request.tolist() == [3]

    def test_empty_input(self, micro_model):
        result = parse_clf([], micro_model)
        assert result.trace.n_requests == 0

    def test_parsed_trace_simulates(self, micro_model):
        from repro.core.partition import partition_all
        from repro.simulation.engine import simulate_allocation

        lines = [clf("h", f"/page/{j % 4}") for j in range(40)]
        lines.append(clf("h", "/mo/5.bin"))  # page 3 was last; not its opt
        result = parse_clf(lines, micro_model)
        sim = simulate_allocation(
            partition_all(micro_model), result.trace, seed=2
        )
        assert sim.n_requests == 40

    def test_estimator_consumes_parsed_trace(self, micro_model):
        from repro.dynamic.estimator import estimate_frequencies

        lines = [clf("h", "/page/0")] * 30 + [clf("h", "/page/1")] * 10
        result = parse_clf(lines, micro_model)
        est = estimate_frequencies(result.trace, observation_window=10.0)
        assert est[0] > est[1] > 0

"""Tests for repro.workload.popularity — hot/cold and Zipf models."""

import numpy as np
import pytest

from repro.workload.popularity import hot_cold_frequencies, zipf_frequencies


class TestHotCold:
    def test_sums_to_total(self):
        f, _ = hot_cold_frequencies(100, 5.0)
        assert f.sum() == pytest.approx(5.0)

    def test_hot_share(self):
        f, hot = hot_cold_frequencies(100, 10.0, 0.10, 0.60)
        assert hot.sum() == 10
        assert f[hot].sum() == pytest.approx(6.0)
        assert f[~hot].sum() == pytest.approx(4.0)

    def test_hot_pages_hotter(self):
        f, hot = hot_cold_frequencies(100, 10.0)
        assert f[hot].min() > f[~hot].max()

    def test_deterministic_layout_without_rng(self):
        f, hot = hot_cold_frequencies(50, 1.0)
        assert hot[:5].all() and not hot[5:].any()

    def test_random_layout_with_rng(self):
        _, hot1 = hot_cold_frequencies(200, 1.0, rng=np.random.default_rng(1))
        _, hot2 = hot_cold_frequencies(200, 1.0, rng=np.random.default_rng(2))
        assert hot1.sum() == hot2.sum() == 20
        assert not np.array_equal(hot1, hot2)

    def test_ceil_of_hot_count(self):
        _, hot = hot_cold_frequencies(15, 1.0, hot_fraction=0.10)
        assert hot.sum() == 2  # ceil(1.5)

    def test_single_page(self):
        f, _ = hot_cold_frequencies(1, 3.0)
        assert f.tolist() == [3.0]

    def test_all_hot(self):
        f, hot = hot_cold_frequencies(10, 5.0, hot_fraction=1.0)
        assert hot.all()
        assert np.allclose(f, 0.5)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            hot_cold_frequencies(0, 1.0)
        with pytest.raises(ValueError):
            hot_cold_frequencies(10, -1.0)
        with pytest.raises(ValueError):
            hot_cold_frequencies(10, 1.0, hot_fraction=1.5)


class TestZipf:
    def test_sums_to_total(self):
        f = zipf_frequencies(100, 7.0)
        assert f.sum() == pytest.approx(7.0)

    def test_monotone_without_rng(self):
        f = zipf_frequencies(50, 1.0)
        assert np.all(np.diff(f) <= 0)

    def test_exponent_effect(self):
        flat = zipf_frequencies(100, 1.0, exponent=0.1)
        steep = zipf_frequencies(100, 1.0, exponent=2.0)
        assert steep[0] > flat[0]

    def test_shuffled_with_rng(self):
        f = zipf_frequencies(100, 1.0, rng=np.random.default_rng(0))
        assert f.sum() == pytest.approx(1.0)
        assert not np.all(np.diff(f) <= 0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            zipf_frequencies(0, 1.0)
        with pytest.raises(ValueError):
            zipf_frequencies(10, 1.0, exponent=0.0)

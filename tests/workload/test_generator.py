"""Tests for repro.workload.generator — Table 1 synthesis."""

import numpy as np
import pytest

from repro.util.units import KB, kbps_to_bps
from repro.workload.generator import generate_workload
from repro.workload.params import WorkloadParams


@pytest.fixture(scope="module")
def model():
    return generate_workload(WorkloadParams.small(), seed=3)


@pytest.fixture(scope="module")
def params():
    return WorkloadParams.small()


class TestStructure:
    def test_server_count(self, model, params):
        assert model.n_servers == params.n_servers

    def test_page_counts_in_range(self, model, params):
        lo, hi = params.pages_per_server
        for i in range(model.n_servers):
            assert lo <= len(model.pages_by_server[i]) <= hi

    def test_object_count(self, model, params):
        assert model.n_objects == params.n_objects

    def test_compulsory_counts_in_range(self, model, params):
        lo, hi = params.compulsory_per_page
        counts = np.diff(model.comp_indptr)
        assert counts.min() >= lo
        assert counts.max() <= hi

    def test_optional_counts_in_range(self, model, params):
        lo, hi = params.optional_per_page
        counts = np.diff(model.opt_indptr)
        nz = counts[counts > 0]
        if len(nz):
            assert nz.min() >= lo
            assert nz.max() <= hi

    def test_optional_page_share(self, params):
        model = generate_workload(
            WorkloadParams.paper().with_(n_servers=2), seed=0
        )
        counts = np.diff(model.opt_indptr)
        share = (counts > 0).mean()
        assert share == pytest.approx(0.10, abs=0.04)

    def test_page_objects_from_server_pool(self, model, params):
        lo, hi = params.objects_per_server
        for i in range(model.n_servers):
            refs = model.objects_referenced_by_server(i)
            assert len(refs) <= hi  # can't reference more than the pool


class TestAttributes:
    def test_rates_in_range(self, model, params):
        lo, hi = params.local_rate_range_kbps
        assert model.server_rate.min() >= kbps_to_bps(lo)
        assert model.server_rate.max() <= kbps_to_bps(hi)
        lo, hi = params.repo_rate_range_kbps
        assert model.server_repo_rate.min() >= kbps_to_bps(lo)
        assert model.server_repo_rate.max() <= kbps_to_bps(hi)

    def test_overheads_in_range(self, model, params):
        lo, hi = params.local_overhead_range
        assert model.server_overhead.min() >= lo
        assert model.server_overhead.max() <= hi
        lo, hi = params.repo_overhead_range
        assert model.server_repo_overhead.min() >= lo
        assert model.server_repo_overhead.max() <= hi

    def test_frequencies_sum_per_server(self, model, params):
        for i in range(model.n_servers):
            ids = np.asarray(model.pages_by_server[i], dtype=np.intp)
            assert model.frequencies[ids].sum() == pytest.approx(
                params.page_rate_per_server
            )

    def test_optional_prob_set(self, model, params):
        for p in model.pages:
            if p.optional:
                assert p.optional_prob == pytest.approx(
                    params.optional_prob_per_object
                )
            else:
                assert p.optional_prob == 0.0

    def test_capacities_from_params(self, model, params):
        assert np.all(model.server_capacity == params.processing_capacity)


class TestDeterminism:
    def test_same_seed_same_model(self, params):
        a = generate_workload(params, seed=9)
        b = generate_workload(params, seed=9)
        assert a.n_pages == b.n_pages
        assert np.array_equal(a.sizes, b.sizes)
        assert np.array_equal(a.comp_objects, b.comp_objects)
        assert np.array_equal(a.frequencies, b.frequencies)
        assert np.array_equal(a.server_rate, b.server_rate)

    def test_different_seeds_differ(self, params):
        a = generate_workload(params, seed=1)
        b = generate_workload(params, seed=2)
        assert not np.array_equal(a.sizes, b.sizes)

    def test_object_catalogue_stable_across_shape_params(self, params):
        """Changing server count must not reshuffle object sizes."""
        a = generate_workload(params, seed=4)
        b = generate_workload(params.with_(n_servers=2), seed=4)
        assert np.array_equal(a.sizes, b.sizes)

    def test_default_params_is_paper(self):
        m = generate_workload(WorkloadParams.paper().with_(n_servers=1), seed=0)
        assert m.n_objects == 15_000

"""Tests for repro.workload.sizes — size mixtures."""

import numpy as np
import pytest

from repro.util.units import KB, MB
from repro.workload.sizes import (
    DEFAULT_HTML_SIZES,
    DEFAULT_MO_SIZES,
    SizeClass,
    SizeMixture,
)


class TestSizeClass:
    def test_valid(self):
        c = SizeClass(0.5, 10, 20)
        assert c.low == 10

    def test_bad_fraction(self):
        with pytest.raises(ValueError, match="fraction"):
            SizeClass(0.0, 10, 20)
        with pytest.raises(ValueError, match="fraction"):
            SizeClass(1.5, 10, 20)

    def test_bad_bounds(self):
        with pytest.raises(ValueError, match="low"):
            SizeClass(0.5, 20, 10)
        with pytest.raises(ValueError, match="low"):
            SizeClass(0.5, 0, 10)


class TestSizeMixture:
    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            SizeMixture(classes=(SizeClass(0.5, 1, 2),))

    def test_sample_within_bounds(self):
        rng = np.random.default_rng(0)
        sizes = DEFAULT_MO_SIZES.sample(rng, 2000)
        lo, hi = DEFAULT_MO_SIZES.bounds()
        assert sizes.min() >= lo
        assert sizes.max() <= hi

    def test_sample_count(self):
        rng = np.random.default_rng(0)
        assert len(DEFAULT_HTML_SIZES.sample(rng, 17)) == 17

    def test_sample_zero(self):
        rng = np.random.default_rng(0)
        assert len(DEFAULT_HTML_SIZES.sample(rng, 0)) == 0

    def test_sample_negative_raises(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="negative"):
            DEFAULT_HTML_SIZES.sample(rng, -1)

    def test_class_shares_approximate(self):
        rng = np.random.default_rng(1)
        sizes = DEFAULT_MO_SIZES.sample(rng, 30_000)
        small = ((sizes >= 40 * KB) & (sizes <= 300 * KB)).mean()
        medium = ((sizes > 300 * KB) & (sizes <= 800 * KB)).mean()
        large = (sizes > 800 * KB).mean()
        assert small == pytest.approx(0.30, abs=0.02)
        assert medium == pytest.approx(0.60, abs=0.02)
        assert large == pytest.approx(0.10, abs=0.02)

    def test_mean(self):
        # 0.35*(3.5K) + 0.60*(13K) + 0.05*(35K) in KB-units
        expected = (
            0.35 * (1 + 6) / 2 + 0.60 * (6 + 20) / 2 + 0.05 * (20 + 50) / 2
        ) * KB
        assert DEFAULT_HTML_SIZES.mean() == pytest.approx(expected)

    def test_reproducible(self):
        a = DEFAULT_MO_SIZES.sample(np.random.default_rng(3), 100)
        b = DEFAULT_MO_SIZES.sample(np.random.default_rng(3), 100)
        assert np.array_equal(a, b)

    def test_paper_bounds(self):
        assert DEFAULT_HTML_SIZES.bounds() == (1 * KB, 50 * KB)
        assert DEFAULT_MO_SIZES.bounds() == (40 * KB, 4 * MB)

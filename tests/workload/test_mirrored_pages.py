"""Tests for the mirrored (globally shared) page feature."""

import numpy as np
import pytest

from repro.workload.generator import generate_workload
from repro.workload.params import WorkloadParams


@pytest.fixture(scope="module")
def mirrored_model():
    params = WorkloadParams.small().with_(mirrored_page_fraction=0.2)
    return generate_workload(params, seed=4)


class TestMirroredPages:
    def test_default_no_mirroring(self, small_model):
        """With the default 0 fraction, no two servers share an exact
        compulsory set (overwhelmingly likely for random pools)."""
        seen: dict[tuple, int] = {}
        collisions = 0
        for p in small_model.pages:
            key = p.compulsory
            if key in seen and seen[key] != p.server:
                collisions += 1
            seen[key] = p.server
        assert collisions == 0

    def test_templates_copied_to_every_server(self, mirrored_model):
        m = mirrored_model
        # the first pages of each server follow the same templates
        first_sets = []
        for i in range(m.n_servers):
            j = m.pages_by_server[i][0]
            first_sets.append(
                (m.pages[j].compulsory, m.pages[j].optional, m.pages[j].html_size)
            )
        assert all(s == first_sets[0] for s in first_sets)

    def test_copies_are_distinct_pages(self, mirrored_model):
        """The paper: each copy is a different page (own id/frequency)."""
        m = mirrored_model
        ids = [m.pages_by_server[i][0] for i in range(m.n_servers)]
        assert len(set(ids)) == m.n_servers

    def test_mirrored_share_approximate(self, mirrored_model):
        m = mirrored_model
        # count pages whose compulsory set appears on >1 server
        by_key: dict[tuple, set[int]] = {}
        for p in m.pages:
            by_key.setdefault(p.compulsory, set()).add(p.server)
        shared = sum(
            1 for p in m.pages if len(by_key[p.compulsory]) == m.n_servers
        )
        share = shared / m.n_pages
        assert 0.1 < share < 0.35  # nominal 0.2 of the average page count

    def test_policy_handles_mirrored_model(self, mirrored_model):
        from repro.core.policy import RepositoryReplicationPolicy

        result = RepositoryReplicationPolicy().run(mirrored_model)
        assert result.feasible
        result.allocation.check_invariants()

    def test_validation_bounds(self):
        with pytest.raises(ValueError, match="mirrored_page_fraction"):
            WorkloadParams(mirrored_page_fraction=1.5)

    def test_deterministic(self):
        params = WorkloadParams.tiny().with_(mirrored_page_fraction=0.3)
        a = generate_workload(params, seed=9)
        b = generate_workload(params, seed=9)
        assert all(
            pa.compulsory == pb.compulsory for pa, pb in zip(a.pages, b.pages)
        )

"""Tests for repro.workload.params — Table 1 configuration."""

import math

import pytest

from repro.workload.params import WorkloadParams


class TestDefaults:
    def test_table1_values(self):
        p = WorkloadParams.paper()
        assert p.n_servers == 10
        assert p.pages_per_server == (400, 800)
        assert p.hot_page_fraction == 0.10
        assert p.hot_traffic_fraction == 0.60
        assert p.compulsory_per_page == (5, 45)
        assert p.optional_per_page == (10, 85)
        assert p.optional_page_fraction == 0.10
        assert p.n_objects == 15_000
        assert p.objects_per_server == (1500, 4500)
        assert p.optional_interest_prob == 0.10
        assert p.optional_request_fraction == 0.30
        assert p.processing_capacity == 150.0
        assert math.isinf(p.repository_capacity)
        assert p.local_overhead_range == (1.275, 1.775)
        assert p.repo_overhead_range == (1.975, 2.475)
        assert p.local_rate_range_kbps == (3.0, 10.0)
        assert p.repo_rate_range_kbps == (0.3, 2.0)
        assert p.requests_per_server == 10_000
        assert (p.alpha1, p.alpha2) == (2.0, 1.0)

    def test_optional_prob_per_object(self):
        assert WorkloadParams.paper().optional_prob_per_object == pytest.approx(
            0.03
        )


class TestPresets:
    def test_small_preserves_shape(self):
        p = WorkloadParams.small()
        assert p.hot_page_fraction == 0.10
        assert p.hot_traffic_fraction == 0.60
        assert p.n_servers < 10
        assert p.n_objects < 15_000

    def test_tiny_valid(self):
        WorkloadParams.tiny()  # __post_init__ validates


class TestWith:
    def test_override(self):
        p = WorkloadParams.paper().with_(n_servers=3)
        assert p.n_servers == 3
        assert p.n_objects == 15_000

    def test_original_unchanged(self):
        base = WorkloadParams.paper()
        base.with_(n_servers=3)
        assert base.n_servers == 10


class TestValidation:
    def test_bad_server_count(self):
        with pytest.raises(ValueError, match="n_servers"):
            WorkloadParams(n_servers=0)

    def test_bad_range(self):
        with pytest.raises(ValueError, match="pages_per_server"):
            WorkloadParams(pages_per_server=(800, 400))

    def test_bad_fraction(self):
        with pytest.raises(ValueError, match="hot_page_fraction"):
            WorkloadParams(hot_page_fraction=1.2)

    def test_pool_exceeds_catalogue(self):
        with pytest.raises(ValueError, match="objects_per_server"):
            WorkloadParams(n_objects=100, objects_per_server=(50, 200))

    def test_page_could_exceed_pool(self):
        with pytest.raises(ValueError, match="pool"):
            WorkloadParams(
                compulsory_per_page=(5, 1200),
                optional_per_page=(10, 800),
                objects_per_server=(1500, 4500),
            )

    def test_bad_alphas(self):
        with pytest.raises(ValueError, match="alpha"):
            WorkloadParams(alpha1=0.0)

    def test_bad_rate(self):
        with pytest.raises(ValueError, match="page_rate"):
            WorkloadParams(page_rate_per_server=0.0)

    def test_bad_requests(self):
        with pytest.raises(ValueError, match="requests_per_server"):
            WorkloadParams(requests_per_server=0)

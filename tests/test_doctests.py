"""Run the library's docstring examples as tests."""

import doctest

import pytest

import repro
import repro.obs
import repro.util.rng
import repro.util.tables
import repro.util.units

MODULES = [
    repro,
    repro.obs,
    repro.util.rng,
    repro.util.tables,
    repro.util.units,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"


def test_policy_docstring_example():
    """The RepositoryReplicationPolicy class docstring example."""
    from repro.core.policy import RepositoryReplicationPolicy

    results = doctest.run_docstring_examples(
        RepositoryReplicationPolicy,
        {"RepositoryReplicationPolicy": RepositoryReplicationPolicy},
        verbose=False,
    )
    # run_docstring_examples returns None; failures print — execute the
    # example directly instead for a hard assertion:
    from repro.workload import WorkloadParams, generate_workload

    model = generate_workload(WorkloadParams.small(), seed=7)
    result = RepositoryReplicationPolicy().run(model)
    assert result.feasible

"""Differential-oracle property tests for the batched restoration kernel.

The scalar greedy loops in :mod:`repro.core.restoration` and
:mod:`repro.core.offload` are the reference oracles; the batched kernel
(:mod:`repro.core.fast_restoration`) must reproduce their **decision
sequences bit-exactly** — same evictions, same comp/opt switches, same
absorption rounds, in the same order.  Rather than instrumenting the
loops, the tests compare everything the decisions determine: final
``comp_local``/``opt_local`` masks, replica sets, and the phase
statistics dataclasses (whose counters and float deltas only coincide
when every step matched).

Two layers:

* heap level — :class:`VectorLazyHeap` against the scalar ``_LazyHeap``
  under random push/mutate/kill/pop interleavings, including the
  ``purge_dead`` reserve mode (death is permanent there, matching the
  engine contract);
* engine level — each restoration phase run under both kernels on
  random capacity-constrained models, with each kernel building its own
  input allocation via an identical ``partition_all`` (no shared state,
  no deepcopy aliasing).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.constraints import (
    html_request_load,
    local_processing_load,
    repository_load,
)
from repro.core.cost_model import CostModel
from repro.core.fast_restoration import VectorLazyHeap
from repro.core.offload import OffloadConfig, offload_repository
from repro.core.partition import partition_all
from repro.core.restoration import (
    _TOL,
    _LazyHeap,
    restore_processing_capacity,
    restore_storage_capacity,
)
from repro.core.types import RepositorySpec, ServerSpec, SystemModel
from tests.properties.strategies import system_models

# ----------------------------------------------------------------------
# heap level
# ----------------------------------------------------------------------

#: Scores drawn from a small grid so ties (the delicate part of the
#: counter-ordered pop sequence) occur constantly.
_scores = st.one_of(
    st.integers(0, 4).map(float),
    st.floats(0.0, 100.0, allow_nan=False, allow_infinity=False),
)

_heap_ops = st.lists(
    st.one_of(
        st.tuples(st.just("push"), st.lists(_scores, min_size=1, max_size=6)),
        st.tuples(st.just("mutate"), st.integers(0, 11), _scores),
        st.tuples(st.just("kill"), st.integers(0, 11)),
        st.tuples(st.just("pop"), st.just(None)),
    ),
    max_size=60,
)


def _run_heap_differential(n_keys, ops, data, active_target, use_purge):
    """Replay one op sequence through both heaps, comparing every pop."""
    f = np.zeros(n_keys, dtype=np.float64)
    alive = np.ones(n_keys, dtype=bool)
    scalar = _LazyHeap()
    batched = VectorLazyHeap(
        active_target=active_target,
        purge_dead=alive if use_purge else None,
    )
    for op, *payload in ops:
        if op == "push":
            scores = payload[0]
            keys = [
                data.draw(st.integers(0, n_keys - 1), label="push key")
                for _ in scores
            ]
            for sc, key in zip(scores, keys):
                f[key] = sc  # pushed at the current fresh score
                scalar.push(sc, key)
            batched.push_batch(
                np.asarray(scores, dtype=np.float64),
                np.asarray(keys, dtype=np.int64),
            )
        elif op == "mutate":
            key, sc = payload
            if key < n_keys:
                f[key] = sc
        elif op == "kill":
            key = payload[0]
            if key < n_keys:
                alive[key] = False  # permanent: purge_dead contract holds
        else:  # pop
            want = scalar.pop_valid(
                rescore=lambda k: f[k], alive=lambda k: alive[k]
            )
            got = batched.pop_round(f, alive, _TOL)
            assert got == want, f"pop diverged: scalar={want} batched={got}"
            if not use_purge:
                # without reserve purging both heaps hold the same
                # multiset of unconsumed entries at all times
                assert len(batched) == len(scalar)


@given(
    st.integers(1, 12),
    _heap_ops,
    st.data(),
    st.sampled_from((2, 4, 1024)),
)
@settings(max_examples=150, deadline=None)
def test_vector_heap_matches_scalar_heap(n_keys, ops, data, active_target):
    """Tiny ``active_target`` values force the spill/run-merge/refill
    machinery to engage even on short sequences."""
    _run_heap_differential(n_keys, ops, data, active_target, use_purge=False)


@given(
    st.integers(1, 12),
    _heap_ops,
    st.data(),
    st.sampled_from((2, 4)),
)
@settings(max_examples=150, deadline=None)
def test_vector_heap_matches_scalar_heap_with_purge(
    n_keys, ops, data, active_target
):
    """``purge_dead`` drops dead reserve entries eagerly; the pop
    sequence must still be identical because dead keys can never win."""
    _run_heap_differential(n_keys, ops, data, active_target, use_purge=True)


def test_vector_heap_drains_interleaved_ties():
    """Deterministic smoke: all-equal scores drain in push order across
    multiple active/reserve boundaries."""
    f = np.full(40, 1.0)
    alive = np.ones(40, dtype=bool)
    heap = VectorLazyHeap(active_target=2)
    for start in range(0, 40, 5):
        keys = np.arange(start, start + 5, dtype=np.int64)
        heap.push_batch(np.ones(5), keys)
    popped = []
    while True:
        out = heap.pop_round(f, alive, _TOL)
        if out is None:
            break
        popped.append(out[1])
    assert popped == list(range(40))


# ----------------------------------------------------------------------
# engine level
# ----------------------------------------------------------------------
def _with_capacities(model, storage=None, processing=None, repo=None):
    servers = [
        ServerSpec(
            server_id=s.server_id,
            storage_capacity=(
                s.storage_capacity if storage is None else float(storage[i])
            ),
            processing_capacity=(
                s.processing_capacity
                if processing is None
                else float(processing[i])
            ),
            rate=s.rate,
            overhead=s.overhead,
            repo_rate=s.repo_rate,
            repo_overhead=s.repo_overhead,
        )
        for i, s in enumerate(model.servers)
    ]
    repo_spec = model.repository
    if repo is not None:
        repo_spec = RepositorySpec(processing_capacity=float(repo))
    return SystemModel(servers, repo_spec, model.pages, model.objects)


def _assert_same_decisions(m2, phase):
    """Run ``phase`` under both kernels on independently built inputs."""
    cost = CostModel(m2)
    out = {}
    for kernel in ("scalar", "batched"):
        alloc = partition_all(m2)  # fresh build per kernel — no aliasing
        stats = phase(alloc, cost, kernel)
        out[kernel] = (alloc, stats)
    a, b = out["scalar"][0], out["batched"][0]
    assert np.array_equal(a.comp_local, b.comp_local)
    assert np.array_equal(a.opt_local, b.opt_local)
    for i in range(m2.n_servers):
        assert a.replicas[i] == b.replicas[i]
    assert out["scalar"][1] == out["batched"][1], "phase statistics diverged"
    b.check_invariants()


@given(system_models(), st.floats(0.0, 1.0))
@settings(max_examples=50, deadline=None)
def test_storage_restoration_kernels_identical(model, frac):
    ref = partition_all(model)
    caps = model.html_bytes_by_server() + frac * ref.stored_bytes_all() + 1.0
    _assert_same_decisions(
        _with_capacities(model, storage=caps),
        lambda a, c, k: restore_storage_capacity(a, c, kernel=k),
    )


@given(system_models(), st.floats(0.0, 1.0))
@settings(max_examples=50, deadline=None)
def test_processing_restoration_kernels_identical(model, frac):
    ref = partition_all(model)
    html = html_request_load(model)
    load = local_processing_load(ref)
    caps = np.maximum(
        html + frac * np.maximum(load - html, 0.0) + 1e-9, 1e-6
    )
    _assert_same_decisions(
        _with_capacities(model, processing=caps),
        lambda a, c, k: restore_processing_capacity(a, c, kernel=k),
    )


@given(system_models(), st.floats(0.05, 1.0))
@settings(max_examples=50, deadline=None)
def test_offload_kernels_identical(model, frac):
    ref = partition_all(model)
    repo = max(frac * repository_load(ref), 1e-6)
    _assert_same_decisions(
        _with_capacities(model, repo=repo),
        lambda a, c, k: offload_repository(a, c, OffloadConfig(), kernel=k),
    )

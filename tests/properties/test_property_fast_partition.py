"""Differential-oracle property tests for the batched PARTITION kernel.

The scalar greedy (:func:`repro.core.partition.partition_page`) is the
reference oracle; the batched kernel
(:mod:`repro.core.fast_partition`) must reproduce its marks and stream
times **bit-exactly** — assertions below use ``==`` on floats and
``array_equal`` on marks, no tolerances — for every page, every
``SortOrder``, arbitrary ``allowed`` whitelists, and every optional
policy.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fast_partition import (
    comp_allowed_mask,
    optional_marks_batched,
    partition_all_batched,
    partition_pages_batched,
)
from repro.core.partition import _optional_marks, partition_all, partition_page
from tests.properties.strategies import system_models

ORDERS = ("decreasing", "increasing", "document")


def assert_batch_matches_oracle(model, order, allowed_per_server=None):
    """Bit-exact comparison of the batch kernel against the scalar oracle."""
    mask = comp_allowed_mask(model, allowed_per_server)
    marks, local_t, remote_t = partition_pages_batched(
        model, allowed_mask=mask, order=order
    )
    for j in range(model.n_pages):
        allowed = (
            None
            if allowed_per_server is None
            else allowed_per_server.get(model.pages[j].server, ())
        )
        ref_marks, ref_lt, ref_rt = partition_page(model, j, allowed, order=order)
        sl = model.comp_slice(j)
        assert np.array_equal(marks[sl], ref_marks), f"page {j} marks diverge"
        assert local_t[j] == ref_lt, f"page {j} local time diverges"
        assert remote_t[j] == ref_rt, f"page {j} remote time diverges"


@given(system_models(), st.sampled_from(ORDERS))
@settings(max_examples=60, deadline=None)
def test_batched_matches_scalar_unrestricted(model, order):
    assert_batch_matches_oracle(model, order)


@given(system_models(), st.sampled_from(ORDERS), st.data())
@settings(max_examples=60, deadline=None)
def test_batched_matches_scalar_with_whitelists(model, order, data):
    allowed_per_server = {}
    for i in range(model.n_servers):
        # a random subset per server; servers may be missing entirely
        # (partition_all treats a missing key as "nothing allowed")
        if data.draw(st.booleans(), label=f"server {i} present"):
            allowed_per_server[i] = data.draw(
                st.sets(st.integers(0, model.n_objects - 1)),
                label=f"server {i} whitelist",
            )
    assert_batch_matches_oracle(model, order, allowed_per_server)


@given(system_models(), st.sampled_from(("all", "beneficial", "none")))
@settings(max_examples=60, deadline=None)
def test_optional_marks_batched_matches_scalar(model, policy):
    batched = optional_marks_batched(model, policy)
    for j in range(model.n_pages):
        ref = _optional_marks(model, j, policy, None)
        assert np.array_equal(batched[model.opt_slice(j)], ref)


@given(
    system_models(),
    st.sampled_from(ORDERS),
    st.sampled_from(("all", "beneficial", "none")),
)
@settings(max_examples=40, deadline=None)
def test_partition_all_kernels_build_equal_allocations(model, order, policy):
    """Marks, replica sets, and mark-count bookkeeping all coincide."""
    scalar = partition_all(model, optional_policy=policy, order=order, kernel="scalar")
    batched = partition_all(model, optional_policy=policy, order=order, kernel="batched")
    assert scalar == batched
    assert scalar._mark_counts == batched._mark_counts
    batched.check_invariants()


@given(system_models(), st.data())
@settings(max_examples=40, deadline=None)
def test_partition_all_batched_with_whitelists(model, data):
    allowed_per_server = {
        i: data.draw(
            st.sets(st.integers(0, model.n_objects - 1)), label=f"server {i}"
        )
        for i in range(model.n_servers)
    }
    scalar = partition_all(
        model, allowed_per_server=allowed_per_server, kernel="scalar"
    )
    batched = partition_all_batched(
        model, allowed_per_server=allowed_per_server
    )
    assert scalar == batched


@given(system_models(), st.data())
@settings(max_examples=40, deadline=None)
def test_batched_page_subset_matches_full_run(model, data):
    """Partitioning a subset of pages yields the same per-page output as
    the full batch (pages are independent under PARTITION)."""
    subset = data.draw(
        st.lists(
            st.integers(0, model.n_pages - 1), unique=True, min_size=0
        ),
        label="page subset",
    )
    full_marks, full_lt, full_rt = partition_pages_batched(model)
    sub_marks, sub_lt, sub_rt = partition_pages_batched(
        model, page_ids=np.asarray(subset, dtype=np.intp)
    )
    for pos, j in enumerate(subset):
        sl = model.comp_slice(j)
        assert np.array_equal(sub_marks[sl], full_marks[sl])
        assert sub_lt[pos] == full_lt[j]
        assert sub_rt[pos] == full_rt[j]
    # entries of unselected pages stay untouched
    selected = np.zeros(len(model.comp_objects), dtype=bool)
    for j in subset:
        selected[model.comp_slice(j)] = True
    assert not sub_marks[~selected].any()

"""Property-based tests: the k-stream PARTITION generalization.

Two contracts pin the argmin-over-k engine:

* **Oracle** — on tiny pages the k-way greedy is checked against the
  brute-force optimum over *all* ``k^n`` stream assignments: greedy is
  never better than optimal (sanity of both) and never worse than the
  dump-everything-on-one-stream bound.  (Idle streams still charge
  their Eq. 4 overhead — the k=2 convention carried over — so optima
  of *restricted* stream subsets are not comparable per page.)
* **Degeneracy** — at ``k = 2`` the multipath kernels must be
  field-by-field identical to the classic pair: same marks, all
  streams = 1, bit-equal times, equal allocations and objectives.
"""

import itertools

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost_model import CostModel
from repro.core.fast_partition import (
    partition_pages_batched,
    partition_pages_multipath,
)
from repro.core.partition import (
    partition_all,
    partition_page,
    partition_page_streams,
)
from tests.properties.strategies import mesh_models, system_models


def _page_net(model, j):
    """Per-stream ``(overhead, seconds-per-byte)`` rows for page ``j``."""
    page = model.pages[j]
    i = page.server
    rows = [(model.server_overhead[i], 1.0 / model.server_rate[i])]
    for r in range(model.n_streams - 1):
        rows.append(
            (model.stream_overheads[i, r], 1.0 / model.stream_rates[i, r])
        )
    return rows


def _optimal_kway_max(model, j):
    """Brute-force optimal max over all stream assignments of page ``j``.

    ``k^n`` assignments — fine for the ≤6-object pages the strategy
    generates.  Every stream's overhead counts even when it carries no
    bytes, matching the engine's cost model.
    """
    page = model.pages[j]
    rows = _page_net(model, j)
    sizes = [model.objects[k].size for k in page.compulsory]
    best = np.inf
    for assign in itertools.product(range(len(rows)), repeat=len(sizes)):
        stream_bytes = [0.0] * len(rows)
        for which, sz in zip(assign, sizes):
            stream_bytes[which] += sz
        t = max(
            ov + spb * (b + (page.html_size if s == 0 else 0.0))
            for s, ((ov, spb), b) in enumerate(zip(rows, stream_bytes))
        )
        best = min(best, t)
    return best


@given(mesh_models(min_streams=2, max_streams=4, max_pages=4))
@settings(max_examples=60, deadline=None)
def test_kway_greedy_vs_bruteforce(model):
    """Brute force ≤ greedy ≤ worst dump-everything-on-one-stream."""
    for j in range(model.n_pages):
        marks, streams, lt, stream_times = partition_page_streams(model, j)
        greedy = max([lt] + list(stream_times))
        opt = _optimal_kway_max(model, j)
        assert greedy >= opt - 1e-9
        # every stream's final time is bounded by it receiving all bytes
        page = model.pages[j]
        total = sum(model.objects[k].size for k in page.compulsory)
        bound = max(
            ov + spb * (total + (page.html_size if s == 0 else 0.0))
            for s, (ov, spb) in enumerate(_page_net(model, j))
        )
        assert greedy <= bound + 1e-9


@given(mesh_models(min_streams=3, max_streams=4, max_pages=4))
@settings(max_examples=40, deadline=None)
def test_kway_scalar_matches_batched(model):
    """Scalar and batched multipath kernels agree field-by-field at k>2."""
    b_marks, b_streams, b_lt, b_st = partition_pages_multipath(model)
    for j in range(model.n_pages):
        sl = model.comp_slice(j)
        marks, streams, lt, stream_times = partition_page_streams(model, j)
        assert np.array_equal(marks, b_marks[sl])
        rem = ~marks
        assert np.array_equal(streams[rem], b_streams[sl][rem])
        assert lt == b_lt[j]
        assert [t[j] for t in b_st] == list(stream_times)


@given(system_models())
@settings(max_examples=60, deadline=None)
def test_k2_multipath_is_bit_identical(model):
    """At k=2 the multipath kernels reproduce the classic pair exactly:
    same marks, every remote entry on stream 1, bit-equal times."""
    assert model.n_streams == 2
    m_marks, m_streams, m_lt, m_st = partition_pages_multipath(model)
    b_marks, b_lt, b_rt = partition_pages_batched(model)
    assert np.array_equal(m_marks, b_marks)
    assert (m_streams[~m_marks] == 1).all()
    assert np.array_equal(m_lt, b_lt)
    assert m_st.shape == (1, model.n_pages)
    assert np.array_equal(m_st[0], b_rt)
    for j in range(model.n_pages):
        s_marks, s_streams, s_lt, s_times = partition_page_streams(model, j)
        c_marks, c_lt, c_rt = partition_page(model, j)
        sl = model.comp_slice(j)
        assert np.array_equal(s_marks, c_marks)
        assert np.array_equal(s_marks, m_marks[sl])
        assert s_lt == c_lt == m_lt[j]
        assert s_times == [c_rt] == [m_st[0][j]]


@given(
    mesh_models(min_streams=3, max_streams=4, max_pages=5),
    st.sampled_from(["batched", "scalar"]),
)
@settings(max_examples=40, deadline=None)
def test_kway_allocation_kernels_agree(model, kernel):
    """``partition_all`` produces one answer regardless of kernel, and
    its stream marks yield a consistent Eq. 7 objective."""
    ref = partition_all(model, kernel="scalar")
    alloc = partition_all(model, kernel=kernel)
    assert alloc == ref
    cost = CostModel(model)
    assert cost.D(alloc) == cost.D(ref)

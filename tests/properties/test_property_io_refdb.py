"""Property-based tests: persistence and refdb round-trips on random
universes."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.cost_model import CostModel
from repro.core.partition import partition_all
from repro.io import load_model, load_trace, save_model, save_trace
from repro.refdb import ReferenceDatabase, render_html
from repro.workload.params import WorkloadParams
from repro.workload.trace import generate_trace
from tests.properties.strategies import system_models


@given(model=system_models())
@settings(max_examples=25, deadline=None)
def test_model_roundtrip_preserves_everything(tmp_path_factory, model):
    path = tmp_path_factory.mktemp("io") / "m.json"
    save_model(model, path)
    back = load_model(path)
    assert back.n_servers == model.n_servers
    assert np.array_equal(back.sizes, model.sizes)
    assert np.array_equal(back.html_sizes, model.html_sizes)
    assert np.allclose(back.frequencies, model.frequencies)
    assert np.array_equal(back.comp_objects, model.comp_objects)
    assert np.array_equal(back.opt_objects, model.opt_objects)
    assert np.allclose(back.opt_probs, model.opt_probs)
    assert np.allclose(back.server_rate, model.server_rate)
    assert np.allclose(back.server_repo_overhead, model.server_repo_overhead)
    # behavioural equivalence: same partition, same objective
    a, b = partition_all(model), partition_all(back)
    assert np.array_equal(a.comp_local, b.comp_local)
    assert CostModel(model).D(a) == pytest.approx(CostModel(back).D(b))


@given(model=system_models())
@settings(max_examples=20, deadline=None)
def test_trace_roundtrip(tmp_path_factory, model):
    trace = generate_trace(
        model, WorkloadParams.tiny(), seed=1, requests_per_server=25
    )
    path = tmp_path_factory.mktemp("io") / "t.npz"
    save_trace(trace, path)
    back = load_trace(path, model)
    assert np.array_equal(back.page_of_request, trace.page_of_request)
    assert np.array_equal(back.opt_entries, trace.opt_entries)


@given(system_models())
@settings(max_examples=25, deadline=None)
def test_refdb_indexes_every_reference(model):
    db = ReferenceDatabase.build(model)
    for j, page in enumerate(model.pages):
        entries = db.entries(j)
        ids = sorted(e.object_id for e in entries)
        assert ids == sorted(page.compulsory + page.optional)


@given(system_models())
@settings(max_examples=25, deadline=None)
def test_refdb_serve_roundtrip_consistency(model):
    """Parsing the *served* document must find local URLs exactly for the
    marked objects."""
    import re

    db = ReferenceDatabase.build(model)
    alloc = partition_all(model)
    for j, page in enumerate(model.pages):
        served = db.serve(j, alloc)
        local_ids = {
            int(mm)
            for mm in re.findall(r"ls\d+\.example\.com/mo/(\d{6})\.bin", served)
        }
        expected = {
            k
            for k, m in zip(page.compulsory, alloc.page_comp_marks(j))
            if m
        } | {
            k for k, m in zip(page.optional, alloc.page_opt_marks(j)) if m
        }
        assert local_ids == expected

"""Property-based tests: LRU cache invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.lru_sim import LruCache


access_sequences = st.lists(
    st.tuples(st.integers(0, 20), st.integers(1, 50)), max_size=200
)


@given(st.floats(0.0, 500.0), access_sequences)
@settings(max_examples=80, deadline=None)
def test_capacity_never_exceeded(capacity, seq):
    c = LruCache(capacity)
    for k, size in seq:
        c.access(k, float(size))
        assert c.used <= capacity + 1e-9


@given(access_sequences)
@settings(max_examples=60, deadline=None)
def test_hits_plus_misses_equals_accesses(seq):
    c = LruCache(1000.0)
    for k, size in seq:
        c.access(k, float(size))
    assert c.hits + c.misses == len(seq)


@given(access_sequences)
@settings(max_examples=60, deadline=None)
def test_used_equals_sum_of_entries(seq):
    c = LruCache(300.0)
    sizes = {}
    for k, size in seq:
        c.access(k, float(size))
        sizes[k] = float(size)
    assert c.used == sum(sizes[k] for k in sizes if k in c)


@given(access_sequences)
@settings(max_examples=60, deadline=None)
def test_infinite_cache_second_access_always_hits(seq):
    c = LruCache(float("inf"))
    seen = set()
    for k, size in seq:
        hit = c.access(k, float(size))
        assert hit == (k in seen)
        seen.add(k)


@given(st.floats(1.0, 500.0), st.lists(st.integers(0, 20), max_size=200))
@settings(max_examples=60, deadline=None)
def test_bigger_cache_at_least_as_many_hits_uniform(capacity, keys):
    """LRU's inclusion property: for *uniform* object sizes a bigger
    cache's contents always contain a smaller cache's, so hits are
    monotone in capacity.  (With heterogeneous sizes this is famously
    false — admission of a large object can evict what a smaller cache
    never admitted.)"""
    small = LruCache(capacity)
    big = LruCache(capacity * 4)
    for k in keys:
        small.access(k, 1.0)
        big.access(k, 1.0)
    assert big.hits >= small.hits

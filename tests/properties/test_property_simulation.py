"""Property-based tests: simulation engine invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost_model import CostModel
from repro.simulation.engine import expand_ragged, simulate_allocation
from repro.simulation.perturbation import (
    IDENTITY_PERTURBATION,
    PAPER_PERTURBATION,
)
from repro.workload.params import WorkloadParams
from repro.workload.trace import generate_trace
from tests.properties.strategies import models_with_allocations


_trace_params = WorkloadParams.tiny().with_(requests_per_server=30)


@given(models_with_allocations(), st.integers(0, 2**20))
@settings(max_examples=25, deadline=None)
def test_identity_matches_cost_model(mw, seed):
    """Identity perturbation reproduces Eq. 3-6 exactly (modulo the
    engine's no-connection-no-overhead refinement)."""
    model, alloc = mw
    trace = generate_trace(model, _trace_params, seed=seed, requests_per_server=20)
    sim = simulate_allocation(alloc, trace, IDENTITY_PERTURBATION, seed=seed)
    cost = CostModel(model)
    times = cost.page_times(alloc)
    rb = cost.remote_mo_bytes(alloc)
    for r, j in enumerate(trace.page_of_request):
        expected = times.page[j] if rb[j] > 0 else times.local[j]
        assert np.isclose(sim.page_times[r], expected)


@given(models_with_allocations(), st.integers(0, 2**20))
@settings(max_examples=25, deadline=None)
def test_perturbed_times_positive_and_finite(mw, seed):
    model, alloc = mw
    trace = generate_trace(model, _trace_params, seed=seed, requests_per_server=20)
    sim = simulate_allocation(alloc, trace, PAPER_PERTURBATION, seed=seed)
    assert np.all(np.isfinite(sim.page_times))
    assert np.all(sim.page_times >= 0)
    assert np.all(np.isfinite(sim.optional_times))


@given(
    st.lists(st.integers(0, 4), min_size=0, max_size=30),
    st.lists(st.integers(0, 5), min_size=5, max_size=5),
)
@settings(max_examples=80, deadline=None)
def test_expand_ragged_structure(pages, counts):
    indptr = np.concatenate(([0], np.cumsum(counts)))
    pages_arr = np.asarray(pages, dtype=np.intp)
    owner, entries = expand_ragged(pages_arr, indptr)
    assert len(owner) == len(entries)
    assert len(owner) == sum(counts[p] for p in pages)
    # each request contributes exactly its page's entry range, in order
    pos = 0
    for r, p in enumerate(pages):
        lo, hi = indptr[p], indptr[p + 1]
        n = hi - lo
        assert np.array_equal(owner[pos : pos + n], np.full(n, r))
        assert np.array_equal(entries[pos : pos + n], np.arange(lo, hi))
        pos += n

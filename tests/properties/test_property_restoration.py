"""Property-based tests: restoration always terminates feasible."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.constraints import (
    evaluate_constraints,
    html_request_load,
    local_processing_load,
    storage_used,
)
from repro.core.cost_model import CostModel
from repro.core.partition import partition_all
from repro.core.restoration import (
    restore_processing_capacity,
    restore_storage_capacity,
)
from repro.core.types import RepositorySpec, ServerSpec, SystemModel
from tests.properties.strategies import system_models


def _with_capacities(model, storage=None, processing=None):
    servers = [
        ServerSpec(
            server_id=s.server_id,
            storage_capacity=(
                s.storage_capacity if storage is None else float(storage[i])
            ),
            processing_capacity=(
                s.processing_capacity if processing is None else float(processing[i])
            ),
            rate=s.rate,
            overhead=s.overhead,
            repo_rate=s.repo_rate,
            repo_overhead=s.repo_overhead,
        )
        for i, s in enumerate(model.servers)
    ]
    return SystemModel(servers, model.repository, model.pages, model.objects)


@given(system_models(), st.floats(0.0, 1.0))
@settings(max_examples=40, deadline=None)
def test_storage_restoration_feasible_and_consistent(model, frac):
    ref = partition_all(model)
    html = model.html_bytes_by_server()
    caps = html + frac * ref.stored_bytes_all() + 1.0
    m2 = _with_capacities(model, storage=caps)
    alloc = partition_all(m2)
    cost = CostModel(m2)
    restore_storage_capacity(alloc, cost)
    assert np.all(storage_used(alloc) <= caps + 1e-6)
    alloc.check_invariants()


@given(system_models(), st.floats(0.0, 1.0))
@settings(max_examples=40, deadline=None)
def test_processing_restoration_feasible_and_consistent(model, frac):
    ref = partition_all(model)
    html = html_request_load(model)
    load = local_processing_load(ref)
    caps = html + frac * np.maximum(load - html, 0.0) + 1e-9
    caps = np.maximum(caps, 1e-6)  # ServerSpec requires > 0
    m2 = _with_capacities(model, processing=caps)
    alloc = partition_all(m2)
    cost = CostModel(m2)
    restore_processing_capacity(alloc, cost)
    assert np.all(
        local_processing_load(alloc) <= caps + 1e-6 * np.maximum(caps, 1.0)
    )
    alloc.check_invariants()


@given(system_models())
@settings(max_examples=15, deadline=None)
def test_restoration_never_beats_true_optimum(model):
    """Constrained results can't beat the *unconstrained ILP optimum*.

    (They CAN occasionally beat the unconstrained greedy: evicting an
    object that trapped the sorted greedy can steer the restricted
    re-partition to a better split — greedy is not monotone.)
    """
    from repro.core.ilp import solve_optimal_allocation

    ref = partition_all(model)
    opt = solve_optimal_allocation(model).objective
    html = model.html_bytes_by_server()
    caps = html + 0.5 * ref.stored_bytes_all() + 1.0
    m2 = _with_capacities(model, storage=caps)
    alloc = partition_all(m2)
    cost2 = CostModel(m2)
    restore_storage_capacity(alloc, cost2)
    # tolerance covers the MILP solver's own optimality gap
    assert cost2.D(alloc) >= opt * (1.0 - 1e-5) - 1e-6

"""Property-based tests: PARTITION invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost_model import CostModel
from repro.core.partition import partition_all, partition_page
from tests.properties.strategies import system_models


@given(system_models())
@settings(max_examples=60, deadline=None)
def test_partition_times_match_cost_model(model):
    """The stream times PARTITION reports equal Eq. 3/4 for its marks."""
    alloc = partition_all(model, optional_policy="none")
    cost = CostModel(model)
    times = cost.page_times(alloc)
    for j in range(model.n_pages):
        _, lt, rt = partition_page(model, j)
        assert np.isclose(lt, times.local[j])
        assert np.isclose(rt, times.remote[j])


@given(system_models())
@settings(max_examples=60, deadline=None)
def test_partition_marks_within_compulsory(model):
    alloc = partition_all(model, optional_policy="none")
    # optional part untouched
    assert not alloc.opt_local.any()


@given(system_models())
@settings(max_examples=50, deadline=None)
def test_allowed_none_is_unrestricted(model):
    for j in range(model.n_pages):
        a, lt_a, rt_a = partition_page(model, j, allowed=None)
        universe = set(range(model.n_objects))
        b, lt_b, rt_b = partition_page(model, j, allowed=universe)
        assert np.array_equal(a, b)
        assert np.isclose(lt_a, lt_b) and np.isclose(rt_a, rt_b)


@given(system_models())
@settings(max_examples=50, deadline=None)
def test_allowed_empty_forces_remote(model):
    for j in range(model.n_pages):
        marks, lt, rt = partition_page(model, j, allowed=set())
        assert not marks.any()
        page = model.pages[j]
        srv = model.servers[page.server]
        total = sum(model.objects[k].size for k in page.compulsory)
        assert np.isclose(rt, srv.repo_overhead + srv.repo_spb * total)
        assert np.isclose(lt, srv.overhead + srv.spb * page.html_size)


@given(system_models())
@settings(max_examples=50, deadline=None)
def test_restricting_allowed_never_improves(model):
    """Removing options can only (weakly) worsen the balanced max."""
    rng = np.random.default_rng(0)
    for j in range(model.n_pages):
        _, lt, rt = partition_page(model, j)
        page = model.pages[j]
        if not page.compulsory:
            continue
        subset = {k for k in page.compulsory if rng.random() < 0.5}
        _, lt2, rt2 = partition_page(model, j, allowed=subset)
        assert max(lt2, rt2) >= max(lt, rt) - 1e-9


@given(system_models())
@settings(max_examples=50, deadline=None)
def test_greedy_local_improvement(model):
    """No single object flip strictly improves the page max under the
    sorted greedy *for the last object placed*.

    Full 1-flip optimality is not guaranteed by the greedy, but the
    balanced max must never exceed the all-on-one-stream bound.
    """
    for j in range(model.n_pages):
        marks, lt, rt = partition_page(model, j)
        page = model.pages[j]
        srv = model.servers[page.server]
        total = sum(model.objects[k].size for k in page.compulsory)
        bound = max(
            srv.overhead + srv.spb * (page.html_size + total),
            srv.repo_overhead + srv.repo_spb * total,
            srv.overhead + srv.spb * page.html_size,
        )
        assert max(lt, rt) <= bound + 1e-9

"""Property-based tests: PARTITION invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost_model import CostModel
from repro.core.partition import partition_all, partition_page
from tests.properties.strategies import system_models


@given(system_models())
@settings(max_examples=60, deadline=None)
def test_partition_times_match_cost_model(model):
    """The stream times PARTITION reports equal Eq. 3/4 for its marks."""
    alloc = partition_all(model, optional_policy="none")
    cost = CostModel(model)
    times = cost.page_times(alloc)
    for j in range(model.n_pages):
        _, lt, rt = partition_page(model, j)
        assert np.isclose(lt, times.local[j])
        assert np.isclose(rt, times.remote[j])


@given(system_models())
@settings(max_examples=60, deadline=None)
def test_partition_marks_within_compulsory(model):
    alloc = partition_all(model, optional_policy="none")
    # optional part untouched
    assert not alloc.opt_local.any()


@given(system_models())
@settings(max_examples=50, deadline=None)
def test_allowed_none_is_unrestricted(model):
    for j in range(model.n_pages):
        a, lt_a, rt_a = partition_page(model, j, allowed=None)
        universe = set(range(model.n_objects))
        b, lt_b, rt_b = partition_page(model, j, allowed=universe)
        assert np.array_equal(a, b)
        assert np.isclose(lt_a, lt_b) and np.isclose(rt_a, rt_b)


@given(system_models())
@settings(max_examples=50, deadline=None)
def test_allowed_empty_forces_remote(model):
    for j in range(model.n_pages):
        marks, lt, rt = partition_page(model, j, allowed=set())
        assert not marks.any()
        page = model.pages[j]
        srv = model.servers[page.server]
        total = sum(model.objects[k].size for k in page.compulsory)
        assert np.isclose(rt, srv.repo_overhead + srv.repo_spb * total)
        assert np.isclose(lt, srv.overhead + srv.spb * page.html_size)


def _optimal_page_max(model, j, allowed=None):
    """Brute-force optimal balanced max over all local/remote splits.

    Exponential in the compulsory count — fine for the ≤6-object pages
    the strategy generates.
    """
    page = model.pages[j]
    srv = model.servers[page.server]
    objs = [k for k in page.compulsory if allowed is None or k in allowed]
    forced = sum(
        model.objects[k].size for k in page.compulsory if k not in objs
    )
    best = np.inf
    for mask in range(1 << len(objs)):
        local_bytes = sum(
            model.objects[k].size
            for b, k in enumerate(objs)
            if mask & (1 << b)
        )
        remote_bytes = forced + sum(
            model.objects[k].size
            for b, k in enumerate(objs)
            if not mask & (1 << b)
        )
        lt = srv.overhead + srv.spb * (page.html_size + local_bytes)
        rt = srv.repo_overhead + srv.repo_spb * remote_bytes
        best = min(best, max(lt, rt))
    return best


@given(system_models())
@settings(max_examples=50, deadline=None)
def test_restricting_allowed_never_beats_optimum(model):
    """Restricted greedy ≥ restricted optimum ≥ unrestricted optimum.

    The greedy itself is *not* monotone under restriction — forcing an
    object remote can perturb later choices into a luckily better max
    (a real counterexample exists at 11 objects) — so the true ordering
    is stated against the brute-force optimal split: no restriction can
    beat the unrestricted optimum, and every greedy run is bounded
    below by its own restricted optimum.
    """
    rng = np.random.default_rng(0)
    for j in range(model.n_pages):
        _, lt, rt = partition_page(model, j)
        page = model.pages[j]
        if not page.compulsory:
            continue
        opt_full = _optimal_page_max(model, j)
        assert max(lt, rt) >= opt_full - 1e-9
        subset = {k for k in page.compulsory if rng.random() < 0.5}
        marks, lt2, rt2 = partition_page(model, j, allowed=subset)
        marked = {k for k, m in zip(page.compulsory, marks) if m}
        assert marked <= subset
        opt_sub = _optimal_page_max(model, j, allowed=subset)
        assert opt_sub >= opt_full - 1e-9
        assert max(lt2, rt2) >= opt_sub - 1e-9


@given(system_models())
@settings(max_examples=50, deadline=None)
def test_greedy_local_improvement(model):
    """No single object flip strictly improves the page max under the
    sorted greedy *for the last object placed*.

    Full 1-flip optimality is not guaranteed by the greedy, but the
    balanced max must never exceed the all-on-one-stream bound.
    """
    for j in range(model.n_pages):
        marks, lt, rt = partition_page(model, j)
        page = model.pages[j]
        srv = model.servers[page.server]
        total = sum(model.objects[k].size for k in page.compulsory)
        bound = max(
            srv.overhead + srv.spb * (page.html_size + total),
            srv.repo_overhead + srv.repo_spb * total,
            srv.overhead + srv.spb * page.html_size,
        )
        assert max(lt, rt) <= bound + 1e-9

"""Property-based tests: cost-model invariants on random universes."""

import numpy as np
from hypothesis import given, settings

from repro.baselines.local import LocalPolicy
from repro.baselines.remote import RemotePolicy
from repro.core.allocation import Allocation
from repro.core.cost_model import CostModel
from repro.core.partition import partition_all
from tests.properties.strategies import models_with_allocations, system_models


@given(models_with_allocations())
@settings(max_examples=60, deadline=None)
def test_times_nonnegative(mw):
    model, alloc = mw
    cost = CostModel(model)
    t = cost.page_times(alloc)
    assert np.all(t.local >= 0)
    assert np.all(t.remote >= 0)
    assert np.all(t.page >= 0)
    assert np.all(t.optional >= 0)


@given(models_with_allocations())
@settings(max_examples=60, deadline=None)
def test_page_time_is_max(mw):
    model, alloc = mw
    t = CostModel(model).page_times(alloc)
    assert np.allclose(t.page, np.maximum(t.local, t.remote))


@given(models_with_allocations())
@settings(max_examples=60, deadline=None)
def test_objective_decomposition(mw):
    model, alloc = mw
    cost = CostModel(model, alpha1=2.0, alpha2=1.0)
    assert np.isclose(
        cost.D(alloc), 2.0 * cost.D1(alloc) + 1.0 * cost.D2(alloc)
    )


@given(models_with_allocations())
@settings(max_examples=60, deadline=None)
def test_byte_conservation(mw):
    """Local + remote MO bytes per page equal the page's total MO bytes."""
    model, alloc = mw
    cost = CostModel(model)
    total = cost.local_mo_bytes(alloc) + cost.remote_mo_bytes(alloc)
    expected = np.zeros(model.n_pages)
    for j, p in enumerate(model.pages):
        expected[j] = sum(model.objects[k].size for k in p.compulsory)
    assert np.allclose(total, expected)


@given(system_models())
@settings(max_examples=50, deadline=None)
def test_partition_between_extremes(model):
    """PARTITION's D never exceeds the better of the two extremes."""
    cost = CostModel(model)
    ours = cost.D(partition_all(model, optional_policy="beneficial"))
    d_local = cost.D(LocalPolicy().allocate(model))
    d_remote = cost.D(RemotePolicy().allocate(model))
    assert ours <= min(d_local, d_remote) + 1e-6


@given(models_with_allocations())
@settings(max_examples=40, deadline=None)
def test_flipping_optional_to_faster_side_never_hurts(mw):
    """Greedily aligning every optional entry with its faster side can
    only decrease D2."""
    model, alloc = mw
    cost = CostModel(model)
    before = cost.D2(alloc)
    for e in range(len(model.opt_objects)):
        to_local = cost.opt_time_local[e] <= cost.opt_time_repo[e]
        if to_local != bool(alloc.opt_local[e]):
            if to_local:
                alloc.set_opt_local(e, True)
            else:
                alloc.set_opt_local(e, False)
    assert cost.D2(alloc) <= before + 1e-9

"""Property-based tests: off-loading invariants on random universes."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.constraints import (
    local_processing_load,
    repository_load,
    storage_used,
)
from repro.core.cost_model import CostModel
from repro.core.offload import (
    OffloadConfig,
    ServerStatus,
    absorb_extra_workload,
    offload_repository,
    plan_offload_round,
)
from repro.core.partition import partition_all
from tests.properties.strategies import system_models


statuses_strategy = st.lists(
    st.builds(
        ServerStatus,
        server_id=st.integers(0, 9),
        free_space=st.floats(0, 1e6, allow_nan=False),
        free_capacity=st.floats(0, 1e3, allow_nan=False),
        repo_share=st.floats(0, 1e3, allow_nan=False),
    ),
    min_size=1,
    max_size=8,
    unique_by=lambda s: s.server_id,
)


@given(statuses_strategy, st.floats(0.1, 1e3))
@settings(max_examples=80, deadline=None)
def test_plan_never_exceeds_server_capacity(statuses, cap):
    plan = plan_offload_round(statuses, cap)
    if plan is None:
        return
    by_id = {s.server_id: s for s in statuses}
    for sid, req in plan.items():
        assert req <= by_id[sid].free_capacity + 1e-6
        assert req >= -1e-12


@given(statuses_strategy, st.floats(0.1, 1e3))
@settings(max_examples=80, deadline=None)
def test_plan_total_bounded_by_excess(statuses, cap):
    plan = plan_offload_round(statuses, cap)
    if not plan:
        return
    excess = sum(s.repo_share for s in statuses) - cap
    assert sum(plan.values()) <= excess + 1e-6


@given(statuses_strategy, st.floats(0.1, 1e3))
@settings(max_examples=80, deadline=None)
def test_plan_targets_only_l1_l2(statuses, cap):
    plan = plan_offload_round(statuses, cap)
    if not plan:
        return
    by_id = {s.server_id: s for s in statuses}
    for sid in plan:
        assert by_id[sid].classification in ("L1", "L2")


@given(system_models(), st.floats(0.1, 0.9))
@settings(max_examples=25, deadline=None)
def test_offload_final_load_monotone(model, frac):
    """Off-loading never increases the repository load."""
    alloc = partition_all(model, optional_policy="none")
    cost = CostModel(model)
    before = repository_load(alloc)
    if before <= 0:
        return
    out = offload_repository(
        alloc, cost, OffloadConfig(), capacity=frac * before
    )
    after = repository_load(alloc)
    assert after <= before + 1e-9
    assert out.final_repo_load == after or abs(out.final_repo_load - after) < 1e-6


@given(system_models(), st.floats(0.0, 50.0))
@settings(max_examples=25, deadline=None)
def test_absorb_respects_all_constraints(model, target):
    """Absorption never violates Eq. 8 or Eq. 10 on the absorbing server."""
    alloc = partition_all(model, optional_policy="none")
    cost = CostModel(model)
    for i in range(model.n_servers):
        absorb_extra_workload(alloc, cost, i, target)
        if math.isfinite(model.server_capacity[i]):
            assert local_processing_load(alloc)[i] <= model.server_capacity[i] + 1e-6
        if math.isfinite(model.server_storage[i]):
            assert storage_used(alloc)[i] <= model.server_storage[i] + 1e-6
    alloc.check_invariants()

"""Differential shard-identity harness for the sharded policy kernel.

The contract of :mod:`repro.core.shard` is **bit-identity**: for any
model and any valid shard count, ``kernel="sharded"`` must reproduce the
``"batched"`` reference — the same allocation (comp/opt marks *and*
replica sets), the same objectives, the same phase list, the same
restoration statistics and the same off-loading outcome, including every
greedy tie-break at shard boundaries.  These tests are the oracle for
that contract: random small universes with randomly tightened capacity
constraints are run through both kernels and compared field by field.

Shard counts exercised per example: ``1`` (the degenerate single-group
plan), ``2``, ``n_servers`` (one server per shard) and a ragged draw in
between — so group boundaries land on every kind of server split the
planner can produce.

The sharded runs use :class:`~repro.core.shard.InlineShardPool`:
Hypothesis drives hundreds of examples, and the pool-injection seam is
exactly what lets the *reconcile logic* be tested without paying for
process forks.  (Real-subprocess identity is covered once, at fixed
scale, by ``tests/core/test_shard_reconcile.py`` and the benchmark's
identity assertion.)

Two sub-contracts get their own differential properties on top of the
end-to-end runs: the **shard-local context build** (PARTITION and
optional marking over a :func:`~repro.core.context.EvalContext.for_servers`
restriction must map back through the global entry maps to the masked
full-model computation, for *any* server subset) and the
**scatter/gather OFF_LOADING split** (``offload_repository`` driven by
the process-parallel :class:`~repro.core.shard._ShardedScatter` must
leave the allocation and outcome bit-identical to the serial default).

A third property pins the **delta-round wire protocol** itself: random
off-loading sequences replayed through worker-resident delta shipping —
with resyncs randomly forced every 1-3 batches — and through the
full-state-per-batch baseline (``sync_mode="full"``) must land on the
same marks, replica sets, achieved loads and outcome as the serial
reference, for any shard plan the planner can produce.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.constraints import repository_load
from repro.core.context import EvalContext
from repro.core.cost_model import CostModel
from repro.core.fast_partition import (
    optional_marks_batched,
    partition_pages_batched,
)
from repro.core.offload import OffloadConfig, offload_repository
from repro.core.partition import partition_all
from repro.core.policy import PolicyResult, RepositoryReplicationPolicy
from repro.core.shard import (
    InlineShardPool,
    _ShardedScatter,
    _ShardOptions,
    plan_shards,
)
from repro.experiments.scaling import (
    clone_with_capacities,
    processing_capacities_for_fraction,
    repo_capacity_for_fraction,
    storage_capacities_for_fraction,
)
from tests.properties.strategies import system_models


def _assert_bit_identical(
    sharded: PolicyResult, batched: PolicyResult, label: str
) -> None:
    """Every decision-determined field of the two results must match."""
    a, b = sharded.allocation, batched.allocation
    assert np.array_equal(a.comp_local, b.comp_local), label
    assert np.array_equal(a.opt_local, b.opt_local), label
    for i in range(a.model.n_servers):
        assert a.replicas[i] == b.replicas[i], label
    assert sharded.objective == batched.objective, label
    assert (
        sharded.unconstrained_objective == batched.unconstrained_objective
    ), label
    assert sharded.phases_run == batched.phases_run, label
    assert sharded.storage_stats == batched.storage_stats, label
    assert sharded.processing_stats == batched.processing_stats, label
    assert sharded.offload_outcome == batched.offload_outcome, label
    assert sharded.constraints.ok == batched.constraints.ok, label
    a.check_invariants()


def _shard_counts(n_servers: int, data) -> list[int]:
    """1, 2, S and one ragged draw — deduplicated, ascending."""
    counts = {1, n_servers, min(2, n_servers)}
    counts.add(data.draw(st.integers(1, n_servers), label="ragged shards"))
    return sorted(counts)


def _run_all_shardings(model, data, optional_policy: str = "all") -> None:
    batched = RepositoryReplicationPolicy(
        optional_policy=optional_policy
    ).run(model)
    for shards in _shard_counts(model.n_servers, data):
        sharded = RepositoryReplicationPolicy(
            optional_policy=optional_policy,
            kernel="sharded",
            shards=shards,
            pool=InlineShardPool(),
        ).run(model)
        _assert_bit_identical(
            sharded, batched, f"shards={shards} of {model.n_servers}"
        )


@given(system_models(), st.data())
@settings(max_examples=40, deadline=None)
def test_sharded_identical_unconstrained(model, data):
    """Infinite capacities: the pipeline reduces to pure PARTITION, and
    every sharding of it must scatter back to the same allocation."""
    _run_all_shardings(model, data)


@given(
    system_models(max_servers=4, max_pages=10),
    st.floats(0.0, 1.0),
    st.floats(0.0, 1.0),
    st.floats(0.05, 1.0),
    st.data(),
)
@settings(max_examples=40, deadline=None)
def test_sharded_identical_constrained(model, sfrac, pfrac, rfrac, data):
    """Randomly tightened storage / processing / repository capacities:
    the restorations run inside shards, off-loading replays in the
    parent — decisions, stats and tie-breaks must match the reference."""
    ref = partition_all(model)
    m2 = clone_with_capacities(
        model,
        storage=storage_capacities_for_fraction(model, ref, sfrac) + 1.0,
        processing=processing_capacities_for_fraction(model, pfrac, ref) + 1e-9,
        repo_capacity=max(repo_capacity_for_fraction(ref, rfrac), 1e-6),
    )
    _run_all_shardings(m2, data)


@given(system_models(max_servers=4), st.floats(0.0, 1.0), st.data())
@settings(max_examples=25, deadline=None)
def test_sharded_identical_storage_only(model, frac, data):
    """Storage-only pressure with ``optional_policy="none"`` — the
    eviction/re-partition greedy is the most tie-break-sensitive loop."""
    ref = partition_all(model, optional_policy="none")
    m2 = clone_with_capacities(
        model,
        storage=storage_capacities_for_fraction(model, ref, frac) + 1.0,
    )
    _run_all_shardings(m2, data, optional_policy="none")


@given(system_models(), st.data())
@settings(max_examples=40, deadline=None)
def test_plan_shards_partitions_servers(model, data):
    """The shard plan is a true partition of the server set: every
    server in exactly one group, every group non-empty, ids ascending,
    and the plan is deterministic for equal models."""
    shards = data.draw(
        st.integers(1, model.n_servers), label="shard count"
    )
    groups = plan_shards(model, shards)
    assert len(groups) == shards
    seen = [i for g in groups for i in g]
    assert sorted(seen) == list(range(model.n_servers))
    for g in groups:
        assert len(g) >= 1
        assert list(g) == sorted(g)
    assert groups == plan_shards(model, shards)


@given(system_models(max_servers=4, max_pages=10), st.data())
@settings(max_examples=40, deadline=None)
def test_shard_local_context_matches_masked_full(model, data):
    """Shard-local context build: PARTITION and optional marking over a
    ``for_servers`` restriction, mapped back through the context's
    global entry maps, equal the full-model computation masked to the
    subset's entries — for any non-empty server subset."""
    servers = tuple(
        sorted(
            data.draw(
                st.sets(
                    st.integers(0, model.n_servers - 1), min_size=1
                ),
                label="server subset",
            )
        )
    )
    ctx = EvalContext.for_servers(model, servers)
    sub = ctx.model

    member = np.zeros(model.n_servers, dtype=bool)
    member[list(servers)] = True
    page_member = member[model.page_server]
    comp_member = page_member[model.comp_pages]
    opt_member = page_member[model.opt_pages]

    assert sub.n_servers == len(servers)
    assert sub.n_pages == int(page_member.sum())
    np.testing.assert_array_equal(
        ctx.global_comp_entries, np.flatnonzero(comp_member)
    )
    np.testing.assert_array_equal(
        ctx.global_opt_entries, np.flatnonzero(opt_member)
    )

    full_marks, _, _ = partition_pages_batched(
        model, page_ids=np.flatnonzero(page_member)
    )
    sub_marks, _, _ = partition_pages_batched(sub)
    got = np.zeros(len(model.comp_objects), dtype=bool)
    got[ctx.global_comp_entries[sub_marks]] = True
    np.testing.assert_array_equal(got, full_marks)

    full_opt = optional_marks_batched(model, "beneficial") & opt_member
    sub_opt = optional_marks_batched(sub, "beneficial")
    got_opt = np.zeros(len(model.opt_objects), dtype=bool)
    got_opt[ctx.global_opt_entries[sub_opt]] = True
    np.testing.assert_array_equal(got_opt, full_opt)


@given(system_models(max_servers=4, max_pages=10), st.floats(0.05, 0.9))
@settings(max_examples=25, deadline=None)
def test_parallel_scatter_matches_serial_offload(model, rfrac):
    """Scatter/gather OFF_LOADING: ``offload_repository`` driven by the
    process-parallel scatter (one single-server restricted absorption
    per addressed server, deltas applied in plan order) must leave the
    allocation and the outcome bit-identical to the serial default."""
    serial_alloc = partition_all(model, optional_policy="none")
    before = repository_load(serial_alloc)
    if before <= 0:
        return
    capacity = max(rfrac * before, 1e-6)
    cost = CostModel(model)
    serial_out = offload_repository(
        serial_alloc, cost, OffloadConfig(), capacity=capacity
    )

    par_alloc = partition_all(model, optional_policy="none")
    opts = _ShardOptions(
        alpha1=2.0, alpha2=1.0, optional_policy="none", record=False
    )
    scatter = _ShardedScatter(
        InlineShardPool(), ("model", model), model, opts
    )
    par_out = offload_repository(
        par_alloc, cost, OffloadConfig(), capacity=capacity, scatter=scatter
    )

    assert np.array_equal(serial_alloc.comp_local, par_alloc.comp_local)
    assert np.array_equal(serial_alloc.opt_local, par_alloc.opt_local)
    for i in range(model.n_servers):
        assert serial_alloc.replicas[i] == par_alloc.replicas[i]
    assert serial_out == par_out
    par_alloc.check_invariants()


@given(
    system_models(max_servers=4, max_pages=10),
    st.floats(0.05, 0.9),
    st.data(),
)
@settings(max_examples=25, deadline=None)
def test_delta_rounds_identical_to_full_state_and_serial(model, rfrac, data):
    """Delta-round wire protocol: random OFF_LOADING sequences replayed
    through worker-resident delta shipping (resyncs randomly forced
    every 1-3 batches, or never) and through the full-state-per-batch
    baseline must both match the serial reference bit for bit — marks,
    replica sets, achieved loads and outcome — under any shard plan.
    A resync may only ever change transport cost, never decisions."""
    serial_alloc = partition_all(model, optional_policy="none")
    before = repository_load(serial_alloc)
    if before <= 0:
        return
    capacity = max(rfrac * before, 1e-6)
    cost = CostModel(model)
    serial_out = offload_repository(
        serial_alloc, cost, OffloadConfig(), capacity=capacity
    )

    opts = _ShardOptions(
        alpha1=2.0, alpha2=1.0, optional_policy="none", record=False
    )
    groups = plan_shards(
        model, data.draw(st.integers(1, model.n_servers), label="shards")
    )
    resync_every = data.draw(
        st.none() | st.integers(1, 3), label="resync every"
    )
    arms = {
        "delta": {"groups": groups, "resync_every": resync_every},
        "full": {"groups": groups, "sync_mode": "full"},
    }
    for label, kwargs in arms.items():
        alloc = partition_all(model, optional_policy="none")
        scatter = _ShardedScatter(
            InlineShardPool(), ("model", model), model, opts, **kwargs
        )
        out = offload_repository(
            alloc, cost, OffloadConfig(), capacity=capacity, scatter=scatter
        )
        assert np.array_equal(serial_alloc.comp_local, alloc.comp_local), label
        assert np.array_equal(serial_alloc.opt_local, alloc.opt_local), label
        for i in range(model.n_servers):
            assert serial_alloc.replicas[i] == alloc.replicas[i], label
        assert out == serial_out, label
        alloc.check_invariants()
        # transport accounting: one record per round, both sides finite
        # and non-negative (the delta side includes sync payloads)
        for rec in scatter.rounds_bytes:
            assert rec["delta_bytes"] >= 0.0
            assert rec["full_bytes"] >= 0.0

"""Property-based tests: Allocation state-machine invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import Allocation
from tests.properties.strategies import models_with_allocations, system_models


@given(models_with_allocations())
@settings(max_examples=60, deadline=None)
def test_marks_always_subset_of_replicas(mw):
    _, alloc = mw
    alloc.check_invariants()


@given(models_with_allocations(), st.randoms(use_true_random=False))
@settings(max_examples=40, deadline=None)
def test_random_mutation_preserves_invariants(mw, rnd):
    model, alloc = mw
    ne_c = len(model.comp_objects)
    ne_o = len(model.opt_objects)
    for _ in range(30):
        op = rnd.random()
        if op < 0.4 and ne_c:
            alloc.set_comp_local(rnd.randrange(ne_c), rnd.random() < 0.5)
        elif op < 0.7 and ne_o:
            alloc.set_opt_local(rnd.randrange(ne_o), rnd.random() < 0.5)
        elif op < 0.85:
            i = rnd.randrange(model.n_servers)
            alloc.store(i, rnd.randrange(model.n_objects))
        else:
            i = rnd.randrange(model.n_servers)
            if alloc.replicas[i]:
                k = rnd.choice(sorted(alloc.replicas[i]))
                alloc.deallocate(i, k)
    alloc.check_invariants()


@given(models_with_allocations())
@settings(max_examples=40, deadline=None)
def test_deallocate_clears_all_marks(mw):
    model, alloc = mw
    for i in range(model.n_servers):
        for k in sorted(alloc.replicas[i]):
            alloc.deallocate(i, k)
        assert alloc.replicas[i] == set()
    assert not alloc.comp_local.any()
    assert not alloc.opt_local.any()


@given(models_with_allocations())
@settings(max_examples=40, deadline=None)
def test_copy_equality_and_independence(mw):
    model, alloc = mw
    dup = alloc.copy()
    assert dup == alloc
    ne_c = len(model.comp_objects)
    if ne_c:
        dup.set_comp_local(0, not dup.comp_local[0])
        assert dup != alloc


@given(models_with_allocations())
@settings(max_examples=40, deadline=None)
def test_stored_bytes_matches_replica_sum(mw):
    model, alloc = mw
    for i in range(model.n_servers):
        expected = sum(model.objects[k].size for k in alloc.replicas[i])
        assert alloc.stored_bytes(i) == expected


@given(system_models())
@settings(max_examples=40, deadline=None)
def test_matrix_roundtrip(model):
    """Allocation -> MatrixSet -> Allocation is the identity on marks."""
    from repro.core.matrices import MatrixSet
    from repro.core.partition import partition_all

    alloc = partition_all(model)
    back = MatrixSet.from_allocation(alloc).to_allocation(model)
    assert np.array_equal(back.comp_local, alloc.comp_local)
    assert np.array_equal(back.opt_local, alloc.opt_local)

"""Property-based tests: the protocol terminates under arbitrary faults."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.constraints import evaluate_constraints
from repro.network import FaultModel, LatencyModel, run_distributed_policy
from repro.network.messages import server_node
from repro.workload.generator import generate_workload
from repro.workload.params import WorkloadParams

_PARAMS = WorkloadParams.tiny().with_(repository_capacity=3.0)


def _model(seed: int):
    return generate_workload(_PARAMS, seed=seed)


@given(
    seed=st.integers(0, 50),
    drop=st.floats(0.0, 0.95),
    fault_seed=st.integers(0, 1000),
)
@settings(max_examples=40, deadline=None)
def test_lossy_protocol_always_terminates_consistent(seed, drop, fault_seed):
    model = _model(seed)
    result = run_distributed_policy(
        model, faults=FaultModel(drop_probability=drop, seed=fault_seed)
    )
    result.allocation.check_invariants()
    rep = evaluate_constraints(result.allocation)
    assert rep.storage_ok and rep.local_ok


@given(
    seed=st.integers(0, 50),
    crashed=st.sets(st.integers(0, 1), max_size=2),
)
@settings(max_examples=30, deadline=None)
def test_crash_stop_always_terminates(seed, crashed):
    model = _model(seed)
    faults = FaultModel(crashed={server_node(i) for i in crashed})
    result = run_distributed_policy(model, faults=faults)
    result.allocation.check_invariants()
    for i in crashed:
        assert result.allocation.replicas[i] == set()


@given(seed=st.integers(0, 30), delay=st.floats(0.01, 2.0))
@settings(max_examples=20, deadline=None)
def test_uniform_latency_never_changes_outcome(seed, delay):
    model = _model(seed)
    base = run_distributed_policy(model)
    timed = run_distributed_policy(
        model, latency=LatencyModel(default_delay=delay)
    )
    assert np.array_equal(base.allocation.comp_local, timed.allocation.comp_local)
    assert base.allocation.replicas == timed.allocation.replicas
    assert timed.makespan > 0.0

"""Hypothesis strategies for random system universes and allocations."""

from __future__ import annotations

import math

import numpy as np
from hypothesis import strategies as st

from repro.core.allocation import Allocation
from repro.core.types import (
    ObjectSpec,
    PageSpec,
    RepositorySpec,
    ServerSpec,
    StreamTopology,
    SystemModel,
)

__all__ = ["system_models", "mesh_models", "models_with_allocations"]


@st.composite
def system_models(
    draw,
    max_servers: int = 3,
    max_pages: int = 8,
    max_objects: int = 12,
) -> SystemModel:
    """A random small-but-structurally-rich :class:`SystemModel`."""
    n_servers = draw(st.integers(1, max_servers))
    n_objects = draw(st.integers(1, max_objects))
    n_pages = draw(st.integers(1, max_pages))

    objects = [
        ObjectSpec(k, draw(st.integers(1, 5000))) for k in range(n_objects)
    ]
    servers = [
        ServerSpec(
            server_id=i,
            storage_capacity=math.inf,
            processing_capacity=math.inf,
            rate=draw(st.floats(0.5, 100.0, allow_nan=False)),
            overhead=draw(st.floats(0.0, 5.0, allow_nan=False)),
            repo_rate=draw(st.floats(0.1, 50.0, allow_nan=False)),
            repo_overhead=draw(st.floats(0.0, 5.0, allow_nan=False)),
        )
        for i in range(n_servers)
    ]
    pages = []
    for j in range(n_pages):
        ids = list(range(n_objects))
        refs = draw(
            st.lists(
                st.sampled_from(ids),
                min_size=0,
                max_size=min(6, n_objects),
                unique=True,
            )
        )
        split = draw(st.integers(0, len(refs)))
        compulsory = tuple(refs[:split])
        optional = tuple(refs[split:])
        pages.append(
            PageSpec(
                page_id=j,
                server=draw(st.integers(0, n_servers - 1)),
                html_size=draw(st.integers(1, 2000)),
                frequency=draw(st.floats(0.0, 10.0, allow_nan=False)),
                compulsory=compulsory,
                optional=optional,
                optional_prob=(
                    draw(st.floats(0.0, 1.0, allow_nan=False)) if optional else 0.0
                ),
            )
        )
    return SystemModel(servers, RepositorySpec(), pages, objects)


@st.composite
def mesh_models(
    draw,
    min_streams: int = 2,
    max_streams: int = 4,
    max_servers: int = 3,
    max_pages: int = 8,
    max_objects: int = 12,
) -> SystemModel:
    """A random :class:`SystemModel` with a k-stream replica mesh.

    Column 0 of the topology is pinned to the servers' repository
    estimates (the :class:`SystemModel` invariant); further columns draw
    fresh rates/overheads, so any stream can win the argmin.
    """
    base = draw(
        system_models(
            max_servers=max_servers,
            max_pages=max_pages,
            max_objects=max_objects,
        )
    )
    k = draw(st.integers(min_streams, max_streams))
    if k == 2:
        return base
    n_extra = k - 2
    rate_cols = [[sv.repo_rate for sv in base.servers]]
    ovhd_cols = [[sv.repo_overhead for sv in base.servers]]
    for _ in range(n_extra):
        rate_cols.append(
            [
                draw(st.floats(0.1, 50.0, allow_nan=False))
                for _ in base.servers
            ]
        )
        ovhd_cols.append(
            [draw(st.floats(0.0, 5.0, allow_nan=False)) for _ in base.servers]
        )
    topology = StreamTopology(
        rates=np.array(rate_cols).T, overheads=np.array(ovhd_cols).T
    )
    return SystemModel(
        base.servers,
        base.repository,
        base.pages,
        base.objects,
        topology=topology,
    )


@st.composite
def models_with_allocations(draw) -> tuple[SystemModel, Allocation]:
    """A model plus a random consistent allocation over it."""
    model = draw(system_models())
    ne_c = len(model.comp_objects)
    ne_o = len(model.opt_objects)
    comp = np.array(
        draw(st.lists(st.booleans(), min_size=ne_c, max_size=ne_c)), dtype=bool
    )
    opt = np.array(
        draw(st.lists(st.booleans(), min_size=ne_o, max_size=ne_o)), dtype=bool
    )
    return model, Allocation(model, comp, opt)

"""Compute (and optionally refresh) the golden regression snapshots.

The goldens pin the *numerical results* of the replication pipeline on
seeded workloads so performance PRs cannot silently change allocations:

* ``table1_unconstrained`` — pure PARTITION on the seeded Table 1
  workload (all capacities relaxed): objective values ``D``/``D1``/``D2``
  and the per-server replica-set sizes.
* ``small_constrained_frac50`` — the full policy on the seeded ``small``
  workload with per-server storage clamped to 50% of the unconstrained
  need, exercising storage restoration and the re-partition path.
* ``small_processing_frac50`` — per-server processing clamped to 50% of
  the unconstrained MO-download load, exercising processing restoration
  (greedy remote switches + eager sibling rescoring).
* ``small_offload_frac50`` — repository capacity clamped to 50% of the
  post-restoration repository load, exercising the OFF_LOADING
  negotiation and its server-side absorption loop.
* ``dynamic_incremental`` — four epochs of the incremental re-planner
  under localized hot-set rotation at 60% storage, pinning the dirty-set
  detection, per-server rebuild, and churn accounting of the dynamic
  extension.

Refreshing (ONLY after an intentional algorithmic change, never to make
a perf PR pass):

    PYTHONPATH=src python -m tests.regression.refresh_goldens

then commit the updated ``goldens.json`` together with an explanation of
why the numbers legitimately moved.  ``test_golden_table1.py`` recomputes
the same quantities under every kernel — ``batched``, the ``scalar``
oracle and (for the full-policy scenarios) the ``sharded``
process-parallel kernel — and compares all of them against the *same*
snapshot: the goldens are kernel-independent by contract, so adding a
kernel never requires a refresh.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.core.partition import partition_all
from repro.core.policy import RepositoryReplicationPolicy
from repro.experiments.scaling import (
    clone_with_capacities,
    processing_capacities_for_fraction,
    repo_capacity_for_fraction,
    storage_capacities_for_fraction,
)
from repro.workload.generator import generate_workload
from repro.workload.params import WorkloadParams

GOLDEN_PATH = pathlib.Path(__file__).parent / "goldens.json"

#: Workload seed shared by snapshot and test.
SEED = 123


def _relaxed(params: WorkloadParams) -> WorkloadParams:
    return params.with_(
        storage_capacity=float("inf"),
        processing_capacity=float("inf"),
        repository_capacity=float("inf"),
    )


def compute_table1_unconstrained(kernel: str = "batched") -> dict:
    """Pure PARTITION on the relaxed Table 1 workload."""
    model = generate_workload(_relaxed(WorkloadParams.paper()), seed=SEED)
    policy = RepositoryReplicationPolicy(kernel=kernel)
    cost = policy.cost_model(model)
    alloc = partition_all(model, kernel=kernel)
    return {
        "D": cost.D(alloc),
        "D1": cost.D1(alloc),
        "D2": cost.D2(alloc),
        "replica_sizes": [len(r) for r in alloc.replicas],
        "comp_local": int(alloc.comp_local.sum()),
        "opt_local": int(alloc.opt_local.sum()),
    }


def compute_small_constrained(kernel: str = "batched") -> dict:
    """Full policy on the small workload at 50% storage."""
    model = generate_workload(_relaxed(WorkloadParams.small()), seed=SEED)
    reference = partition_all(model, kernel=kernel)
    caps = storage_capacities_for_fraction(model, reference, 0.5)
    clone = clone_with_capacities(model, storage=caps)
    result = RepositoryReplicationPolicy(kernel=kernel).run(clone)
    cost = RepositoryReplicationPolicy(kernel=kernel).cost_model(clone)
    alloc = result.allocation
    return {
        "D": cost.D(alloc),
        "D1": cost.D1(alloc),
        "D2": cost.D2(alloc),
        "replica_sizes": [len(r) for r in alloc.replicas],
        "comp_local": int(alloc.comp_local.sum()),
        "opt_local": int(alloc.opt_local.sum()),
        "evictions": result.storage_stats.evictions,
        "repartitioned_pages": result.storage_stats.repartitioned_pages,
    }


def compute_small_processing(kernel: str = "batched") -> dict:
    """Full policy on the small workload at 50% processing headroom."""
    model = generate_workload(_relaxed(WorkloadParams.small()), seed=SEED)
    reference = partition_all(model, kernel=kernel)
    caps = np.maximum(
        processing_capacities_for_fraction(model, 0.5, reference) + 1e-9,
        1e-6,
    )
    clone = clone_with_capacities(model, processing=caps)
    result = RepositoryReplicationPolicy(kernel=kernel).run(clone)
    cost = RepositoryReplicationPolicy(kernel=kernel).cost_model(clone)
    alloc = result.allocation
    return {
        "D": cost.D(alloc),
        "comp_local": int(alloc.comp_local.sum()),
        "opt_local": int(alloc.opt_local.sum()),
        "replica_sizes": [len(r) for r in alloc.replicas],
        "switches": result.processing_stats.switches,
        "deallocations": result.processing_stats.deallocations,
    }


def compute_small_offload(kernel: str = "batched") -> dict:
    """Full policy on the small workload at 50% repository capacity."""
    model = generate_workload(_relaxed(WorkloadParams.small()), seed=SEED)
    reference = partition_all(model, kernel=kernel)
    repo_cap = repo_capacity_for_fraction(reference, 0.5)
    clone = clone_with_capacities(model, repo_capacity=repo_cap)
    result = RepositoryReplicationPolicy(kernel=kernel).run(clone)
    cost = RepositoryReplicationPolicy(kernel=kernel).cost_model(clone)
    alloc = result.allocation
    out = result.offload_outcome
    return {
        "D": cost.D(alloc),
        "comp_local": int(alloc.comp_local.sum()),
        "opt_local": int(alloc.opt_local.sum()),
        "restored": out.restored,
        "rounds": out.rounds,
        "messages": out.messages,
        "final_repo_load": out.final_repo_load,
        "total_absorbed": out.total_absorbed,
    }


def compute_dynamic_incremental(kernel: str = "batched") -> dict:
    """Incremental re-planner trajectory on the seeded small workload.

    Four epochs of localized hot-set rotation (one server per epoch) at
    60% storage: every epoch stays on the incremental path, pinning the
    dirty-set detection, the per-server rebuild, the localized Eq. 8-10
    repair, and the churn accounting.
    """
    from repro.dynamic.drift import rotate_hot_set
    from repro.dynamic.incremental import (
        IncrementalConfig,
        IncrementalReplanner,
    )

    model = generate_workload(_relaxed(WorkloadParams.small()), seed=SEED)
    reference = partition_all(model, kernel=kernel)
    caps = storage_capacities_for_fraction(model, reference, 0.6)
    truth = clone_with_capacities(model, storage=caps)
    policy = RepositoryReplicationPolicy(kernel=kernel)
    replanner = IncrementalReplanner(
        policy, truth, IncrementalConfig(audit_every=0)
    )
    epochs = []
    for epoch in range(1, 5):
        truth = rotate_hot_set(
            truth, fraction=0.5, seed=epoch, servers=[epoch % truth.n_servers]
        )
        stats = replanner.replan(truth)
        epochs.append(
            {
                "mode": stats.mode,
                "n_dirty": stats.n_dirty,
                "rebuilt_servers": list(stats.rebuilt_servers),
                "objective": stats.objective,
                "churn_bytes_added": stats.churn_bytes_added,
                "churn_bytes_removed": stats.churn_bytes_removed,
            }
        )
    return {
        "epochs": epochs,
        "full_resolves": replanner.full_resolves,
        "incremental_replans": replanner.incremental_replans,
    }


def compute_goldens(kernel: str = "batched") -> dict:
    return {
        "seed": SEED,
        "table1_unconstrained": compute_table1_unconstrained(kernel),
        "small_constrained_frac50": compute_small_constrained(kernel),
        "small_processing_frac50": compute_small_processing(kernel),
        "small_offload_frac50": compute_small_offload(kernel),
        "dynamic_incremental": compute_dynamic_incremental(kernel),
    }


def main() -> None:
    goldens = compute_goldens()
    GOLDEN_PATH.write_text(json.dumps(goldens, indent=2) + "\n")
    print(f"wrote {GOLDEN_PATH}")
    print(json.dumps(goldens, indent=2))


if __name__ == "__main__":
    main()

"""Golden regression tests: seeded Table 1 results are pinned.

The snapshots in ``goldens.json`` record ``D``, ``D1``, ``D2`` and the
per-server replica-set sizes for the seeded workloads, computed once and
committed.  Every run recomputes them under **both** PARTITION kernels:
a future perf PR that changes any allocation — even one that leaves the
balanced page max intact — fails here instead of silently shifting the
paper's figures.

To refresh after an *intentional* algorithmic change, see
``tests/regression/refresh_goldens.py``.
"""

import json

import pytest

from tests.regression.refresh_goldens import (
    GOLDEN_PATH,
    compute_small_constrained,
    compute_small_offload,
    compute_small_processing,
    compute_table1_unconstrained,
)

KERNELS = ("batched", "scalar")

#: Full-policy scenarios additionally run under the sharded
#: process-parallel kernel (``repro.core.shard``): its reconciled output
#: must be byte-identical to the batched goldens, so no separate
#: snapshots exist — a divergence fails against the same numbers.
POLICY_KERNELS = ("batched", "scalar", "sharded")

#: Objective values are deterministic given the seed; the loose relative
#: tolerance only absorbs float-summation differences across NumPy
#: versions, not algorithmic drift.
REL = 1e-9


@pytest.fixture(scope="module")
def goldens() -> dict:
    return json.loads(GOLDEN_PATH.read_text())


def assert_matches_golden(observed: dict, golden: dict) -> None:
    for key, want in golden.items():
        got = observed[key]
        if isinstance(want, float):
            assert got == pytest.approx(want, rel=REL), key
        else:
            assert got == want, key


@pytest.mark.slow
@pytest.mark.parametrize("kernel", KERNELS)
def test_table1_unconstrained_golden(goldens, kernel):
    observed = compute_table1_unconstrained(kernel)
    assert_matches_golden(observed, goldens["table1_unconstrained"])


@pytest.mark.parametrize("kernel", KERNELS)
def test_small_constrained_golden(goldens, kernel):
    observed = compute_small_constrained(kernel)
    assert_matches_golden(observed, goldens["small_constrained_frac50"])


@pytest.mark.parametrize("kernel", POLICY_KERNELS)
def test_small_processing_golden(goldens, kernel):
    observed = compute_small_processing(kernel)
    assert_matches_golden(observed, goldens["small_processing_frac50"])


@pytest.mark.parametrize("kernel", POLICY_KERNELS)
def test_small_offload_golden(goldens, kernel):
    observed = compute_small_offload(kernel)
    assert_matches_golden(observed, goldens["small_offload_frac50"])

"""Golden regression test for the incremental re-planner trajectory.

``goldens.json`` pins four epochs of the seeded dynamic scenario —
which pages went dirty, which servers were rebuilt, the exact objective
and the replica bytes moved — so a change to the dirty-set rule, the
per-server rebuild, or the churn accounting fails here instead of
silently shifting the extension's measurements.  Both policy kernels
are compared against the *same* snapshot (the pipeline is
kernel-independent by contract).

To refresh after an *intentional* algorithmic change, see
``tests/regression/refresh_goldens.py``.
"""

import json

import pytest

from tests.regression.refresh_goldens import (
    GOLDEN_PATH,
    compute_dynamic_incremental,
)

KERNELS = ("batched", "scalar")

REL = 1e-9


@pytest.fixture(scope="module")
def golden() -> dict:
    return json.loads(GOLDEN_PATH.read_text())["dynamic_incremental"]


@pytest.mark.slow
@pytest.mark.parametrize("kernel", KERNELS)
def test_dynamic_incremental_golden(golden, kernel):
    observed = compute_dynamic_incremental(kernel)
    assert observed["full_resolves"] == golden["full_resolves"]
    assert observed["incremental_replans"] == golden["incremental_replans"]
    assert len(observed["epochs"]) == len(golden["epochs"])
    for i, (got, want) in enumerate(zip(observed["epochs"], golden["epochs"])):
        assert got["mode"] == want["mode"], f"epoch {i}"
        assert got["n_dirty"] == want["n_dirty"], f"epoch {i}"
        assert got["rebuilt_servers"] == want["rebuilt_servers"], f"epoch {i}"
        assert got["objective"] == pytest.approx(
            want["objective"], rel=REL
        ), f"epoch {i}"
        assert got["churn_bytes_added"] == pytest.approx(
            want["churn_bytes_added"], rel=REL
        ), f"epoch {i}"
        assert got["churn_bytes_removed"] == pytest.approx(
            want["churn_bytes_removed"], rel=REL
        ), f"epoch {i}"

"""Tests for repro.baselines.popularity — the popularity-greedy baseline."""

import numpy as np
import pytest

from repro.baselines.popularity import PopularityPolicy
from repro.core.constraints import storage_used
from repro.core.cost_model import CostModel
from repro.core.partition import partition_all


class TestReplicaSelection:
    def test_budget_respected(self, small_model):
        budget = 5e7
        alloc = PopularityPolicy(storage_bytes=budget).allocate(small_model)
        assert np.all(alloc.stored_bytes_all() <= budget + 1e-6)

    def test_zero_budget_nothing_stored(self, micro_model):
        alloc = PopularityPolicy(storage_bytes=0.0).allocate(micro_model)
        assert all(len(r) == 0 for r in alloc.replicas)
        assert not alloc.comp_local.any()

    def test_huge_budget_stores_all_references(self, micro_model):
        alloc = PopularityPolicy(storage_bytes=1e12).allocate(micro_model)
        for i in range(micro_model.n_servers):
            assert alloc.replicas[i] == micro_model.objects_referenced_by_server(i)

    def test_most_popular_per_byte_first(self, micro_model):
        # S0 rate/byte scores: obj0 1/100=.01, obj2 2/300=.0067,
        # obj1 1/200=.005, obj4 0.1/50=.002.  Greedy packing into 300 B:
        # obj0 (100) fits, obj2 (300) would overflow, obj1 (200) fits.
        alloc = PopularityPolicy(storage_bytes=300.0).allocate(micro_model)
        assert alloc.replicas[0] == {0, 1}

    def test_default_budget_uses_model_capacity(self):
        from tests.conftest import build_micro_model

        m = build_micro_model(storage=(700.0, 800.0))
        alloc = PopularityPolicy().allocate(m)
        assert np.all(storage_used(alloc) <= np.array([700.0, 800.0]) + 1e-6)


class TestMarking:
    def test_all_stored_marks_everything_stored(self, micro_model):
        alloc = PopularityPolicy(storage_bytes=1e12, marking="all-stored").allocate(
            micro_model
        )
        assert alloc.comp_local.all()

    def test_balanced_equals_partition_at_full_budget(self, micro_model):
        alloc = PopularityPolicy(storage_bytes=1e12, marking="balanced").allocate(
            micro_model
        )
        ref = partition_all(micro_model)
        assert np.array_equal(alloc.comp_local, ref.comp_local)

    def test_balanced_no_worse_objective(self, small_model):
        budget = 5e7
        cost = CostModel(small_model)
        a = PopularityPolicy(storage_bytes=budget, marking="all-stored").allocate(
            small_model
        )
        b = PopularityPolicy(storage_bytes=budget, marking="balanced").allocate(
            small_model
        )
        assert cost.D(b) <= cost.D(a) + 1e-6

    def test_same_replica_bytes_across_markings(self, small_model):
        budget = 5e7
        a = PopularityPolicy(storage_bytes=budget, marking="all-stored").allocate(
            small_model
        )
        b = PopularityPolicy(storage_bytes=budget, marking="balanced").allocate(
            small_model
        )
        assert a.replicas == b.replicas

    def test_invalid_marking_rejected(self):
        with pytest.raises(ValueError, match="marking"):
            PopularityPolicy(marking="nope")  # type: ignore[arg-type]

    def test_invariants(self, small_model):
        alloc = PopularityPolicy(storage_bytes=3e7, marking="balanced").allocate(
            small_model
        )
        alloc.check_invariants()

    def test_name(self):
        assert PopularityPolicy(marking="balanced").name == "popularity-balanced"

"""Tests for repro.baselines — Remote / Local / ideal-LRU policies."""

import numpy as np
import pytest

from repro.baselines import (
    AllocationPolicy,
    IdealLRUPolicy,
    LocalPolicy,
    RemotePolicy,
)
from repro.core.cost_model import CostModel
from repro.simulation.perturbation import IDENTITY_PERTURBATION


class TestRemotePolicy:
    def test_no_marks_no_replicas(self, micro_model):
        a = RemotePolicy().allocate(micro_model)
        assert not a.comp_local.any()
        assert not a.opt_local.any()
        assert all(len(r) == 0 for r in a.replicas)

    def test_is_allocation_policy(self):
        assert isinstance(RemotePolicy(), AllocationPolicy)
        assert RemotePolicy().name == "remote"


class TestLocalPolicy:
    def test_all_marks(self, micro_model):
        a = LocalPolicy().allocate(micro_model)
        assert a.comp_local.all()
        assert a.opt_local.all()

    def test_replicas_cover_references(self, micro_model):
        a = LocalPolicy().allocate(micro_model)
        for i in range(micro_model.n_servers):
            assert a.replicas[i] == micro_model.objects_referenced_by_server(i)

    def test_name(self):
        assert LocalPolicy().name == "local"


class TestOrdering:
    def test_remote_worst_on_micro(self, micro_model):
        """With repo links slower than local links, remote must cost the
        most under the estimated attributes."""
        cost = CostModel(micro_model)
        d_remote = cost.D(RemotePolicy().allocate(micro_model))
        d_local = cost.D(LocalPolicy().allocate(micro_model))
        assert d_remote > d_local


class TestIdealLRUPolicy:
    def test_evaluate(self, small_model, small_params, small_trace):
        policy = IdealLRUPolicy(cache_bytes=1e7)
        sim, stats = policy.evaluate(small_trace, IDENTITY_PERTURBATION, seed=3)
        assert sim.n_requests == small_trace.n_requests
        assert 0.0 <= stats.hit_rate <= 1.0

    def test_frozen_config(self):
        policy = IdealLRUPolicy(cache_bytes=1.0)
        with pytest.raises(AttributeError):
            policy.cache_bytes = 2.0  # type: ignore[misc]

    def test_name(self):
        assert IdealLRUPolicy(cache_bytes=1.0).name == "ideal-lru"

    def test_constrained_service_prob(self, small_trace):
        unconstrained = IdealLRUPolicy(cache_bytes=1e18)
        constrained = IdealLRUPolicy(cache_bytes=1e18, local_service_prob=0.3)
        su, _ = unconstrained.evaluate(small_trace, IDENTITY_PERTURBATION, seed=3)
        sc, _ = constrained.evaluate(small_trace, IDENTITY_PERTURBATION, seed=3)
        assert sc.mean_page_time > su.mean_page_time

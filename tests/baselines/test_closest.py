"""Tests for the Closest baseline and the baseline scoreboard."""

import numpy as np
import pytest

from repro.analysis.compare import compare_baselines
from repro.baselines.closest import ClosestStreamPolicy
from repro.baselines.local import LocalPolicy
from repro.core.types import (
    ObjectSpec,
    PageSpec,
    RepositorySpec,
    ServerSpec,
    StreamTopology,
    SystemModel,
)
from repro.workload.generator import generate_workload
from repro.workload.params import WorkloadParams


def _one_server_mesh(local_rate, stream_rates):
    """One server, one page over two objects, remote streams as given."""
    server = ServerSpec(
        server_id=0,
        storage_capacity=np.inf,
        processing_capacity=np.inf,
        rate=local_rate,
        overhead=1.0,
        repo_rate=stream_rates[0],
        repo_overhead=2.0,
    )
    objects = [ObjectSpec(0, 100), ObjectSpec(1, 200)]
    pages = [
        PageSpec(
            page_id=0,
            server=0,
            html_size=50,
            frequency=1.0,
            compulsory=(0,),
            optional=(1,),
            optional_prob=0.1,
        )
    ]
    topology = StreamTopology(
        rates=np.array([stream_rates], dtype=float),
        overheads=np.full((1, len(stream_rates)), 2.0),
    )
    return SystemModel(
        [server], RepositorySpec(), pages, objects, topology=topology
    )


class TestClosestStreamPolicy:
    def test_k2_table1_rates_degenerate_to_local(self):
        # Table 1 local links (3-10 KB/s) always beat the repository
        # (0.3-2 KB/s), so at k=2 Closest is exactly Local
        model = generate_workload(WorkloadParams.tiny(), seed=3)
        closest = ClosestStreamPolicy().allocate(model)
        local = LocalPolicy().allocate(model)
        assert closest == local

    def test_fast_mesh_site_wins_over_local(self):
        model = _one_server_mesh(local_rate=10.0, stream_rates=(1.0, 100.0))
        alloc = ClosestStreamPolicy().allocate(model)
        assert not alloc.comp_local.any()
        assert not alloc.opt_local.any()
        assert (alloc.comp_stream == 2).all()

    def test_local_wins_ties(self):
        model = _one_server_mesh(local_rate=10.0, stream_rates=(1.0, 10.0))
        alloc = ClosestStreamPolicy().allocate(model)
        assert alloc.comp_local.all()
        assert alloc.opt_local.all()

    def test_lowest_stream_index_wins_remote_ties(self):
        model = _one_server_mesh(local_rate=10.0, stream_rates=(50.0, 50.0))
        alloc = ClosestStreamPolicy().allocate(model)
        assert not alloc.comp_local.any()
        assert (alloc.comp_stream == 1).all()


class TestCompareBaselines:
    def test_scoreboard_sorted_and_normalised(self):
        model = generate_workload(WorkloadParams.tiny(), seed=3)
        scores = compare_baselines(model)
        names = [s.name for s in scores]
        assert set(names) == {"remote", "local", "closest"}
        assert scores[0].over_best_pct == 0.0
        assert all(
            scores[i].objective <= scores[i + 1].objective
            for i in range(len(scores) - 1)
        )
        assert all(s.over_best_pct >= 0.0 for s in scores)

    def test_extra_allocation_participates(self):
        from repro.core.partition import partition_all

        model = generate_workload(WorkloadParams.tiny(), seed=3)
        alloc = partition_all(model)
        scores = compare_baselines(model, extra={"proposed": alloc})
        by_name = {s.name: s for s in scores}
        assert "proposed" in by_name
        # unconstrained PARTITION beats every naive baseline
        assert by_name["proposed"].over_best_pct == 0.0
        assert scores[0].name == "proposed"

    def test_mesh_scoreboard_runs_at_k3(self):
        params = WorkloadParams.tiny().with_(n_streams=3, n_repositories=2)
        model = generate_workload(params, seed=3)
        scores = compare_baselines(model)
        assert {s.name for s in scores} == {"remote", "local", "closest"}

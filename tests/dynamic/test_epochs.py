"""Tests for repro.dynamic.epochs — the E1 harness."""

import pytest

from repro.dynamic.epochs import (
    DynamicExperimentResult,
    EpochConfig,
    run_dynamic_experiment,
)
from repro.workload.params import WorkloadParams


@pytest.fixture(scope="module")
def result():
    # small (not tiny) scale: with only a dozen pages the greedy's local
    # optima and perturbation noise would swamp the staleness signal
    return run_dynamic_experiment(
        params=WorkloadParams.small(),
        config=EpochConfig(
            n_epochs=4, drift_every=2, requests_per_server=400
        ),
        seed=5,
    )


class TestEpochConfig:
    def test_defaults_valid(self):
        EpochConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_epochs": 0},
            {"reallocate_every": 0},
            {"rotation_fraction": 1.5},
            {"storage_fraction": 0.0},
            {"drift_every": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            EpochConfig(**kwargs)


class TestRunDynamicExperiment:
    def test_epoch_series_lengths(self, result):
        assert result.epochs == [0, 1, 2, 3]
        assert len(result.static) == 4
        assert len(result.periodic) == 4
        assert len(result.oracle) == 4

    def test_epoch0_all_equal(self, result):
        assert result.static[0] == pytest.approx(result.periodic[0])
        assert result.static[0] == pytest.approx(result.oracle[0])

    def test_oracle_is_best_on_average(self, result):
        import numpy as np

        # the greedy is not optimal and measurement is perturbed, so
        # allow a small tolerance on the ordering
        assert np.mean(result.oracle) <= np.mean(result.static) * 1.02
        assert np.mean(result.oracle) <= np.mean(result.periodic) * 1.02

    def test_reallocation_count(self, result):
        # reallocate_every=1 over epochs 1..3
        assert result.reallocations == 3

    def test_metrics(self, result):
        # staleness penalty well-defined and not absurd
        assert -0.2 < result.staleness_penalty() < 2.0
        assert -0.2 < result.periodic_gap() < 2.0

    def test_render(self, result):
        out = result.render()
        assert "epoch" in out and "oracle" in out and "staleness" in out

    def test_deterministic(self):
        cfg = EpochConfig(n_epochs=2, requests_per_server=200)
        a = run_dynamic_experiment(WorkloadParams.tiny(), cfg, seed=1)
        b = run_dynamic_experiment(WorkloadParams.tiny(), cfg, seed=1)
        assert a.static == b.static
        assert a.periodic == b.periodic

    def test_sparse_reallocation(self):
        cfg = EpochConfig(
            n_epochs=4, reallocate_every=2, requests_per_server=200
        )
        res = run_dynamic_experiment(WorkloadParams.tiny(), cfg, seed=1)
        assert res.reallocations == 1  # only epoch 2


    def test_churn_tracked_per_reallocation(self, result):
        # one entry per re-allocation, no-ops included — the old
        # dataclass workaround allowed the lists to fall out of step
        assert len(result.churn_bytes) == result.reallocations
        assert len(result.churn_bytes_removed) == result.reallocations
        assert all(b >= 0 for b in result.churn_bytes)
        assert all(b >= 0 for b in result.churn_bytes_removed)
        assert "MiB in" in result.render()

    def test_incremental_strategy_measured(self, result):
        assert len(result.incremental) == len(result.epochs)
        assert result.incremental[0] == pytest.approx(result.static[0])
        assert (
            len(result.incremental_churn_bytes)
            == result.incremental_reallocations
        )
        assert (
            len(result.incremental_churn_bytes_removed)
            == result.incremental_reallocations
        )
        assert 0 <= result.incremental_full_resolves <= (
            result.incremental_reallocations
        )
        # under drift the incremental plan should stay in the oracle's
        # neighbourhood, far from pathological
        assert -0.2 < result.incremental_gap() < 2.0

    def test_strategy_subset_is_paired(self):
        # dropping strategies must not shift the others' random streams
        cfg = EpochConfig(n_epochs=2, requests_per_server=200)
        full = run_dynamic_experiment(WorkloadParams.tiny(), cfg, seed=1)
        sub = run_dynamic_experiment(
            WorkloadParams.tiny(), cfg, seed=1, strategies=["static", "oracle"]
        )
        assert sub.static == full.static
        assert sub.oracle == full.oracle
        assert sub.periodic == []
        assert sub.incremental == []
        assert sub.reallocations == 0

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown strategies"):
            run_dynamic_experiment(
                WorkloadParams.tiny(),
                EpochConfig(n_epochs=1),
                strategies=["nightly"],
            )

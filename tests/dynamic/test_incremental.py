"""Tests for repro.dynamic.incremental — the incremental re-planner."""

import numpy as np
import pytest

from repro.core.allocation import Allocation
from repro.core.constraints import evaluate_constraints
from repro.core.policy import RepositoryReplicationPolicy
from repro.dynamic.drift import (
    jitter_frequencies,
    replace_frequencies,
    rotate_hot_set,
)
from repro.dynamic.incremental import (
    IncrementalConfig,
    IncrementalReplanner,
    ReplanStats,
)
from repro.workload.generator import generate_workload
from repro.workload.params import WorkloadParams


@pytest.fixture(scope="module")
def policy():
    return RepositoryReplicationPolicy()


@pytest.fixture(scope="module")
def constrained_model():
    """Small model with storage at 60% of the unconstrained footprint,
    so restoration actually has work to do after drift."""
    from repro.core.partition import partition_all
    from repro.experiments.scaling import (
        clone_with_capacities,
        storage_capacities_for_fraction,
    )

    base = generate_workload(WorkloadParams.small(), seed=7)
    caps = storage_capacities_for_fraction(base, partition_all(base), 0.6)
    return clone_with_capacities(base, storage=caps)


class TestIncrementalConfig:
    def test_defaults_valid(self):
        IncrementalConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dirty_threshold": -0.1},
            {"full_resolve_dirty_fraction": 0.0},
            {"full_resolve_dirty_fraction": 1.5},
            {"churn_budget_bytes": 0.0},
            {"churn_budget_bytes": -5.0},
            {"audit_every": -1},
            {"gap_threshold": -0.01},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            IncrementalConfig(**kwargs)


class TestDirtyPages:
    def test_detects_only_drifted_pages(self, micro_model, policy):
        rp = IncrementalReplanner(policy, micro_model)
        f = micro_model.frequencies.copy()
        f[1] *= 1.2  # 20% move, well past the 5% default threshold
        clone = replace_frequencies(micro_model, f)
        assert rp.dirty_pages(clone).tolist() == [1]

    def test_below_threshold_clean(self, micro_model, policy):
        rp = IncrementalReplanner(policy, micro_model)
        f = micro_model.frequencies * 1.01
        clone = replace_frequencies(micro_model, f)
        assert rp.dirty_pages(clone).size == 0

    def test_identical_frequencies_clean(self, micro_model, policy):
        rp = IncrementalReplanner(policy, micro_model)
        clone = replace_frequencies(micro_model, micro_model.frequencies)
        assert rp.dirty_pages(clone).size == 0


class TestBitIdentity:
    def test_empty_dirty_set_matches_full_resolve(self, tiny_model, policy):
        full = policy.run(tiny_model)
        rp = IncrementalReplanner(
            policy, tiny_model, initial_allocation=full.allocation
        )
        clone = replace_frequencies(tiny_model, tiny_model.frequencies)
        stats = rp.replan(clone)

        assert stats.mode == "incremental"
        assert stats.n_dirty == 0
        # the allocation is bit-identical to the from-scratch solve on the
        # identical-frequency clone (which, the pipeline being
        # deterministic, equals the epoch-0 solve)
        resolve = policy.run(clone)
        for ref in (full.allocation, resolve.allocation):
            assert np.array_equal(rp.allocation.comp_local, ref.comp_local)
            assert np.array_equal(rp.allocation.opt_local, ref.opt_local)
            assert rp.allocation.replicas == ref.replicas
        assert stats.objective == pytest.approx(full.objective, rel=1e-12)
        assert stats.churn_bytes_added == 0.0
        assert stats.churn_bytes_removed == 0.0

    def test_adopts_new_model_instance(self, tiny_model, policy):
        rp = IncrementalReplanner(policy, tiny_model)
        clone = replace_frequencies(tiny_model, tiny_model.frequencies)
        rp.replan(clone)
        assert rp.model is clone
        assert rp.allocation.model is clone


class TestFeasibilityAndGap:
    def test_every_epoch_feasible_and_near_optimal(
        self, constrained_model, policy
    ):
        """Property (a) + (b): Eq. 8-10 hold after every incremental
        epoch, and the objective stays within a bounded gap of a
        from-scratch solve under gentle (<5% dirty) drift."""
        rp = IncrementalReplanner(
            policy, constrained_model, IncrementalConfig(audit_every=0)
        )
        truth = constrained_model
        saw_incremental = False
        for epoch in range(1, 5):
            truth = rotate_hot_set(truth, fraction=0.2, seed=epoch)
            stats = rp.replan(truth)
            if stats.mode == "incremental":
                saw_incremental = True
                assert stats.dirty_fraction < 0.25
            report = evaluate_constraints(rp.allocation)
            assert report.ok, f"epoch {epoch}: {report}"
            full = policy.run(truth)
            gap = (rp.objective - full.objective) / abs(full.objective)
            assert gap < 0.05, f"epoch {epoch}: gap {gap:.3%}"
            # the stats objective is the exact D of the adopted plan
            cost = policy.cost_model(truth)
            assert rp.objective == pytest.approx(
                cost.D(rp.allocation), rel=1e-12
            )
        assert saw_incremental

    def test_rebuild_is_local_to_drifted_server(
        self, constrained_model, policy
    ):
        rp = IncrementalReplanner(
            policy, constrained_model, IncrementalConfig(audit_every=0)
        )
        # bump a single page: only its hosting server can become dirty
        # or newly violated, so only that server is rebuilt
        j = 0
        f = constrained_model.frequencies.copy()
        f[j] *= 1.5
        truth = replace_frequencies(constrained_model, f)
        before = rp.allocation
        stats = rp.replan(truth)
        assert stats.mode == "incremental"
        assert stats.n_dirty == 1
        host = int(constrained_model.page_server[j])
        assert stats.rebuilt_servers == (host,)
        # every other server's plan is untouched
        for i in range(truth.n_servers):
            if i != host:
                assert rp.allocation.replicas[i] == before.replicas[i]


class TestHysteresis:
    def test_structural_change_forces_full(self, tiny_model, policy):
        rp = IncrementalReplanner(policy, tiny_model)
        other = generate_workload(WorkloadParams.tiny(), seed=99)
        stats = rp.replan(other)
        assert stats.mode == "full"
        assert stats.full_reason == "structural"
        assert stats.dirty_fraction == 1.0
        assert rp.full_resolves == 1

    def test_heavy_drift_forces_full(self, tiny_model, policy):
        rp = IncrementalReplanner(policy, tiny_model)
        heavy = jitter_frequencies(tiny_model, sigma=1.0, seed=3)
        stats = rp.replan(heavy)
        assert stats.mode == "full"
        assert stats.full_reason == "dirty-fraction"
        assert stats.dirty_fraction > 0.25

    def test_churn_budget_forces_full(self, constrained_model, policy):
        rp = IncrementalReplanner(
            policy,
            constrained_model,
            IncrementalConfig(churn_budget_bytes=1.0, audit_every=0),
        )
        truth = rotate_hot_set(constrained_model, fraction=0.2, seed=1)
        first = rp.replan(truth)
        assert first.mode == "incremental"
        assert first.churn_bytes_added + first.churn_bytes_removed > 1.0
        # any next re-plan exceeds the 1-byte budget accumulated above
        truth2 = rotate_hot_set(truth, fraction=0.2, seed=2)
        second = rp.replan(truth2)
        assert second.mode == "full"
        assert second.full_reason == "churn-budget"
        # the full solve resets the accumulated churn
        truth3 = rotate_hot_set(truth2, fraction=0.2, seed=3)
        third = rp.replan(truth3)
        assert third.mode == "incremental"

    def test_audit_measures_gap(self, constrained_model, policy):
        rp = IncrementalReplanner(
            policy,
            constrained_model,
            IncrementalConfig(audit_every=1, gap_threshold=10.0),
        )
        truth = rotate_hot_set(constrained_model, fraction=0.2, seed=1)
        stats = rp.replan(truth)
        assert stats.mode == "incremental"
        assert stats.audit_gap is not None
        assert stats.audit_gap < 10.0

    def test_audit_adopts_full_when_gap_exceeded(
        self, constrained_model, policy
    ):
        # start from a deliberately terrible allocation (nothing local):
        # the incremental path only repairs dirty pages, so the audit's
        # from-scratch solve wins by far more than the 2% threshold
        rp = IncrementalReplanner(
            policy,
            constrained_model,
            IncrementalConfig(audit_every=1, gap_threshold=0.02),
            initial_allocation=Allocation(constrained_model),
        )
        # single-page drift: only one server is rebuilt, the rest stay
        # terrible — the audit must notice and adopt the full solve
        f = constrained_model.frequencies.copy()
        f[0] *= 1.5
        truth = replace_frequencies(constrained_model, f)
        stats = rp.replan(truth)
        assert stats.mode == "full"
        assert stats.full_reason == "audit-gap"
        assert stats.audit_gap > 0.02
        # the adopted plan is the audit's from-scratch solution
        full = policy.run(truth)
        assert stats.objective == pytest.approx(full.objective, rel=1e-12)

    def test_audit_disabled(self, constrained_model, policy):
        rp = IncrementalReplanner(
            policy, constrained_model, IncrementalConfig(audit_every=0)
        )
        truth = rotate_hot_set(constrained_model, fraction=0.2, seed=1)
        stats = rp.replan(truth)
        assert stats.mode == "incremental"
        assert stats.audit_gap is None


class TestAccounting:
    def test_counts_replans_and_full_resolves(self, constrained_model, policy):
        rp = IncrementalReplanner(
            policy, constrained_model, IncrementalConfig(audit_every=0)
        )
        truth = constrained_model
        n_full = n_inc = 0
        for epoch in range(1, 4):
            truth = rotate_hot_set(truth, fraction=0.2, seed=epoch)
            stats = rp.replan(truth)
            if stats.mode == "full":
                n_full += 1
            else:
                n_inc += 1
        assert rp.full_resolves == n_full
        assert rp.incremental_replans == n_inc

    def test_initial_allocation_transplanted(self, tiny_model, policy):
        clone = replace_frequencies(tiny_model, tiny_model.frequencies)
        alloc = policy.run(tiny_model).allocation
        rp = IncrementalReplanner(policy, clone, initial_allocation=alloc)
        assert rp.allocation.model is clone

    def test_stats_shape(self, tiny_model, policy):
        rp = IncrementalReplanner(policy, tiny_model)
        stats = rp.replan(replace_frequencies(tiny_model, tiny_model.frequencies))
        assert isinstance(stats, ReplanStats)
        assert stats.mode in ("incremental", "full")
        assert stats.churn_bytes_added >= 0.0
        assert stats.churn_bytes_removed >= 0.0

"""Tests for repro.dynamic.estimator — frequency estimation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dynamic.estimator import estimate_frequencies, with_frequencies
from repro.workload.generator import generate_workload
from repro.workload.params import WorkloadParams
from repro.workload.trace import RequestTrace, generate_trace


class TestEstimateFrequencies:
    def test_converges_to_truth(self, small_model, small_params):
        trace = generate_trace(
            small_model, small_params, seed=2, requests_per_server=5000
        )
        est = estimate_frequencies(trace)
        true = small_model.frequencies
        # hot pages (large f) should be estimated within ~15%
        hot = true > np.percentile(true, 90)
        rel = np.abs(est[hot] - true[hot]) / true[hot]
        assert rel.mean() < 0.15

    def test_totals_match_truth_with_inferred_window(self, small_model, small_params):
        trace = generate_trace(
            small_model, small_params, seed=2, requests_per_server=1000
        )
        est = estimate_frequencies(trace, smoothing=0.0)
        for i in range(small_model.n_servers):
            ids = np.asarray(small_model.pages_by_server[i], dtype=np.intp)
            assert est[ids].sum() == pytest.approx(
                small_model.frequencies[ids].sum(), rel=1e-9
            )

    def test_smoothing_keeps_unseen_positive(self, small_model, small_params):
        trace = generate_trace(
            small_model, small_params, seed=2, requests_per_server=50
        )
        est = estimate_frequencies(trace, smoothing=0.5)
        assert est.min() > 0

    def test_zero_smoothing_allows_zero(self, small_model, small_params):
        trace = generate_trace(
            small_model, small_params, seed=2, requests_per_server=50
        )
        est = estimate_frequencies(trace, smoothing=0.0)
        assert est.min() == 0.0  # some cold page unseen in 50 requests

    def test_explicit_window(self, small_model, small_params):
        trace = generate_trace(
            small_model, small_params, seed=2, requests_per_server=100
        )
        est1 = estimate_frequencies(trace, observation_window=10.0)
        est2 = estimate_frequencies(trace, observation_window=20.0)
        assert np.allclose(est1, 2.0 * est2)

    def test_cross_server_trace_window_unbiased(self, micro_model):
        """Regression: the inferred per-server window must cover the
        requests *addressed to* server i's pages, not those *issued by*
        its clients.  Generator traces make the two coincide, so this
        hand-builds a trace where clients at server 1 fetch server 0's
        pages remotely — the old ``server_of_request == i`` window
        under-counted server 0 (3 local issues vs 4 addressed requests)
        and inflated every estimate on it by 4/3."""
        m = micro_model  # pages 0,1 hosted on s0; 2,3 on s1
        pages = np.array([0, 0, 0, 1, 2], dtype=np.intp)
        issuers = np.array([1, 1, 0, 0, 0], dtype=np.intp)
        trace = RequestTrace(
            model=m,
            page_of_request=pages,
            server_of_request=issuers,
            opt_entries=np.empty(0, dtype=np.intp),
            opt_owner=np.empty(0, dtype=np.intp),
        )
        est = estimate_frequencies(trace, smoothing=0.0)
        for i in range(m.n_servers):
            ids = np.asarray(m.pages_by_server[i], dtype=np.intp)
            assert est[ids].sum() == pytest.approx(
                m.frequencies[ids].sum(), rel=1e-12
            )
        # and the split follows the observed counts: page 0 got 3 of the
        # 4 requests to server 0, whose true total rate is 3 req/s
        assert est[0] == pytest.approx(3.0 * 3 / 4)
        assert est[1] == pytest.approx(3.0 * 1 / 4)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_converges_as_trace_grows(self, seed):
        """Hypothesis: the estimate approaches the true frequencies as
        the observation grows — the L1 error (relative to total rate)
        shrinks and is small for a long trace, for any sampling seed."""
        model = generate_workload(WorkloadParams.tiny(), seed=5)

        def l1_err(n_req):
            trace = generate_trace(
                model, WorkloadParams.tiny(), seed=seed,
                requests_per_server=n_req,
            )
            est = estimate_frequencies(trace, smoothing=0.0)
            diff = np.abs(est - model.frequencies).sum()
            return diff / model.frequencies.sum()

        err_short, err_long = l1_err(50), l1_err(5000)
        assert err_long < 0.2
        assert err_long <= err_short + 0.02

    def test_negative_smoothing_rejected(self, small_model, small_params):
        trace = generate_trace(small_model, small_params, seed=2, requests_per_server=10)
        with pytest.raises(ValueError, match="smoothing"):
            estimate_frequencies(trace, smoothing=-1.0)


class TestWithFrequencies:
    def test_planner_view(self, small_model, small_params):
        trace = generate_trace(
            small_model, small_params, seed=2, requests_per_server=500
        )
        est = estimate_frequencies(trace)
        view = with_frequencies(small_model, est)
        assert np.array_equal(view.frequencies, est)
        assert view.n_pages == small_model.n_pages

    def test_policy_runs_on_estimated_view(self, small_model, small_params):
        from repro.core.allocation import transplant_allocation
        from repro.core.policy import RepositoryReplicationPolicy
        from repro.simulation.engine import simulate_allocation

        trace = generate_trace(
            small_model, small_params, seed=2, requests_per_server=500
        )
        view = with_frequencies(small_model, estimate_frequencies(trace))
        result = RepositoryReplicationPolicy().run(view)
        moved = transplant_allocation(result.allocation, small_model)
        sim = simulate_allocation(moved, trace, seed=3)
        assert sim.n_requests == trace.n_requests

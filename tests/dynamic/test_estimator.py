"""Tests for repro.dynamic.estimator — frequency estimation."""

import numpy as np
import pytest

from repro.dynamic.estimator import estimate_frequencies, with_frequencies
from repro.workload.trace import generate_trace


class TestEstimateFrequencies:
    def test_converges_to_truth(self, small_model, small_params):
        trace = generate_trace(
            small_model, small_params, seed=2, requests_per_server=5000
        )
        est = estimate_frequencies(trace)
        true = small_model.frequencies
        # hot pages (large f) should be estimated within ~15%
        hot = true > np.percentile(true, 90)
        rel = np.abs(est[hot] - true[hot]) / true[hot]
        assert rel.mean() < 0.15

    def test_totals_match_truth_with_inferred_window(self, small_model, small_params):
        trace = generate_trace(
            small_model, small_params, seed=2, requests_per_server=1000
        )
        est = estimate_frequencies(trace, smoothing=0.0)
        for i in range(small_model.n_servers):
            ids = np.asarray(small_model.pages_by_server[i], dtype=np.intp)
            assert est[ids].sum() == pytest.approx(
                small_model.frequencies[ids].sum(), rel=1e-9
            )

    def test_smoothing_keeps_unseen_positive(self, small_model, small_params):
        trace = generate_trace(
            small_model, small_params, seed=2, requests_per_server=50
        )
        est = estimate_frequencies(trace, smoothing=0.5)
        assert est.min() > 0

    def test_zero_smoothing_allows_zero(self, small_model, small_params):
        trace = generate_trace(
            small_model, small_params, seed=2, requests_per_server=50
        )
        est = estimate_frequencies(trace, smoothing=0.0)
        assert est.min() == 0.0  # some cold page unseen in 50 requests

    def test_explicit_window(self, small_model, small_params):
        trace = generate_trace(
            small_model, small_params, seed=2, requests_per_server=100
        )
        est1 = estimate_frequencies(trace, observation_window=10.0)
        est2 = estimate_frequencies(trace, observation_window=20.0)
        assert np.allclose(est1, 2.0 * est2)

    def test_negative_smoothing_rejected(self, small_model, small_params):
        trace = generate_trace(small_model, small_params, seed=2, requests_per_server=10)
        with pytest.raises(ValueError, match="smoothing"):
            estimate_frequencies(trace, smoothing=-1.0)


class TestWithFrequencies:
    def test_planner_view(self, small_model, small_params):
        trace = generate_trace(
            small_model, small_params, seed=2, requests_per_server=500
        )
        est = estimate_frequencies(trace)
        view = with_frequencies(small_model, est)
        assert np.array_equal(view.frequencies, est)
        assert view.n_pages == small_model.n_pages

    def test_policy_runs_on_estimated_view(self, small_model, small_params):
        from repro.core.allocation import transplant_allocation
        from repro.core.policy import RepositoryReplicationPolicy
        from repro.simulation.engine import simulate_allocation

        trace = generate_trace(
            small_model, small_params, seed=2, requests_per_server=500
        )
        view = with_frequencies(small_model, estimate_frequencies(trace))
        result = RepositoryReplicationPolicy().run(view)
        moved = transplant_allocation(result.allocation, small_model)
        sim = simulate_allocation(moved, trace, seed=3)
        assert sim.n_requests == trace.n_requests

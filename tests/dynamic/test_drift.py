"""Tests for repro.dynamic.drift — access-pattern drift operators."""

import math

import numpy as np
import pytest

from repro.core.types import (
    ObjectSpec,
    PageSpec,
    RepositorySpec,
    ServerSpec,
    SystemModel,
)
from repro.dynamic.drift import (
    jitter_frequencies,
    replace_frequencies,
    rotate_hot_set,
)


def tied_frequency_model() -> SystemModel:
    """One server, 20 pages; pages 0-2 share frequency 7.0 (straddling
    the 10% hot boundary of n_hot=2), the rest strictly decreasing."""
    servers = [
        ServerSpec(
            server_id=0,
            storage_capacity=math.inf,
            processing_capacity=math.inf,
            rate=10.0,
            overhead=1.0,
            repo_rate=2.0,
            repo_overhead=2.0,
            name="s0",
        )
    ]
    objects = [ObjectSpec(object_id=0, size=100)]
    freqs = [7.0, 7.0, 7.0] + [6.5 - 0.25 * k for k in range(17)]
    pages = [
        PageSpec(
            page_id=j, server=0, html_size=100, frequency=f, compulsory=(0,)
        )
        for j, f in enumerate(freqs)
    ]
    return SystemModel(servers, RepositorySpec(math.inf), pages, objects)


class TestReplaceFrequencies:
    def test_values_planted(self, micro_model):
        new = np.array([5.0, 6.0, 7.0, 8.0])
        m2 = replace_frequencies(micro_model, new)
        assert np.array_equal(m2.frequencies, new)
        # structure untouched
        assert m2.pages[0].compulsory == micro_model.pages[0].compulsory
        assert m2.servers is micro_model.servers or tuple(m2.servers) == tuple(
            micro_model.servers
        )

    def test_original_untouched(self, micro_model):
        before = micro_model.frequencies.copy()
        replace_frequencies(micro_model, np.zeros(4))
        assert np.array_equal(micro_model.frequencies, before)

    def test_wrong_shape_rejected(self, micro_model):
        with pytest.raises(ValueError, match="shape"):
            replace_frequencies(micro_model, np.ones(3))

    def test_negative_rejected(self, micro_model):
        with pytest.raises(ValueError, match="non-negative"):
            replace_frequencies(micro_model, np.array([1.0, -1.0, 1.0, 1.0]))


class TestRotateHotSet:
    def test_preserves_per_server_totals(self, small_model):
        drifted = rotate_hot_set(small_model, 0.5, seed=3)
        for i in range(small_model.n_servers):
            ids = np.asarray(small_model.pages_by_server[i], dtype=np.intp)
            assert drifted.frequencies[ids].sum() == pytest.approx(
                small_model.frequencies[ids].sum()
            )

    def test_preserves_multiset_of_frequencies(self, small_model):
        drifted = rotate_hot_set(small_model, 1.0, seed=3)
        assert np.allclose(
            np.sort(drifted.frequencies), np.sort(small_model.frequencies)
        )

    def test_zero_fraction_identity(self, small_model):
        drifted = rotate_hot_set(small_model, 0.0, seed=3)
        assert np.array_equal(drifted.frequencies, small_model.frequencies)

    def test_full_rotation_changes_hot_pages(self, small_model):
        drifted = rotate_hot_set(small_model, 1.0, seed=3)
        # the set of hottest pages must change on at least one server
        changed = False
        for i in range(small_model.n_servers):
            ids = np.asarray(small_model.pages_by_server[i], dtype=np.intp)
            n_hot = max(1, int(np.ceil(0.10 * len(ids))))
            before = set(ids[np.argsort(small_model.frequencies[ids])[::-1][:n_hot]])
            after = set(ids[np.argsort(drifted.frequencies[ids])[::-1][:n_hot]])
            if before != after:
                changed = True
        assert changed

    def test_tied_frequencies_split_stably(self):
        """Regression: with frequencies tied at the hot boundary the
        split must keep ascending page-id order.  Pages 0-2 all have
        f=7.0 and n_hot=2, so the hot set is {0, 1} and page 2 stays
        cold.  The old ``argsort(f)[::-1]`` reversed the (unstable)
        introsort's tie order, picking {2, 1} instead — page 0 never
        rotated and the result depended on the sort implementation."""
        m = tied_frequency_model()
        drifted = rotate_hot_set(m, fraction=1.0, seed=0)
        f = drifted.frequencies
        # both hot pages swapped away their 7.0 (seed 0's cold partners
        # exclude the tied page 2) ...
        assert f[0] != 7.0
        assert f[1] != 7.0
        # ... while the tied-but-cold page 2 kept its frequency
        assert f[2] == 7.0

    def test_tied_frequencies_deterministic(self):
        m = tied_frequency_model()
        a = rotate_hot_set(m, fraction=1.0, seed=0)
        b = rotate_hot_set(m, fraction=1.0, seed=0)
        assert np.array_equal(a.frequencies, b.frequencies)

    def test_servers_scope_limits_rotation(self, small_model):
        drifted = rotate_hot_set(small_model, 1.0, seed=3, servers=[0])
        for i in range(1, small_model.n_servers):
            ids = np.asarray(small_model.pages_by_server[i], dtype=np.intp)
            assert np.array_equal(
                drifted.frequencies[ids], small_model.frequencies[ids]
            )
        ids0 = np.asarray(small_model.pages_by_server[0], dtype=np.intp)
        assert not np.array_equal(
            drifted.frequencies[ids0], small_model.frequencies[ids0]
        )

    def test_servers_out_of_range_rejected(self, small_model):
        with pytest.raises(ValueError, match="out of range"):
            rotate_hot_set(small_model, 0.5, servers=[small_model.n_servers])

    def test_bad_fraction_rejected(self, small_model):
        with pytest.raises(ValueError, match="fraction"):
            rotate_hot_set(small_model, 1.5)

    def test_deterministic(self, small_model):
        a = rotate_hot_set(small_model, 0.5, seed=9)
        b = rotate_hot_set(small_model, 0.5, seed=9)
        assert np.array_equal(a.frequencies, b.frequencies)


class TestJitter:
    def test_preserves_per_server_totals(self, small_model):
        drifted = jitter_frequencies(small_model, 0.3, seed=4)
        for i in range(small_model.n_servers):
            ids = np.asarray(small_model.pages_by_server[i], dtype=np.intp)
            assert drifted.frequencies[ids].sum() == pytest.approx(
                small_model.frequencies[ids].sum()
            )

    def test_zero_sigma_identity(self, small_model):
        drifted = jitter_frequencies(small_model, 0.0, seed=4)
        assert np.allclose(drifted.frequencies, small_model.frequencies)

    def test_changes_values(self, small_model):
        drifted = jitter_frequencies(small_model, 0.3, seed=4)
        assert not np.allclose(drifted.frequencies, small_model.frequencies)

    def test_negative_sigma_rejected(self, small_model):
        with pytest.raises(ValueError, match="sigma"):
            jitter_frequencies(small_model, -0.1)

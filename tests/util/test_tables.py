"""Tests for repro.util.tables — ASCII rendering."""

import pytest

from repro.util.tables import format_series, format_table


class TestFormatTable:
    def test_contains_headers_and_cells(self):
        out = format_table(["a", "bb"], [[1, "x"], [2, "y"]])
        assert "a" in out and "bb" in out
        assert "x" in out and "y" in out

    def test_title_included(self):
        out = format_table(["c"], [[1]], title="My Title")
        assert out.startswith("My Title")

    def test_column_alignment(self):
        out = format_table(["col"], [["short"], ["a-much-longer-cell"]])
        lines = [l for l in out.splitlines() if l.startswith("|")]
        widths = {len(l) for l in lines}
        assert len(widths) == 1  # all rows same width

    def test_mismatched_row_raises(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        out = format_table(["v"], [[0.123456789]])
        assert "0.1235" in out

    def test_empty_rows_ok(self):
        out = format_table(["a"], [])
        assert "a" in out


class TestFormatSeries:
    def test_basic(self):
        out = format_series("x", [1, 2], {"s": [0.1, 0.2]})
        assert "+10.0%" in out and "+20.0%" in out

    def test_multiple_series(self):
        out = format_series("x", [1], {"a": [0.5], "b": [-0.25]})
        assert "+50.0%" in out and "-25.0%" in out

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="points"):
            format_series("x", [1, 2], {"s": [0.1]})

    def test_custom_format(self):
        out = format_series("x", [1], {"s": [3.14159]}, y_format="{:.2f}")
        assert "3.14" in out

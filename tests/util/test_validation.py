"""Tests for repro.util.validation — argument validators."""

import math

import numpy as np
import pytest

from repro.util.validation import (
    check_fraction,
    check_nonnegative,
    check_positive,
    check_probability_matrix,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 2.5) == 2.5

    @pytest.mark.parametrize("bad", [0.0, -1.0, math.nan, math.inf])
    def test_rejects(self, bad):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", bad)


class TestCheckNonnegative:
    def test_accepts_zero(self):
        assert check_nonnegative("x", 0.0) == 0.0

    @pytest.mark.parametrize("bad", [-0.1, math.nan, math.inf])
    def test_rejects(self, bad):
        with pytest.raises(ValueError, match="x"):
            check_nonnegative("x", bad)


class TestCheckFraction:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_accepts(self, ok):
        assert check_fraction("f", ok) == ok

    @pytest.mark.parametrize("bad", [-0.01, 1.01, math.nan])
    def test_rejects(self, bad):
        with pytest.raises(ValueError, match="f"):
            check_fraction("f", bad)

    def test_disallow_zero(self):
        with pytest.raises(ValueError):
            check_fraction("f", 0.0, allow_zero=False)
        assert check_fraction("f", 0.5, allow_zero=False) == 0.5


class TestCheckProbabilityMatrix:
    def test_accepts_valid(self):
        arr = check_probability_matrix("p", np.array([[0.0, 0.5], [1.0, 0.3]]))
        assert arr.shape == (2, 2)

    def test_rejects_above_one(self):
        with pytest.raises(ValueError, match="p"):
            check_probability_matrix("p", np.array([1.2]))

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="p"):
            check_probability_matrix("p", np.array([-0.2]))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="p"):
            check_probability_matrix("p", np.array([math.nan]))

    def test_empty_ok(self):
        assert check_probability_matrix("p", np.array([])).size == 0

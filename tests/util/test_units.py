"""Tests for repro.util.units — rate/size conversions."""

import numpy as np
import pytest

from repro.util.units import GB, KB, MB, kbps_to_bps, rate_to_spb, spb_to_rate


class TestConstants:
    def test_kb(self):
        assert KB == 1024

    def test_mb(self):
        assert MB == 1024 * 1024

    def test_gb(self):
        assert GB == 1024**3


class TestKbpsToBps:
    def test_scalar(self):
        assert kbps_to_bps(3.0) == 3.0 * 1024

    def test_array(self):
        out = kbps_to_bps(np.array([1.0, 2.0]))
        assert np.allclose(out, [1024.0, 2048.0])


class TestRateToSpb:
    def test_scalar_roundtrip(self):
        rate = 6500.0
        assert spb_to_rate(rate_to_spb(rate)) == pytest.approx(rate)

    def test_scalar_value(self):
        assert rate_to_spb(2.0) == pytest.approx(0.5)

    def test_returns_float_for_scalar(self):
        assert isinstance(rate_to_spb(4.0), float)

    def test_array(self):
        out = rate_to_spb(np.array([2.0, 4.0]))
        assert np.allclose(out, [0.5, 0.25])

    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            rate_to_spb(0.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            rate_to_spb(np.array([1.0, -2.0]))

    def test_spb_zero_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            spb_to_rate(0.0)

    def test_paper_units_example(self):
        # A 300 KB object at 3 KB/s should take 100 seconds.
        rate = kbps_to_bps(3.0)
        size = 300 * KB
        assert size * rate_to_spb(rate) == pytest.approx(100.0)

"""Tests for repro.util.rng — deterministic generator management."""

import numpy as np
import pytest

from repro.util.rng import RngFactory, as_generator, spawn_generators


class TestAsGenerator:
    def test_none_gives_generator(self):
        g = as_generator(None)
        assert isinstance(g, np.random.Generator)

    def test_int_seed_reproducible(self):
        a = as_generator(123).integers(0, 1000, size=10)
        b = as_generator(123).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).integers(0, 2**31, size=8)
        b = as_generator(2).integers(0, 2**31, size=8)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g


class TestSpawnGenerators:
    def test_count(self):
        gens = spawn_generators(0, 5)
        assert len(gens) == 5

    def test_zero(self):
        assert spawn_generators(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError, match="negative"):
            spawn_generators(0, -1)

    def test_children_independent(self):
        a, b = spawn_generators(42, 2)
        assert not np.array_equal(
            a.integers(0, 2**31, 16), b.integers(0, 2**31, 16)
        )

    def test_reproducible_from_seed(self):
        a = spawn_generators(9, 3)
        b = spawn_generators(9, 3)
        for ga, gb in zip(a, b):
            assert ga.integers(0, 2**31) == gb.integers(0, 2**31)

    def test_from_generator(self):
        gens = spawn_generators(np.random.default_rng(5), 4)
        assert len(gens) == 4


class TestRngFactory:
    def test_same_label_same_stream(self):
        assert (
            RngFactory(1).generator("x").integers(0, 2**31)
            == RngFactory(1).generator("x").integers(0, 2**31)
        )

    def test_different_labels_differ(self):
        f = RngFactory(1)
        a = f.generator("a").integers(0, 2**31, 16)
        b = f.generator("b").integers(0, 2**31, 16)
        assert not np.array_equal(a, b)

    def test_label_order_independent(self):
        f1 = RngFactory(7)
        _ = f1.generator("first")
        x1 = f1.generator("target").integers(0, 2**31)
        f2 = RngFactory(7)
        x2 = f2.generator("target").integers(0, 2**31)
        assert x1 == x2

    def test_different_seeds_differ(self):
        a = RngFactory(1).generator("x").integers(0, 2**31, 16)
        b = RngFactory(2).generator("x").integers(0, 2**31, 16)
        assert not np.array_equal(a, b)

    def test_generators_bulk(self):
        gens = RngFactory(3).generators("bulk", 4)
        assert len(gens) == 4
        vals = {int(g.integers(0, 2**31)) for g in gens}
        assert len(vals) == 4  # overwhelmingly likely distinct

    def test_child_factory_independent(self):
        f = RngFactory(5)
        c1 = f.child("sub")
        c2 = RngFactory(5).child("sub")
        assert (
            c1.generator("x").integers(0, 2**31)
            == c2.generator("x").integers(0, 2**31)
        )

    def test_seed_property(self):
        assert RngFactory(11).seed == 11
        assert RngFactory(None).seed is None

    def test_rejects_non_int(self):
        with pytest.raises(TypeError):
            RngFactory("abc")  # type: ignore[arg-type]

    def test_none_seed_usable(self):
        g = RngFactory(None).generator("x")
        assert 0 <= g.random() < 1

"""Tests for repro.util.charts — terminal bar charts."""

import pytest

from repro.util.charts import bar_chart, series_chart


class TestBarChart:
    def test_scaling_to_peak(self):
        out = bar_chart(["a", "b"], [0.5, 1.0], width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_negative_values(self):
        out = bar_chart(["x"], [-0.5], width=10)
        assert "-" * 5 in out
        assert "#" not in out

    def test_zero_values(self):
        out = bar_chart(["x", "y"], [0.0, 0.0], width=10)
        assert "#" not in out

    def test_value_labels(self):
        out = bar_chart(["x"], [0.123], width=5)
        assert "+12.3%" in out

    def test_custom_format(self):
        out = bar_chart(["x"], [3.0], value_format="{:.1f}")
        assert "3.0" in out

    def test_title(self):
        out = bar_chart(["x"], [1.0], title="My Chart")
        assert out.startswith("My Chart")

    def test_label_alignment(self):
        out = bar_chart(["a", "long-label"], [1.0, 1.0])
        lines = out.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError, match="labels"):
            bar_chart(["a"], [1.0, 2.0])

    def test_bad_width(self):
        with pytest.raises(ValueError, match="width"):
            bar_chart(["a"], [1.0], width=0)

    def test_empty(self):
        assert bar_chart([], []) == ""


class TestSeriesChart:
    def test_blocks_per_series(self):
        out = series_chart([1, 2], {"a": [0.1, 0.2], "b": [0.3, 0.4]})
        assert "[a]" in out and "[b]" in out

    def test_shared_scale(self):
        out = series_chart([1], {"a": [0.5], "b": [1.0]}, width=10)
        blocks = out.split("\n\n")
        assert blocks[0].count("#") == 5
        assert blocks[1].count("#") == 10

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="points"):
            series_chart([1, 2], {"a": [0.1]})

    def test_title(self):
        out = series_chart([1], {"a": [1.0]}, title="T")
        assert out.startswith("T")

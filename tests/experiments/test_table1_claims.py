"""Tests for the Table 1 report and the headline-claims harness."""

import pytest

from repro.experiments import (
    ExperimentConfig,
    run_headline_claims,
    run_table1,
)
from repro.workload.params import WorkloadParams


class TestTable1:
    @pytest.fixture(scope="class")
    def report(self):
        return run_table1(WorkloadParams.small(), seed=0)

    def test_has_all_rows(self, report):
        labels = [r[0] for r in report.rows]
        for expected in (
            "Number of Local Sites (LS)",
            "Number of MOs in the network",
            "Processing capacity of LS (req/s)",
            "Page requests per server",
            "(alpha1, alpha2)",
        ):
            assert expected in labels

    def test_render(self, report):
        out = report.render()
        assert "Table 1" in out
        assert "realised" in out

    def test_realised_matches_nominal_scalars(self, report):
        by_label = {r[0]: r for r in report.rows}
        assert by_label["Number of Local Sites (LS)"][1] == by_label[
            "Number of Local Sites (LS)"
        ][2]
        assert by_label["Number of MOs in the network"][1] == by_label[
            "Number of MOs in the network"
        ][2]

    def test_paper_defaults(self):
        report = run_table1(seed=1)
        by_label = {r[0]: r for r in report.rows}
        assert by_label["Number of Local Sites (LS)"][2] == "10"


class TestHeadlineClaims:
    @pytest.fixture(scope="class")
    def claims(self):
        cfg = ExperimentConfig(
            params=WorkloadParams.small().with_(requests_per_server=500),
            n_runs=2,
        )
        return run_headline_claims(cfg)

    def test_orderings_hold(self, claims):
        assert claims.orderings_hold

    def test_remote_far_worse(self, claims):
        assert claims.remote_increase > 1.0

    def test_local_moderately_worse(self, claims):
        assert 0.0 < claims.local_increase < 0.6

    def test_lru_close_to_local(self, claims):
        assert claims.lru_full_increase == pytest.approx(
            claims.local_increase, abs=0.15
        )

    def test_storage_positive(self, claims):
        assert claims.avg_storage_gb > 0

    def test_render(self, claims):
        out = claims.render()
        assert "+335%" in out  # the paper column
        assert "measured" in out

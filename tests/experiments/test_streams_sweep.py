"""Tests for repro.experiments.extension_streams (E4)."""

import pytest

from repro.experiments.extension_streams import StreamsResult, run_streams
from repro.experiments.runner import ExperimentConfig
from repro.workload.params import WorkloadParams


class TestRunStreams:
    @pytest.fixture(scope="class")
    def result(self):
        cfg = ExperimentConfig(
            params=WorkloadParams.tiny().with_(requests_per_server=150),
            n_runs=2,
        )
        return run_streams(cfg, streams=(2, 3, 4))

    def test_series_lengths(self, result):
        assert result.streams == [2, 3, 4]
        for series in (
            result.objective,
            result.vs_two_streams,
            result.remote_share,
            result.mesh_share,
        ):
            assert len(series) == 3

    def test_objective_monotone_non_increasing(self, result):
        d = result.objective
        assert d[0] >= d[1] >= d[2]
        assert result.vs_two_streams[0] == pytest.approx(0.0)
        assert all(v <= 0.0 for v in result.vs_two_streams)

    def test_mesh_share_zero_at_k2_positive_after(self, result):
        assert result.mesh_share[0] == 0.0
        assert result.mesh_share[1] > 0.0
        assert all(0.0 <= s <= 1.0 for s in result.mesh_share)
        assert all(
            m <= r + 1e-12
            for m, r in zip(result.mesh_share, result.remote_share)
        )

    def test_remote_share_grows_with_streams(self, result):
        s = result.remote_share
        assert s[0] <= s[1] <= s[2]

    def test_render(self, result):
        out = result.render()
        assert "Extension E4" in out and "streams k" in out

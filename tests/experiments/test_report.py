"""Tests for repro.experiments.report — the combined reproduction report."""

import pytest

pytestmark = pytest.mark.slow  # full-figure / subprocess suites; excluded by -m "not slow"

from repro.experiments.report import ReproductionReport, reproduce_all
from repro.experiments.runner import ExperimentConfig
from repro.workload.params import WorkloadParams


@pytest.fixture(scope="module")
def report():
    cfg = ExperimentConfig(
        params=WorkloadParams.small().with_(requests_per_server=300),
        n_runs=2,
    )
    return reproduce_all(cfg)


class TestReproduceAll:
    def test_all_artifacts_present(self, report):
        assert report.table1 is not None
        assert report.fig1.series
        assert report.fig2.series
        assert report.fig3.series
        assert report.claims is not None

    def test_shapes_hold_on_small(self, report):
        assert report.all_shapes_hold

    def test_render_contains_every_section(self, report):
        out = report.render()
        for token in (
            "REPRODUCTION REPORT",
            "Table 1",
            "headline claims",
            "Figure 1",
            "Figure 2",
            "Figure 3",
            "ALL PAPER SHAPES HOLD",
        ):
            assert token in out

    def test_render_with_charts(self, report):
        out = report.render(charts=True)
        assert "Figure 1 (bars)" in out
        assert "#" in out

    def test_cli_reproduce(self, capsys):
        from repro.cli import main

        rc = main(
            ["--scale", "tiny", "--runs", "1", "--requests", "80", "reproduce"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "REPRODUCTION REPORT" in out

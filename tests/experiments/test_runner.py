"""Tests for repro.experiments.runner — multi-run orchestration."""

import numpy as np
import pytest

from repro.experiments.runner import ExperimentConfig, SweepResult, iter_runs
from repro.workload.params import WorkloadParams


@pytest.fixture(scope="module")
def quick_cfg():
    return ExperimentConfig(
        params=WorkloadParams.tiny().with_(requests_per_server=100), n_runs=2
    )


class TestConfig:
    def test_quick(self):
        cfg = ExperimentConfig.quick(2)
        assert cfg.n_runs == 2
        assert cfg.params.n_servers == WorkloadParams.small().n_servers

    def test_from_env_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        monkeypatch.delenv("REPRO_BENCH_RUNS", raising=False)
        monkeypatch.delenv("REPRO_BENCH_REQUESTS", raising=False)
        cfg = ExperimentConfig.from_env()
        assert cfg.n_runs == 5
        assert cfg.params.n_servers == WorkloadParams.small().n_servers

    def test_from_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "tiny")
        monkeypatch.setenv("REPRO_BENCH_RUNS", "2")
        monkeypatch.setenv("REPRO_BENCH_REQUESTS", "123")
        cfg = ExperimentConfig.from_env()
        assert cfg.n_runs == 2
        assert cfg.params.requests_per_server == 123

    def test_from_env_rejects_bad_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "huge")
        with pytest.raises(ValueError, match="REPRO_BENCH_SCALE"):
            ExperimentConfig.from_env()

    @pytest.mark.parametrize(
        "var", ["REPRO_BENCH_RUNS", "REPRO_BENCH_REQUESTS", "REPRO_JOBS"]
    )
    @pytest.mark.parametrize("value", ["0", "-3", "2.5", "abc"])
    def test_from_env_rejects_bad_integers(self, monkeypatch, var, value):
        monkeypatch.setenv(var, value)
        with pytest.raises(ValueError, match=var):
            ExperimentConfig.from_env()

    def test_from_env_reads_jobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2")
        assert ExperimentConfig.from_env().jobs == 2
        monkeypatch.delenv("REPRO_JOBS")
        assert ExperimentConfig.from_env().jobs == 1


class TestIterRuns:
    def test_yields_n_runs(self, quick_cfg):
        runs = list(iter_runs(quick_cfg))
        assert len(runs) == 2
        assert [r.run_index for r in runs] == [0, 1]

    def test_relaxed_capacities(self, quick_cfg):
        ctx = next(iter(iter_runs(quick_cfg)))
        assert np.all(np.isinf(ctx.model.server_storage))
        assert np.all(np.isinf(ctx.model.server_capacity))

    def test_runs_have_distinct_workloads(self, quick_cfg):
        runs = list(iter_runs(quick_cfg))
        assert runs[0].model.n_pages != runs[1].model.n_pages or not np.array_equal(
            runs[0].model.frequencies, runs[1].model.frequencies
        )

    def test_reference_is_unconstrained_partition(self, quick_cfg):
        from repro.core.partition import partition_all

        ctx = next(iter(iter_runs(quick_cfg)))
        assert ctx.reference == partition_all(ctx.model)

    def test_relative_increase(self, quick_cfg):
        ctx = next(iter(iter_runs(quick_cfg)))
        assert ctx.relative_increase(ctx.reference_sim) == pytest.approx(0.0)

    def test_retrace_identical(self, quick_cfg):
        from repro.experiments.scaling import clone_with_capacities

        ctx = next(iter(iter_runs(quick_cfg)))
        clone = clone_with_capacities(ctx.model, storage=1e12)
        tr = ctx.retrace(clone)
        assert np.array_equal(tr.page_of_request, ctx.trace.page_of_request)
        assert tr.model is clone

    def test_deterministic_across_calls(self, quick_cfg):
        a = next(iter(iter_runs(quick_cfg)))
        b = next(iter(iter_runs(quick_cfg)))
        assert np.array_equal(a.trace.page_of_request, b.trace.page_of_request)
        assert a.reference_mean == pytest.approx(b.reference_mean)


class TestSweepResult:
    def test_aggregate(self):
        assert SweepResult.aggregate([[1.0, 2.0], [3.0, 4.0]]) == [2.0, 3.0]

    def test_render(self):
        r = SweepResult(
            title="T",
            x_label="x",
            x_values=[0.5, 1.0],
            series={"a": [0.1, 0.0]},
            scalars={"ref": 2.0},
            n_runs=3,
        )
        out = r.render()
        assert "T" in out and "+10.0%" in out and "ref" in out and "3 runs" in out

"""Tests for the figure harnesses — shapes, not absolute numbers.

These run on a tiny/small workload with few runs so they stay fast; the
paper-scale values live in EXPERIMENTS.md.  What we assert is exactly
what the paper claims qualitatively:

* Figure 1 — the proposed policy dominates ideal LRU at every storage
  tick; more storage never hurts; Remote is far above everything.
* Figure 2 — monotone decreasing in capacity; equals Remote at 0%;
  ~0 at 100%.
* Figure 3 — tighter central capacity never helps; high local capacity
  keeps even 50% central acceptable relative to low local capacity.
"""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentConfig,
    run_fig1,
    run_fig2,
    run_fig3,
)
from repro.workload.params import WorkloadParams


@pytest.fixture(scope="module")
def cfg():
    return ExperimentConfig(
        params=WorkloadParams.small().with_(requests_per_server=400),
        n_runs=2,
    )


@pytest.fixture(scope="module")
def fig1(cfg):
    return run_fig1(cfg, fractions=(0.3, 0.65, 1.0))


@pytest.fixture(scope="module")
def fig2(cfg):
    return run_fig2(cfg, fractions=(0.0, 0.5, 0.8, 1.0))


@pytest.fixture(scope="module")
def fig3(cfg):
    return run_fig3(
        cfg, local_fractions=(0.5, 1.0), central_fractions=(0.9, 0.5)
    )


class TestFig1:
    def test_series_present(self, fig1):
        assert set(fig1.series) == {"proposed", "ideal-lru"}
        assert len(fig1.x_values) == 3

    def test_proposed_dominates_lru(self, fig1):
        for ours, lru in zip(fig1.series["proposed"], fig1.series["ideal-lru"]):
            assert ours <= lru + 0.02

    def test_more_storage_never_hurts(self, fig1):
        ours = fig1.series["proposed"]
        assert all(a >= b - 0.02 for a, b in zip(ours, ours[1:]))

    def test_full_storage_is_optimal(self, fig1):
        assert fig1.series["proposed"][-1] == pytest.approx(0.0, abs=0.01)

    def test_remote_reference_far_above(self, fig1):
        remote = fig1.scalars["remote (all from repository)"]
        local = fig1.scalars["local (all from local server)"]
        assert remote > 1.0  # > +100%
        assert remote > 2 * max(local, 0.01)

    def test_lru_at_full_storage_near_local(self, fig1):
        lru_full = fig1.series["ideal-lru"][-1]
        local = fig1.scalars["local (all from local server)"]
        assert lru_full == pytest.approx(local, abs=0.15)

    def test_render(self, fig1):
        out = fig1.render()
        assert "Figure 1" in out and "proposed" in out


class TestFig2:
    def test_monotone_decreasing(self, fig2):
        ys = fig2.series["proposed"]
        assert all(a >= b - 0.02 for a, b in zip(ys, ys[1:]))

    def test_zero_capacity_equals_remote(self, fig2):
        remote = fig2.scalars["remote (all from repository)"]
        assert fig2.series["proposed"][0] == pytest.approx(remote, rel=0.05)

    def test_full_capacity_optimal(self, fig2):
        assert fig2.series["proposed"][-1] == pytest.approx(0.0, abs=0.02)

    def test_flat_near_full(self, fig2):
        """The double-exponential shape: losing the top 20% of capacity
        costs far less than the bottom 50%."""
        ys = fig2.series["proposed"]
        top_loss = ys[2] - ys[3]   # 80% vs 100%
        bottom_loss = ys[0] - ys[1]  # 0% vs 50%
        assert bottom_loss > top_loss


class TestFig3:
    def test_series_per_central_level(self, fig3):
        assert set(fig3.series) == {"central 90%", "central 50%"}

    def test_tighter_central_never_helps(self, fig3):
        for a, b in zip(fig3.series["central 90%"], fig3.series["central 50%"]):
            assert b >= a - 0.02

    def test_local_capacity_dominates(self, fig3):
        """High local capacity with 50% central beats low local capacity
        with 90% central (the paper's main Figure 3 takeaway)."""
        high_local_bad_central = fig3.series["central 50%"][-1]
        low_local_good_central = fig3.series["central 90%"][0]
        assert high_local_bad_central < low_local_good_central

    def test_more_local_capacity_never_hurts(self, fig3):
        for series in fig3.series.values():
            assert series[-1] <= series[0] + 0.02

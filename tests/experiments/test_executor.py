"""Tests for the parallel experiment executor and the artifact cache.

The load-bearing guarantee: ``jobs`` is a *performance* knob, never a
*results* knob.  Parallel sweeps must be bit-identical to serial ones,
and merged run-manifest counters must not depend on the worker count.
"""

import numpy as np
import pytest

from repro.experiments.ablation_popularity import run_ablation_popularity
from repro.experiments.cache import (
    ArtifactCache,
    artifact_cache,
    clear_artifact_cache,
    params_digest,
)
from repro.experiments.executor import (
    map_run_points,
    map_runs,
    resolve_jobs,
    shutdown_pool,
)
from repro.core.shard import resolve_shards
from repro.experiments.fig2_processing import run_fig2
from repro.experiments.runner import ExperimentConfig, prepare_run
from repro.obs.registry import MetricsRegistry, use_registry
from repro.simulation.perturbation import PAPER_PERTURBATION
from repro.workload.params import WorkloadParams


@pytest.fixture(scope="module")
def tiny_cfg():
    return ExperimentConfig(
        params=WorkloadParams.tiny().with_(requests_per_server=100), n_runs=2
    )


def _mean_increase(ctx, point):
    """Module-level (picklable) point function used by the fan-out tests."""
    return ctx.relative_increase(ctx.reference_sim) + float(point)


def _trace_len(ctx):
    return ctx.trace.n_requests


class TestResolveJobs:
    def test_explicit_value_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert resolve_jobs(None) == 4
        monkeypatch.delenv("REPRO_JOBS")
        assert resolve_jobs(None) == 1

    @pytest.mark.parametrize("value", ["0", "-3", "2.5", "abc"])
    def test_env_rejects_bad_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_JOBS", value)
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            resolve_jobs(None)

    @pytest.mark.parametrize("value", [0, -1, 2.5, True, "2"])
    def test_explicit_rejects_bad_values(self, value):
        with pytest.raises(ValueError, match="jobs"):
            resolve_jobs(value)


class TestResolveShards:
    """``REPRO_SHARDS`` resolution mirrors ``REPRO_JOBS`` (same
    ``env_positive_int`` machinery); lives here so the two env knobs'
    contracts are pinned side by side."""

    def test_explicit_value_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "7")
        assert resolve_shards(3, n_servers=10) == 3

    def test_env_value_used_when_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "4")
        assert resolve_shards(None, n_servers=10) == 4

    def test_auto_caps_at_server_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        assert resolve_shards(None, n_servers=1) == 1

    @pytest.mark.parametrize("value", ["0", "-3", "2.5", "abc"])
    def test_env_rejects_bad_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_SHARDS", value)
        with pytest.raises(ValueError, match="REPRO_SHARDS"):
            resolve_shards(None)

    @pytest.mark.parametrize("value", [0, -1, 2.5, True, "2"])
    def test_explicit_rejects_bad_values(self, value):
        with pytest.raises(ValueError, match="shards"):
            resolve_shards(value)

    def test_rejects_more_shards_than_servers(self):
        with pytest.raises(ValueError, match="server count"):
            resolve_shards(8, n_servers=4)


class TestArtifactCache:
    def test_hit_returns_same_bundle(self):
        cache = ArtifactCache(capacity=4)
        params = WorkloadParams.tiny().with_(requests_per_server=50)
        key = dict(
            params=params,
            kernel="batched",
            perturbation=PAPER_PERTURBATION,
            model_seed=1,
            trace_seed=2,
            sim_seed=3,
        )
        first = cache.get(**key)
        second = cache.get(**key)
        assert second is first
        assert cache.stats() == (1, 1)

    def test_distinct_keys_miss(self):
        cache = ArtifactCache(capacity=4)
        params = WorkloadParams.tiny().with_(requests_per_server=50)
        common = dict(
            params=params,
            kernel="batched",
            perturbation=PAPER_PERTURBATION,
            model_seed=1,
            trace_seed=2,
        )
        a = cache.get(sim_seed=3, **common)
        b = cache.get(sim_seed=4, **common)
        assert a is not b
        assert cache.stats() == (0, 2)

    def test_lru_eviction(self):
        cache = ArtifactCache(capacity=1)
        params = WorkloadParams.tiny().with_(requests_per_server=50)
        common = dict(
            params=params,
            kernel="batched",
            perturbation=PAPER_PERTURBATION,
            model_seed=1,
            trace_seed=2,
        )
        cache.get(sim_seed=3, **common)
        cache.get(sim_seed=4, **common)
        assert len(cache) == 1
        cache.get(sim_seed=3, **common)  # evicted -> rebuilt
        assert cache.stats() == (0, 3)

    def test_params_digest_stable_and_sensitive(self):
        a = WorkloadParams.tiny()
        assert params_digest(a) == params_digest(WorkloadParams.tiny())
        b = a.with_(requests_per_server=a.requests_per_server + 1)
        assert params_digest(a) != params_digest(b)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            ArtifactCache(capacity=0)

    def test_prepare_run_hits_global_cache(self, tiny_cfg):
        clear_artifact_cache()
        hits0, misses0 = artifact_cache().stats()
        a = prepare_run(tiny_cfg, 0)
        b = prepare_run(tiny_cfg, 0)
        hits1, misses1 = artifact_cache().stats()
        assert (hits1 - hits0, misses1 - misses0) == (1, 1)
        assert a.model is b.model
        assert a.trace is b.trace

    def test_no_metrics_leak_from_generation(self, tiny_cfg):
        """Artifact generation must not touch the caller's registry
        beyond the experiment-prepare span (cache misses depend on
        process history, so leaked counters would make manifests
        execution-mode dependent)."""
        clear_artifact_cache()
        reg = MetricsRegistry()
        with use_registry(reg):
            prepare_run(tiny_cfg, 0)
        assert {r.path for r in reg.spans} == {"experiment-prepare"}
        assert reg.counters == {}


class TestMapRunPoints:
    def test_matrix_shape_and_values(self, tiny_cfg):
        matrix = map_run_points(tiny_cfg, _mean_increase, [10.0, 20.0])
        assert len(matrix) == tiny_cfg.n_runs
        assert [len(row) for row in matrix] == [2, 2]
        assert matrix[0][1] == pytest.approx(matrix[0][0] + 10.0)

    def test_empty_points(self, tiny_cfg):
        assert map_run_points(tiny_cfg, _mean_increase, []) == [[], []]

    def test_parallel_matches_serial(self, tiny_cfg):
        serial = map_run_points(tiny_cfg, _mean_increase, [1.0, 2.0, 3.0])
        parallel = map_run_points(
            tiny_cfg, _mean_increase, [1.0, 2.0, 3.0], jobs=2
        )
        assert parallel == serial

    def test_map_runs_parallel_matches_serial(self, tiny_cfg):
        serial = map_runs(tiny_cfg, _trace_len)
        parallel = map_runs(tiny_cfg, _trace_len, jobs=2)
        assert parallel == serial
        assert len(serial) == tiny_cfg.n_runs

    def test_chunksize_does_not_change_results(self, tiny_cfg):
        base = map_run_points(tiny_cfg, _mean_increase, [1.0, 2.0])
        odd = map_run_points(
            tiny_cfg, _mean_increase, [1.0, 2.0], jobs=2, chunksize=3
        )
        assert odd == base


class TestDeterminism:
    """Satellite: parallel and serial sweeps are bit-identical, and the
    merged manifests agree on every counter."""

    def _run_both(self, fn):
        clear_artifact_cache()
        shutdown_pool()
        serial_reg = MetricsRegistry()
        with use_registry(serial_reg):
            serial = fn(jobs=1)
        clear_artifact_cache()
        shutdown_pool()
        parallel_reg = MetricsRegistry()
        with use_registry(parallel_reg):
            parallel = fn(jobs=2)
        return serial, parallel, serial_reg, parallel_reg

    def test_fig2_bit_identical_and_counters_merge(self, tiny_cfg):
        from dataclasses import replace

        def run(jobs):
            return run_fig2(
                replace(tiny_cfg, jobs=jobs), fractions=(0.0, 0.5, 1.0)
            )

        serial, parallel, sreg, preg = self._run_both(run)
        assert parallel.series == serial.series
        assert parallel.per_run == serial.per_run
        assert parallel.scalars == serial.scalars
        # counters are mode-invariant: the merged worker counters sum to
        # exactly what the serial run recorded in-process
        assert preg.counters == sreg.counters
        assert preg.counters["executor.units"] == tiny_cfg.n_runs * 4
        # deterministic gauges agree too; executor.* gauges describe the
        # execution environment itself and legitimately differ
        s_gauges = {
            k: v for k, v in sreg.gauges.items()
            if not k.startswith("executor.")
        }
        p_gauges = {
            k: v for k, v in preg.gauges.items()
            if not k.startswith("executor.")
        }
        assert p_gauges == s_gauges
        assert sreg.gauges["executor.workers"] == 1
        assert preg.gauges["executor.workers"] == 2

    def test_ablation_bit_identical(self, tiny_cfg):
        from dataclasses import replace

        def run(jobs):
            return run_ablation_popularity(
                replace(tiny_cfg, jobs=jobs), (0.5, 1.0)
            )

        serial, parallel, _, _ = self._run_both(run)
        assert parallel.per_run == serial.per_run
        for frac in (0.5, 1.0):
            assert parallel.mean(frac, "proposed") == pytest.approx(
                serial.mean(frac, "proposed")
            )

    def test_repeated_serial_runs_identical(self, tiny_cfg):
        """The cache never changes results: a warm rerun is bit-identical."""
        clear_artifact_cache()
        cold = run_fig2(tiny_cfg, fractions=(0.5,))
        warm = run_fig2(tiny_cfg, fractions=(0.5,))
        assert warm == cold
        assert artifact_cache().hits > 0

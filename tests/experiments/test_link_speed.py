"""Tests for repro.experiments.extension_link_speed (E2)."""

import numpy as np
import pytest

from repro.experiments.extension_link_speed import (
    LinkSpeedResult,
    _scale_repo_rate,
    run_link_speed,
)
from repro.experiments.runner import ExperimentConfig
from repro.workload.params import WorkloadParams


class TestScaleRepoRate:
    def test_rates_scaled(self, micro_model):
        scaled = _scale_repo_rate(micro_model, 3.0)
        assert np.allclose(
            scaled.server_repo_rate, 3.0 * micro_model.server_repo_rate
        )
        assert np.array_equal(scaled.server_rate, micro_model.server_rate)

    def test_structure_shared(self, micro_model):
        scaled = _scale_repo_rate(micro_model, 2.0)
        assert scaled.pages is micro_model.pages
        assert scaled.objects is micro_model.objects

    def test_partition_responds_to_scaling(self, micro_model):
        from repro.core.partition import partition_all

        slow = partition_all(_scale_repo_rate(micro_model, 0.01))
        fast = partition_all(_scale_repo_rate(micro_model, 100.0))
        assert slow.comp_local.sum() > fast.comp_local.sum()


class TestRunLinkSpeed:
    @pytest.fixture(scope="class")
    def result(self):
        cfg = ExperimentConfig(
            params=WorkloadParams.tiny().with_(requests_per_server=150),
            n_runs=2,
        )
        return run_link_speed(cfg, multipliers=(0.5, 2.0, 8.0))

    def test_series_lengths(self, result):
        assert len(result.multipliers) == 3
        assert len(result.remote_share) == 3
        assert len(result.gain_vs_local) == 3
        assert len(result.gain_vs_remote) == 3

    def test_remote_share_monotone(self, result):
        s = result.remote_share
        assert s[0] <= s[1] + 0.05 and s[1] <= s[2] + 0.05

    def test_shares_are_fractions(self, result):
        assert all(0.0 <= s <= 1.0 for s in result.remote_share)

    def test_render(self, result):
        out = result.render()
        assert "Extension E2" in out and "repo rate" in out

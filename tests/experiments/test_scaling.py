"""Tests for repro.experiments.scaling — capacity-percentage definitions."""

import math

import numpy as np
import pytest

from repro.baselines.local import LocalPolicy
from repro.core.constraints import (
    html_request_load,
    local_processing_load,
    repository_load,
)
from repro.core.partition import partition_all
from repro.experiments.scaling import (
    clone_with_capacities,
    processing_capacities_for_fraction,
    repo_capacity_for_fraction,
    storage_capacities_for_fraction,
)


class TestClone:
    def test_storage_replaced(self, micro_model):
        clone = clone_with_capacities(micro_model, storage=[10.0, 20.0])
        assert clone.server_storage.tolist() == [10.0, 20.0]
        # other attributes preserved
        assert np.array_equal(clone.server_rate, micro_model.server_rate)

    def test_scalar_broadcast(self, micro_model):
        clone = clone_with_capacities(micro_model, processing=42.0)
        assert clone.server_capacity.tolist() == [42.0, 42.0]

    def test_repo_capacity(self, micro_model):
        clone = clone_with_capacities(micro_model, repo_capacity=7.0)
        assert clone.repository.processing_capacity == 7.0

    def test_pages_shared(self, micro_model):
        clone = clone_with_capacities(micro_model, storage=100.0)
        assert clone.pages is micro_model.pages
        assert clone.objects is micro_model.objects

    def test_none_leaves_untouched(self, micro_model):
        clone = clone_with_capacities(micro_model)
        assert np.array_equal(clone.server_storage, micro_model.server_storage)
        assert math.isinf(clone.repository.processing_capacity)


class TestStorageFractions:
    def test_full_fraction_fits_reference(self, micro_model):
        ref = partition_all(micro_model)
        caps = storage_capacities_for_fraction(micro_model, ref, 1.0)
        html = micro_model.html_bytes_by_server()
        assert np.allclose(caps, html + ref.stored_bytes_all())

    def test_zero_fraction_html_only(self, micro_model):
        ref = partition_all(micro_model)
        caps = storage_capacities_for_fraction(micro_model, ref, 0.0)
        assert np.allclose(caps, micro_model.html_bytes_by_server())

    def test_negative_rejected(self, micro_model):
        ref = partition_all(micro_model)
        with pytest.raises(ValueError):
            storage_capacities_for_fraction(micro_model, ref, -0.1)


class TestProcessingFractions:
    def test_default_reference_is_all_local(self, micro_model):
        caps = processing_capacities_for_fraction(micro_model, 1.0)
        all_local = local_processing_load(LocalPolicy().allocate(micro_model))
        assert np.allclose(caps, all_local)

    def test_zero_fraction_html_load(self, micro_model):
        caps = processing_capacities_for_fraction(micro_model, 0.0)
        assert np.allclose(caps, html_request_load(micro_model))

    def test_custom_reference(self, micro_model):
        ref = partition_all(micro_model)
        caps = processing_capacities_for_fraction(micro_model, 1.0, ref)
        assert np.allclose(caps, local_processing_load(ref))

    def test_any_allocation_fits_at_full(self, micro_model):
        """100% of all-local load upper-bounds every allocation's load."""
        caps = processing_capacities_for_fraction(micro_model, 1.0)
        for alloc in (partition_all(micro_model), LocalPolicy().allocate(micro_model)):
            assert np.all(local_processing_load(alloc) <= caps + 1e-9)


class TestRepoFraction:
    def test_value(self, micro_model):
        from repro.baselines.remote import RemotePolicy

        alloc = RemotePolicy().allocate(micro_model)
        assert repo_capacity_for_fraction(alloc, 0.5) == pytest.approx(
            0.5 * repository_load(alloc)
        )

    def test_zero_rejected(self, micro_model):
        from repro.baselines.remote import RemotePolicy

        with pytest.raises(ValueError):
            repo_capacity_for_fraction(RemotePolicy().allocate(micro_model), 0.0)

"""Tests for repro.simulation.lru_sim — the LRU baseline replay."""

import numpy as np
import pytest

from repro.baselines.local import LocalPolicy
from repro.simulation.engine import simulate_allocation
from repro.simulation.lru_sim import LruCache, simulate_lru
from repro.simulation.perturbation import IDENTITY_PERTURBATION
from repro.workload.trace import generate_trace


class TestLruCache:
    def test_miss_then_hit(self):
        c = LruCache(100)
        assert not c.access(1, 10)
        assert c.access(1, 10)
        assert c.hits == 1 and c.misses == 1

    def test_eviction_order(self):
        c = LruCache(30)
        c.access(1, 10)
        c.access(2, 10)
        c.access(3, 10)
        c.access(1, 10)  # refresh 1
        c.access(4, 10)  # evicts 2 (LRU)
        assert 2 not in c
        assert 1 in c and 3 in c and 4 in c
        assert c.evictions == 1

    def test_oversized_object_not_cached(self):
        c = LruCache(5)
        assert not c.access(1, 10)
        assert 1 not in c
        assert len(c) == 0

    def test_used_tracks_bytes(self):
        c = LruCache(100)
        c.access(1, 30)
        c.access(2, 40)
        assert c.used == 70

    def test_zero_capacity(self):
        c = LruCache(0)
        assert not c.access(1, 1)
        assert len(c) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LruCache(-1)

    def test_hit_rate(self):
        c = LruCache(100)
        c.access(1, 10)
        c.access(1, 10)
        c.access(1, 10)
        assert c.hit_rate == pytest.approx(2 / 3)

    def test_capacity_never_exceeded(self):
        rng = np.random.default_rng(0)
        c = LruCache(100)
        for _ in range(500):
            c.access(int(rng.integers(0, 50)), float(rng.integers(1, 40)))
            assert c.used <= 100


class TestSimulateLru:
    def test_infinite_cache_converges_to_local(self, small_model, small_params):
        """With an unbounded cache every repeat access hits: after warmup
        the LRU times approach the Local policy's (first-access misses
        keep it slightly above)."""
        trace = generate_trace(small_model, small_params, seed=2)
        sim_lru, stats = simulate_lru(
            trace, cache_bytes=1e18, perturbation=IDENTITY_PERTURBATION, seed=3
        )
        sim_local = simulate_allocation(
            LocalPolicy().allocate(small_model),
            trace,
            IDENTITY_PERTURBATION,
            seed=3,
        )
        assert stats.hit_rate > 0.9
        assert sim_lru.mean_page_time <= sim_local.mean_page_time * 1.15
        assert sim_lru.mean_page_time >= sim_local.mean_page_time * 0.95

    def test_zero_cache_equals_remote_for_mos(self, small_model, small_params):
        trace = generate_trace(small_model, small_params, seed=2)
        sim, stats = simulate_lru(
            trace, cache_bytes=0.0, perturbation=IDENTITY_PERTURBATION, seed=3
        )
        assert stats.hits == 0
        # every MO travels remotely -> remote stream dominates everywhere
        assert sim.bottleneck_fraction_remote() > 0.99

    def test_bigger_cache_no_worse(self, small_model, small_params):
        trace = generate_trace(small_model, small_params, seed=2)
        small_c, _ = simulate_lru(
            trace, cache_bytes=5e6, perturbation=IDENTITY_PERTURBATION, seed=3
        )
        big_c, _ = simulate_lru(
            trace, cache_bytes=5e8, perturbation=IDENTITY_PERTURBATION, seed=3
        )
        assert big_c.mean_page_time <= small_c.mean_page_time * 1.02

    def test_hit_rate_monotone_in_cache(self, small_model, small_params):
        trace = generate_trace(small_model, small_params, seed=2)
        rates = []
        for budget in (1e6, 1e7, 1e8):
            _, stats = simulate_lru(trace, cache_bytes=budget, seed=3)
            rates.append(stats.hit_rate)
        assert rates == sorted(rates)

    def test_per_server_budgets(self, small_model, small_params):
        trace = generate_trace(small_model, small_params, seed=2)
        budgets = np.full(small_model.n_servers, 1e7)
        budgets[0] = 0.0
        _, stats = simulate_lru(trace, cache_bytes=budgets, seed=3)
        assert stats.final_bytes_by_server[0] == 0.0
        assert stats.final_bytes_by_server[1:].sum() > 0

    def test_local_service_prob_zero_all_remote(self, small_model, small_params):
        trace = generate_trace(small_model, small_params, seed=2)
        sim, _ = simulate_lru(
            trace,
            cache_bytes=1e18,
            perturbation=IDENTITY_PERTURBATION,
            seed=3,
            local_service_prob=0.0,
        )
        assert sim.bottleneck_fraction_remote() > 0.99

    def test_local_service_prob_validated(self, small_model, small_params):
        trace = generate_trace(small_model, small_params, seed=2)
        with pytest.raises(ValueError, match="local_service_prob"):
            simulate_lru(trace, cache_bytes=1.0, local_service_prob=1.5)

    def test_extra_redirect_overhead_hurts(self, small_model, small_params):
        trace = generate_trace(small_model, small_params, seed=2)
        ideal, _ = simulate_lru(
            trace, cache_bytes=1e7, perturbation=IDENTITY_PERTURBATION, seed=3
        )
        costly, _ = simulate_lru(
            trace,
            cache_bytes=1e7,
            perturbation=IDENTITY_PERTURBATION,
            seed=3,
            extra_remote_overhead=30.0,
        )
        assert costly.mean_page_time > ideal.mean_page_time

    def test_reproducible(self, small_model, small_params):
        trace = generate_trace(small_model, small_params, seed=2)
        a, _ = simulate_lru(trace, cache_bytes=1e7, seed=4)
        b, _ = simulate_lru(trace, cache_bytes=1e7, seed=4)
        assert np.array_equal(a.page_times, b.page_times)

    def test_optional_downloads_go_through_cache(self, small_model, small_params):
        trace = generate_trace(
            small_model,
            small_params.with_(optional_interest_prob=1.0),
            seed=2,
        )
        if trace.n_optional_downloads == 0:
            pytest.skip("no optional downloads sampled")
        _, stats = simulate_lru(trace, cache_bytes=1e18, seed=3)
        owner_entries = trace.opt_entries
        # total accesses include the optional ones
        comp_accesses = sum(
            len(small_model.pages[j].compulsory) for j in trace.page_of_request
        )
        assert stats.hits + stats.misses == comp_accesses + len(owner_entries)

"""Tests for repro.simulation.metrics — response-time aggregation."""

import numpy as np
import pytest

from repro.simulation.metrics import SimulationResult


def make_result(page_times, optional_times=(), servers=None):
    page_times = np.asarray(page_times, dtype=float)
    optional_times = np.asarray(optional_times, dtype=float)
    servers = (
        np.zeros(len(page_times), dtype=np.intp)
        if servers is None
        else np.asarray(servers, dtype=np.intp)
    )
    local = page_times.copy()
    remote = np.zeros_like(page_times)
    return SimulationResult(
        page_times=page_times,
        local_stream_times=local,
        remote_stream_times=remote,
        optional_times=optional_times,
        server_of_request=servers,
    )


class TestMeans:
    def test_mean_page_time(self):
        assert make_result([1.0, 3.0]).mean_page_time == pytest.approx(2.0)

    def test_empty(self):
        r = make_result([])
        assert r.mean_page_time == 0.0
        assert r.mean_optional_time == 0.0

    def test_mean_optional(self):
        r = make_result([1.0], optional_times=[2.0, 4.0])
        assert r.mean_optional_time == pytest.approx(3.0)


class TestComposite:
    def test_weighted(self):
        r = make_result([10.0], optional_times=[4.0])
        # (2*10 + 1*4) / (2*1 + 1*1) = 8
        assert r.composite_time(2.0, 1.0) == pytest.approx(8.0)

    def test_no_optional_reduces_to_mean(self):
        r = make_result([1.0, 3.0])
        assert r.composite_time() == pytest.approx(2.0)

    def test_empty_zero(self):
        assert make_result([]).composite_time() == 0.0


class TestPercentilesAndBreakdowns:
    def test_percentile(self):
        r = make_result(np.arange(101, dtype=float))
        assert r.percentile_page_time(50) == pytest.approx(50.0)
        assert r.percentile_page_time(95) == pytest.approx(95.0)

    def test_percentiles_vectorized_match_scalar(self):
        r = make_result(np.arange(101, dtype=float))
        qs = (50, 90, 95, 99)
        values = r.percentile_page_times(qs)
        assert values.shape == (4,)
        for q, v in zip(qs, values):
            assert v == pytest.approx(r.percentile_page_time(q))

    def test_percentiles_empty_is_zero(self):
        assert make_result([]).percentile_page_times((50, 95)).tolist() == [
            0.0,
            0.0,
        ]

    def test_by_server(self):
        r = make_result([1.0, 3.0, 10.0], servers=[0, 0, 1])
        by = r.mean_page_time_by_server(3)
        assert by.tolist() == [2.0, 10.0, 0.0]

    def test_bottleneck_fraction(self):
        page = np.array([5.0, 5.0])
        r = SimulationResult(
            page_times=page,
            local_stream_times=np.array([5.0, 2.0]),
            remote_stream_times=np.array([1.0, 5.0]),
            optional_times=np.empty(0),
            server_of_request=np.zeros(2, dtype=np.intp),
        )
        assert r.bottleneck_fraction_remote() == pytest.approx(0.5)

    def test_summary_runs(self):
        s = make_result([1.0, 2.0], optional_times=[0.5]).summary()
        assert "page requests" in s

"""Tests for the GreedyDual-Size cache baseline."""

import numpy as np
import pytest

from repro.simulation.lru_sim import GreedyDualSizeCache, LruCache, simulate_lru
from repro.simulation.perturbation import IDENTITY_PERTURBATION
from repro.workload.trace import generate_trace
from repro.workload.params import WorkloadParams


class TestGreedyDualSizeCache:
    def test_miss_then_hit(self):
        c = GreedyDualSizeCache(100)
        assert not c.access(1, 10)
        assert c.access(1, 10)
        assert c.hits == 1 and c.misses == 1

    def test_capacity_never_exceeded(self):
        rng = np.random.default_rng(0)
        c = GreedyDualSizeCache(100)
        for _ in range(500):
            c.access(int(rng.integers(0, 50)), float(rng.integers(1, 40)))
            assert c.used <= 100 + 1e-9

    def test_oversized_never_cached(self):
        c = GreedyDualSizeCache(5)
        assert not c.access(1, 10)
        assert 1 not in c

    def test_inflation_protects_recent(self):
        """After evictions raise the baseline, a freshly admitted object
        outranks stale ones."""
        c = GreedyDualSizeCache(30)
        c.access(1, 10)
        c.access(2, 10)
        c.access(3, 10)
        c.access(4, 10)  # evicts one, inflates baseline
        assert 4 in c
        assert len(c) == 3

    def test_re_access_refreshes_credit(self):
        c = GreedyDualSizeCache(30)
        c.access(1, 10)
        c.access(2, 10)
        c.access(3, 10)
        c.access(1, 10)  # refresh 1
        c.access(4, 10)  # someone must go; 1 was refreshed
        assert 1 in c

    def test_zero_capacity(self):
        c = GreedyDualSizeCache(0)
        assert not c.access(1, 1)
        assert len(c) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            GreedyDualSizeCache(-1)

    def test_hit_rate(self):
        c = GreedyDualSizeCache(100)
        c.access(1, 10)
        c.access(1, 10)
        assert c.hit_rate == pytest.approx(0.5)

    def test_size_update_on_hit(self):
        c = GreedyDualSizeCache(100)
        c.access(1, 10)
        c.access(1, 60)
        assert c.used == 60


class TestSimulateWithGds:
    def test_factory_hook(self, small_model, small_params):
        trace = generate_trace(
            small_model, small_params, seed=2, requests_per_server=300
        )
        sim, stats = simulate_lru(
            trace,
            cache_bytes=3e7,
            perturbation=IDENTITY_PERTURBATION,
            seed=3,
            cache_factory=GreedyDualSizeCache,
        )
        assert sim.n_requests == trace.n_requests
        assert 0.0 < stats.hit_rate < 1.0

    def test_gds_competitive_with_lru_at_small_budgets(
        self, small_model, small_params
    ):
        """Under a tight byte budget, GDS's anti-hoarding bias should
        yield at least comparable response times to plain LRU."""
        trace = generate_trace(
            small_model, small_params, seed=2, requests_per_server=800
        )
        budget = 2e7
        lru_sim, _ = simulate_lru(
            trace, cache_bytes=budget, perturbation=IDENTITY_PERTURBATION, seed=3
        )
        gds_sim, _ = simulate_lru(
            trace,
            cache_bytes=budget,
            perturbation=IDENTITY_PERTURBATION,
            seed=3,
            cache_factory=GreedyDualSizeCache,
        )
        assert gds_sim.mean_page_time <= lru_sim.mean_page_time * 1.10

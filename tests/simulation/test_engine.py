"""Tests for repro.simulation.engine — the vectorised replay."""

import numpy as np
import pytest

from repro.baselines.local import LocalPolicy
from repro.baselines.remote import RemotePolicy
from repro.core.allocation import Allocation
from repro.core.cost_model import CostModel
from repro.core.partition import partition_all
from repro.simulation.engine import (
    expand_ragged,
    simulate_allocation,
    simulate_partition_masks,
)
from repro.simulation.perturbation import IDENTITY_PERTURBATION, PAPER_PERTURBATION
from repro.workload.trace import generate_trace
from repro.workload.params import WorkloadParams


class TestExpandRagged:
    def test_basic(self):
        indptr = np.array([0, 2, 3, 6])
        owner, entries = expand_ragged(np.array([1, 0, 2]), indptr)
        assert owner.tolist() == [0, 1, 1, 2, 2, 2]
        assert entries.tolist() == [2, 0, 1, 3, 4, 5]

    def test_repeated_pages(self):
        indptr = np.array([0, 2])
        owner, entries = expand_ragged(np.array([0, 0]), indptr)
        assert owner.tolist() == [0, 0, 1, 1]
        assert entries.tolist() == [0, 1, 0, 1]

    def test_empty_requests(self):
        owner, entries = expand_ragged(np.array([], dtype=np.intp), np.array([0, 2]))
        assert len(owner) == 0 and len(entries) == 0

    def test_pages_with_no_entries(self):
        indptr = np.array([0, 0, 3])
        owner, entries = expand_ragged(np.array([0, 1, 0]), indptr)
        assert owner.tolist() == [1, 1, 1]
        assert entries.tolist() == [0, 1, 2]


class TestIdentityMatchesCostModel:
    """With the identity perturbation the simulated page time must equal
    the cost model's Eq. 5 — except that the engine drops the repository
    connection overhead when no object travels remotely."""

    def test_remote_policy(self, micro_model, small_params):
        trace = generate_trace(micro_model, small_params, seed=1, requests_per_server=40)
        alloc = RemotePolicy().allocate(micro_model)
        sim = simulate_allocation(alloc, trace, IDENTITY_PERTURBATION, seed=2)
        cost = CostModel(micro_model)
        times = cost.page_times(alloc)
        expected = times.page[trace.page_of_request]
        assert np.allclose(sim.page_times, expected)

    def test_partition_policy(self, micro_model, small_params):
        trace = generate_trace(micro_model, small_params, seed=1, requests_per_server=40)
        alloc = partition_all(micro_model)
        sim = simulate_allocation(alloc, trace, IDENTITY_PERTURBATION, seed=2)
        cost = CostModel(micro_model)
        times = cost.page_times(alloc)
        # every micro page keeps at least one remote object under
        # PARTITION? No: pages 0-2 go fully local, so their simulated
        # remote stream is 0 rather than Ovhd(R).
        lb = cost.local_mo_bytes(alloc)
        rb = cost.remote_mo_bytes(alloc)
        for r, j in enumerate(trace.page_of_request):
            if rb[j] > 0:
                assert sim.page_times[r] == pytest.approx(times.page[j])
            else:
                assert sim.page_times[r] == pytest.approx(times.local[j])

    def test_local_policy_no_remote_stream(self, micro_model, small_params):
        trace = generate_trace(micro_model, small_params, seed=1, requests_per_server=20)
        alloc = LocalPolicy().allocate(micro_model)
        sim = simulate_allocation(alloc, trace, IDENTITY_PERTURBATION, seed=2)
        assert np.all(sim.remote_stream_times == 0.0)

    def test_optional_times_identity(self, micro_model, small_params):
        trace = generate_trace(
            micro_model,
            small_params.with_(optional_interest_prob=1.0),
            seed=1,
            requests_per_server=50,
        )
        if trace.n_optional_downloads == 0:
            pytest.skip("no optional downloads")
        alloc = RemotePolicy().allocate(micro_model)
        sim = simulate_allocation(alloc, trace, IDENTITY_PERTURBATION, seed=2)
        m = micro_model
        e = trace.opt_entries
        srv = m.page_server[m.opt_pages[e]]
        expected = (
            m.server_repo_overhead[srv]
            + m.sizes[m.opt_objects[e]] / m.server_repo_rate[srv]
        )
        assert np.allclose(sim.optional_times, expected)


class TestPerturbedBehaviour:
    def test_perturbation_changes_times(self, small_model, small_trace):
        alloc = partition_all(small_model)
        a = simulate_allocation(alloc, small_trace, IDENTITY_PERTURBATION, seed=3)
        b = simulate_allocation(alloc, small_trace, PAPER_PERTURBATION, seed=3)
        assert not np.allclose(a.page_times, b.page_times)
        # the paper's mixture degrades local rates, so times grow on average
        assert b.mean_page_time > a.mean_page_time

    def test_seed_reproducible(self, small_model, small_trace):
        alloc = partition_all(small_model)
        a = simulate_allocation(alloc, small_trace, seed=5)
        b = simulate_allocation(alloc, small_trace, seed=5)
        assert np.array_equal(a.page_times, b.page_times)

    def test_different_seeds_differ(self, small_model, small_trace):
        alloc = partition_all(small_model)
        a = simulate_allocation(alloc, small_trace, seed=5)
        b = simulate_allocation(alloc, small_trace, seed=6)
        assert not np.array_equal(a.page_times, b.page_times)

    def test_model_mismatch_rejected(self, small_model, small_trace, micro_model):
        alloc = Allocation(micro_model)
        with pytest.raises(ValueError, match="same SystemModel"):
            simulate_allocation(alloc, small_trace)

    def test_page_time_is_max_of_streams(self, small_model, small_trace):
        alloc = partition_all(small_model)
        sim = simulate_allocation(alloc, small_trace, seed=3)
        assert np.array_equal(
            sim.page_times,
            np.maximum(sim.local_stream_times, sim.remote_stream_times),
        )


class TestRepoSlowdown:
    def test_slowdown_scales_remote(self, micro_model, small_params):
        trace = generate_trace(micro_model, small_params, seed=1, requests_per_server=30)
        alloc = RemotePolicy().allocate(micro_model)
        base = simulate_allocation(alloc, trace, IDENTITY_PERTURBATION, seed=2)
        slow = simulate_allocation(
            alloc, trace, IDENTITY_PERTURBATION, seed=2, repo_slowdown=2.0
        )
        assert np.allclose(slow.remote_stream_times, 2 * base.remote_stream_times)

    def test_slowdown_leaves_local_alone(self, micro_model, small_params):
        trace = generate_trace(micro_model, small_params, seed=1, requests_per_server=30)
        alloc = LocalPolicy().allocate(micro_model)
        base = simulate_allocation(alloc, trace, IDENTITY_PERTURBATION, seed=2)
        slow = simulate_allocation(
            alloc, trace, IDENTITY_PERTURBATION, seed=2, repo_slowdown=3.0
        )
        assert np.allclose(slow.page_times, base.page_times)

    def test_invalid_slowdown(self, micro_model, small_params):
        trace = generate_trace(micro_model, small_params, seed=1, requests_per_server=5)
        alloc = Allocation(micro_model)
        with pytest.raises(ValueError, match="repo_slowdown"):
            simulate_allocation(alloc, trace, repo_slowdown=0.5)


class TestMaskInterface:
    def test_wrong_mask_shapes_rejected(self, small_model, small_trace):
        with pytest.raises(ValueError, match="pair_local"):
            simulate_partition_masks(
                small_trace,
                np.zeros(3, dtype=bool),
                np.zeros(small_trace.n_optional_downloads, dtype=bool),
            )

    def test_extra_remote_overhead_applied(self, micro_model, small_params):
        trace = generate_trace(micro_model, small_params, seed=1, requests_per_server=30)
        _, entries = expand_ragged(trace.page_of_request, micro_model.comp_indptr)
        masks = np.zeros(len(entries), dtype=bool)
        opt = np.zeros(trace.n_optional_downloads, dtype=bool)
        base = simulate_partition_masks(
            trace, masks, opt, IDENTITY_PERTURBATION, seed=2
        )
        shifted = simulate_partition_masks(
            trace, masks, opt, IDENTITY_PERTURBATION, seed=2,
            extra_remote_overhead=10.0,
        )
        assert np.allclose(
            shifted.remote_stream_times, base.remote_stream_times + 10.0
        )

"""Tests for repro.simulation.queueing — utilisation slowdowns."""

import math

import numpy as np
import pytest

from repro.baselines.local import LocalPolicy
from repro.core.partition import partition_all
from repro.simulation.perturbation import IDENTITY_PERTURBATION
from repro.simulation.queueing import (
    simulate_with_queueing,
    utilisation_slowdowns,
)
from repro.workload.params import WorkloadParams
from repro.workload.trace import generate_trace
from tests.conftest import build_micro_model


class TestUtilisationSlowdowns:
    def test_infinite_capacity_factor_one(self, micro_model):
        local, repo = utilisation_slowdowns(LocalPolicy().allocate(micro_model))
        assert np.allclose(local, 1.0)
        assert repo == 1.0

    def test_known_utilisation(self):
        # all-local loads are 7.1 / 5.6 req/s
        m = build_micro_model(processing=(14.2, 11.2))
        local, _ = utilisation_slowdowns(LocalPolicy().allocate(m))
        # rho = 0.5 on both -> factor 2
        assert np.allclose(local, 2.0)

    def test_overload_capped(self):
        m = build_micro_model(processing=(1.0, 1.0))
        local, _ = utilisation_slowdowns(LocalPolicy().allocate(m))
        assert np.all(np.isfinite(local))
        assert np.all(local <= 1.0 / (1.0 - 0.98) + 1e-9)

    def test_repo_factor(self):
        m = build_micro_model(repo_capacity=16.4)
        from repro.baselines.remote import RemotePolicy

        # remote load is 8.2 -> rho 0.5 -> factor 2
        _, repo = utilisation_slowdowns(RemotePolicy().allocate(m))
        assert repo == pytest.approx(2.0)

    def test_repo_capacity_override(self, micro_model):
        from repro.baselines.remote import RemotePolicy

        _, repo = utilisation_slowdowns(
            RemotePolicy().allocate(micro_model), repo_capacity=16.4
        )
        assert repo == pytest.approx(2.0)

    def test_bad_max_utilisation(self, micro_model):
        with pytest.raises(ValueError, match="max_utilisation"):
            utilisation_slowdowns(
                LocalPolicy().allocate(micro_model), max_utilisation=1.0
            )


class TestSimulateWithQueueing:
    def test_scales_only_overheads(self):
        """With identity perturbation, the queued time differs from the
        constant-time run by exactly (factor-1) x overhead on local-bound
        pages."""
        from repro.simulation.engine import simulate_allocation

        m = build_micro_model(processing=(14.2, 11.2))  # factors = 2.0
        alloc = LocalPolicy().allocate(m)
        trace = generate_trace(
            m, WorkloadParams.tiny(), seed=1, requests_per_server=30
        )
        base = simulate_allocation(alloc, trace, IDENTITY_PERTURBATION, seed=2)
        queued = simulate_with_queueing(
            alloc, trace, IDENTITY_PERTURBATION, seed=2
        )
        srv = trace.server_of_request
        expected = base.page_times + m.server_overhead[srv]  # +1x overhead
        assert np.allclose(queued.page_times, expected)

    def test_noop_when_unconstrained(self, micro_model):
        from repro.simulation.engine import simulate_allocation

        alloc = partition_all(micro_model)
        trace = generate_trace(
            micro_model, WorkloadParams.tiny(), seed=1, requests_per_server=30
        )
        a = simulate_allocation(alloc, trace, IDENTITY_PERTURBATION, seed=2)
        b = simulate_with_queueing(alloc, trace, IDENTITY_PERTURBATION, seed=2)
        assert np.allclose(a.page_times, b.page_times)

    def test_engine_validates_scale_shape(self, micro_model):
        from repro.simulation.engine import (
            expand_ragged,
            simulate_partition_masks,
        )

        trace = generate_trace(
            micro_model, WorkloadParams.tiny(), seed=1, requests_per_server=10
        )
        _, entries = expand_ragged(trace.page_of_request, micro_model.comp_indptr)
        with pytest.raises(ValueError, match="local_overhead_scale"):
            simulate_partition_masks(
                trace,
                np.zeros(len(entries), dtype=bool),
                np.zeros(trace.n_optional_downloads, dtype=bool),
                local_overhead_scale=np.ones(5),
            )

    def test_engine_rejects_sub_one_scale(self, micro_model):
        from repro.simulation.engine import (
            expand_ragged,
            simulate_partition_masks,
        )

        trace = generate_trace(
            micro_model, WorkloadParams.tiny(), seed=1, requests_per_server=10
        )
        _, entries = expand_ragged(trace.page_of_request, micro_model.comp_indptr)
        with pytest.raises(ValueError, match=">= 1"):
            simulate_partition_masks(
                trace,
                np.zeros(len(entries), dtype=bool),
                np.zeros(trace.n_optional_downloads, dtype=bool),
                local_overhead_scale=np.full(micro_model.n_servers, 0.5),
            )

"""Tests for repro.simulation.perturbation — the Section 5.1 mixture."""

import numpy as np
import pytest

from repro.simulation.perturbation import (
    IDENTITY_PERTURBATION,
    PAPER_PERTURBATION,
    FactorMixture,
    PerturbationModel,
    UniformFactor,
)


class TestUniformFactor:
    def test_bounds(self):
        rng = np.random.default_rng(0)
        f = UniformFactor(0.5, 0.8)
        s = f.sample(rng, 1000)
        assert s.min() >= 0.5 and s.max() <= 0.8

    def test_degenerate(self):
        rng = np.random.default_rng(0)
        s = UniformFactor(1.0, 1.0).sample(rng, 10)
        assert np.all(s == 1.0)

    def test_mean(self):
        assert UniformFactor(0.5, 1.5).mean() == pytest.approx(1.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            UniformFactor(0.0, 1.0)
        with pytest.raises(ValueError):
            UniformFactor(2.0, 1.0)


class TestFactorMixture:
    def test_weights_sum(self):
        with pytest.raises(ValueError, match="sum to 1"):
            FactorMixture(weights=(0.5,), components=(UniformFactor(1, 1),))

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            FactorMixture(
                weights=(0.5, 0.5), components=(UniformFactor(1, 1),)
            )

    def test_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            FactorMixture(weights=(), components=())

    def test_sample_from_components(self):
        rng = np.random.default_rng(0)
        mix = FactorMixture(
            weights=(0.5, 0.5),
            components=(UniformFactor(0.1, 0.2), UniformFactor(0.8, 0.9)),
        )
        s = mix.sample(rng, 4000)
        in_low = ((s >= 0.1) & (s <= 0.2)).mean()
        in_high = ((s >= 0.8) & (s <= 0.9)).mean()
        assert in_low == pytest.approx(0.5, abs=0.05)
        assert in_high == pytest.approx(0.5, abs=0.05)

    def test_mean(self):
        mix = FactorMixture(
            weights=(0.25, 0.75),
            components=(UniformFactor(1.0, 1.0), UniformFactor(2.0, 2.0)),
        )
        assert mix.mean() == pytest.approx(1.75)


class TestPaperMixture:
    def test_local_rate_classes(self):
        rng = np.random.default_rng(1)
        s = PAPER_PERTURBATION.sample_local_rate(rng, 30_000)
        near = ((s >= 0.9) & (s <= 1.1)).mean()
        half = ((s >= 1 / 3) & (s <= 1 / 2)).mean()
        cong = ((s >= 1 / 6) & (s <= 1 / 4)).mean()
        assert near == pytest.approx(0.60, abs=0.02)
        assert half == pytest.approx(0.30, abs=0.02)
        assert cong == pytest.approx(0.10, abs=0.02)

    def test_repo_rate_pm20(self):
        rng = np.random.default_rng(1)
        s = PAPER_PERTURBATION.sample_repo_rate(rng, 5000)
        assert s.min() >= 0.8 and s.max() <= 1.2

    def test_local_overhead_range(self):
        rng = np.random.default_rng(1)
        s = PAPER_PERTURBATION.sample_local_overhead(rng, 5000)
        assert s.min() >= 0.9 and s.max() <= 1.5

    def test_repo_overhead_range(self):
        rng = np.random.default_rng(1)
        s = PAPER_PERTURBATION.sample_repo_overhead(rng, 5000)
        assert s.min() >= 0.8 and s.max() <= 1.2

    def test_local_rates_degrade_on_average(self):
        """The paper's asymmetric design: local service is ~1.8x slower
        in expectation while the repository stays near its estimate."""
        rng = np.random.default_rng(2)
        local = PAPER_PERTURBATION.sample_local_rate(rng, 50_000)
        slowdown = (1.0 / local).mean()
        assert 1.6 < slowdown < 2.1
        repo = PAPER_PERTURBATION.sample_repo_rate(rng, 50_000)
        assert (1.0 / repo).mean() == pytest.approx(1.0, abs=0.05)


class TestIdentity:
    def test_all_ones(self):
        rng = np.random.default_rng(0)
        for fn in (
            IDENTITY_PERTURBATION.sample_local_rate,
            IDENTITY_PERTURBATION.sample_repo_rate,
            IDENTITY_PERTURBATION.sample_local_overhead,
            IDENTITY_PERTURBATION.sample_repo_overhead,
        ):
            assert np.all(fn(rng, 100) == 1.0)

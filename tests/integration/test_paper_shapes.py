"""Integration: the paper's qualitative claims on a reduced workload.

These are the acceptance tests for the reproduction: every Section 5.2
narrative statement, checked on a small-scale workload (paper-scale
numbers are recorded in EXPERIMENTS.md and exercised by the benchmark
suite).
"""

import numpy as np
import pytest

pytestmark = pytest.mark.slow  # full-figure / subprocess suites; excluded by -m "not slow"

from repro.experiments import (
    ExperimentConfig,
    run_fig1,
    run_fig2,
    run_fig3,
    run_headline_claims,
)
from repro.workload.params import WorkloadParams


@pytest.fixture(scope="module")
def cfg():
    return ExperimentConfig(
        params=WorkloadParams.small().with_(requests_per_server=600),
        n_runs=3,
    )


@pytest.fixture(scope="module")
def fig1(cfg):
    return run_fig1(cfg, fractions=(0.2, 0.5, 0.65, 1.0))


class TestFigure1Claims:
    def test_proposed_outperforms_lru_everywhere(self, fig1):
        assert all(
            o <= l + 0.02
            for o, l in zip(fig1.series["proposed"], fig1.series["ideal-lru"])
        )

    def test_ours_at_65_matches_lru_at_100(self, fig1):
        """'our policy with 65% storage is almost the same as LRU with
        100%'"""
        ours_65 = fig1.series["proposed"][fig1.x_values.index(0.65)]
        lru_100 = fig1.series["ideal-lru"][-1]
        assert ours_65 <= lru_100 + 0.10

    def test_remote_vs_local_ordering(self, fig1):
        remote = fig1.scalars["remote (all from repository)"]
        local = fig1.scalars["local (all from local server)"]
        assert remote > 1.5  # paper: +335%; ordering >> local is the claim
        assert 0.0 < local < 0.6  # paper: +23.8%

    def test_small_storage_still_beats_remote(self, fig1):
        remote = fig1.scalars["remote (all from repository)"]
        assert fig1.series["proposed"][0] < remote
        assert fig1.series["ideal-lru"][0] < remote


class TestFigure2Claims:
    @pytest.fixture(scope="class")
    def fig2(self, cfg):
        return run_fig2(cfg, fractions=(0.0, 0.3, 0.6, 0.8, 1.0))

    def test_endpoint_remote(self, fig2):
        remote = fig2.scalars["remote (all from repository)"]
        assert fig2.series["proposed"][0] == pytest.approx(remote, rel=0.05)

    def test_endpoint_optimal(self, fig2):
        assert fig2.series["proposed"][-1] == pytest.approx(0.0, abs=0.02)

    def test_60pct_marginal(self, fig2):
        """'even with sites being able to support only 60% of the
        arriving requests ... the more traffic consuming objects were
        still able to be downloaded locally'"""
        remote = fig2.scalars["remote (all from repository)"]
        at_60 = fig2.series["proposed"][2]
        assert at_60 < 0.25 * remote

    def test_double_exponential(self, fig2):
        ys = fig2.series["proposed"]
        drops = [a - b for a, b in zip(ys, ys[1:])]
        # losses accelerate toward 0% capacity
        assert drops[0] > drops[-1]


class TestFigure3Claims:
    @pytest.fixture(scope="class")
    def fig3(self, cfg):
        return run_fig3(
            cfg,
            local_fractions=(0.5, 0.7, 1.0),
            central_fractions=(0.9, 0.7, 0.5),
        )

    def test_high_local_low_central_acceptable(self, fig3):
        """'With local processing capacities of 70% and more, even ...
        50% ... the response time of our policy is acceptable (around
        40% more than the unconstrained one)'"""
        at_70_50 = fig3.series["central 50%"][1]
        assert at_70_50 < 1.0  # nowhere near Remote's +300-500%

    def test_low_local_hurts_even_at_90_central(self, fig3):
        """'when local capacities drop to 50%-60%, even ... 90% central
        capacity, the rise in response time is significant'"""
        at_50_90 = fig3.series["central 90%"][0]
        at_100_90 = fig3.series["central 90%"][-1]
        assert at_50_90 > at_100_90 + 0.20

    def test_local_dominates_central(self, fig3):
        """Local capacity matters more than the repository's."""
        # (local 100%, central 50%) beats (local 50%, central 90%)
        assert fig3.series["central 50%"][-1] < fig3.series["central 90%"][0]

    def test_central_levels_ordered(self, fig3):
        for i in range(len(fig3.x_values)):
            assert (
                fig3.series["central 90%"][i]
                <= fig3.series["central 70%"][i] + 0.02
            )
            assert (
                fig3.series["central 70%"][i]
                <= fig3.series["central 50%"][i] + 0.02
            )


class TestHeadline:
    def test_orderings(self, cfg):
        claims = run_headline_claims(cfg)
        assert claims.orderings_hold

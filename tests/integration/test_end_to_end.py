"""Integration: the full workflow on generated workloads."""

import numpy as np
import pytest

from repro import (
    IdealLRUPolicy,
    LocalPolicy,
    RemotePolicy,
    RepositoryReplicationPolicy,
    WorkloadParams,
    evaluate_constraints,
    generate_trace,
    generate_workload,
    simulate_allocation,
)
from repro.experiments.scaling import (
    clone_with_capacities,
    processing_capacities_for_fraction,
    storage_capacities_for_fraction,
)


class TestFullPipeline:
    @pytest.fixture(scope="class")
    def setup(self):
        params = WorkloadParams.small()
        model = generate_workload(params, seed=21)
        trace = generate_trace(model, params, seed=22)
        return params, model, trace

    def test_policy_beats_baselines_under_perturbation(self, setup):
        params, model, trace = setup
        ours = RepositoryReplicationPolicy().run(model).allocation
        sims = {
            "ours": simulate_allocation(ours, trace, seed=23),
            "remote": simulate_allocation(
                RemotePolicy().allocate(model), trace, seed=23
            ),
            "local": simulate_allocation(
                LocalPolicy().allocate(model), trace, seed=23
            ),
        }
        lru_sim, _ = IdealLRUPolicy(
            cache_bytes=ours.stored_bytes_all()
        ).evaluate(trace, seed=23)
        assert sims["ours"].mean_page_time < sims["local"].mean_page_time
        assert sims["ours"].mean_page_time < sims["remote"].mean_page_time
        assert sims["ours"].mean_page_time < lru_sim.mean_page_time

    def test_constrained_pipeline_feasible_and_close(self, setup):
        params, model, trace = setup
        ref = RepositoryReplicationPolicy().run(model).allocation
        clone = clone_with_capacities(
            model,
            storage=storage_capacities_for_fraction(model, ref, 0.8),
            processing=processing_capacities_for_fraction(model, 0.8),
        )
        result = RepositoryReplicationPolicy().run(clone)
        assert result.feasible
        base = simulate_allocation(ref, trace, seed=23).mean_page_time
        trace_c = generate_trace(clone, params, seed=22)
        constrained = simulate_allocation(
            result.allocation, trace_c, seed=23
        ).mean_page_time
        # at 80/80 capacity the degradation must stay moderate
        assert constrained < base * 1.6

    def test_offload_pipeline(self, setup):
        params, model, trace = setup
        clone = clone_with_capacities(model, repo_capacity=20.0)
        result = RepositoryReplicationPolicy().run(clone)
        assert "off-loading" in result.phases_run
        rep = evaluate_constraints(result.allocation)
        assert rep.repo_ok
        assert rep.local_ok

    def test_whole_api_surface_importable(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quickstart_docstring_example(self):
        import repro

        model = repro.generate_workload(repro.WorkloadParams.small(), seed=7)
        result = repro.RepositoryReplicationPolicy().run(model)
        trace = repro.generate_trace(
            model, repro.WorkloadParams.small(), seed=1
        )
        sim = repro.simulate_allocation(result.allocation, trace)
        assert sim.n_requests > 0


class TestSeedStability:
    """Regression pin: a fixed seed yields fixed headline numbers.

    If these change, either the generator/simulator changed behaviour
    (bump intentionally) or nondeterminism crept in (a bug).
    """

    def test_pinned_model_shape(self):
        model = generate_workload(WorkloadParams.small(), seed=7)
        assert model.n_pages == 264
        assert int(model.sizes.sum()) == 757_648_773

    def test_pinned_policy_objective(self):
        model = generate_workload(WorkloadParams.small(), seed=7)
        result = RepositoryReplicationPolicy().run(model)
        assert result.objective == pytest.approx(59580.56053190694)

    def test_pinned_simulation_mean(self):
        params = WorkloadParams.small()
        model = generate_workload(params, seed=7)
        result = RepositoryReplicationPolicy().run(model)
        trace = generate_trace(model, params, seed=1)
        sim = simulate_allocation(result.allocation, trace, seed=2)
        assert sim.mean_page_time == pytest.approx(2321.8219, rel=1e-4)

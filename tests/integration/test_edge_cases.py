"""Adversarial structural edge cases across the whole pipeline."""

import math

import numpy as np
import pytest

from repro.core.cost_model import CostModel
from repro.core.partition import partition_all
from repro.core.policy import RepositoryReplicationPolicy
from repro.core.types import (
    ObjectSpec,
    PageSpec,
    RepositorySpec,
    ServerSpec,
    SystemModel,
)
from repro.simulation.engine import simulate_allocation
from repro.simulation.lru_sim import simulate_lru
from repro.workload.params import WorkloadParams
from repro.workload.trace import generate_trace


def _server(i, **kw):
    defaults = dict(
        storage_capacity=math.inf,
        processing_capacity=math.inf,
        rate=10.0,
        overhead=1.0,
        repo_rate=2.0,
        repo_overhead=2.0,
    )
    defaults.update(kw)
    return ServerSpec(server_id=i, **defaults)


class TestDegenerateUniverses:
    def test_html_only_pages(self):
        """Pages with no MOs at all: policy and simulator must cope."""
        m = SystemModel(
            [_server(0)],
            RepositorySpec(),
            [PageSpec(0, 0, 500, 1.0), PageSpec(1, 0, 700, 2.0)],
            [ObjectSpec(0, 100)],
        )
        result = RepositoryReplicationPolicy().run(m)
        assert not result.allocation.comp_local.any()
        trace = generate_trace(m, WorkloadParams.tiny(), seed=1, requests_per_server=20)
        sim = simulate_allocation(result.allocation, trace, seed=2)
        assert np.all(sim.remote_stream_times == 0)
        assert np.all(sim.page_times > 0)

    def test_optional_only_page(self):
        m = SystemModel(
            [_server(0)],
            RepositorySpec(),
            [
                PageSpec(
                    0, 0, 500, 1.0, optional=(0, 1), optional_prob=0.5
                )
            ],
            [ObjectSpec(0, 100), ObjectSpec(1, 200)],
        )
        alloc = partition_all(m)
        assert alloc.opt_local.all()
        assert alloc.replicas[0] == {0, 1}

    def test_zero_frequency_pages(self):
        """f(W_j) = 0 pages contribute nothing to D or constraints but
        must still partition cleanly."""
        m = SystemModel(
            [_server(0)],
            RepositorySpec(),
            [PageSpec(0, 0, 500, 0.0, compulsory=(0,))],
            [ObjectSpec(0, 100)],
        )
        cost = CostModel(m)
        alloc = partition_all(m)
        assert cost.D(alloc) == 0.0
        from repro.core.constraints import local_processing_load

        assert local_processing_load(alloc)[0] == 0.0

    def test_single_page_single_object(self):
        m = SystemModel(
            [_server(0)],
            RepositorySpec(),
            [PageSpec(0, 0, 100, 1.0, compulsory=(0,))],
            [ObjectSpec(0, 1000)],
        )
        result = RepositoryReplicationPolicy().run(m)
        assert result.feasible

    def test_server_with_no_pages(self):
        m = SystemModel(
            [_server(0), _server(1)],
            RepositorySpec(),
            [PageSpec(0, 0, 100, 1.0, compulsory=(0,))],
            [ObjectSpec(0, 1000)],
        )
        result = RepositoryReplicationPolicy().run(m)
        assert result.allocation.replicas[1] == set()
        from repro.core.constraints import evaluate_constraints

        assert evaluate_constraints(result.allocation).ok

    def test_identical_object_sizes(self):
        """Ties everywhere: determinism must hold."""
        m = SystemModel(
            [_server(0)],
            RepositorySpec(),
            [PageSpec(0, 0, 100, 1.0, compulsory=(0, 1, 2, 3))],
            [ObjectSpec(k, 500) for k in range(4)],
        )
        a = partition_all(m)
        b = partition_all(m)
        assert a == b

    def test_extreme_rate_asymmetry_local_wins_all(self):
        """Repository link absurdly slow: everything goes local."""
        m = SystemModel(
            [_server(0, rate=1e6, repo_rate=0.001)],
            RepositorySpec(),
            [PageSpec(0, 0, 100, 1.0, compulsory=(0, 1))],
            [ObjectSpec(0, 1000), ObjectSpec(1, 2000)],
        )
        alloc = partition_all(m)
        assert alloc.page_comp_marks(0).all()

    def test_extreme_rate_asymmetry_remote_wins_all(self):
        """Local link absurdly slow: everything goes remote."""
        m = SystemModel(
            [_server(0, rate=0.001, repo_rate=1e6, overhead=0.0, repo_overhead=0.0)],
            RepositorySpec(),
            [PageSpec(0, 0, 1, 1.0, compulsory=(0, 1))],
            [ObjectSpec(0, 1000), ObjectSpec(1, 2000)],
        )
        alloc = partition_all(m)
        assert not alloc.page_comp_marks(0).any()


class TestSimulatorEdges:
    def test_empty_trace(self, micro_model):
        trace = generate_trace(
            micro_model,
            WorkloadParams.tiny(),
            seed=1,
            requests_per_server=1,
        )
        # single request per server still works end to end
        alloc = partition_all(micro_model)
        sim = simulate_allocation(alloc, trace, seed=2)
        assert sim.n_requests == 2

    def test_lru_with_single_request(self, micro_model):
        trace = generate_trace(
            micro_model, WorkloadParams.tiny(), seed=1, requests_per_server=1
        )
        sim, stats = simulate_lru(trace, cache_bytes=1e6, seed=2)
        assert sim.n_requests == 2
        assert stats.hits == 0  # nothing repeats

    def test_shared_object_across_servers(self):
        """The same MO replicated on two servers is two replicas."""
        m = SystemModel(
            [_server(0), _server(1)],
            RepositorySpec(),
            [
                PageSpec(0, 0, 100, 1.0, compulsory=(0,)),
                PageSpec(1, 1, 100, 1.0, compulsory=(0,)),
            ],
            [ObjectSpec(0, 10_000)],
        )
        alloc = partition_all(m)
        assert 0 in alloc.replicas[0] and 0 in alloc.replicas[1]
        assert alloc.stored_bytes_all().sum() == 20_000

"""Tests for repro.core.partition — the PARTITION algorithm.

Hand-traced expectations on the micro model:

Page 3 @ S1 (spb 0.2 / repo 1.0, html 300): objects sorted 3(400),
2(300), 0(100).  Greedy: 3 -> local (141.5 vs 402.5), 2 -> local
(201.5 vs 302.5), 0 -> remote (102.5 vs 221.5).
"""

import numpy as np
import pytest

from repro.core.allocation import Allocation
from repro.core.cost_model import CostModel
from repro.core.partition import partition_all, partition_page


class TestPartitionPage:
    def test_page3_trace(self, micro_model):
        marks, local_t, remote_t = partition_page(micro_model, 3)
        # compulsory order is (0, 2, 3): object 0 remote, 2 and 3 local
        assert marks.tolist() == [False, True, True]
        assert local_t == pytest.approx(201.5)
        assert remote_t == pytest.approx(102.5)

    def test_page0_all_local(self, micro_model):
        marks, local_t, remote_t = partition_page(micro_model, 0)
        assert marks.tolist() == [True, True]
        assert local_t == pytest.approx(41.0)
        assert remote_t == pytest.approx(2.0)

    def test_page1(self, micro_model):
        marks, local_t, remote_t = partition_page(micro_model, 1)
        assert marks.tolist() == [True]
        assert local_t == pytest.approx(51.0)

    def test_page2(self, micro_model):
        marks, _, _ = partition_page(micro_model, 2)
        assert marks.tolist() == [True, True]

    def test_allowed_restriction(self, micro_model):
        # page 3 with only object 2 allowed: 3 and 0 forced remote
        marks, local_t, remote_t = partition_page(micro_model, 3, allowed={2})
        assert marks.tolist() == [False, True, False]
        # remote carries 400+100, local carries 300:
        assert remote_t == pytest.approx(2.5 + 500.0)
        assert local_t == pytest.approx(61.5 + 60.0)

    def test_allowed_empty_all_remote(self, micro_model):
        marks, local_t, remote_t = partition_page(micro_model, 3, allowed=set())
        assert not marks.any()
        assert remote_t == pytest.approx(802.5)

    def test_streams_balanced_invariant(self, small_model):
        """PARTITION may not leave a move that reduces the page max.

        Greedy balancing guarantee: flipping any single object cannot
        reduce max(local, remote) by construction on sorted sizes is NOT
        a theorem, but the final max must never exceed the one-stream
        extremes.
        """
        for j in range(0, small_model.n_pages, 7):
            marks, lt, rt = partition_page(small_model, j)
            page = small_model.pages[j]
            srv = small_model.servers[page.server]
            total = sum(small_model.objects[k].size for k in page.compulsory)
            all_local = srv.overhead + srv.spb * (page.html_size + total)
            all_remote = max(
                srv.overhead + srv.spb * page.html_size,
                srv.repo_overhead + srv.repo_spb * total,
            )
            assert max(lt, rt) <= max(all_local, all_remote) + 1e-9

    def test_empty_page(self):
        from tests.conftest import build_micro_model
        from repro.core.types import PageSpec, SystemModel

        base = build_micro_model()
        pages = list(base.pages) + [PageSpec(4, 0, 150, 1.0)]
        m = SystemModel(base.servers, base.repository, pages, base.objects)
        marks, lt, rt = partition_page(m, 4)
        assert len(marks) == 0
        assert lt == pytest.approx(1.0 + 0.1 * 150)
        assert rt == pytest.approx(2.0)


class TestPartitionAll:
    def test_marks_match_per_page(self, micro_model):
        alloc = partition_all(micro_model)
        for j in range(micro_model.n_pages):
            marks, _, _ = partition_page(micro_model, j)
            assert np.array_equal(alloc.page_comp_marks(j), marks)

    def test_optional_all_policy(self, micro_model):
        alloc = partition_all(micro_model, optional_policy="all")
        assert alloc.opt_local.all()

    def test_optional_none_policy(self, micro_model):
        alloc = partition_all(micro_model, optional_policy="none")
        assert not alloc.opt_local.any()

    def test_optional_beneficial_policy(self, micro_model):
        # on the micro model local is faster for both optional objects
        alloc = partition_all(micro_model, optional_policy="beneficial")
        assert alloc.opt_local.all()

    def test_beneficial_skips_bad_local(self):
        """A region whose repository link beats its local link keeps
        optional objects remote under 'beneficial' but not under 'all'."""
        from repro.core.types import (
            ObjectSpec,
            PageSpec,
            RepositorySpec,
            ServerSpec,
            SystemModel,
        )

        m = SystemModel(
            [
                ServerSpec(
                    0, np.inf, np.inf, rate=1.0, overhead=5.0,
                    repo_rate=100.0, repo_overhead=0.1,
                )
            ],
            RepositorySpec(),
            [
                PageSpec(
                    0, 0, 100, 1.0, compulsory=(), optional=(0,), optional_prob=0.5
                )
            ],
            [ObjectSpec(0, 1000)],
        )
        assert partition_all(m, optional_policy="all").opt_local.all()
        assert not partition_all(m, optional_policy="beneficial").opt_local.any()

    def test_replicas_are_marked_union(self, micro_model):
        alloc = partition_all(micro_model)
        for i in range(micro_model.n_servers):
            marked = {
                int(micro_model.comp_objects[e])
                for e in np.flatnonzero(alloc.comp_local)
                if micro_model.page_server[micro_model.comp_pages[e]] == i
            } | {
                int(micro_model.opt_objects[e])
                for e in np.flatnonzero(alloc.opt_local)
                if micro_model.page_server[micro_model.opt_pages[e]] == i
            }
            assert alloc.replicas[i] == marked

    def test_allowed_per_server(self, micro_model):
        alloc = partition_all(
            micro_model,
            optional_policy="none",
            allowed_per_server={0: {0, 1, 2}, 1: set()},
        )
        # server 1 pages have nothing marked local
        for j in micro_model.pages_by_server[1]:
            assert not alloc.page_comp_marks(j).any()
        assert alloc.replicas[1] == set()

    def test_partition_beats_extremes_on_objective(self, small_model):
        """PARTITION's D must not exceed either all-local or all-remote."""
        from repro.baselines.local import LocalPolicy
        from repro.baselines.remote import RemotePolicy

        cost = CostModel(small_model)
        ours = cost.D(partition_all(small_model))
        assert ours <= cost.D(LocalPolicy().allocate(small_model)) + 1e-9
        assert ours <= cost.D(RemotePolicy().allocate(small_model)) + 1e-9

    def test_deterministic(self, small_model):
        a = partition_all(small_model)
        b = partition_all(small_model)
        assert a == b

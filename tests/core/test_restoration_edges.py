"""Edge cases of the restoration loops (Eq. 8/10 boundaries).

Companion to :mod:`tests.core.test_restoration`, focused on the corners
the greedy sweeps historically got wrong:

* a processing capacity landing *exactly* on the post-switch load — the
  running-load accumulator drifts by one floating subtraction per switch,
  so the loop must trust only an exact recomputation to terminate;
* eviction of an object whose only marks are optional (no compulsory
  flip, no re-partition);
* the infeasibility frontier for both constraints: capacity exactly at
  the HTML floor restores (by shedding everything), one byte / one
  request below it raises :class:`InfeasibleError`.
"""

import math

import numpy as np
import pytest

from repro.core.constraints import (
    evaluate_constraints,
    local_processing_load,
    storage_used,
)
from repro.core.cost_model import CostModel
from repro.core.partition import partition_all
from repro.core.restoration import (
    InfeasibleError,
    restore_processing_capacity,
    restore_storage_capacity,
)
from tests.conftest import build_micro_model

# micro-model floors (see tests.conftest.build_micro_model):
# S0 hosts pages 0, 1 -> 300 B of HTML, 3.0 req/s of HTML load
# S1 hosts pages 2, 3 -> 400 B of HTML, 1.5 req/s of HTML load
S0_HTML_BYTES = 300.0
S1_HTML_BYTES = 400.0
S0_HTML_LOAD = 3.0
S1_HTML_LOAD = 1.5


def _partition(storage=(math.inf, math.inf), processing=(math.inf, math.inf)):
    m = build_micro_model(storage=storage, processing=processing)
    return m, partition_all(m), CostModel(m)


class TestExactCapacityBoundary:
    """Capacity equal to the post-switch load terminates cleanly."""

    def _final_load(self, capacity: float) -> tuple[float, int]:
        m, alloc, cost = _partition(processing=(capacity, math.inf))
        stats = restore_processing_capacity(alloc, cost, server_id=0)
        return float(local_processing_load(alloc)[0]), stats.switches

    @pytest.mark.parametrize("capacity", [5.0, 4.0, 3.5])
    def test_capacity_exactly_at_post_switch_load(self, capacity):
        """Re-running with C == the realised load must not over-shed.

        Pass 1 restores at ``capacity`` and records the exact load L the
        sweep ends on.  Pass 2 restores a fresh partition with C(S0) = L:
        the greedy replays the same switch sequence and its accumulator
        lands (up to drift) exactly on the capacity — the drift fix must
        recompute, accept, and stop rather than shed one more pair or
        spuriously raise.
        """
        load, switches = self._final_load(capacity)
        assert load <= capacity + 1e-9

        m2, alloc2, cost2 = _partition(processing=(load, math.inf))
        stats2 = restore_processing_capacity(alloc2, cost2, server_id=0)
        final = float(local_processing_load(alloc2)[0])
        assert final == pytest.approx(load, abs=1e-9)
        assert stats2.switches == switches
        alloc2.check_invariants()

    def test_capacity_exactly_at_full_local_load(self):
        """C equal to the unconstrained load means zero switches."""
        m, alloc, cost = _partition()
        full = float(local_processing_load(alloc)[0])
        m2, alloc2, cost2 = _partition(processing=(full, math.inf))
        stats = restore_processing_capacity(alloc2, cost2, server_id=0)
        assert stats.switches == 0
        assert float(local_processing_load(alloc2)[0]) == pytest.approx(full)


class TestOptionalOnlyEviction:
    """Evicting an object whose only marks are optional downloads."""

    def _optional_only_alloc(self, capacity: float):
        """S0 allocation reduced to: HTML + object 4, marked optional-only.

        Object 4 (50 B) appears in the model solely as page 0's optional
        object, so after clearing S0's compulsory marks it is the one
        replica whose eviction exercises the no-compulsory-flip path.
        """
        m, alloc, cost = _partition(storage=(capacity, math.inf))
        for e in np.flatnonzero(m.page_server[m.comp_pages] == 0):
            alloc.set_comp_local(int(e), False)
        for k in list(alloc.replicas[0]):
            if k != 4:
                alloc.deallocate(0, k)
        sl = m.opt_slice(0)  # page 0's optional entries = (object 4,)
        e4 = sl.start
        if not alloc.opt_local[e4]:
            alloc.store(0, 4)
            alloc.set_opt_local(e4, True)
        alloc.check_invariants()
        assert alloc.replicas[0] == {4}
        assert alloc.mark_count(0, 4) >= 1
        return m, alloc, cost, e4

    def test_evicts_optional_only_object(self):
        # HTML (300 B) + object 4 (50 B) > 330 B forces the eviction
        m, alloc, cost, e4 = self._optional_only_alloc(capacity=330.0)
        stats = restore_storage_capacity(alloc, cost, server_id=0)
        assert stats.evictions == 1
        assert stats.evicted_objects == [(0, 4)]
        assert stats.bytes_freed == pytest.approx(50.0)
        assert not alloc.opt_local[e4]
        assert alloc.replicas[0] == set()
        # no compulsory mark flipped, so nothing was re-partitioned
        assert stats.repartitioned_pages == 0
        alloc.check_invariants()

    def test_optional_only_object_survives_when_it_fits(self):
        m, alloc, cost, e4 = self._optional_only_alloc(capacity=350.0)
        stats = restore_storage_capacity(alloc, cost, server_id=0)
        assert stats.evictions == 0
        assert alloc.opt_local[e4]
        assert alloc.replicas[0] == {4}


class TestInfeasibilityFrontier:
    """Both constraints: restorable exactly at the HTML floor, raising
    just below it."""

    def test_storage_at_html_floor_evicts_everything(self):
        m, alloc, cost = _partition(
            storage=(S0_HTML_BYTES, S1_HTML_BYTES)
        )
        stats = restore_storage_capacity(alloc, cost)
        assert evaluate_constraints(alloc).storage_ok
        assert alloc.replicas[0] == set() and alloc.replicas[1] == set()
        used = storage_used(alloc)
        assert used[0] == pytest.approx(S0_HTML_BYTES)
        assert used[1] == pytest.approx(S1_HTML_BYTES)
        assert stats.evictions > 0

    @pytest.mark.parametrize(
        "storage",
        [(S0_HTML_BYTES - 1.0, math.inf), (math.inf, S1_HTML_BYTES - 1.0)],
        ids=["server0", "server1"],
    )
    def test_storage_below_html_floor_raises(self, storage):
        m, alloc, cost = _partition(storage=storage)
        with pytest.raises(InfeasibleError, match="HTML"):
            restore_storage_capacity(alloc, cost)

    def test_processing_at_html_floor_sheds_everything(self):
        m, alloc, cost = _partition(processing=(S0_HTML_LOAD, S1_HTML_LOAD))
        restore_processing_capacity(alloc, cost)
        assert evaluate_constraints(alloc).local_ok
        assert not alloc.comp_local.any()
        assert not alloc.opt_local.any()
        load = local_processing_load(alloc)
        assert load[0] == pytest.approx(S0_HTML_LOAD)
        assert load[1] == pytest.approx(S1_HTML_LOAD)

    @pytest.mark.parametrize(
        "processing",
        [(S0_HTML_LOAD - 0.1, math.inf), (math.inf, S1_HTML_LOAD - 0.1)],
        ids=["server0", "server1"],
    )
    def test_processing_below_html_floor_raises(self, processing):
        m, alloc, cost = _partition(processing=processing)
        with pytest.raises(InfeasibleError, match="HTML"):
            restore_processing_capacity(alloc, cost)

    def test_full_pipeline_at_both_floors(self):
        """Storage then processing at their exact floors compose."""
        m = build_micro_model(
            storage=(S0_HTML_BYTES, S1_HTML_BYTES),
            processing=(S0_HTML_LOAD, S1_HTML_LOAD),
        )
        alloc = partition_all(m)
        cost = CostModel(m)
        restore_storage_capacity(alloc, cost)
        restore_processing_capacity(alloc, cost)
        rep = evaluate_constraints(alloc)
        assert rep.storage_ok and rep.local_ok
        alloc.check_invariants()

"""Tests for repro.core.ilp — the exact MILP reference solver."""

import math

import numpy as np
import pytest

from repro.core.cost_model import CostModel
from repro.core.ilp import solve_optimal_allocation
from repro.core.partition import partition_all
from repro.core.policy import RepositoryReplicationPolicy
from repro.core.constraints import evaluate_constraints
from tests.conftest import build_micro_model


class TestOptimality:
    def test_unconstrained_beats_or_matches_greedy(self, micro_model):
        cost = CostModel(micro_model)
        greedy = cost.D(partition_all(micro_model))
        sol = solve_optimal_allocation(micro_model)
        assert sol.objective <= greedy + 1e-6

    def test_objective_matches_cost_model(self, micro_model):
        sol = solve_optimal_allocation(micro_model)
        cost = CostModel(micro_model)
        assert cost.D(sol.allocation) == pytest.approx(sol.objective, rel=1e-6)

    def test_greedy_gap_is_small_unconstrained(self, micro_model):
        """On the micro model PARTITION should be near-optimal."""
        cost = CostModel(micro_model)
        greedy = cost.D(partition_all(micro_model))
        opt = solve_optimal_allocation(micro_model).objective
        assert greedy <= opt * 1.10  # within 10%

    def test_constrained_storage_optimum_feasible(self):
        m = build_micro_model(storage=(800.0, 1000.0))
        sol = solve_optimal_allocation(m)
        rep = evaluate_constraints(sol.allocation)
        assert rep.storage_ok

    def test_constrained_optimum_bounds_greedy(self):
        m = build_micro_model(storage=(800.0, 1000.0))
        result = RepositoryReplicationPolicy().run(m)
        sol = solve_optimal_allocation(m)
        assert sol.objective <= result.objective + 1e-6

    def test_processing_constraint_respected(self):
        m = build_micro_model(processing=(5.0, 4.0))
        sol = solve_optimal_allocation(m)
        rep = evaluate_constraints(sol.allocation)
        assert rep.local_ok

    def test_repo_constraint_respected(self):
        m = build_micro_model(repo_capacity=3.0)
        sol = solve_optimal_allocation(m)
        rep = evaluate_constraints(sol.allocation)
        assert rep.repo_ok


class TestGuards:
    def test_too_large_rejected(self, small_model):
        with pytest.raises(ValueError, match="entries"):
            solve_optimal_allocation(small_model)

    def test_weights_passed_through(self, micro_model):
        a = solve_optimal_allocation(micro_model, alpha1=1.0, alpha2=1.0)
        b = solve_optimal_allocation(micro_model, alpha1=4.0, alpha2=1.0)
        assert b.objective > a.objective


class TestTinyGenerated:
    def test_greedy_gap_on_generated(self, tiny_model):
        cost = CostModel(tiny_model)
        greedy = cost.D(partition_all(tiny_model))
        opt = solve_optimal_allocation(tiny_model).objective
        assert opt <= greedy + 1e-6
        # greedy should be within 25% of optimal on tiny instances
        assert greedy <= opt * 1.25

"""Tests for repro.core.verify — the consolidated checker."""

import pytest

from repro.core.partition import partition_all
from repro.core.policy import RepositoryReplicationPolicy
from repro.core.verify import verify_allocation
from tests.conftest import build_micro_model


class TestVerifyAllocation:
    def test_clean_allocation_passes(self, micro_model):
        report = verify_allocation(partition_all(micro_model))
        assert report.passed
        assert report.failures == []

    def test_feasibility_expectation_met(self, micro_model):
        report = verify_allocation(
            partition_all(micro_model), expect_feasible=True
        )
        assert report.passed

    def test_feasibility_expectation_violated(self):
        m = build_micro_model(storage=(700.0, 900.0))
        report = verify_allocation(partition_all(m), expect_feasible=True)
        assert not report.passed
        assert any("expected feasible" in f for f in report.failures)

    def test_expected_infeasible(self):
        m = build_micro_model(storage=(700.0, 900.0))
        report = verify_allocation(partition_all(m), expect_feasible=False)
        assert report.passed

    def test_infeasible_recorded_as_warning_by_default(self):
        m = build_micro_model(storage=(700.0, 900.0))
        report = verify_allocation(partition_all(m))
        assert report.passed
        assert report.warnings

    def test_corrupted_allocation_fails(self, micro_model):
        alloc = partition_all(micro_model)
        alloc.replicas[0].clear()  # violate marks ⊆ replicas directly
        report = verify_allocation(alloc)
        assert not report.passed

    def test_raise_if_failed(self, micro_model):
        alloc = partition_all(micro_model)
        alloc.replicas[0].clear()
        with pytest.raises(AssertionError, match="verification failed"):
            verify_allocation(alloc).raise_if_failed()

    def test_policy_results_verify(self):
        m = build_micro_model(
            storage=(800.0, 1200.0), processing=(4.0, 2.5), repo_capacity=2.0
        )
        result = RepositoryReplicationPolicy(optional_policy="none").run(m)
        verify_allocation(
            result.allocation, expect_feasible=result.feasible
        ).raise_if_failed()

    def test_generated_policy_verifies(self, small_model):
        result = RepositoryReplicationPolicy().run(small_model)
        verify_allocation(result.allocation, expect_feasible=True).raise_if_failed()

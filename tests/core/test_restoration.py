"""Tests for repro.core.restoration — Eq. 8/10 greedy repair."""

import math

import numpy as np
import pytest

from repro.core.allocation import Allocation
from repro.core.constraints import (
    evaluate_constraints,
    local_processing_load,
    storage_used,
)
from repro.core.cost_model import CostModel
from repro.core.partition import partition_all
from repro.core.restoration import (
    InfeasibleError,
    restore_processing_capacity,
    restore_storage_capacity,
)
from tests.conftest import build_micro_model


def _constrained_partition(storage=(math.inf, math.inf), processing=(math.inf, math.inf)):
    m = build_micro_model(storage=storage, processing=processing)
    alloc = partition_all(m)
    cost = CostModel(m)
    return m, alloc, cost


class TestStorageRestoration:
    def test_noop_when_satisfied(self, micro_model):
        alloc = partition_all(micro_model)
        cost = CostModel(micro_model)
        before = alloc.copy()
        stats = restore_storage_capacity(alloc, cost)
        assert stats.evictions == 0
        assert alloc == before

    def test_restores_constraint(self):
        m, alloc, cost = _constrained_partition(storage=(700.0, 900.0))
        assert not evaluate_constraints(alloc).storage_ok
        stats = restore_storage_capacity(alloc, cost)
        assert evaluate_constraints(alloc).storage_ok
        assert stats.evictions > 0
        assert stats.bytes_freed > 0

    def test_marks_consistent_after(self):
        m, alloc, cost = _constrained_partition(storage=(700.0, 900.0))
        restore_storage_capacity(alloc, cost)
        alloc.check_invariants()

    def test_objective_only_worsens_or_matches(self):
        """Shrinking storage cannot improve the (already greedy) D."""
        m, alloc, cost = _constrained_partition(storage=(700.0, 900.0))
        before = cost.D(alloc)
        restore_storage_capacity(alloc, cost)
        assert cost.D(alloc) >= before - 1e-9

    def test_single_server_scope(self):
        m, alloc, cost = _constrained_partition(storage=(700.0, math.inf))
        marks_s1 = [alloc.page_comp_marks(j).copy() for j in m.pages_by_server[1]]
        restore_storage_capacity(alloc, cost, server_id=0)
        assert storage_used(alloc)[0] <= 700.0 + 1e-9
        for j, before in zip(m.pages_by_server[1], marks_s1):
            assert np.array_equal(alloc.page_comp_marks(j), before)

    def test_infeasible_html_raises(self):
        # S0 hosts 300 B of HTML; 200 B of storage cannot ever fit it
        m, alloc, cost = _constrained_partition(storage=(200.0, math.inf))
        with pytest.raises(InfeasibleError, match="HTML"):
            restore_storage_capacity(alloc, cost)

    def test_progressively_tighter_storage_monotone(self, small_model):
        """Tighter budgets must yield weakly worse objectives."""
        from repro.experiments.scaling import (
            clone_with_capacities,
            storage_capacities_for_fraction,
        )

        ref = partition_all(small_model)
        prev_d = None
        for frac in (1.0, 0.6, 0.3):
            caps = storage_capacities_for_fraction(small_model, ref, frac)
            clone = clone_with_capacities(small_model, storage=caps)
            alloc = partition_all(clone)
            cost = CostModel(clone)
            restore_storage_capacity(alloc, cost)
            d = cost.D(alloc)
            assert evaluate_constraints(alloc).storage_ok
            if prev_d is not None:
                assert d >= prev_d - 1e-6
            prev_d = d

    def test_repartition_recovers_stored_objects(self):
        """After an eviction, pages may re-mark still-stored objects.

        Build a case: tight storage on S1 forces evictions; the
        re-partition step must leave every page's marks pointing only at
        stored objects.
        """
        m, alloc, cost = _constrained_partition(storage=(math.inf, 800.0))
        stats = restore_storage_capacity(alloc, cost)
        for j in m.pages_by_server[1]:
            page = m.pages[j]
            for k, mk in zip(page.compulsory, alloc.page_comp_marks(j)):
                if mk:
                    assert k in alloc.replicas[1]

    def test_zero_mo_storage_evicts_everything(self):
        m, alloc, cost = _constrained_partition(storage=(300.0, 400.0))
        restore_storage_capacity(alloc, cost)
        assert alloc.replicas[0] == set()
        assert alloc.replicas[1] == set()
        assert not alloc.comp_local.any()
        assert not alloc.opt_local.any()


class TestServerSubsets:
    """The ``servers=`` scope used by the incremental re-planner."""

    def test_storage_subset_equals_full_sweep(self):
        m1, a1, c1 = _constrained_partition(storage=(700.0, 900.0))
        m2, a2, c2 = _constrained_partition(storage=(700.0, 900.0))
        restore_storage_capacity(a1, c1)
        bad = evaluate_constraints(a2).violated_servers_storage()
        restore_storage_capacity(a2, c2, servers=bad)
        # sweeping only the violated servers is the full-sweep result:
        # the per-server loop exits immediately on feasible servers
        assert np.array_equal(a1.comp_local, a2.comp_local)
        assert np.array_equal(a1.opt_local, a2.opt_local)
        assert a1.replicas == a2.replicas

    def test_processing_subset_equals_full_sweep(self):
        m1, a1, c1 = _constrained_partition(processing=(5.0, 4.0))
        m2, a2, c2 = _constrained_partition(processing=(5.0, 4.0))
        restore_processing_capacity(a1, c1)
        bad = evaluate_constraints(a2).violated_servers_processing()
        restore_processing_capacity(a2, c2, servers=bad)
        assert np.array_equal(a1.comp_local, a2.comp_local)
        assert np.array_equal(a1.opt_local, a2.opt_local)
        assert a1.replicas == a2.replicas

    def test_subset_leaves_other_servers_untouched(self):
        m, alloc, cost = _constrained_partition(storage=(700.0, 900.0))
        marks_s1 = [
            alloc.page_comp_marks(j).copy() for j in m.pages_by_server[1]
        ]
        restore_storage_capacity(alloc, cost, servers=[0])
        assert storage_used(alloc)[0] <= 700.0 + 1e-9
        for j, before in zip(m.pages_by_server[1], marks_s1):
            assert np.array_equal(alloc.page_comp_marks(j), before)

    def test_duplicates_deduped(self):
        m1, a1, c1 = _constrained_partition(storage=(700.0, 900.0))
        m2, a2, c2 = _constrained_partition(storage=(700.0, 900.0))
        restore_storage_capacity(a1, c1, servers=[0, 1])
        restore_storage_capacity(a2, c2, servers=[1, 0, 0, 1])
        assert np.array_equal(a1.comp_local, a2.comp_local)
        assert a1.replicas == a2.replicas

    @pytest.mark.parametrize("kernel", ["batched", "scalar"])
    def test_kernels_agree_on_subset(self, kernel):
        m, alloc, cost = _constrained_partition(storage=(700.0, 900.0))
        restore_storage_capacity(alloc, cost, servers=[0, 1], kernel=kernel)
        assert evaluate_constraints(alloc).storage_ok

    def test_servers_and_server_id_mutually_exclusive(self, micro_model):
        alloc = partition_all(micro_model)
        cost = CostModel(micro_model)
        with pytest.raises(ValueError, match="not both"):
            restore_storage_capacity(alloc, cost, server_id=0, servers=[1])
        with pytest.raises(ValueError, match="not both"):
            restore_processing_capacity(alloc, cost, server_id=0, servers=[1])

    def test_out_of_range_rejected(self, micro_model):
        alloc = partition_all(micro_model)
        cost = CostModel(micro_model)
        with pytest.raises(ValueError, match="out of range"):
            restore_storage_capacity(alloc, cost, servers=[2])
        with pytest.raises(ValueError, match="out of range"):
            restore_processing_capacity(alloc, cost, servers=[-1])

    def test_empty_subset_noop(self, micro_model):
        alloc = partition_all(micro_model)
        cost = CostModel(micro_model)
        before = alloc.copy()
        stats = restore_storage_capacity(alloc, cost, servers=[])
        assert stats.evictions == 0
        assert alloc == before


class TestProcessingRestoration:
    def test_noop_when_satisfied(self, micro_model):
        alloc = partition_all(micro_model)
        cost = CostModel(micro_model)
        before = alloc.copy()
        stats = restore_processing_capacity(alloc, cost)
        assert stats.switches == 0
        assert alloc == before

    def test_restores_constraint(self):
        # all-local load is 7.1 at S0 and 5.6 at S1
        m, alloc, cost = _constrained_partition(processing=(5.0, 4.0))
        assert not evaluate_constraints(alloc).local_ok
        stats = restore_processing_capacity(alloc, cost)
        rep = evaluate_constraints(alloc)
        assert rep.local_ok
        assert stats.switches > 0
        assert stats.load_shed > 0

    def test_load_bounded_after(self):
        m, alloc, cost = _constrained_partition(processing=(4.0, 3.0))
        restore_processing_capacity(alloc, cost)
        load = local_processing_load(alloc)
        assert load[0] <= 4.0 + 1e-6
        assert load[1] <= 3.0 + 1e-6

    def test_html_only_capacity_sheds_all(self):
        # html loads are 3.0 / 1.5 req/s
        m, alloc, cost = _constrained_partition(processing=(3.0, 1.5))
        restore_processing_capacity(alloc, cost)
        assert not alloc.comp_local.any()
        assert not alloc.opt_local.any()

    def test_infeasible_html_load_raises(self):
        m, alloc, cost = _constrained_partition(processing=(2.0, math.inf))
        with pytest.raises(InfeasibleError, match="HTML"):
            restore_processing_capacity(alloc, cost)

    def test_fully_remote_objects_deallocated(self):
        m, alloc, cost = _constrained_partition(processing=(3.0, 1.5))
        stats = restore_processing_capacity(alloc, cost)
        # every object lost all marks, so every replica must be gone
        assert alloc.replicas[0] == set()
        assert alloc.replicas[1] == set()
        assert stats.deallocations > 0

    def test_marks_consistent_after(self):
        m, alloc, cost = _constrained_partition(processing=(5.0, 4.0))
        restore_processing_capacity(alloc, cost)
        alloc.check_invariants()

    def test_infinite_capacity_skipped(self, micro_model):
        alloc = partition_all(micro_model)
        cost = CostModel(micro_model)
        stats = restore_processing_capacity(alloc, cost, server_id=0)
        assert stats.switches == 0

    def test_greedy_prefers_cheap_switches(self):
        """The first switch must be (weakly) the cheapest amortised one."""
        m, alloc, cost = _constrained_partition(processing=(7.0, math.inf))
        # compute all candidate amortised deltas at S0 before restoration
        from repro.core.restoration import _PageState

        state = _PageState(cost, alloc)
        cands = []
        for e in np.flatnonzero(alloc.comp_local):
            j = int(m.comp_pages[e])
            if m.page_server[j] != 0:
                continue
            size = float(m.sizes[m.comp_objects[e]])
            old = state.page_time(j)
            new = state.page_time_if_moved_remote(j, size)
            cands.append(
                (cost.alpha1 * m.frequencies[j] * (new - old)) / m.frequencies[j]
            )
        for e in np.flatnonzero(alloc.opt_local):
            j = int(m.opt_pages[e])
            if m.page_server[j] != 0:
                continue
            w = m.frequencies[j] * m.opt_probs[e]
            cands.append(cost.optional_entry_delta(e, to_local=False) / w)
        cheapest = min(cands)

        work = alloc.copy()
        stats = restore_processing_capacity(work, cost, server_id=0)
        assert stats.switches >= 1
        # realised amortised cost of the run's first (cheapest) move:
        assert stats.objective_delta / stats.load_shed >= cheapest - 1e-9


class TestEndToEndRestoration:
    def test_storage_then_processing(self, small_model):
        from repro.experiments.scaling import (
            clone_with_capacities,
            processing_capacities_for_fraction,
            storage_capacities_for_fraction,
        )

        ref = partition_all(small_model)
        storage = storage_capacities_for_fraction(small_model, ref, 0.5)
        processing = processing_capacities_for_fraction(small_model, 0.5)
        clone = clone_with_capacities(
            small_model, storage=storage, processing=processing
        )
        alloc = partition_all(clone)
        cost = CostModel(clone)
        restore_storage_capacity(alloc, cost)
        restore_processing_capacity(alloc, cost)
        rep = evaluate_constraints(alloc)
        assert rep.storage_ok and rep.local_ok
        alloc.check_invariants()

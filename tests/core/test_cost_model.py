"""Tests for repro.core.cost_model — exact Eq. 3-7 arithmetic.

All expectations are hand-computed on the micro model (see
``tests/conftest.py`` for its round-number attributes).
"""

import numpy as np
import pytest

from repro.baselines.local import LocalPolicy
from repro.baselines.remote import RemotePolicy
from repro.core.allocation import Allocation
from repro.core.cost_model import CostModel


@pytest.fixture
def remote_alloc(micro_model):
    return RemotePolicy().allocate(micro_model)


@pytest.fixture
def local_alloc(micro_model):
    return LocalPolicy().allocate(micro_model)


class TestStreamTimes:
    def test_all_remote_page_times(self, micro_cost, remote_alloc):
        t = micro_cost.page_times(remote_alloc)
        # page 0 @S0: local = 1 + 0.1*100 = 11 ; remote = 2 + 0.5*300 = 152
        assert t.local[0] == pytest.approx(11.0)
        assert t.remote[0] == pytest.approx(152.0)
        assert t.page[0] == pytest.approx(152.0)
        # page 2 @S1: local = 1.5 + 0.2*100 = 21.5 ; remote = 2.5 + 600 = 602.5
        assert t.local[2] == pytest.approx(21.5)
        assert t.remote[2] == pytest.approx(602.5)
        # page 3 @S1: remote = 2.5 + (100+300+400) = 802.5
        assert t.remote[3] == pytest.approx(802.5)

    def test_all_local_page_times(self, micro_cost, local_alloc):
        t = micro_cost.page_times(local_alloc)
        # page 0: local = 1 + 0.1*(100+300) = 41 ; remote = Ovhd only = 2
        assert t.local[0] == pytest.approx(41.0)
        assert t.remote[0] == pytest.approx(2.0)
        assert t.page[0] == pytest.approx(41.0)
        # page 3: local = 1.5 + 0.2*(300+800) = 221.5
        assert t.local[3] == pytest.approx(221.5)

    def test_max_is_elementwise(self, micro_cost, remote_alloc):
        t = micro_cost.page_times(remote_alloc)
        assert np.array_equal(t.page, np.maximum(t.local, t.remote))

    def test_byte_aggregation(self, micro_cost, micro_model, local_alloc):
        lb = micro_cost.local_mo_bytes(local_alloc)
        rb = micro_cost.remote_mo_bytes(local_alloc)
        assert lb.tolist() == [300.0, 300.0, 600.0, 800.0]
        assert rb.tolist() == [0.0, 0.0, 0.0, 0.0]


class TestOptionalTimes:
    def test_all_remote(self, micro_cost, remote_alloc):
        opt = micro_cost.optional_times(remote_alloc)
        # page 0: 0.1 * (2 + 0.5*50) = 2.7 ; page 2: 0.2 * (2.5 + 60) = 12.5
        assert opt[0] == pytest.approx(2.7)
        assert opt[2] == pytest.approx(12.5)
        assert opt[1] == 0.0 and opt[3] == 0.0

    def test_all_local(self, micro_cost, local_alloc):
        opt = micro_cost.optional_times(local_alloc)
        # page 0: 0.1 * (1 + 0.1*50) = 0.6 ; page 2: 0.2 * (1.5 + 0.2*60) = 2.7
        assert opt[0] == pytest.approx(0.6)
        assert opt[2] == pytest.approx(2.7)


class TestObjectives:
    def test_d1_all_remote(self, micro_cost, remote_alloc):
        # 1*152 + 2*152 + 0.5*602.5 + 1*802.5
        assert micro_cost.D1(remote_alloc) == pytest.approx(1559.75)

    def test_d2_all_remote(self, micro_cost, remote_alloc):
        assert micro_cost.D2(remote_alloc) == pytest.approx(8.95)

    def test_d_all_remote(self, micro_cost, remote_alloc):
        assert micro_cost.D(remote_alloc) == pytest.approx(2 * 1559.75 + 8.95)

    def test_d_all_local(self, micro_cost, local_alloc):
        # D1 = 41 + 102 + 70.75 + 221.5 = 435.25 ; D2 = 0.6 + 1.35 = 1.95
        assert micro_cost.D(local_alloc) == pytest.approx(2 * 435.25 + 1.95)

    def test_objective_from_times_matches(self, micro_cost, local_alloc):
        times = micro_cost.page_times(local_alloc)
        assert micro_cost.objective_from_times(times) == pytest.approx(
            micro_cost.D(local_alloc)
        )

    def test_weights_scale(self, micro_model, remote_alloc):
        c1 = CostModel(micro_model, alpha1=1.0, alpha2=1.0)
        c2 = CostModel(micro_model, alpha1=3.0, alpha2=1.0)
        d1 = c1.D1(remote_alloc)
        assert c2.D(remote_alloc) == pytest.approx(c1.D(remote_alloc) + 2 * d1)

    def test_bad_weights_rejected(self, micro_model):
        with pytest.raises(ValueError, match="positive"):
            CostModel(micro_model, alpha1=0.0)
        with pytest.raises(ValueError, match="positive"):
            CostModel(micro_model, alpha2=-1.0)


class TestScalarHelpers:
    def test_page_time_from_bytes_matches_vectorised(
        self, micro_cost, local_alloc
    ):
        t = micro_cost.page_times(local_alloc)
        lb = micro_cost.local_mo_bytes(local_alloc)
        rb = micro_cost.remote_mo_bytes(local_alloc)
        for j in range(4):
            assert micro_cost.page_time_from_bytes(
                j, lb[j], rb[j]
            ) == pytest.approx(t.page[j])

    def test_optional_entry_delta_signs(self, micro_cost):
        # Moving optional entry 0 (page 0, object 4) to local:
        # alpha2 * f * U' * (t_local - t_repo) = 1 * 1 * 0.1 * (6 - 27) = -2.1
        assert micro_cost.optional_entry_delta(0, to_local=True) == pytest.approx(
            -2.1
        )
        assert micro_cost.optional_entry_delta(0, to_local=False) == pytest.approx(
            2.1
        )

    def test_scalars_cached(self, micro_cost):
        assert micro_cost.scalars is micro_cost.scalars


class TestConsistencyOnGenerated(object):
    def test_partial_allocation_consistency(self, small_model):
        """Vectorised D equals a literal per-page Python transcription."""
        rng = np.random.default_rng(0)
        cost = CostModel(small_model)
        alloc = Allocation(small_model)
        for e in range(len(small_model.comp_objects)):
            if rng.random() < 0.5:
                alloc.set_comp_local(e, True)
        for e in range(len(small_model.opt_objects)):
            if rng.random() < 0.5:
                alloc.set_opt_local(e, True)

        m = small_model
        d1 = 0.0
        d2 = 0.0
        for j, page in enumerate(m.pages):
            srv = m.servers[page.server]
            marks = alloc.page_comp_marks(j)
            lb = sum(
                m.objects[k].size for k, mk in zip(page.compulsory, marks) if mk
            )
            rb = sum(
                m.objects[k].size
                for k, mk in zip(page.compulsory, marks)
                if not mk
            )
            tl = srv.overhead + srv.spb * (page.html_size + lb)
            tr = srv.repo_overhead + srv.repo_spb * rb
            d1 += page.frequency * max(tl, tr)
            omarks = alloc.page_opt_marks(j)
            ot = 0.0
            for k, mk in zip(page.optional, omarks):
                size = m.objects[k].size
                if mk:
                    ot += page.optional_prob * (srv.overhead + srv.spb * size)
                else:
                    ot += page.optional_prob * (
                        srv.repo_overhead + srv.repo_spb * size
                    )
            d2 += page.frequency * page.optional_rate_scale * ot
        assert cost.D1(alloc) == pytest.approx(d1, rel=1e-10)
        assert cost.D2(alloc) == pytest.approx(d2, rel=1e-10)
        assert cost.D(alloc) == pytest.approx(2 * d1 + d2, rel=1e-10)

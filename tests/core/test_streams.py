"""Tests for the k-stream engine surface: ``resolve_streams``, the
k>2 end-to-end pipeline, scalar/batched differential identity under
constraints, and the explicit k=2-only guards."""

import dataclasses

import numpy as np
import pytest

from repro.core.constraints import (
    evaluate_constraints,
    local_processing_load,
    remote_stream_loads,
    storage_used,
)
from repro.core.cost_model import CostModel
from repro.core.partition import partition_all
from repro.core.policy import RepositoryReplicationPolicy
from repro.core.shard import run_sharded_policy
from repro.core.types import StreamTopology, resolve_streams
from repro.workload.generator import generate_workload
from repro.workload.params import WorkloadParams


class TestResolveStreams:
    """``REPRO_STREAMS`` resolution mirrors ``resolve_shards`` (same
    ``env_positive_int`` machinery and error style)."""

    def test_explicit_value_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_STREAMS", "7")
        assert resolve_streams(3) == 3

    def test_env_value_used_when_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_STREAMS", "4")
        assert resolve_streams(None) == 4

    def test_defaults_to_paper_model(self, monkeypatch):
        monkeypatch.delenv("REPRO_STREAMS", raising=False)
        assert resolve_streams(None) == 2

    @pytest.mark.parametrize("value", ["0", "-3", "2.5", "abc"])
    def test_env_rejects_bad_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_STREAMS", value)
        with pytest.raises(ValueError, match="REPRO_STREAMS"):
            resolve_streams(None)

    @pytest.mark.parametrize("value", [0, -1, 2.5, True, "2"])
    def test_explicit_rejects_bad_values(self, value):
        with pytest.raises(ValueError, match="streams"):
            resolve_streams(value)

    def test_rejects_single_stream(self, monkeypatch):
        monkeypatch.setenv("REPRO_STREAMS", "1")
        with pytest.raises(ValueError, match="at least 2"):
            resolve_streams(None)

    def test_rejects_more_streams_than_sources(self):
        with pytest.raises(ValueError, match="repository count"):
            resolve_streams(4, n_repositories=2)

    def test_params_reject_unsourced_streams(self):
        with pytest.raises(ValueError, match="repository count"):
            WorkloadParams.tiny().with_(n_streams=3)
        with pytest.raises(ValueError, match="n_repositories"):
            WorkloadParams.tiny().with_(n_repositories=0)


def _mesh_params(k: int = 3) -> WorkloadParams:
    return WorkloadParams.tiny().with_(n_streams=k, n_repositories=k - 1)


def _constrain(model, storage_frac=0.75, processing_frac=0.85):
    """Clone ``model`` with capacities tightened below the unconstrained
    policy's need, so both restoration phases must run."""
    probe = partition_all(model)
    used = storage_used(probe)
    load = local_processing_load(probe)
    servers = [
        dataclasses.replace(
            sv,
            storage_capacity=float(used[i] * storage_frac),
            processing_capacity=float(load[i] * processing_frac),
        )
        for i, sv in enumerate(model.servers)
    ]
    topology = StreamTopology(
        rates=model.stream_rates, overheads=model.stream_overheads
    )
    return type(model)(
        servers, model.repository, model.pages, model.objects, topology=topology
    )


class TestMeshPipeline:
    def test_three_stream_policy_is_feasible(self):
        model = _constrain(generate_workload(_mesh_params(3), seed=5))
        result = RepositoryReplicationPolicy().run(model)
        assert result.feasible
        report = evaluate_constraints(result.allocation)
        assert report.storage_ok and report.local_ok and report.repo_ok
        # the mesh is actually used: both remote streams carry load
        loads = remote_stream_loads(result.allocation)
        assert loads.shape == (2,)
        assert (loads > 0).all()

    def test_scalar_batched_identical_under_constraints(self):
        model = _constrain(generate_workload(_mesh_params(3), seed=5))
        scalar = RepositoryReplicationPolicy(kernel="scalar").run(model)
        batched = RepositoryReplicationPolicy(kernel="batched").run(model)
        assert scalar.allocation == batched.allocation
        assert scalar.objective == batched.objective
        assert scalar.phases_run == batched.phases_run
        s_st, b_st = scalar.storage_stats, batched.storage_stats
        assert (s_st is None) == (b_st is None)
        if s_st is not None:
            assert s_st.evictions == b_st.evictions
            assert s_st.repartitioned_pages == b_st.repartitioned_pages
            assert s_st.evicted_objects == b_st.evicted_objects
        cost = CostModel(model)
        assert scalar.objective == pytest.approx(cost.D(scalar.allocation))

    def test_four_stream_partition_uses_every_stream(self):
        model = generate_workload(_mesh_params(4), seed=9)
        alloc = partition_all(model)
        remote = ~alloc.comp_local
        used = np.unique(alloc.comp_stream[remote])
        assert set(used.tolist()) == {1, 2, 3}


class TestK2OnlyGuards:
    def test_sharded_kernel_rejects_mesh(self):
        model = generate_workload(_mesh_params(3), seed=5)
        with pytest.raises(NotImplementedError, match="k=2"):
            run_sharded_policy(model)

    def test_offload_absorption_rejects_mesh(self):
        from repro.core.offload import absorb_extra_workload

        model = generate_workload(_mesh_params(3), seed=5)
        alloc = partition_all(model)
        cost = CostModel(model)
        with pytest.raises(NotImplementedError, match="k=2"):
            absorb_extra_workload(alloc, cost, 0, 1.0)

    def test_uncapacitated_repository_skips_the_guard(self):
        # Table 1 leaves the repository uncapacitated, so the standard
        # mesh pipeline never reaches the OFF_LOADING guard
        model = generate_workload(_mesh_params(3), seed=5)
        result = RepositoryReplicationPolicy().run(model)
        assert "off-loading" not in result.phases_run

"""Edge-case tests for the shard planner and the reconcile step.

The property harness (``tests/properties/test_property_sharded_policy.py``)
sweeps random universes; this file pins the *structural* corners the
sharded kernel must survive:

* a shard whose servers own **zero pages** (a structured no-op worker),
* one server **dominating** the work — the planner must isolate it and
  the merge must still replay the global greedy order,
* **exact-capacity boundaries** straddling shards (one server exactly at
  its Eq. 10 capacity, another just below, in different groups),
* invalid shard counts (``shards > n_servers``, non-positive) raising
  validated errors,
* one **real subprocess** identity run, so the pickle → worker →
  reconcile path is covered outside the inline pool,
* the **delta-round scatter** (worker-resident shard state, batched
  absorptions, epoch/resync protocol, shm mark frontier) driven
  deterministically — steady-state batching, forced resyncs, the
  full-state baseline mode, and frontier lifecycle,
* **fan-out failure** cleanup: a dying shard must not strand the
  surviving shards' ``/dev/shm`` result segments.
"""

from __future__ import annotations

import math
import os
import pathlib
from concurrent.futures import Future

import numpy as np
import pytest

from repro.core.constraints import repository_load
from repro.core.cost_model import CostModel
from repro.core.offload import OffloadConfig, offload_repository
from repro.core.partition import partition_all
from repro.core.policy import RepositoryReplicationPolicy
from repro.core.shard import (
    InlineShardPool,
    _gather_shard_results,
    _Lru,
    _model_digest,
    _run_shard,
    _shard_pipeline,
    _ShardedScatter,
    _ShardOptions,
    default_pool,
    plan_shards,
    resolve_shards,
    run_sharded_policy,
    shutdown_shard_pool,
)
from repro.core.shm import ShmArena, shm_available
from repro.core.types import (
    ObjectSpec,
    PageSpec,
    RepositorySpec,
    ServerSpec,
    SystemModel,
)
from repro.experiments.scaling import (
    clone_with_capacities,
    storage_capacities_for_fraction,
)
from repro.workload import WorkloadParams, generate_workload
from tests.conftest import build_micro_model


def _server(i, rate=10.0, storage=math.inf, processing=math.inf):
    return ServerSpec(
        server_id=i,
        storage_capacity=storage,
        processing_capacity=processing,
        rate=rate,
        overhead=1.0,
        repo_rate=2.0,
        repo_overhead=2.0,
    )


def _page(j, server, compulsory, optional=(), freq=1.0):
    return PageSpec(
        page_id=j,
        server=server,
        html_size=100,
        frequency=freq,
        compulsory=tuple(compulsory),
        optional=tuple(optional),
        optional_prob=0.5 if optional else 0.0,
    )


def _model_with_idle_server() -> SystemModel:
    """Three servers; server 1 owns no pages at all."""
    servers = [_server(0), _server(1), _server(2)]
    objects = [ObjectSpec(k, 100 * (k + 1)) for k in range(4)]
    pages = [
        _page(0, 0, (0, 1), optional=(3,)),
        _page(1, 2, (1, 2)),
        _page(2, 2, (0, 3)),
    ]
    return SystemModel(servers, RepositorySpec(), pages, objects)


def _assert_identical(sharded, batched):
    a, b = sharded.allocation, batched.allocation
    assert np.array_equal(a.comp_local, b.comp_local)
    assert np.array_equal(a.opt_local, b.opt_local)
    for i in range(a.model.n_servers):
        assert a.replicas[i] == b.replicas[i]
    assert sharded.objective == batched.objective
    assert sharded.unconstrained_objective == batched.unconstrained_objective
    assert sharded.phases_run == batched.phases_run
    assert sharded.storage_stats == batched.storage_stats
    assert sharded.processing_stats == batched.processing_stats
    assert sharded.offload_outcome == batched.offload_outcome
    a.check_invariants()


class TestEmptyShard:
    def test_plan_gives_idle_server_its_own_group(self):
        model = _model_with_idle_server()
        groups = plan_shards(model, 3)
        assert sorted(i for g in groups for i in g) == [0, 1, 2]
        assert (1,) in groups  # zero-weight server isolated, not dropped

    def test_identity_with_pageless_server(self):
        model = _model_with_idle_server()
        batched = RepositoryReplicationPolicy().run(model)
        for shards in (1, 2, 3):
            sharded = RepositoryReplicationPolicy(
                kernel="sharded", shards=shards, pool=InlineShardPool()
            ).run(model)
            _assert_identical(sharded, batched)
            assert sharded.allocation.replicas[1] == set()

    def test_identity_constrained_with_pageless_server(self):
        model = _model_with_idle_server()
        ref = partition_all(model)
        m2 = clone_with_capacities(
            model,
            storage=storage_capacities_for_fraction(model, ref, 0.4) + 1.0,
        )
        batched = RepositoryReplicationPolicy().run(m2)
        assert "storage-restoration" in batched.phases_run
        sharded = RepositoryReplicationPolicy(
            kernel="sharded", shards=3, pool=InlineShardPool()
        ).run(m2)
        _assert_identical(sharded, batched)


class TestDominantShard:
    def test_planner_isolates_the_heavy_server(self):
        """One server owning nearly all entries gets a group to itself;
        the light servers share the other group."""
        servers = [_server(0), _server(1), _server(2)]
        objects = [ObjectSpec(k, 50 + k) for k in range(8)]
        pages = [_page(j, 0, (j % 8, (j + 1) % 8, (j + 3) % 8)) for j in range(6)]
        pages.append(_page(6, 1, (0,)))
        pages.append(_page(7, 2, (1,)))
        model = SystemModel(servers, RepositorySpec(), pages, objects)
        groups = plan_shards(model, 2)
        assert (0,) in groups
        assert (1, 2) in groups

    def test_identity_when_one_shard_does_all_restoration(self):
        """Tighten only server 0's storage: its shard runs the whole
        eviction greedy while the other shard skips the phase — the OR'd
        phase list and merged stats must equal the global run's."""
        model = build_micro_model(storage=(700.0, math.inf))
        batched = RepositoryReplicationPolicy().run(model)
        assert "storage-restoration" in batched.phases_run
        sharded = RepositoryReplicationPolicy(
            kernel="sharded", shards=2, pool=InlineShardPool()
        ).run(model)
        _assert_identical(sharded, batched)


class TestExactCapacityBoundary:
    def test_exact_fit_server_untouched_across_shards(self):
        """Server 0 sits *exactly* at its Eq. 10 capacity (not a
        violation), server 1 just below its own — in separate shards.
        Only server 1 may evict; server 0's replicas survive unchanged."""
        model = build_micro_model()
        ref = partition_all(model)
        full = model.html_bytes_by_server() + ref.stored_bytes_all()
        m2 = clone_with_capacities(
            model, storage=np.array([full[0], full[1] - 1.0])
        )
        batched = RepositoryReplicationPolicy().run(m2)
        assert batched.phases_run.count("storage-restoration") == 1
        sharded = RepositoryReplicationPolicy(
            kernel="sharded", shards=2, pool=InlineShardPool()
        ).run(m2)
        _assert_identical(sharded, batched)
        assert sharded.allocation.replicas[0] == ref.replicas[0]
        assert (
            model.html_bytes_by_server()[1]
            + sharded.allocation.stored_bytes(1)
            <= full[1] - 1.0
        )


class TestInvalidShardCounts:
    def test_more_shards_than_servers_rejected(self):
        model = build_micro_model()
        with pytest.raises(ValueError, match="server count"):
            plan_shards(model, 3)
        with pytest.raises(ValueError, match="server count"):
            resolve_shards(3, n_servers=2)
        with pytest.raises(ValueError, match="server count"):
            run_sharded_policy(model, shards=5, pool=InlineShardPool())

    def test_non_positive_rejected(self):
        model = build_micro_model()
        with pytest.raises(ValueError, match="shards"):
            plan_shards(model, 0)
        with pytest.raises(ValueError, match="shards"):
            resolve_shards(0)
        with pytest.raises(ValueError, match="shards"):
            resolve_shards(-2, n_servers=4)

    def test_unset_without_model_stays_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        assert resolve_shards(None) is None

    def test_auto_capped_by_server_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        assert resolve_shards(None, n_servers=1) == 1


class TestPlannerDeterminism:
    def test_single_server_shards(self):
        """``shards == n_servers``: every group is a singleton, ids
        ascending, every server present exactly once."""
        model = _model_with_idle_server()
        groups = plan_shards(model, model.n_servers)
        assert sorted(groups) == [(0,), (1,), (2,)]

    def test_weight_ties_break_by_server_id(self):
        """Equal-weight servers distribute by ascending id, so the plan
        is a pure function of the model (no dict/hash order leaks)."""
        servers = [_server(i) for i in range(4)]
        objects = [ObjectSpec(k, 100) for k in range(2)]
        # every server owns one page with one compulsory entry: all tied
        pages = [_page(j, j, (0,)) for j in range(4)]
        model = SystemModel(servers, RepositorySpec(), pages, objects)
        assert plan_shards(model, 2) == ((0, 2), (1, 3))

    def test_plan_stable_across_calls_and_equal_models(self):
        """Re-planning the same (or an equal) model yields the identical
        grouping — the property the worker-side digest cache and the
        golden regressions both lean on."""
        model = generate_workload(WorkloadParams.tiny(), seed=3)
        clone = generate_workload(WorkloadParams.tiny(), seed=3)
        for shards in (1, 2):
            first = plan_shards(model, shards)
            assert first == plan_shards(model, shards)
            assert first == plan_shards(clone, shards)

    def test_zero_entry_servers_spread_over_groups(self):
        """Many pageless servers must not pile into one group (load ties
        break by member count before group index)."""
        servers = [_server(i) for i in range(5)]
        objects = [ObjectSpec(0, 100)]
        pages = [_page(0, 0, (0,))]  # only server 0 owns a page
        model = SystemModel(servers, RepositorySpec(), pages, objects)
        groups = plan_shards(model, 3)
        assert sorted(i for g in groups for i in g) == [0, 1, 2, 3, 4]
        sizes = sorted(len(g) for g in groups)
        assert sizes == [1, 2, 2]  # idle servers spread, not stacked


class TestWorkerModelLru:
    def test_eviction_callback_fires_in_insertion_order(self):
        evicted: list[tuple[str, int]] = []
        lru = _Lru(2, lambda k, v: evicted.append((k, v)))
        lru.put("a", 1)
        lru.put("b", 2)
        lru.get("a")  # refresh: "b" is now the LRU entry
        lru.put("c", 3)
        assert evicted == [("b", 2)]
        assert len(lru) == 2
        lru.clear()
        assert evicted == [("b", 2), ("a", 1), ("c", 3)]
        assert len(lru) == 0

    def test_worker_cache_evicts_shm_arena_cleanly(self):
        """An evicted (model, arena) pair must close its arena mapping;
        the parent-owned segment itself stays alive."""
        from repro.core.shard import _evict_worker_model
        from repro.core.shm import ShmArena

        owner = ShmArena.create({"col": np.arange(5)})
        try:
            mapping = ShmArena.attach(owner.handle)
            lru = _Lru(1, _evict_worker_model)
            lru.put("one", (object(), mapping))
            lru.put("two", (object(), None))  # evicts "one" → closes arena
            assert mapping._closed
            # the owner's segment is untouched by the worker-side close
            np.testing.assert_array_equal(owner.get("col"), np.arange(5))
        finally:
            owner.destroy()

    def test_model_digest_is_content_addressed(self):
        a = generate_workload(WorkloadParams.tiny(), seed=3)
        b = generate_workload(WorkloadParams.tiny(), seed=3)
        c = generate_workload(WorkloadParams.tiny(), seed=4)
        assert _model_digest(a) == _model_digest(b)
        assert _model_digest(a) != _model_digest(c)
        # cached on the attribute, not recomputed
        assert a._repro_model_digest == _model_digest(a)


def _offload_constrained_model():
    """A small model whose constrained clone runs all four phases."""
    from repro.experiments.scaling import (
        processing_capacities_for_fraction,
        repo_capacity_for_fraction,
    )

    model = generate_workload(WorkloadParams.small(), seed=11)
    ref = partition_all(model)
    return clone_with_capacities(
        model,
        storage=storage_capacities_for_fraction(model, ref, 0.6),
        processing=processing_capacities_for_fraction(model, 0.7, ref),
        repo_capacity=repo_capacity_for_fraction(ref, 0.3),
    )


class TestRealProcessPool:
    @pytest.mark.parametrize("shm", [True, False])
    def test_subprocess_identity_small_scale(self, shm):
        """One real fork round trip per transport: both the shm column
        arena and the pickle fallback must reconcile to the batched
        kernel's exact result."""
        model = generate_workload(WorkloadParams.small(), seed=11)
        ref = partition_all(model)
        m2 = clone_with_capacities(
            model,
            storage=storage_capacities_for_fraction(model, ref, 0.5) + 1.0,
        )
        batched = RepositoryReplicationPolicy().run(m2)
        try:
            sharded = run_sharded_policy(m2, shards=2, shm=shm)
        finally:
            shutdown_shard_pool()
        _assert_identical(sharded, batched)

    def test_subprocess_offload_scatter_identity(self):
        """Constrain the repository so OFF_LOADING runs: the per-round
        absorptions scatter to real worker processes (delta rounds over
        worker-resident state, residency seeded by the fan-out) and the
        gathered outcome must match the serial reference bit for bit."""
        m2 = _offload_constrained_model()
        batched = RepositoryReplicationPolicy().run(m2)
        assert "off-loading" in batched.phases_run
        try:
            sharded = run_sharded_policy(m2, shards=2, shm=True)
        finally:
            shutdown_shard_pool()
        _assert_identical(sharded, batched)

    def test_subprocess_delta_rounds_forced_resync_identity(self, monkeypatch):
        """``REPRO_OFFLOAD_RESYNC_EVERY=2`` interleaves resident fast
        paths with full epoch resyncs on a real pool — the recovery
        path must be bit-identical, not just the steady state."""
        monkeypatch.setenv("REPRO_OFFLOAD_RESYNC_EVERY", "2")
        m2 = _offload_constrained_model()
        batched = RepositoryReplicationPolicy().run(m2)
        assert "off-loading" in batched.phases_run
        try:
            sharded = run_sharded_policy(m2, shards=2, shm=True)
        finally:
            shutdown_shard_pool()
        _assert_identical(sharded, batched)


# ----------------------------------------------------------------------
# delta-round scatter: batching, epochs, resyncs, frontier lifecycle
# ----------------------------------------------------------------------
def _tiny_offload_case(seed: int = 7):
    """A tiny model plus a repository capacity that forces off-loading."""
    model = generate_workload(WorkloadParams.tiny(), seed=seed)
    base = partition_all(model, optional_policy="none")
    before = repository_load(base)
    assert before > 0, "seed must produce repository load to off-load"
    return model, max(0.3 * before, 1e-6)


def _scatter_offload_arms(model, capacity, opts=None, **scatter_kwargs):
    """Serial vs scatter-driven OFF_LOADING; asserts identity, returns
    the scatter so callers can inspect its protocol counters."""
    cost = CostModel(model)
    serial_alloc = partition_all(model, optional_policy="none")
    serial_out = offload_repository(
        serial_alloc, cost, OffloadConfig(), capacity=capacity
    )
    if opts is None:
        opts = _ShardOptions(
            alpha1=2.0, alpha2=1.0, optional_policy="none", record=False
        )
    par_alloc = partition_all(model, optional_policy="none")
    scatter = _ShardedScatter(
        InlineShardPool(), ("model", model), model, opts, **scatter_kwargs
    )
    par_out = offload_repository(
        par_alloc, cost, OffloadConfig(), capacity=capacity, scatter=scatter
    )
    assert np.array_equal(serial_alloc.comp_local, par_alloc.comp_local)
    assert np.array_equal(serial_alloc.opt_local, par_alloc.opt_local)
    for i in range(model.n_servers):
        assert serial_alloc.replicas[i] == par_alloc.replicas[i]
    assert serial_out == par_out
    par_alloc.check_invariants()
    return scatter


class TestDeltaRoundScatter:
    def test_delta_scatter_one_submission_per_shard_per_round(
        self, monkeypatch
    ):
        """Steady state: each shard syncs exactly once (its first batch,
        lazily — no fan-out seeded residency here), then rides the
        resident fast path; submissions equal processed batches (no
        hidden two-phase resubmits)."""
        monkeypatch.delenv("REPRO_OFFLOAD_RESYNC_EVERY", raising=False)
        model, capacity = _tiny_offload_case()
        groups = plan_shards(model, min(2, model.n_servers))
        scatter = _scatter_offload_arms(model, capacity, groups=groups)
        assert scatter._submissions == sum(scatter._batches)
        assert len(scatter.rounds_bytes) >= 1
        for g, batches in enumerate(scatter._batches):
            assert scatter._resyncs[g] == (1 if batches else 0)
        for rec in scatter.rounds_bytes:
            assert rec["delta_bytes"] >= 0.0
            assert rec["full_bytes"] >= 0.0

    def test_delta_scatter_forced_resync_identity(self):
        """``resync_every=1``: every batch re-ships full shard state —
        transport only; decisions stay bit-identical."""
        model, capacity = _tiny_offload_case()
        scatter = _scatter_offload_arms(model, capacity, resync_every=1)
        for g, batches in enumerate(scatter._batches):
            assert scatter._resyncs[g] == batches

    def test_full_sync_mode_scatter_identity(self):
        """``sync_mode="full"`` is the pre-resident baseline the byte
        accounting measures against — still bit-identical."""
        model, capacity = _tiny_offload_case()
        scatter = _scatter_offload_arms(model, capacity, sync_mode="full")
        for g, batches in enumerate(scatter._batches):
            assert scatter._resyncs[g] == batches

    def test_invalid_sync_mode_rejected(self):
        model, _ = _tiny_offload_case()
        opts = _ShardOptions(
            alpha1=2.0, alpha2=1.0, optional_policy="none", record=False
        )
        with pytest.raises(ValueError, match="sync_mode"):
            _ShardedScatter(
                InlineShardPool(), ("model", model), model, opts,
                sync_mode="bogus",
            )

    def test_delta_scatter_frontier_lifecycle(self):
        """shm mark frontier: syncs read marks from the parent-owned
        segment instead of shipping them, and ``finish`` destroys the
        segment on every exit path (no ``/dev/shm`` leak)."""
        if not shm_available():
            pytest.skip("no usable shared memory on this platform")
        model, capacity = _tiny_offload_case()
        opts = _ShardOptions(
            alpha1=2.0, alpha2=1.0, optional_policy="none", record=False,
            use_shm=True,
        )
        cost = CostModel(model)
        serial_alloc = partition_all(model, optional_policy="none")
        serial_out = offload_repository(
            serial_alloc, cost, OffloadConfig(), capacity=capacity
        )
        par_alloc = partition_all(model, optional_policy="none")
        scatter = _ShardedScatter(
            InlineShardPool(), ("model", model), model, opts
        )
        scatter.begin(par_alloc)
        assert scatter._frontier is not None
        handle = dict(scatter._frontier.handle)
        par_out = offload_repository(
            par_alloc, cost, OffloadConfig(), capacity=capacity,
            scatter=scatter,
        )
        assert serial_out == par_out
        assert np.array_equal(serial_alloc.comp_local, par_alloc.comp_local)
        assert np.array_equal(serial_alloc.opt_local, par_alloc.opt_local)
        for i in range(model.n_servers):
            assert serial_alloc.replicas[i] == par_alloc.replicas[i]
        # every sync was a frontier read, not a mark ship
        assert scatter._frontier_reads == sum(scatter._resyncs) > 0
        # offload_repository's finally ran finish(): segment gone
        assert scatter._frontier is None
        with pytest.raises(FileNotFoundError):
            ShmArena.attach(handle)


# ----------------------------------------------------------------------
# fan-out failure: no stranded /dev/shm segments
# ----------------------------------------------------------------------
def _boom_run_shard(*_args, **_kwargs):
    raise RuntimeError("shard worker boom")


class _PoisonedFanoutPool:
    """Delegates to a real pool but fails one shard's fan-out task."""

    def __init__(self, inner, poison_idx: int):
        self._inner = inner
        self._poison = poison_idx

    def submit_to(self, idx, fn, /, *args, **kwargs):
        if idx == self._poison and fn is _run_shard:
            return self._inner.submit_to(idx, _boom_run_shard)
        return self._inner.submit_to(idx, fn, *args, **kwargs)

    def submit(self, fn, /, *args, **kwargs):
        return self._inner.submit(fn, *args, **kwargs)


class TestFanoutFailureCleanup:
    def test_gather_failure_destroys_result_arenas(self):
        """A failed shard must not strand the successful shards' shm
        result segments: the gather adopts and destroys them before
        re-raising the first failure."""
        if not shm_available():
            pytest.skip("no usable shared memory on this platform")
        model = generate_workload(WorkloadParams.tiny(), seed=3)
        opts = _ShardOptions(
            alpha1=2.0, alpha2=1.0, optional_policy="all", record=False,
            use_shm=True,
        )
        groups = plan_shards(model, 2)
        result, _ctx, _cost, _alloc = _shard_pipeline(model, groups[0], opts)
        result.ship_shm()
        handle = dict(result.shm_handle)
        ok: Future = Future()
        ok.set_result(result)
        bad: Future = Future()
        bad.set_exception(RuntimeError("shard worker boom"))
        with pytest.raises(RuntimeError, match="boom"):
            _gather_shard_results([ok, bad])
        with pytest.raises(FileNotFoundError):
            ShmArena.attach(handle)
        # views were released before the arena closed (no dangling refs)
        assert result.comp_final_idx is None
        assert result.replica_objects is None

    def test_fanout_failure_leaves_no_shm_segments(self):
        """End to end: kill one shard of a real-pool run mid-fan-out and
        diff ``/dev/shm`` — after the failure propagates and the pool
        shuts down, no segment created by the run may survive."""
        shm_dir = pathlib.Path("/dev/shm")
        if not (shm_available() and shm_dir.is_dir()):
            pytest.skip("needs shared memory backed by /dev/shm")
        m2 = _offload_constrained_model()
        before = set(os.listdir(shm_dir))
        pool = _PoisonedFanoutPool(default_pool(2), poison_idx=1)
        try:
            with pytest.raises(RuntimeError, match="boom"):
                run_sharded_policy(m2, shards=2, pool=pool, shm=True)
        finally:
            shutdown_shard_pool()
        leaked = set(os.listdir(shm_dir)) - before
        assert leaked == set(), f"stranded shm segments: {sorted(leaked)}"

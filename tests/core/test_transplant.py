"""Tests for repro.core.allocation.transplant_allocation."""

import numpy as np
import pytest

from repro.core.allocation import transplant_allocation
from repro.core.partition import partition_all
from repro.dynamic.drift import replace_frequencies
from repro.experiments.scaling import clone_with_capacities


class TestTransplant:
    def test_marks_preserved(self, micro_model):
        alloc = partition_all(micro_model)
        clone = clone_with_capacities(micro_model, storage=1e9)
        moved = transplant_allocation(alloc, clone)
        assert moved.model is clone
        assert np.array_equal(moved.comp_local, alloc.comp_local)
        assert np.array_equal(moved.opt_local, alloc.opt_local)
        assert moved.replicas == alloc.replicas

    def test_extra_replicas_preserved(self, micro_model):
        alloc = partition_all(micro_model)
        alloc.store(0, 3)  # stored-but-unmarked
        clone = clone_with_capacities(micro_model)
        moved = transplant_allocation(alloc, clone)
        assert 3 in moved.replicas[0]

    def test_frequency_drifted_model_ok(self, micro_model):
        alloc = partition_all(micro_model)
        drifted = replace_frequencies(
            micro_model, micro_model.frequencies * 2.0
        )
        moved = transplant_allocation(alloc, drifted)
        moved.check_invariants()

    def test_structurally_different_rejected(self, micro_model, tiny_model):
        alloc = partition_all(micro_model)
        with pytest.raises(ValueError, match="structurally"):
            transplant_allocation(alloc, tiny_model)

    def test_independent_after_transplant(self, micro_model):
        alloc = partition_all(micro_model)
        clone = clone_with_capacities(micro_model)
        moved = transplant_allocation(alloc, clone)
        moved.set_comp_local(0, not moved.comp_local[0])
        assert moved.comp_local[0] != alloc.comp_local[0]

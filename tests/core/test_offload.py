"""Tests for repro.core.offload — the OFF_LOADING negotiation."""

import math

import numpy as np
import pytest

from repro.core.allocation import Allocation
from repro.core.constraints import (
    evaluate_constraints,
    local_processing_load,
    repository_load,
    storage_used,
)
from repro.core.cost_model import CostModel
from repro.core.offload import (
    OffloadConfig,
    ServerStatus,
    absorb_extra_workload,
    compute_server_status,
    offload_repository,
    plan_offload_round,
)
from repro.core.partition import partition_all
from tests.conftest import build_micro_model


def _status(sid, space, cap, share):
    return ServerStatus(
        server_id=sid, free_space=space, free_capacity=cap, repo_share=share
    )


class TestServerStatus:
    def test_classification_l1(self):
        assert _status(0, 100.0, 5.0, 1.0).classification == "L1"

    def test_classification_l2(self):
        assert _status(0, 0.0, 5.0, 1.0).classification == "L2"

    def test_classification_l3(self):
        assert _status(0, 0.0, 0.0, 1.0).classification == "L3"
        assert _status(0, 100.0, 0.0, 1.0).classification == "L3"

    def test_compute_matches_constraints(self):
        m = build_micro_model(storage=(2000.0, 2000.0), processing=(10.0, 10.0))
        alloc = partition_all(m)
        st = compute_server_status(alloc, 0)
        assert st.free_space == pytest.approx(
            2000.0 - storage_used(alloc)[0]
        )
        assert st.free_capacity == pytest.approx(
            10.0 - local_processing_load(alloc)[0]
        )

    def test_infinite_capacity_status(self, micro_model):
        alloc = partition_all(micro_model)
        st = compute_server_status(alloc, 0)
        assert math.isinf(st.free_capacity)


class TestPlanOffloadRound:
    def test_no_excess_empty_plan(self):
        statuses = [_status(0, 1.0, 1.0, 2.0), _status(1, 1.0, 1.0, 2.0)]
        assert plan_offload_round(statuses, repo_capacity=10.0) == {}

    def test_l1_proportional_split(self):
        statuses = [_status(0, 1.0, 3.0, 5.0), _status(1, 1.0, 1.0, 5.0)]
        plan = plan_offload_round(statuses, repo_capacity=6.0)
        # excess 4, P(L1) = 4 -> proportional to capacity 3:1
        assert plan[0] == pytest.approx(3.0)
        assert plan[1] == pytest.approx(1.0)

    def test_spillover_to_l2(self):
        statuses = [
            _status(0, 1.0, 2.0, 5.0),   # L1
            _status(1, 0.0, 4.0, 5.0),   # L2
        ]
        plan = plan_offload_round(statuses, repo_capacity=5.0)
        # excess 5 > P(L1)=2: L1 takes all its capacity, L2 the rest
        assert plan[0] == pytest.approx(2.0)
        assert plan[1] == pytest.approx(3.0)

    def test_unrestorable_returns_none(self):
        statuses = [_status(0, 0.0, 0.0, 10.0)]
        assert plan_offload_round(statuses, repo_capacity=5.0) is None

    def test_demoted_treated_as_l3(self):
        statuses = [_status(0, 1.0, 3.0, 5.0), _status(1, 1.0, 3.0, 5.0)]
        plan = plan_offload_round(statuses, repo_capacity=6.0, demoted={0})
        assert 0 not in plan
        assert plan[1] == pytest.approx(3.0)  # capped by its capacity

    def test_demoted_share_still_counts_in_excess(self):
        statuses = [_status(0, 1.0, 10.0, 8.0), _status(1, 1.0, 10.0, 0.0)]
        plan = plan_offload_round(statuses, repo_capacity=4.0, demoted={0})
        # excess = 8 + 0 - 4 = 4, all assigned to server 1
        assert plan == {1: pytest.approx(4.0)}


class TestAbsorbExtraWorkload:
    def test_zero_target_noop(self, micro_model):
        alloc = partition_all(micro_model)
        cost = CostModel(micro_model)
        before = alloc.copy()
        assert absorb_extra_workload(alloc, cost, 0, 0.0) == 0.0
        assert alloc == before

    def test_absorbs_remote_downloads(self):
        m = build_micro_model()
        alloc = partition_all(m, optional_policy="none")
        cost = CostModel(m)
        base_repo = repository_load(alloc)
        achieved = absorb_extra_workload(alloc, cost, 1, 10.0)
        assert achieved > 0
        assert repository_load(alloc) == pytest.approx(base_repo - achieved)

    def test_respects_cpu_slack(self):
        m = build_micro_model(processing=(math.inf, 5.0))
        alloc = partition_all(m, optional_policy="none")
        cost = CostModel(m)
        slack = 5.0 - local_processing_load(alloc)[1]
        achieved = absorb_extra_workload(alloc, cost, 1, 100.0)
        assert achieved <= slack + 1e-9
        assert local_processing_load(alloc)[1] <= 5.0 + 1e-9

    def test_respects_storage_without_swap(self):
        m = build_micro_model(storage=(math.inf, 1000.0))
        alloc = partition_all(m, optional_policy="none")
        cost = CostModel(m)
        from repro.core.restoration import restore_storage_capacity

        restore_storage_capacity(alloc, cost)  # fit within 1000 B first
        used_before = storage_used(alloc)[1]
        absorb_extra_workload(alloc, cost, 1, 100.0, allow_swap=False)
        assert storage_used(alloc)[1] <= 1000.0 + 1e-9
        assert storage_used(alloc)[1] >= used_before  # may only grow into slack

    def test_no_new_replicas_mode(self):
        m = build_micro_model()
        alloc = partition_all(m, optional_policy="none")
        cost = CostModel(m)
        stored_before = set(alloc.replicas[1])
        absorb_extra_workload(alloc, cost, 1, 100.0, allow_new_replicas=False)
        assert set(alloc.replicas[1]) <= stored_before

    def test_uses_stored_but_unmarked(self):
        """An L2 server exploits objects stored but marked remote."""
        m = build_micro_model()
        alloc = partition_all(m, optional_policy="none")
        cost = CostModel(m)
        # force object 2 of page 3 (server 1) remote while keeping it stored
        sl = m.comp_slice(3)
        for off, k in enumerate(m.pages[3].compulsory):
            if k == 2 and alloc.comp_local[sl.start + off]:
                alloc.set_comp_local(sl.start + off, False)
        assert 2 in alloc.replicas[1]
        achieved = absorb_extra_workload(
            alloc, cost, 1, 100.0, allow_new_replicas=False
        )
        assert achieved > 0


class TestOffloadRepository:
    def test_infinite_capacity_noop(self, micro_model):
        alloc = partition_all(micro_model)
        cost = CostModel(micro_model)
        out = offload_repository(alloc, cost)
        assert out.restored
        assert out.rounds == 0

    def test_restores_when_possible(self):
        m = build_micro_model(repo_capacity=1.0)
        alloc = partition_all(m, optional_policy="none")
        cost = CostModel(m)
        initial = repository_load(alloc)
        assert initial > 1.0
        out = offload_repository(alloc, cost)
        assert out.restored
        assert repository_load(alloc) <= 1.0 + 1e-9
        assert out.total_absorbed == pytest.approx(initial - out.final_repo_load)

    def test_capacity_override(self):
        m = build_micro_model()  # infinite repo capacity in the model
        alloc = partition_all(m, optional_policy="none")
        cost = CostModel(m)
        load = repository_load(alloc)
        out = offload_repository(alloc, cost, capacity=load / 2)
        assert out.restored
        assert repository_load(alloc) <= load / 2 + 1e-9

    def test_unrestorable_reports_false(self):
        # zero processing slack anywhere: servers can't take extra work
        m = build_micro_model(processing=(3.0, 1.5), repo_capacity=0.5)
        alloc = partition_all(m, optional_policy="none")
        cost = CostModel(m)
        from repro.core.restoration import restore_processing_capacity

        restore_processing_capacity(alloc, cost)
        out = offload_repository(alloc, cost)
        assert not out.restored
        assert out.final_repo_load > 0.5

    def test_message_accounting(self):
        m = build_micro_model(repo_capacity=1.0)
        alloc = partition_all(m, optional_policy="none")
        cost = CostModel(m)
        out = offload_repository(alloc, cost)
        # >= initial statuses + END broadcast
        assert out.messages >= 2 * m.n_servers
        assert out.rounds >= 1

    def test_objective_worsens_but_bounded(self):
        m = build_micro_model(repo_capacity=2.0)
        alloc = partition_all(m, optional_policy="none")
        cost = CostModel(m)
        d_before = cost.D(alloc)
        offload_repository(alloc, cost)
        d_after = cost.D(alloc)
        # absorbing workload moves downloads off their preferred stream,
        # but never above the all-local extreme
        from repro.baselines.local import LocalPolicy

        assert d_after >= d_before - 1e-9
        assert d_after <= cost.D(LocalPolicy().allocate(m)) + 1e-9

    def test_constraints_respected_after_offload(self):
        m = build_micro_model(
            storage=(1200.0, 1500.0), processing=(8.0, 7.0), repo_capacity=2.0
        )
        alloc = partition_all(m, optional_policy="none")
        cost = CostModel(m)
        from repro.core.restoration import (
            restore_processing_capacity,
            restore_storage_capacity,
        )

        restore_storage_capacity(alloc, cost)
        restore_processing_capacity(alloc, cost)
        offload_repository(alloc, cost)
        rep = evaluate_constraints(alloc)
        assert rep.storage_ok
        assert rep.local_ok

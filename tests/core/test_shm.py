"""Unit tests for the shared-memory arena (:mod:`repro.core.shm`).

Covers the packing/layout contract (alignment, dtypes, shapes,
zero-copy read-only views), the explicit-owner lifecycle
(create → attach → unlink → close, idempotence, BufferError
tolerance), the ``REPRO_SHM`` resolution ladder, and one real
cross-process round trip — a forked child attaches by handle, reads,
and exits while the parent still owns the segment (the resource-tracker
scenario the module docstring documents).
"""

from __future__ import annotations

import multiprocessing
import os

import numpy as np
import pytest

from repro.core.shm import ENV_FLAG, ShmArena, resolve_shm, shm_available


def _sample_arrays() -> dict[str, np.ndarray]:
    return {
        "floats": np.linspace(0.0, 1.0, 7),
        "ints": np.arange(13, dtype=np.int64),
        "bools": np.array([True, False, True]),
        "empty": np.zeros(0, dtype=np.intp),
        "matrix": np.arange(6, dtype=np.float32).reshape(2, 3),
    }


class TestLayout:
    def test_round_trip_values_dtypes_shapes(self):
        src = _sample_arrays()
        arena = ShmArena.create(src)
        try:
            assert set(arena.keys()) == set(src)
            for name, expected in src.items():
                view = arena.get(name)
                assert view.dtype == expected.dtype
                assert view.shape == expected.shape
                np.testing.assert_array_equal(view, expected)
        finally:
            arena.destroy()

    def test_offsets_are_aligned(self):
        arena = ShmArena.create(_sample_arrays())
        try:
            for offset, _dtype, _shape in arena._layout.values():
                assert offset % 64 == 0
        finally:
            arena.destroy()

    def test_views_are_read_only_by_default(self):
        arena = ShmArena.create({"a": np.arange(4)})
        try:
            view = arena.get("a")
            with pytest.raises(ValueError):
                view[0] = 99
            writeable = arena.get("a", writeable=True)
            writeable[0] = 99
            assert arena.get("a")[0] == 99  # same backing memory
        finally:
            arena.destroy()

    def test_views_are_zero_copy(self):
        arena = ShmArena.create({"a": np.arange(4, dtype=np.int64)})
        try:
            assert arena.get("a").base is not None  # backed by the segment
            arena.get("a", writeable=True)[2] = -7
            attached = ShmArena.attach(arena.handle)
            try:
                assert attached.get("a")[2] == -7
            finally:
                attached.close()
        finally:
            arena.destroy()

    def test_empty_mapping_allocates_minimal_segment(self):
        arena = ShmArena.create({})
        try:
            assert arena.nbytes >= 1
            assert list(arena.keys()) == []
        finally:
            arena.destroy()

    def test_handle_is_plain_data(self):
        import pickle

        arena = ShmArena.create({"a": np.arange(3)})
        try:
            handle = pickle.loads(pickle.dumps(arena.handle))
            attached = ShmArena.attach(handle)
            try:
                np.testing.assert_array_equal(attached.get("a"), np.arange(3))
            finally:
                attached.close()
        finally:
            arena.destroy()


class TestLifecycle:
    def test_unlink_is_idempotent(self):
        arena = ShmArena.create({"a": np.arange(3)})
        arena.unlink()
        arena.unlink()  # second call is a no-op, not an error
        assert arena.close()

    def test_destroy_reports_close_result(self):
        arena = ShmArena.create({"a": np.arange(3)})
        assert arena.destroy() is True

    def test_close_after_views_dropped(self):
        """Views must be dropped before ``close`` — depending on the
        platform's buffer accounting a close with live views either
        returns ``False`` (mapping pinned) or silently leaves the views
        dangling, so the protocol is: release references, then close."""
        arena = ShmArena.create({"a": np.arange(8)})
        view = arena.get("a")
        np.testing.assert_array_equal(view, np.arange(8))
        arena.unlink()
        del view
        assert arena.close() is True
        assert arena.close() is True  # idempotent

    def test_attach_after_owner_unlink_fails(self):
        arena = ShmArena.create({"a": np.arange(3)})
        handle = arena.handle
        arena.destroy()
        with pytest.raises(FileNotFoundError):
            ShmArena.attach(handle)


class TestPut:
    def test_put_is_visible_to_attached_readers(self):
        """The mark-frontier write half: the owner overwrites a packed
        array in place and an already-attached reader sees the new
        values through its existing view."""
        owner = ShmArena.create({"col": np.arange(4, dtype=np.int64)})
        try:
            reader = ShmArena.attach(owner.handle)
            view = reader.get("col")
            owner.put("col", np.arange(4, dtype=np.int64) * 10)
            np.testing.assert_array_equal(
                view, np.arange(4, dtype=np.int64) * 10
            )
            del view
            reader.close()
        finally:
            owner.destroy()

    def test_put_rejects_shape_and_dtype_mismatch(self):
        owner = ShmArena.create({"col": np.arange(4, dtype=np.int64)})
        try:
            with pytest.raises(ValueError, match="put"):
                owner.put("col", np.arange(5, dtype=np.int64))
            with pytest.raises(ValueError, match="put"):
                owner.put("col", np.arange(4, dtype=np.float64))
            with pytest.raises(KeyError):
                owner.put("missing", np.arange(4))
        finally:
            owner.destroy()


class TestResolveShm:
    def test_explicit_flag_wins(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")
        assert resolve_shm(False) is False
        monkeypatch.setenv(ENV_FLAG, "0")
        assert resolve_shm(True) == shm_available()

    @pytest.mark.parametrize("raw", ["0", "false", "no", "OFF"])
    def test_env_off(self, monkeypatch, raw):
        monkeypatch.setenv(ENV_FLAG, raw)
        assert resolve_shm() is False

    @pytest.mark.parametrize("raw", ["1", "true", "YES", "on"])
    def test_env_on_conditioned_on_availability(self, monkeypatch, raw):
        monkeypatch.setenv(ENV_FLAG, raw)
        assert resolve_shm() == shm_available()

    def test_env_malformed_raises(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "maybe")
        with pytest.raises(ValueError, match=ENV_FLAG):
            resolve_shm()

    def test_unset_probes_platform(self, monkeypatch):
        monkeypatch.delenv(ENV_FLAG, raising=False)
        assert resolve_shm() == shm_available()


def _child_attach_and_check(handle, expected_bytes, queue):
    try:
        arena = ShmArena.attach(handle)
        data = bytes(arena.get("payload"))
        arena.close()
        queue.put(("ok", data == expected_bytes))
    except BaseException as exc:  # noqa: BLE001 - report to parent
        queue.put(("error", repr(exc)))


class TestCrossProcess:
    def test_fork_attach_read_then_parent_unlink(self):
        """A forked child attaches by handle and reads; the segment must
        survive the child's exit (no tracker-driven unlink) until the
        owning parent destroys it."""
        payload = np.frombuffer(os.urandom(256), dtype=np.uint8)
        arena = ShmArena.create({"payload": payload})
        try:
            ctx = multiprocessing.get_context("fork")
            queue = ctx.Queue()
            proc = ctx.Process(
                target=_child_attach_and_check,
                args=(arena.handle, payload.tobytes(), queue),
            )
            proc.start()
            status, detail = queue.get(timeout=30)
            proc.join(timeout=30)
            assert status == "ok", detail
            assert detail is True
            # the child exited; the parent's mapping must still be intact
            np.testing.assert_array_equal(arena.get("payload"), payload)
        finally:
            arena.destroy()

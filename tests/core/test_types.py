"""Tests for repro.core.types — the system universe."""

import math

import numpy as np
import pytest

from repro.core.types import (
    ObjectSpec,
    PageSpec,
    RepositorySpec,
    ServerSpec,
    SystemModel,
)
from tests.conftest import build_micro_model


class TestObjectSpec:
    def test_valid(self):
        o = ObjectSpec(object_id=3, size=100)
        assert o.size == 100

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError, match="size"):
            ObjectSpec(object_id=0, size=0)

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError, match="object_id"):
            ObjectSpec(object_id=-1, size=10)


class TestPageSpec:
    def test_counts(self):
        p = PageSpec(0, 0, 100, 1.0, compulsory=(1, 2), optional=(3,))
        assert p.n_compulsory == 2
        assert p.n_optional == 1

    def test_duplicate_compulsory_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            PageSpec(0, 0, 100, 1.0, compulsory=(1, 1))

    def test_duplicate_optional_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            PageSpec(0, 0, 100, 1.0, optional=(2, 2))

    def test_overlap_rejected(self):
        # the paper: U'_jk = 0 whenever U_jk = 1
        with pytest.raises(ValueError, match="both"):
            PageSpec(0, 0, 100, 1.0, compulsory=(1,), optional=(1,))

    def test_bad_optional_prob(self):
        with pytest.raises(ValueError, match="optional_prob"):
            PageSpec(0, 0, 100, 1.0, optional_prob=1.5)

    def test_zero_html_rejected(self):
        with pytest.raises(ValueError, match="html_size"):
            PageSpec(0, 0, 0, 1.0)

    def test_negative_frequency_rejected(self):
        with pytest.raises(ValueError, match="frequency"):
            PageSpec(0, 0, 100, -1.0)


class TestServerSpec:
    def test_spb_properties(self):
        s = ServerSpec(0, 1000, 10, rate=10.0, overhead=1.0, repo_rate=2.0, repo_overhead=2.0)
        assert s.spb == pytest.approx(0.1)
        assert s.repo_spb == pytest.approx(0.5)

    def test_infinite_capacities_allowed(self):
        s = ServerSpec(
            0, math.inf, math.inf, rate=1.0, overhead=0.0, repo_rate=1.0, repo_overhead=0.0
        )
        assert math.isinf(s.storage_capacity)

    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            ServerSpec(0, 1, 1, rate=0.0, overhead=1.0, repo_rate=1.0, repo_overhead=1.0)

    def test_zero_processing_rejected(self):
        with pytest.raises(ValueError, match="processing"):
            ServerSpec(0, 1, 0.0, rate=1.0, overhead=1.0, repo_rate=1.0, repo_overhead=1.0)


class TestRepositorySpec:
    def test_default_infinite(self):
        assert math.isinf(RepositorySpec().processing_capacity)

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            RepositorySpec(processing_capacity=0.0)


class TestSystemModel:
    def test_dimensions(self, micro_model):
        assert micro_model.n_servers == 2
        assert micro_model.n_pages == 4
        assert micro_model.n_objects == 6

    def test_flat_compulsory_layout(self, micro_model):
        # pages have 2, 1, 2, 3 compulsory objects
        assert micro_model.comp_indptr.tolist() == [0, 2, 3, 5, 8]
        assert micro_model.comp_objects.tolist() == [0, 1, 2, 1, 3, 0, 2, 3]
        assert micro_model.comp_pages.tolist() == [0, 0, 1, 2, 2, 3, 3, 3]

    def test_flat_optional_layout(self, micro_model):
        assert micro_model.opt_indptr.tolist() == [0, 1, 1, 2, 2]
        assert micro_model.opt_objects.tolist() == [4, 5]
        assert micro_model.opt_probs.tolist() == [0.1, 0.2]

    def test_pages_by_server(self, micro_model):
        assert micro_model.pages_by_server == ((0, 1), (2, 3))

    def test_comp_slice(self, micro_model):
        sl = micro_model.comp_slice(3)
        assert micro_model.comp_objects[sl].tolist() == [0, 2, 3]

    def test_comp_sorted_decreasing_size(self, micro_model):
        # page 3: objects 0 (100), 2 (300), 3 (400) -> sorted 3, 2, 0
        sl = micro_model.comp_slice(3)
        order = micro_model.comp_sorted[sl.start : sl.stop]
        sizes = micro_model.sizes[micro_model.comp_objects[order]]
        assert sizes.tolist() == [400.0, 300.0, 100.0]

    def test_comp_sorted_grouped_by_page(self, micro_model):
        pages = micro_model.comp_pages[micro_model.comp_sorted]
        assert pages.tolist() == sorted(pages.tolist())

    def test_fast_comp_cached(self, micro_model):
        a = micro_model.fast_comp
        b = micro_model.fast_comp
        assert a is b

    def test_html_bytes_by_server(self, micro_model):
        assert micro_model.html_bytes_by_server().tolist() == [300.0, 400.0]

    def test_objects_referenced_by_server(self, micro_model):
        assert micro_model.objects_referenced_by_server(0) == {0, 1, 2, 4}
        assert micro_model.objects_referenced_by_server(1) == {0, 1, 2, 3, 5}

    def test_total_object_bytes(self, micro_model):
        assert micro_model.total_object_bytes() == 100 + 200 + 300 + 400 + 50 + 60

    def test_unordered_servers_rejected(self, micro_model):
        servers = list(micro_model.servers)[::-1]
        with pytest.raises(ValueError, match="ordered"):
            SystemModel(
                servers,
                micro_model.repository,
                micro_model.pages,
                micro_model.objects,
            )

    def test_unordered_pages_rejected(self, micro_model):
        pages = list(micro_model.pages)[::-1]
        with pytest.raises(ValueError, match="ordered"):
            SystemModel(
                micro_model.servers,
                micro_model.repository,
                pages,
                micro_model.objects,
            )

    def test_bad_server_reference_rejected(self, micro_model):
        pages = list(micro_model.pages) + [
            PageSpec(4, 9, 100, 1.0, compulsory=(0,))
        ]
        with pytest.raises(ValueError, match="server"):
            SystemModel(
                micro_model.servers,
                micro_model.repository,
                pages,
                micro_model.objects,
            )

    def test_bad_object_reference_rejected(self, micro_model):
        pages = list(micro_model.pages) + [
            PageSpec(4, 0, 100, 1.0, compulsory=(99,))
        ]
        with pytest.raises(ValueError, match="object"):
            SystemModel(
                micro_model.servers,
                micro_model.repository,
                pages,
                micro_model.objects,
            )

    def test_empty_pages_allowed(self):
        m = SystemModel(
            [
                ServerSpec(
                    0, math.inf, math.inf, rate=1.0, overhead=0.0,
                    repo_rate=1.0, repo_overhead=0.0,
                )
            ],
            RepositorySpec(),
            [],
            [ObjectSpec(0, 10)],
        )
        assert m.n_pages == 0
        assert len(m.comp_objects) == 0

    def test_capacity_arrays(self):
        m = build_micro_model(storage=(1000.0, 2000.0), processing=(50.0, 60.0))
        assert m.server_storage.tolist() == [1000.0, 2000.0]
        assert m.server_capacity.tolist() == [50.0, 60.0]

"""Shard-local context construction: ``EvalContext.for_servers`` and
:func:`repro.core.types.restrict_to_servers`.

The sharded kernel's workers build their derived state over a
*restricted* model instead of masking a full-model context.  Identity
rests on the restriction preserving order everywhere: objects keep
their global ids, pages/entries are renumbered by strictly increasing
maps, and the pre-sorted ``comp_sorted`` permutation is filtered, not
re-sorted.  These tests pin that contract column by column, plus the
validation and caching behaviour around it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.context import EvalContext, clear_derived_state
from repro.core.fast_partition import optional_marks_batched, partition_pages_batched
from repro.core.types import (
    ColumnarModel,
    MODEL_COLUMN_FIELDS,
    restrict_to_servers,
)
from repro.workload import WorkloadParams, generate_workload


@pytest.fixture(scope="module")
def model():
    # small scale: 4 servers, enough for non-trivial subsets
    return generate_workload(WorkloadParams.small(), seed=5)


def _member_masks(model, servers):
    member = np.zeros(model.n_servers, dtype=bool)
    member[list(servers)] = True
    page_member = member[model.page_server]
    comp_member = page_member[model.comp_pages]
    opt_member = page_member[model.opt_pages]
    return page_member, comp_member, opt_member


class TestRestrictToServers:
    def test_maps_are_ascending_global_ids(self, model):
        servers = (0, 2, 3)
        sub, maps = restrict_to_servers(model, servers)
        page_member, comp_member, opt_member = _member_masks(model, servers)
        np.testing.assert_array_equal(maps["servers"], np.asarray(servers))
        np.testing.assert_array_equal(maps["pages"], np.flatnonzero(page_member))
        np.testing.assert_array_equal(
            maps["comp_entries"], np.flatnonzero(comp_member)
        )
        np.testing.assert_array_equal(
            maps["opt_entries"], np.flatnonzero(opt_member)
        )
        assert sub.n_pages == int(page_member.sum())
        assert sub.n_servers == len(servers)
        assert sub.n_objects == model.n_objects  # objects stay global

    def test_columns_equal_masked_full_columns(self, model):
        servers = (1, 3)
        sub, maps = restrict_to_servers(model, servers)
        comp_sel = maps["comp_entries"]
        opt_sel = maps["opt_entries"]
        pages_sel = maps["pages"]
        # object ids are global in both — direct comparison
        np.testing.assert_array_equal(
            sub.comp_objects, model.comp_objects[comp_sel]
        )
        np.testing.assert_array_equal(
            sub.opt_objects, model.opt_objects[opt_sel]
        )
        np.testing.assert_array_equal(sub.opt_probs, model.opt_probs[opt_sel])
        np.testing.assert_array_equal(
            sub.frequencies, model.frequencies[pages_sel]
        )
        np.testing.assert_array_equal(
            sub.html_sizes, model.html_sizes[pages_sel]
        )
        # per-server arrays: slice by the kept servers
        srvs = np.asarray(servers)
        np.testing.assert_array_equal(sub.server_rate, model.server_rate[srvs])
        np.testing.assert_array_equal(
            sub.server_storage, model.server_storage[srvs]
        )
        # sizes shared by reference, not copied
        assert sub.sizes is model.sizes

    def test_comp_sorted_is_filtered_not_resorted(self, model):
        servers = (0, 1)
        sub, maps = restrict_to_servers(model, servers)
        _, comp_member, _ = _member_masks(model, servers)
        g2l = np.cumsum(comp_member) - 1  # local index of each kept entry
        kept_global_order = model.comp_sorted[comp_member[model.comp_sorted]]
        np.testing.assert_array_equal(sub.comp_sorted, g2l[kept_global_order])

    def test_validation(self, model):
        with pytest.raises(ValueError):
            restrict_to_servers(model, ())
        with pytest.raises(ValueError):
            restrict_to_servers(model, (2, 1))  # not strictly increasing
        with pytest.raises(ValueError):
            restrict_to_servers(model, (0, 0))  # duplicate
        with pytest.raises(ValueError):
            restrict_to_servers(model, (0, model.n_servers))  # out of range

    def test_full_subset_is_faithful(self, model):
        sub, maps = restrict_to_servers(model, tuple(range(model.n_servers)))
        for name in MODEL_COLUMN_FIELDS:
            np.testing.assert_array_equal(
                getattr(sub, name), getattr(model, name), err_msg=name
            )


class TestColumnarModel:
    def test_direct_construction_rejected(self):
        with pytest.raises(TypeError):
            ColumnarModel([], None, [], [])

    def test_lazy_specs_round_trip(self, model):
        servers = (0, 2)
        sub, maps = restrict_to_servers(model, servers)
        for li, gi in enumerate(maps["servers"]):
            orig = model.servers[int(gi)]
            lazy = sub.servers[li]
            assert lazy.rate == orig.rate
            assert lazy.storage_capacity == orig.storage_capacity
            assert lazy.processing_capacity == orig.processing_capacity
        for lj, gj in enumerate(maps["pages"]):
            orig = model.pages[int(gj)]
            lazy = sub.pages[lj]
            assert lazy.compulsory == orig.compulsory
            assert lazy.optional == orig.optional
            assert lazy.frequency == orig.frequency
            assert lazy.optional_prob == orig.optional_prob

    def test_pages_by_server_matches_page_server_column(self, model):
        sub, _ = restrict_to_servers(model, (1, 2))
        for li in range(sub.n_servers):
            expected = sorted(np.flatnonzero(sub.page_server == li).tolist())
            assert sorted(sub.pages_by_server[li]) == expected


class TestForServers:
    def test_partition_identity_through_global_maps(self, model):
        servers = (0, 3)
        ctx = EvalContext.for_servers(model, servers)
        sub = ctx.model
        page_member, comp_member, _ = _member_masks(model, servers)
        full_marks, _, _ = partition_pages_batched(
            model, page_ids=np.flatnonzero(page_member)
        )
        sub_marks, _, _ = partition_pages_batched(sub)
        got = np.zeros(len(model.comp_objects), dtype=bool)
        got[ctx.global_comp_entries[sub_marks]] = True
        np.testing.assert_array_equal(got, full_marks)

    def test_optional_marks_identity(self, model):
        servers = (0, 1, 2)
        ctx = EvalContext.for_servers(model, servers)
        _, _, opt_member = _member_masks(model, servers)
        full = optional_marks_batched(model, "beneficial") & opt_member
        sub = optional_marks_batched(ctx.model, "beneficial")
        got = np.zeros(len(model.opt_objects), dtype=bool)
        got[ctx.global_opt_entries[sub]] = True
        np.testing.assert_array_equal(got, full)

    def test_subset_context_is_cached(self, model):
        a = EvalContext.for_servers(model, (0, 2))
        b = EvalContext.for_servers(model, (0, 2))
        assert a is b
        c = EvalContext.for_servers(model, (0, 1))
        assert c is not a

    def test_cache_dropped_by_clear_derived_state(self, model):
        a = EvalContext.for_servers(model, (0, 2))
        clear_derived_state(model)
        b = EvalContext.for_servers(model, (0, 2))
        assert a is not b

    def test_single_server_entry_order_matches_argsort_grouping(self, model):
        """The scatter relies on it: a one-server restriction's global
        entry map equals the server's ascending flat entry ids."""
        full = EvalContext.for_model(model)
        for i in range(model.n_servers):
            ctx = EvalContext.for_servers(model, (i,))
            np.testing.assert_array_equal(
                ctx.global_comp_entries,
                np.flatnonzero(full.comp_server == i),
            )
            np.testing.assert_array_equal(
                ctx.global_opt_entries,
                np.flatnonzero(full.opt_server == i),
            )

"""Tests for repro.core.context: EvalContext + IncrementalObjective."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import Allocation, ReverseIndex
from repro.core.context import (
    EvalContext,
    IncrementalObjective,
    adopt_frequency_context,
    clear_derived_state,
    is_frequency_clone,
    rebuild_contexts,
    resolve_kernel,
)
from repro.core.cost_model import CostModel
from repro.core.partition import partition_all
from repro.core.types import PageSpec, SystemModel
from tests.properties.strategies import system_models


def freq_clone(model: SystemModel, frequencies) -> SystemModel:
    """A structural clone of ``model`` with new page frequencies (the
    core-level equivalent of ``repro.dynamic.drift.replace_frequencies``,
    without the automatic context adoption)."""
    pages = [
        PageSpec(
            page_id=p.page_id,
            server=p.server,
            html_size=p.html_size,
            frequency=float(frequencies[j]),
            compulsory=p.compulsory,
            optional=p.optional,
            optional_prob=p.optional_prob,
            optional_rate_scale=p.optional_rate_scale,
        )
        for j, p in enumerate(model.pages)
    ]
    return SystemModel(model.servers, model.repository, pages, model.objects)


class TestResolveKernel:
    def test_default(self):
        assert resolve_kernel(None) == "batched"

    def test_explicit(self):
        assert resolve_kernel("scalar") == "scalar"
        assert resolve_kernel("batched") == "batched"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="kernel"):
            resolve_kernel("simd")


class TestCaching:
    def test_for_model_cached(self, micro_model):
        a = EvalContext.for_model(micro_model)
        b = EvalContext.for_model(micro_model)
        assert a is b

    def test_kernel_siblings_share_columns(self, micro_model):
        batched = EvalContext.for_model(micro_model, kernel="batched")
        scalar = EvalContext.for_model(micro_model, kernel="scalar")
        assert batched is not scalar
        assert batched.comp_sizes is scalar.comp_sizes
        assert batched.pair_indptr is scalar.pair_indptr
        assert batched.html_request_load is scalar.html_request_load

    def test_rebuild_contexts_disables_cache(self, micro_model):
        cached = EvalContext.for_model(micro_model)
        with rebuild_contexts():
            fresh = EvalContext.for_model(micro_model)
            assert fresh is not cached
        assert EvalContext.for_model(micro_model) is cached

    def test_clear_derived_state(self, micro_model):
        before = EvalContext.for_model(micro_model)
        clear_derived_state(micro_model)
        after = EvalContext.for_model(micro_model)
        assert after is not before


class TestColumns:
    def test_entry_columns_match_model_gathers(self, micro_model):
        m = micro_model
        ctx = EvalContext.for_model(m)
        assert np.array_equal(ctx.comp_server, m.page_server[m.comp_pages])
        assert np.array_equal(ctx.comp_sizes, m.sizes[m.comp_objects])
        assert np.array_equal(ctx.comp_freq, m.frequencies[m.comp_pages])
        assert np.array_equal(ctx.opt_sizes, m.sizes[m.opt_objects])
        assert np.array_equal(
            ctx.opt_freq_weight,
            (m.frequencies[m.opt_pages] * m.optional_rate_scale[m.opt_pages])
            * m.opt_probs,
        )

    def test_per_server_fixed_terms(self, micro_model):
        m = micro_model
        ctx = EvalContext.for_model(m)
        assert np.array_equal(ctx.html_bytes_by_server, m.html_bytes_by_server())

    def test_groups_match_reverse_index(self, micro_model):
        m = micro_model
        ctx = EvalContext.for_model(m)
        rev = ReverseIndex.for_model(m)
        for i in range(m.n_servers):
            entries, starts, counts = ctx.comp_group(i)
            # entries are grouped by object with ascending entry ids —
            # the ReverseIndex tuple order
            for k in range(m.n_objects):
                ce, _ = rev.entries_for(i, k)
                sl = starts[k], starts[k] + counts[k]
                assert tuple(entries[sl[0] : sl[1]].tolist()) == ce

    def test_pair_table_covers_every_entry(self, micro_model):
        m = micro_model
        ctx = EvalContext.for_model(m)
        assert np.array_equal(
            ctx.pair_server[ctx.comp_pair], ctx.comp_server
        )
        assert np.array_equal(
            ctx.pair_object[ctx.comp_pair], m.comp_objects
        )
        assert np.array_equal(ctx.pair_server[ctx.opt_pair], ctx.opt_server)
        assert np.array_equal(ctx.pair_object[ctx.opt_pair], m.opt_objects)


class TestIsFrequencyClone:
    def test_same_instance(self, micro_model):
        assert is_frequency_clone(micro_model, micro_model)

    def test_frequency_clone_accepted(self, micro_model):
        clone = freq_clone(micro_model, [9.0, 8.0, 7.0, 6.0])
        assert is_frequency_clone(micro_model, clone)
        assert is_frequency_clone(clone, micro_model)

    def test_structural_change_detected(self, micro_model, tiny_model):
        assert not is_frequency_clone(micro_model, tiny_model)

    def test_capacity_change_detected(self, micro_model):
        from tests.conftest import build_micro_model

        tighter = build_micro_model(storage=(700.0, 900.0))
        assert not is_frequency_clone(micro_model, tighter)


class TestAdoptFrequencyContext:
    def test_structural_columns_shared_by_reference(self, micro_model):
        base_ctx = EvalContext.for_model(micro_model)
        clone = freq_clone(micro_model, [9.0, 8.0, 7.0, 6.0])
        assert adopt_frequency_context(micro_model, clone)
        ctx = EvalContext.for_model(clone)
        assert ctx is not base_ctx
        # structural columns transfer by reference — no rebuild
        assert ctx.comp_sizes is base_ctx.comp_sizes
        assert ctx.opt_sizes is base_ctx.opt_sizes
        assert ctx.pair_indptr is base_ctx.pair_indptr
        assert ctx.page_server is base_ctx.page_server
        # frequency columns are fresh arrays bound to the clone
        assert ctx.frequencies is clone.frequencies
        assert ctx.comp_freq is not base_ctx.comp_freq

    def test_refreshed_columns_bit_identical_to_fresh_build(self, micro_model):
        new_f = [9.0, 8.0, 7.0, 6.0]
        EvalContext.for_model(micro_model)
        adopted = freq_clone(micro_model, new_f)
        adopt_frequency_context(micro_model, adopted)
        fresh = freq_clone(micro_model, new_f)  # no adoption: full build
        ctx_a = EvalContext.for_model(adopted)
        ctx_f = EvalContext.for_model(fresh)
        for col in (
            "frequencies",
            "comp_freq",
            "opt_freq_weight",
            "html_request_load",
        ):
            assert np.array_equal(getattr(ctx_a, col), getattr(ctx_f, col)), col
        assert ctx_a.scalars.freq == ctx_f.scalars.freq

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_adoption_bit_identical_property(self, data):
        """For any universe and any new frequency vector, the adopted
        (refreshed) context equals a from-scratch build exactly."""
        model = data.draw(system_models())
        EvalContext.for_model(model)
        new_f = data.draw(
            st.lists(
                st.floats(0.0, 50.0, allow_nan=False),
                min_size=model.n_pages,
                max_size=model.n_pages,
            )
        )
        adopted = freq_clone(model, new_f)
        adopt_frequency_context(model, adopted)
        fresh = freq_clone(model, new_f)
        ctx_a = EvalContext.for_model(adopted)
        ctx_f = EvalContext.for_model(fresh)
        for col in (
            "frequencies",
            "comp_freq",
            "opt_freq_weight",
            "html_request_load",
        ):
            assert np.array_equal(getattr(ctx_a, col), getattr(ctx_f, col)), col
        assert ctx_a.scalars.freq == ctx_f.scalars.freq

    def test_structural_mismatch_rejected(self, micro_model, tiny_model):
        with pytest.raises(ValueError, match="frequency-only clone"):
            adopt_frequency_context(micro_model, tiny_model)

    def test_no_cached_context_returns_false(self, micro_model):
        clone = freq_clone(micro_model, [1.0, 1.0, 1.0, 1.0])
        assert not adopt_frequency_context(micro_model, clone)

    def test_existing_context_kept(self, micro_model):
        EvalContext.for_model(micro_model)
        clone = freq_clone(micro_model, [1.0, 1.0, 1.0, 1.0])
        own = EvalContext.for_model(clone)  # clone builds its own first
        assert not adopt_frequency_context(micro_model, clone)
        assert EvalContext.for_model(clone) is own

    def test_reverse_index_transferred(self, micro_model):
        ReverseIndex.for_model(micro_model)
        clone = freq_clone(micro_model, [2.0, 2.0, 2.0, 2.0])
        adopt_frequency_context(micro_model, clone)
        rev = ReverseIndex.for_model(clone)
        assert rev.model is clone
        assert rev.comp_entries is ReverseIndex.for_model(micro_model).comp_entries


class TestIncrementalObjective:
    def test_resync_bit_identical_to_cost_model(self, micro_model):
        alloc = partition_all(micro_model)
        cost = CostModel(micro_model, alpha1=2.0, alpha2=1.0)
        inc = IncrementalObjective(alloc.ctx, alloc, alpha1=2.0, alpha2=1.0)
        assert inc.D == cost.D(alloc)
        assert inc.D1 == cost.D1(alloc)
        assert inc.D2 == cost.D2(alloc)

    def test_flip_tracks_exact_evaluator(self, micro_model):
        rng = np.random.default_rng(7)
        alloc = partition_all(micro_model)
        cost = CostModel(micro_model, alpha1=2.0, alpha2=1.0)
        inc = IncrementalObjective(alloc.ctx, alloc, alpha1=2.0, alpha2=1.0)
        shadow = alloc.copy()
        for _ in range(25):
            if rng.random() < 0.5 and len(shadow.comp_local):
                e = rng.integers(0, len(shadow.comp_local), size=2)
                to = bool(rng.random() < 0.5)
                inc.flip_comp(e, to)
                shadow.set_comp_local_bulk(np.unique(e), to)
            elif len(shadow.opt_local):
                e = rng.integers(0, len(shadow.opt_local), size=2)
                to = bool(rng.random() < 0.5)
                inc.flip_opt(e, to)
                shadow.set_opt_local_bulk(np.unique(e), to)
            exact = cost.D(shadow)
            assert inc.D == pytest.approx(exact, rel=1e-12, abs=1e-9)
        # the escape hatch lands exactly on the full evaluator
        assert inc.resync() == cost.D(shadow)

    def test_noop_flips_ignored(self, micro_model):
        alloc = partition_all(micro_model)
        inc = IncrementalObjective(alloc.ctx, alloc)
        d0 = inc.D
        already = alloc.comp_local.nonzero()[0]
        assert inc.flip_comp(already, True) == d0
        assert inc.flip_comp(np.array([], dtype=np.intp), False) == d0

    def test_duplicate_entries_flip_once(self, micro_model):
        alloc = Allocation(micro_model)
        cost = CostModel(micro_model)
        inc = IncrementalObjective(alloc.ctx, alloc)
        inc.flip_comp(np.array([2, 2, 0, 2]), True)
        shadow = Allocation(micro_model)
        shadow.set_comp_local_bulk(np.array([0, 2]), True)
        assert inc.resync() == cost.D(shadow)

    def test_resync_every_clears_drift(self, micro_model):
        alloc = Allocation(micro_model)
        cost = CostModel(micro_model)
        inc = IncrementalObjective(alloc.ctx, alloc, resync_every=1)
        shadow = Allocation(micro_model)
        for e in range(min(4, len(alloc.comp_local))):
            inc.flip_comp(np.array([e]), True)
            shadow.set_comp_local(e, True)
            # resync_every=1 forces an exact recompute after every flip
            assert inc.D == cost.D(shadow)

    def test_invalid_args_rejected(self, micro_model):
        alloc = Allocation(micro_model)
        with pytest.raises(ValueError, match="alpha"):
            IncrementalObjective(alloc.ctx, alloc, alpha1=0.0)
        with pytest.raises(ValueError, match="resync_every"):
            IncrementalObjective(alloc.ctx, alloc, resync_every=0)

"""Tests for repro.core.context: EvalContext + IncrementalObjective."""

import numpy as np
import pytest

from repro.core.allocation import Allocation, ReverseIndex
from repro.core.context import (
    EvalContext,
    IncrementalObjective,
    clear_derived_state,
    rebuild_contexts,
    resolve_kernel,
)
from repro.core.cost_model import CostModel
from repro.core.partition import partition_all


class TestResolveKernel:
    def test_default(self):
        assert resolve_kernel(None) == "batched"

    def test_explicit(self):
        assert resolve_kernel("scalar") == "scalar"
        assert resolve_kernel("batched") == "batched"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="kernel"):
            resolve_kernel("simd")


class TestCaching:
    def test_for_model_cached(self, micro_model):
        a = EvalContext.for_model(micro_model)
        b = EvalContext.for_model(micro_model)
        assert a is b

    def test_kernel_siblings_share_columns(self, micro_model):
        batched = EvalContext.for_model(micro_model, kernel="batched")
        scalar = EvalContext.for_model(micro_model, kernel="scalar")
        assert batched is not scalar
        assert batched.comp_sizes is scalar.comp_sizes
        assert batched.pair_indptr is scalar.pair_indptr
        assert batched.html_request_load is scalar.html_request_load

    def test_rebuild_contexts_disables_cache(self, micro_model):
        cached = EvalContext.for_model(micro_model)
        with rebuild_contexts():
            fresh = EvalContext.for_model(micro_model)
            assert fresh is not cached
        assert EvalContext.for_model(micro_model) is cached

    def test_clear_derived_state(self, micro_model):
        before = EvalContext.for_model(micro_model)
        clear_derived_state(micro_model)
        after = EvalContext.for_model(micro_model)
        assert after is not before


class TestColumns:
    def test_entry_columns_match_model_gathers(self, micro_model):
        m = micro_model
        ctx = EvalContext.for_model(m)
        assert np.array_equal(ctx.comp_server, m.page_server[m.comp_pages])
        assert np.array_equal(ctx.comp_sizes, m.sizes[m.comp_objects])
        assert np.array_equal(ctx.comp_freq, m.frequencies[m.comp_pages])
        assert np.array_equal(ctx.opt_sizes, m.sizes[m.opt_objects])
        assert np.array_equal(
            ctx.opt_freq_weight,
            (m.frequencies[m.opt_pages] * m.optional_rate_scale[m.opt_pages])
            * m.opt_probs,
        )

    def test_per_server_fixed_terms(self, micro_model):
        m = micro_model
        ctx = EvalContext.for_model(m)
        assert np.array_equal(ctx.html_bytes_by_server, m.html_bytes_by_server())

    def test_groups_match_reverse_index(self, micro_model):
        m = micro_model
        ctx = EvalContext.for_model(m)
        rev = ReverseIndex.for_model(m)
        for i in range(m.n_servers):
            entries, starts, counts = ctx.comp_group(i)
            # entries are grouped by object with ascending entry ids —
            # the ReverseIndex tuple order
            for k in range(m.n_objects):
                ce, _ = rev.entries_for(i, k)
                sl = starts[k], starts[k] + counts[k]
                assert tuple(entries[sl[0] : sl[1]].tolist()) == ce

    def test_pair_table_covers_every_entry(self, micro_model):
        m = micro_model
        ctx = EvalContext.for_model(m)
        assert np.array_equal(
            ctx.pair_server[ctx.comp_pair], ctx.comp_server
        )
        assert np.array_equal(
            ctx.pair_object[ctx.comp_pair], m.comp_objects
        )
        assert np.array_equal(ctx.pair_server[ctx.opt_pair], ctx.opt_server)
        assert np.array_equal(ctx.pair_object[ctx.opt_pair], m.opt_objects)


class TestIncrementalObjective:
    def test_resync_bit_identical_to_cost_model(self, micro_model):
        alloc = partition_all(micro_model)
        cost = CostModel(micro_model, alpha1=2.0, alpha2=1.0)
        inc = IncrementalObjective(alloc.ctx, alloc, alpha1=2.0, alpha2=1.0)
        assert inc.D == cost.D(alloc)
        assert inc.D1 == cost.D1(alloc)
        assert inc.D2 == cost.D2(alloc)

    def test_flip_tracks_exact_evaluator(self, micro_model):
        rng = np.random.default_rng(7)
        alloc = partition_all(micro_model)
        cost = CostModel(micro_model, alpha1=2.0, alpha2=1.0)
        inc = IncrementalObjective(alloc.ctx, alloc, alpha1=2.0, alpha2=1.0)
        shadow = alloc.copy()
        for _ in range(25):
            if rng.random() < 0.5 and len(shadow.comp_local):
                e = rng.integers(0, len(shadow.comp_local), size=2)
                to = bool(rng.random() < 0.5)
                inc.flip_comp(e, to)
                shadow.set_comp_local_bulk(np.unique(e), to)
            elif len(shadow.opt_local):
                e = rng.integers(0, len(shadow.opt_local), size=2)
                to = bool(rng.random() < 0.5)
                inc.flip_opt(e, to)
                shadow.set_opt_local_bulk(np.unique(e), to)
            exact = cost.D(shadow)
            assert inc.D == pytest.approx(exact, rel=1e-12, abs=1e-9)
        # the escape hatch lands exactly on the full evaluator
        assert inc.resync() == cost.D(shadow)

    def test_noop_flips_ignored(self, micro_model):
        alloc = partition_all(micro_model)
        inc = IncrementalObjective(alloc.ctx, alloc)
        d0 = inc.D
        already = alloc.comp_local.nonzero()[0]
        assert inc.flip_comp(already, True) == d0
        assert inc.flip_comp(np.array([], dtype=np.intp), False) == d0

    def test_duplicate_entries_flip_once(self, micro_model):
        alloc = Allocation(micro_model)
        cost = CostModel(micro_model)
        inc = IncrementalObjective(alloc.ctx, alloc)
        inc.flip_comp(np.array([2, 2, 0, 2]), True)
        shadow = Allocation(micro_model)
        shadow.set_comp_local_bulk(np.array([0, 2]), True)
        assert inc.resync() == cost.D(shadow)

    def test_resync_every_clears_drift(self, micro_model):
        alloc = Allocation(micro_model)
        cost = CostModel(micro_model)
        inc = IncrementalObjective(alloc.ctx, alloc, resync_every=1)
        shadow = Allocation(micro_model)
        for e in range(min(4, len(alloc.comp_local))):
            inc.flip_comp(np.array([e]), True)
            shadow.set_comp_local(e, True)
            # resync_every=1 forces an exact recompute after every flip
            assert inc.D == cost.D(shadow)

    def test_invalid_args_rejected(self, micro_model):
        alloc = Allocation(micro_model)
        with pytest.raises(ValueError, match="alpha"):
            IncrementalObjective(alloc.ctx, alloc, alpha1=0.0)
        with pytest.raises(ValueError, match="resync_every"):
            IncrementalObjective(alloc.ctx, alloc, resync_every=0)

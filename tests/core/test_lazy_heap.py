"""Tests for the lazily-revalidated min-heap behind the greedy loops."""

import pytest

from repro.core.cost_model import CostModel
from repro.core.partition import partition_all
from repro.core.restoration import _LazyHeap, restore_storage_capacity
from tests.conftest import build_micro_model


class TestLazyHeap:
    def test_pop_min(self):
        h = _LazyHeap()
        scores = {"a": 3.0, "b": 1.0, "c": 2.0}
        for k, s in scores.items():
            h.push(s, k)
        got = h.pop_valid(rescore=lambda k: scores[k], alive=lambda k: True)
        assert got == (1.0, "b")

    def test_stale_entry_reinserted(self):
        h = _LazyHeap()
        h.push(1.0, "a")
        h.push(2.0, "b")
        current = {"a": 5.0, "b": 2.0}  # a's score rose after the push
        got = h.pop_valid(rescore=lambda k: current[k], alive=lambda k: True)
        assert got == (2.0, "b")
        # "a" must still be retrievable at its fresh score
        got2 = h.pop_valid(rescore=lambda k: current[k], alive=lambda k: True)
        assert got2 == (5.0, "a")

    def test_decreased_score_accepted_at_fresh_value(self):
        h = _LazyHeap()
        h.push(4.0, "a")
        got = h.pop_valid(rescore=lambda k: 1.0, alive=lambda k: True)
        assert got == (1.0, "a")  # fresh (lower) score is returned

    def test_dead_entries_skipped(self):
        h = _LazyHeap()
        h.push(1.0, "dead")
        h.push(2.0, "alive")
        got = h.pop_valid(
            rescore=lambda k: 2.0, alive=lambda k: k == "alive"
        )
        assert got == (2.0, "alive")

    def test_empty_returns_none(self):
        h = _LazyHeap()
        assert h.pop_valid(rescore=lambda k: 0.0, alive=lambda k: True) is None

    def test_duplicates_tolerated(self):
        h = _LazyHeap()
        h.push(1.0, "a")
        h.push(1.5, "a")  # stale duplicate
        seen = []
        while True:
            got = h.pop_valid(rescore=lambda k: 1.0, alive=lambda k: True)
            if got is None:
                break
            seen.append(got)
        assert seen == [(1.0, "a"), (1.0, "a")]

    def test_len(self):
        h = _LazyHeap()
        assert len(h) == 0
        h.push(1.0, "a")
        assert len(h) == 1


class TestAmortisationFlag:
    def test_raw_criterion_restores_too(self):
        m = build_micro_model(storage=(700.0, 900.0))
        alloc = partition_all(m)
        cost = CostModel(m)
        stats = restore_storage_capacity(alloc, cost, amortise=False)
        from repro.core.constraints import evaluate_constraints

        assert evaluate_constraints(alloc).storage_ok
        assert stats.evictions > 0

    def test_amortised_no_worse_on_micro(self):
        m = build_micro_model(storage=(700.0, 900.0))
        cost = CostModel(m)
        a = partition_all(m)
        restore_storage_capacity(a, cost, amortise=True)
        b = partition_all(m)
        restore_storage_capacity(b, cost, amortise=False)
        assert cost.D(a) <= cost.D(b) + 1e-9

"""Tests for repro.core.matrices — sparse Section 3 matrices."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.baselines.local import LocalPolicy
from repro.core.allocation import Allocation
from repro.core.matrices import MatrixSet
from repro.core.partition import partition_all


class TestFromAllocation:
    def test_shapes(self, micro_model):
        ms = MatrixSet.from_allocation(Allocation(micro_model))
        assert ms.U.shape == (4, 6)
        assert ms.U_prime.shape == (4, 6)
        assert ms.A.shape == (2, 4)
        assert ms.X.shape == (4, 6)
        assert ms.X_prime.shape == (4, 6)

    def test_u_entries(self, micro_model):
        ms = MatrixSet.from_allocation(Allocation(micro_model))
        U = ms.U.toarray()
        assert U[0, 0] == 1 and U[0, 1] == 1
        assert U[3, 0] == 1 and U[3, 2] == 1 and U[3, 3] == 1
        assert U.sum() == 8

    def test_u_prime_probabilities(self, micro_model):
        ms = MatrixSet.from_allocation(Allocation(micro_model))
        Up = ms.U_prime.toarray()
        assert Up[0, 4] == pytest.approx(0.1)
        assert Up[2, 5] == pytest.approx(0.2)
        assert Up.sum() == pytest.approx(0.3)

    def test_a_one_server_per_page(self, micro_model):
        ms = MatrixSet.from_allocation(Allocation(micro_model))
        A = ms.A.toarray()
        assert np.array_equal(A.sum(axis=0), np.ones(4))
        assert A[0, 0] == 1 and A[1, 2] == 1

    def test_x_subset_of_u(self, micro_model):
        alloc = partition_all(micro_model)
        ms = MatrixSet.from_allocation(alloc)
        X, U = ms.X.toarray(), ms.U.toarray()
        assert np.all(X <= U)

    def test_x_prime_extends_x(self, micro_model):
        alloc = partition_all(micro_model)
        ms = MatrixSet.from_allocation(alloc)
        Xp, X = ms.X_prime.toarray(), ms.X.toarray()
        assert np.all(Xp >= X)
        # optional locals present
        assert Xp[0, 4] == 1 and Xp[2, 5] == 1

    def test_empty_allocation_x_empty(self, micro_model):
        ms = MatrixSet.from_allocation(Allocation(micro_model))
        assert ms.X.nnz == 0
        assert ms.X_prime.nnz == 0


class TestValidate:
    def test_overlapping_u_uprime_rejected(self, micro_model):
        ms = MatrixSet.from_allocation(Allocation(micro_model))
        bad = MatrixSet(
            U=ms.U,
            U_prime=(ms.U * 0.5).tocsr(),  # same support as U
            A=ms.A,
            X=ms.X,
            X_prime=ms.X_prime,
        )
        with pytest.raises(ValueError, match="overlap"):
            bad.validate()

    def test_x_outside_u_rejected(self, micro_model):
        ms = MatrixSet.from_allocation(Allocation(micro_model))
        X = sp.csr_matrix(([1.0], ([0], [3])), shape=ms.U.shape)  # (0,3) not in U
        bad = MatrixSet(U=ms.U, U_prime=ms.U_prime, A=ms.A, X=X, X_prime=X)
        with pytest.raises(ValueError, match="outside U"):
            bad.validate()

    def test_x_prime_disagreeing_rejected(self, micro_model):
        alloc = partition_all(micro_model)
        ms = MatrixSet.from_allocation(alloc)
        zero = sp.csr_matrix(ms.X.shape)
        bad = MatrixSet(
            U=ms.U, U_prime=ms.U_prime, A=ms.A, X=ms.X, X_prime=zero
        )
        with pytest.raises(ValueError, match="disagrees"):
            bad.validate()


class TestByteHelpers:
    def test_local_remote_bytes(self, micro_model):
        alloc = LocalPolicy().allocate(micro_model)
        ms = MatrixSet.from_allocation(alloc)
        lb = ms.local_compulsory_bytes(micro_model.sizes)
        rb = ms.remote_compulsory_bytes(micro_model.sizes)
        assert lb.tolist() == [300.0, 300.0, 600.0, 800.0]
        assert rb.tolist() == [0.0, 0.0, 0.0, 0.0]


class TestRoundTrip:
    def test_to_allocation_round_trip(self, micro_model):
        alloc = partition_all(micro_model)
        ms = MatrixSet.from_allocation(alloc)
        back = ms.to_allocation(micro_model)
        assert np.array_equal(back.comp_local, alloc.comp_local)
        assert np.array_equal(back.opt_local, alloc.opt_local)

    def test_round_trip_on_generated(self, tiny_model):
        alloc = partition_all(tiny_model)
        back = MatrixSet.from_allocation(alloc).to_allocation(tiny_model)
        assert np.array_equal(back.comp_local, alloc.comp_local)

"""Tests for repro.core.allocation — decision state and replica sets."""

import numpy as np
import pytest

from repro.core.allocation import Allocation, ReverseIndex


class TestConstruction:
    def test_default_all_remote(self, micro_model):
        a = Allocation(micro_model)
        assert not a.comp_local.any()
        assert not a.opt_local.any()
        assert all(len(r) == 0 for r in a.replicas)

    def test_marks_imply_replicas(self, micro_model):
        comp = np.zeros(8, dtype=bool)
        comp[0] = True  # page 0 (server 0), object 0
        a = Allocation(micro_model, comp_local=comp)
        assert 0 in a.replicas[0]
        assert 0 not in a.replicas[1]

    def test_extra_replicas_allowed(self, micro_model):
        a = Allocation(micro_model, replicas=[{0, 2}, set()])
        assert a.replicas[0] == {0, 2}

    def test_missing_replica_rejected(self, micro_model):
        comp = np.zeros(8, dtype=bool)
        comp[0] = True
        with pytest.raises(ValueError, match="replica"):
            Allocation(micro_model, comp_local=comp, replicas=[set(), set()])

    def test_wrong_shape_rejected(self, micro_model):
        with pytest.raises(ValueError, match="comp_local"):
            Allocation(micro_model, comp_local=np.zeros(3, dtype=bool))
        with pytest.raises(ValueError, match="opt_local"):
            Allocation(micro_model, opt_local=np.zeros(9, dtype=bool))

    def test_wrong_replica_count_rejected(self, micro_model):
        with pytest.raises(ValueError, match="per server"):
            Allocation(micro_model, replicas=[set()])


class TestMutation:
    def test_set_comp_local_adds_replica(self, micro_model):
        a = Allocation(micro_model)
        a.set_comp_local(0, True)  # page 0 / object 0 on server 0
        assert a.comp_local[0]
        assert 0 in a.replicas[0]
        assert a.mark_count(0, 0) == 1

    def test_unmark_keeps_replica(self, micro_model):
        # the paper: stored objects may have no local-download marks
        a = Allocation(micro_model)
        a.set_comp_local(0, True)
        a.set_comp_local(0, False)
        assert 0 in a.replicas[0]
        assert a.mark_count(0, 0) == 0
        assert a.unmarked_stored(0) == {0}

    def test_set_same_value_noop(self, micro_model):
        a = Allocation(micro_model)
        a.set_comp_local(0, False)
        assert a.mark_count(0, 0) == 0

    def test_mark_count_shared_object(self, micro_model):
        # object 0 appears in pages 0 (server 0) and 3 (server 1)
        a = Allocation(micro_model)
        a.set_comp_local(0, True)  # page 0's entry for object 0
        a.set_comp_local(5, True)  # page 3's entry for object 0
        assert a.mark_count(0, 0) == 1
        assert a.mark_count(1, 0) == 1

    def test_opt_local_marks(self, micro_model):
        a = Allocation(micro_model)
        a.set_opt_local(0, True)  # page 0's optional object 4
        assert 4 in a.replicas[0]
        assert a.mark_count(0, 4) == 1

    def test_store_idempotent(self, micro_model):
        a = Allocation(micro_model)
        a.store(0, 3)
        a.store(0, 3)
        assert a.replicas[0] == {3}


class TestDeallocate:
    def test_flips_marks_and_reports_pages(self, micro_model):
        a = Allocation(micro_model)
        a.set_comp_local(1, True)  # page 0, object 1 (server 0)
        affected = a.deallocate(0, 1)
        assert affected == (0,)
        assert not a.comp_local[1]
        assert 1 not in a.replicas[0]

    def test_flips_optional_marks(self, micro_model):
        a = Allocation(micro_model)
        a.set_opt_local(0, True)  # page 0's optional object 4
        affected = a.deallocate(0, 4)
        assert affected == (0,)
        assert not a.opt_local[0]

    def test_unstored_raises(self, micro_model):
        a = Allocation(micro_model)
        with pytest.raises(KeyError):
            a.deallocate(0, 2)

    def test_does_not_touch_other_server(self, micro_model):
        a = Allocation(micro_model)
        a.set_comp_local(0, True)  # object 0 @ server 0
        a.set_comp_local(5, True)  # object 0 @ server 1
        a.deallocate(0, 0)
        assert a.comp_local[5]
        assert 0 in a.replicas[1]


class TestQueries:
    def test_stored_bytes(self, micro_model):
        a = Allocation(micro_model, replicas=[{0, 1}, {3}])
        assert a.stored_bytes(0) == 300.0  # 100 + 200
        assert a.stored_bytes(1) == 400.0
        assert a.stored_bytes_all().tolist() == [300.0, 400.0]

    def test_page_marks_views(self, micro_model):
        a = Allocation(micro_model)
        a.set_comp_local(3, True)  # page 2's first entry (object 1)
        marks = a.page_comp_marks(2)
        assert marks.tolist() == [True, False]

    def test_copy_independent(self, micro_model):
        a = Allocation(micro_model)
        a.set_comp_local(0, True)
        b = a.copy()
        b.set_comp_local(0, False)
        b.replicas[0].discard(0)
        assert a.comp_local[0]
        assert 0 in a.replicas[0]
        assert a != b

    def test_equality(self, micro_model):
        a = Allocation(micro_model)
        b = Allocation(micro_model)
        assert a == b
        b.set_comp_local(0, True)
        assert a != b

    def test_check_invariants_passes(self, micro_model):
        a = Allocation(micro_model)
        a.set_comp_local(0, True)
        a.set_opt_local(1, True)
        a.check_invariants()

    def test_check_invariants_catches_corruption(self, micro_model):
        a = Allocation(micro_model)
        a.set_comp_local(0, True)
        a.replicas[0].discard(0)  # corrupt directly
        with pytest.raises(AssertionError):
            a.check_invariants()


class TestReverseIndex:
    def test_entries_for(self, micro_model):
        rev = ReverseIndex.for_model(micro_model)
        comp_e, opt_e = rev.entries_for(0, 0)
        assert comp_e == (0,)
        assert opt_e == ()
        comp_e, opt_e = rev.entries_for(1, 0)
        assert comp_e == (5,)

    def test_optional_entries(self, micro_model):
        rev = ReverseIndex.for_model(micro_model)
        comp_e, opt_e = rev.entries_for(0, 4)
        assert comp_e == ()
        assert opt_e == (0,)

    def test_missing_pair_empty(self, micro_model):
        rev = ReverseIndex.for_model(micro_model)
        assert rev.entries_for(0, 3) == ((), ())

    def test_cached_per_model(self, micro_model):
        assert ReverseIndex.for_model(micro_model) is ReverseIndex.for_model(
            micro_model
        )


class TestBulkMutation:
    """set_comp_local_bulk / set_opt_local_bulk must be indistinguishable
    from the equivalent sequence of scalar setters."""

    def test_bulk_equals_scalar_loop(self, micro_model):
        bulk = Allocation(micro_model)
        loop = Allocation(micro_model)
        entries = [0, 2, 3, 5]
        bulk.set_comp_local_bulk(np.array(entries), True)
        for e in entries:
            loop.set_comp_local(e, True)
        assert bulk == loop
        assert bulk._mark_counts == loop._mark_counts
        bulk.check_invariants()

    def test_bulk_unset_updates_counts_not_replicas(self, micro_model):
        a = Allocation(micro_model)
        a.set_comp_local_bulk(np.arange(len(a.comp_local)), True)
        a.set_comp_local_bulk(np.array([0, 1]), False)
        # replicas keep the stored-but-unmarked objects (marks ⊆ stored)
        assert a.mark_count(0, 0) == 0
        assert 0 in a.replicas[0]
        a.check_invariants()

    def test_bulk_opt(self, micro_model):
        bulk = Allocation(micro_model)
        loop = Allocation(micro_model)
        bulk.set_opt_local_bulk(np.array([0, 1]), True)
        for e in (0, 1):
            loop.set_opt_local(e, True)
        assert bulk == loop
        assert bulk._mark_counts == loop._mark_counts

    def test_bulk_tolerates_duplicates_and_noops(self, micro_model):
        a = Allocation(micro_model)
        a.set_comp_local(0, True)
        # entry 0 is already set (no-op), entry 2 appears twice
        a.set_comp_local_bulk(np.array([0, 2, 2]), True)
        b = Allocation(micro_model)
        for e in (0, 2):
            b.set_comp_local(e, True)
        assert a == b
        assert a._mark_counts == b._mark_counts
        a.check_invariants()

    def test_bulk_unsorted_entries(self, micro_model):
        a = Allocation(micro_model)
        a.set_comp_local_bulk(np.array([5, 0, 3]), True)
        b = Allocation(micro_model)
        for e in (0, 3, 5):
            b.set_comp_local(e, True)
        assert a == b
        assert a._mark_counts == b._mark_counts

    def test_bulk_empty(self, micro_model):
        a = Allocation(micro_model)
        a.set_comp_local_bulk(np.array([], dtype=np.intp), True)
        a.set_opt_local_bulk(np.array([], dtype=np.intp), False)
        assert not a.comp_local.any()

    def test_bulk_shared_object_count_across_pages(self, micro_model):
        # object 3 is compulsory for pages 2 and 3, both hosted on
        # server 1 (flat entries 4 and 7) — the per-server count must
        # aggregate across pages.
        a = Allocation(micro_model)
        a.set_comp_local_bulk(np.array([4, 7]), True)
        assert a.mark_count(1, 3) == 2
        a.set_comp_local_bulk(np.array([4]), False)
        assert a.mark_count(1, 3) == 1
        assert 3 in a.replicas[1]


class TestCopyTransplantWithBulk:
    """Deep-copy/transplant semantics around the bulk mutators.

    ``copy`` and ``transplant_allocation`` both rebuild or duplicate the
    per-server mark counts; the bulk mutators update those counts with a
    bincount over pair ids.  These tests pin the interaction: edits on
    one side must never leak to the other, and the counts must stay
    consistent (``check_invariants``) after any mix of scalar and bulk
    edits on either side.
    """

    def test_copy_isolates_bulk_edits(self, micro_model):
        a = Allocation(micro_model)
        a.set_comp_local_bulk(np.array([0, 2, 4]), True)
        b = a.copy()
        b.set_comp_local_bulk(np.array([0, 2]), False)
        b.set_opt_local_bulk(np.array([0]), True)
        # the original is untouched, including its mark counts
        assert a.comp_local[[0, 2, 4]].all()
        assert not a.opt_local.any()
        a.check_invariants()
        b.check_invariants()
        ref = Allocation(micro_model, b.comp_local, b.opt_local)
        assert b._mark_counts == ref._mark_counts

    def test_bulk_edits_on_copy_match_scalar_on_original(self, micro_model):
        a = Allocation(micro_model)
        a.set_comp_local(1, True)
        dup = a.copy()
        dup.set_comp_local_bulk(np.array([3, 5]), True)
        scalar = a.copy()
        for e in (3, 5):
            scalar.set_comp_local(e, True)
        assert dup == scalar
        assert dup._mark_counts == scalar._mark_counts

    def test_transplant_after_bulk_edits(self, micro_model):
        from repro.core.allocation import transplant_allocation
        from repro.experiments.scaling import clone_with_capacities

        a = Allocation(micro_model)
        a.set_comp_local_bulk(np.array([4, 7]), True)
        a.set_opt_local_bulk(np.array([1]), True)
        a.store(0, 3)  # stored-but-unmarked survives the move
        clone = clone_with_capacities(micro_model, storage=1e9)
        moved = transplant_allocation(a, clone)
        assert moved.model is clone
        assert moved.ctx is not a.ctx  # fresh model, fresh context
        assert np.array_equal(moved.comp_local, a.comp_local)
        assert 3 in moved.replicas[0]
        moved.check_invariants()
        # bulk edits on the transplant do not reach back
        moved.set_comp_local_bulk(np.array([4, 7]), False)
        assert a.comp_local[[4, 7]].all()
        assert a.mark_count(1, 3) == 2
        a.check_invariants()
        moved.check_invariants()

    def test_invariants_after_mixed_scalar_bulk_edits(self, micro_model):
        a = Allocation(micro_model)
        a.set_comp_local_bulk(np.array([0, 2, 4, 7]), True)
        a.set_comp_local(2, False)
        a.set_opt_local(0, True)
        a.set_opt_local_bulk(np.array([0, 1]), False)
        a.set_comp_local_bulk(np.array([2, 5]), True)
        a.set_comp_local(5, False)
        a.check_invariants()
        # scalar replay of the same edit history (replica sets record
        # every object ever marked, so the reference must replay the
        # set-then-unset steps too, not just the surviving marks)
        loop = Allocation(micro_model)
        for e in (0, 2, 4, 7):
            loop.set_comp_local(e, True)
        loop.set_comp_local(2, False)
        loop.set_opt_local(0, True)
        for e in (0, 1):
            loop.set_opt_local(e, False)
        for e in (2, 5):
            loop.set_comp_local(e, True)
        loop.set_comp_local(5, False)
        assert a == loop
        assert a._mark_counts == loop._mark_counts

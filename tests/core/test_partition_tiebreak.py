"""The PARTITION tie rule: equal stream candidates go LOCAL.

The greedy assigns an object to the repository stream only when
``cand_remote < cand_local`` holds **strictly** (Section 4.2 pseudocode:
both totals are tentatively incremented and the loser rolled back; on a
tie the local stream keeps the object).  Both kernels must encode the
identical predicate — a ``<=`` in either one silently flips tie objects
onto the repository stream, changing replica sets while leaving the page
max unchanged, which no balance-based test would catch.  This test pins
the tie behaviour explicitly.
"""

import math

import numpy as np
import pytest

from repro.core.fast_partition import partition_pages_batched
from repro.core.partition import partition_page
from repro.core.types import (
    ObjectSpec,
    PageSpec,
    RepositorySpec,
    ServerSpec,
    SystemModel,
)


@pytest.fixture
def tie_model() -> SystemModel:
    """Both streams start at exactly 100 s and every object costs exactly
    50 s on either stream, so every greedy step with balanced streams is
    an exact tie.

    Local: rate 1 B/s, overhead 0, HTML 100 B -> starts at 100.0.
    Repository: rate 1 B/s, overhead 100 s   -> starts at 100.0.
    """
    server = ServerSpec(
        server_id=0,
        storage_capacity=math.inf,
        processing_capacity=math.inf,
        rate=1.0,
        overhead=0.0,
        repo_rate=1.0,
        repo_overhead=100.0,
    )
    objects = [ObjectSpec(k, 50) for k in range(3)]
    page = PageSpec(
        page_id=0, server=0, html_size=100, frequency=1.0, compulsory=(0, 1, 2)
    )
    return SystemModel([server], RepositorySpec(), [page], objects)


class TestTieBreak:
    def test_scalar_ties_go_local(self, tie_model):
        """Step 1: 150 vs 150 -> tie -> LOCAL (local=150).
        Step 2: remote 150 < local 200 -> remote (remote=150).
        Step 3: 200 vs 200 -> tie -> LOCAL."""
        marks, local_t, remote_t = partition_page(tie_model, 0)
        assert marks.tolist() == [True, False, True]
        assert local_t == 200.0
        assert remote_t == 150.0

    def test_batched_encodes_identical_predicate(self, tie_model):
        marks, local_t, remote_t = partition_pages_batched(tie_model)
        assert marks.tolist() == [True, False, True]
        assert local_t[0] == 200.0
        assert remote_t[0] == 150.0

    def test_tie_with_whitelist(self, tie_model):
        """A whitelisted tie object still goes local; a non-whitelisted
        one is forced remote regardless of the tie."""
        marks, _, _ = partition_page(tie_model, 0, allowed={0, 1, 2})
        assert marks.tolist() == [True, False, True]
        # object 0 excluded -> forced remote (remote=150); object 1:
        # local 150 < remote 200 -> local; object 2: 200 vs 200 tie ->
        # LOCAL again.
        marks, local_t, remote_t = partition_page(tie_model, 0, allowed={1, 2})
        assert marks.tolist() == [False, True, True]
        assert local_t == 200.0
        assert remote_t == 150.0

        mask = np.array([False, True, True])
        bmarks, blt, brt = partition_pages_batched(tie_model, allowed_mask=mask)
        assert np.array_equal(bmarks, marks)
        assert blt[0] == local_t and brt[0] == remote_t

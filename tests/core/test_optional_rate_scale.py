"""Tests for the f(W_j, M) multiplier (optional_rate_scale) plumbing.

The paper's Eq. 6 carries an explicit per-page optional-request rate
``f(W_j, M)``; we default it to 1 (folded into ``U'``) but the field is
live — these tests pin down every place it must appear: optional times,
D2, the Eq. 8/9 optional workload terms, and greedy deltas.
"""

import math

import numpy as np
import pytest

from repro.core.allocation import Allocation
from repro.core.constraints import local_processing_load, repository_load
from repro.core.cost_model import CostModel
from repro.core.types import (
    ObjectSpec,
    PageSpec,
    RepositorySpec,
    ServerSpec,
    SystemModel,
)


def _model(scale: float) -> SystemModel:
    server = ServerSpec(
        0, math.inf, math.inf, rate=10.0, overhead=1.0, repo_rate=2.0, repo_overhead=2.0
    )
    page = PageSpec(
        0,
        0,
        100,
        2.0,
        compulsory=(0,),
        optional=(1,),
        optional_prob=0.5,
        optional_rate_scale=scale,
    )
    return SystemModel(
        [server], RepositorySpec(), [page], [ObjectSpec(0, 100), ObjectSpec(1, 50)]
    )


class TestOptionalRateScale:
    def test_optional_time_scales(self):
        base = CostModel(_model(1.0))
        doubled = CostModel(_model(2.0))
        a0 = Allocation(base.model)
        a1 = Allocation(doubled.model)
        assert doubled.optional_times(a1)[0] == pytest.approx(
            2.0 * base.optional_times(a0)[0]
        )

    def test_d2_scales(self):
        base = CostModel(_model(1.0))
        tripled = CostModel(_model(3.0))
        assert tripled.D2(Allocation(tripled.model)) == pytest.approx(
            3.0 * base.D2(Allocation(base.model))
        )

    def test_d1_unchanged(self):
        base = CostModel(_model(1.0))
        tripled = CostModel(_model(3.0))
        assert tripled.D1(Allocation(tripled.model)) == pytest.approx(
            base.D1(Allocation(base.model))
        )

    def test_local_processing_load_scales_optional_term(self):
        m = _model(4.0)
        alloc = Allocation(m)
        alloc.set_opt_local(0, True)
        # load = f*(1 + 0 comp) + f*scale*U' = 2 + 2*4*0.5 = 6
        assert local_processing_load(alloc)[0] == pytest.approx(6.0)

    def test_repository_load_scales_optional_term(self):
        m = _model(4.0)
        alloc = Allocation(m)
        # repo load = f*U_remote + f*scale*U'_remote = 2 + 2*4*0.5 = 6
        assert repository_load(alloc) == pytest.approx(6.0)

    def test_optional_entry_delta_scales(self):
        base = CostModel(_model(1.0))
        doubled = CostModel(_model(2.0))
        assert doubled.optional_entry_delta(0, to_local=True) == pytest.approx(
            2.0 * base.optional_entry_delta(0, to_local=True)
        )

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError, match="optional_rate_scale"):
            PageSpec(0, 0, 100, 1.0, optional_rate_scale=-1.0)

"""Tests for repro.core.constraints — exact Eq. 8-10 arithmetic."""

import math

import numpy as np
import pytest

from repro.baselines.local import LocalPolicy
from repro.baselines.remote import RemotePolicy
from repro.core.allocation import Allocation
from repro.core.constraints import (
    evaluate_constraints,
    html_request_load,
    local_processing_load,
    repository_load,
    repository_load_by_server,
    storage_used,
)
from tests.conftest import build_micro_model


class TestHtmlRequestLoad:
    def test_micro(self, micro_model):
        # server 0: f = 1 + 2 ; server 1: f = 0.5 + 1
        assert html_request_load(micro_model).tolist() == [3.0, 1.5]


class TestLocalProcessingLoad:
    def test_all_remote_is_html_only(self, micro_model):
        load = local_processing_load(RemotePolicy().allocate(micro_model))
        assert load.tolist() == [3.0, 1.5]

    def test_all_local(self, micro_model):
        load = local_processing_load(LocalPolicy().allocate(micro_model))
        # S0: 1*(1+2+0.1) + 2*(1+1) = 7.1 ; S1: 0.5*(1+2+0.2) + 1*(1+3) = 5.6
        assert load[0] == pytest.approx(7.1)
        assert load[1] == pytest.approx(5.6)

    def test_single_mark(self, micro_model):
        a = Allocation(micro_model)
        a.set_comp_local(2, True)  # page 1 (f=2) on server 0
        load = local_processing_load(a)
        assert load[0] == pytest.approx(3.0 + 2.0)


class TestRepositoryLoad:
    def test_all_remote(self, micro_model):
        # sum f_j (U_j + U'_j) = 1*2.1 + 2*1 + 0.5*2.2 + 1*3 = 8.2
        load = repository_load(RemotePolicy().allocate(micro_model))
        assert load == pytest.approx(8.2)

    def test_all_local_zero(self, micro_model):
        assert repository_load(LocalPolicy().allocate(micro_model)) == 0.0

    def test_by_server_sums_to_total(self, micro_model):
        a = RemotePolicy().allocate(micro_model)
        by = repository_load_by_server(a)
        assert by.sum() == pytest.approx(repository_load(a))
        # server 0 pages: 1*(2+0.1) + 2*1 = 4.1
        assert by[0] == pytest.approx(4.1)
        assert by[1] == pytest.approx(4.1)


class TestStorageUsed:
    def test_html_plus_union(self, micro_model):
        a = LocalPolicy().allocate(micro_model)
        used = storage_used(a)
        # S0: 300 html + {0,1,2,4} = 300+650 ; S1: 400 + {0,1,2,3,5} = 400+1060
        assert used.tolist() == [950.0, 1460.0]

    def test_union_not_double_counted(self, micro_model):
        a = Allocation(micro_model)
        a.set_comp_local(5, True)  # page 3, object 0 @ S1
        a.set_comp_local(6, True)  # page 3, object 2 @ S1
        a.set_comp_local(3, True)  # page 2, object 1 @ S1
        # object sharing: page 2 also references object 3 (unmarked)
        used = storage_used(a)
        assert used[1] == pytest.approx(400 + 100 + 300 + 200)

    def test_stored_but_unmarked_counts(self, micro_model):
        a = Allocation(micro_model, replicas=[{3}, set()])
        assert storage_used(a)[0] == pytest.approx(300 + 400)


class TestConstraintReport:
    def test_unconstrained_ok(self, micro_model):
        rep = evaluate_constraints(LocalPolicy().allocate(micro_model))
        assert rep.ok
        assert rep.storage_ok and rep.local_ok and rep.repo_ok

    def test_storage_violation_detected(self):
        m = build_micro_model(storage=(900.0, 500.0))
        rep = evaluate_constraints(LocalPolicy().allocate(m))
        assert not rep.storage_ok
        # all-local needs 950 B at S0 and 1460 B at S1
        assert rep.violated_servers_storage() == [0, 1]
        assert "storage" in rep.summary()

    def test_processing_violation_detected(self):
        m = build_micro_model(processing=(5.0, 100.0))
        rep = evaluate_constraints(LocalPolicy().allocate(m))
        assert not rep.local_ok
        assert rep.violated_servers_processing() == [0]

    def test_repo_violation_detected(self):
        m = build_micro_model(repo_capacity=5.0)
        rep = evaluate_constraints(RemotePolicy().allocate(m))
        assert not rep.repo_ok
        assert rep.repo_slack == pytest.approx(5.0 - 8.2)

    def test_infinite_repo_always_ok(self, micro_model):
        rep = evaluate_constraints(RemotePolicy().allocate(micro_model))
        assert rep.repo_ok
        assert math.isinf(rep.repo_capacity)

    def test_slack_signs(self):
        m = build_micro_model(storage=(2000.0, 2000.0))
        rep = evaluate_constraints(LocalPolicy().allocate(m))
        assert rep.storage_slack[0] == pytest.approx(2000 - 950)
        assert rep.storage_slack[1] == pytest.approx(2000 - 1460)

    def test_summary_mentions_all_families(self, micro_model):
        rep = evaluate_constraints(Allocation(micro_model))
        s = rep.summary()
        assert "storage" in s and "local processing" in s and "repository" in s

"""Tests for repro.core.policy — the end-to-end pipeline."""

import math

import numpy as np
import pytest

from repro.core.cost_model import CostModel
from repro.core.partition import partition_all
from repro.core.policy import RepositoryReplicationPolicy
from tests.conftest import build_micro_model


class TestUnconstrained:
    def test_reduces_to_partition(self, micro_model):
        result = RepositoryReplicationPolicy().run(micro_model)
        assert result.phases_run == ["partition"]
        expected = partition_all(micro_model)
        assert result.allocation == expected
        assert result.objective == pytest.approx(result.unconstrained_objective)

    def test_feasible(self, micro_model):
        assert RepositoryReplicationPolicy().run(micro_model).feasible

    def test_objective_matches_cost_model(self, micro_model):
        result = RepositoryReplicationPolicy().run(micro_model)
        cost = CostModel(micro_model)
        assert result.objective == pytest.approx(cost.D(result.allocation))


class TestConstrainedPhases:
    def test_storage_phase_triggered(self):
        m = build_micro_model(storage=(700.0, 900.0))
        result = RepositoryReplicationPolicy().run(m)
        assert "storage-restoration" in result.phases_run
        assert result.constraints.storage_ok
        assert result.storage_stats.evictions > 0

    def test_processing_phase_triggered(self):
        m = build_micro_model(processing=(5.0, 4.0))
        result = RepositoryReplicationPolicy().run(m)
        assert "processing-restoration" in result.phases_run
        assert result.constraints.local_ok

    def test_offload_phase_triggered(self):
        m = build_micro_model(repo_capacity=1.0)
        result = RepositoryReplicationPolicy(optional_policy="none").run(m)
        assert "off-loading" in result.phases_run
        assert result.offload_outcome is not None
        assert result.constraints.repo_ok

    def test_all_phases(self):
        # partition (optional "none") stores 900 B at S0 (load 7) and
        # 900+400 html B at S1 (load 4.5); tighten all three families
        m = build_micro_model(
            storage=(800.0, 1200.0), processing=(4.0, 2.5), repo_capacity=2.0
        )
        result = RepositoryReplicationPolicy(optional_policy="none").run(m)
        assert result.phases_run[0] == "partition"
        assert "storage-restoration" in result.phases_run
        assert "processing-restoration" in result.phases_run
        assert result.constraints.storage_ok and result.constraints.local_ok

    def test_objective_ordering(self):
        m = build_micro_model(storage=(800.0, 1000.0))
        result = RepositoryReplicationPolicy().run(m)
        assert result.objective >= result.unconstrained_objective - 1e-9


class TestConfiguration:
    def test_optional_policy_none(self, micro_model):
        result = RepositoryReplicationPolicy(optional_policy="none").run(
            micro_model
        )
        assert not result.allocation.opt_local.any()

    def test_alpha_weights_change_objective(self, micro_model):
        r1 = RepositoryReplicationPolicy(alpha1=1.0, alpha2=1.0).run(micro_model)
        r2 = RepositoryReplicationPolicy(alpha1=5.0, alpha2=1.0).run(micro_model)
        assert r2.objective > r1.objective  # D1 weighted heavier

    def test_summary_string(self):
        m = build_micro_model(storage=(700.0, 900.0))
        s = RepositoryReplicationPolicy().run(m).summary()
        assert "D =" in s
        assert "evictions" in s

    def test_cost_model_accessor(self, micro_model):
        policy = RepositoryReplicationPolicy(alpha1=3.0, alpha2=2.0)
        cost = policy.cost_model(micro_model)
        assert cost.alpha1 == 3.0 and cost.alpha2 == 2.0


class TestOnGenerated:
    def test_small_constrained_run_feasible(self, small_model):
        from repro.experiments.scaling import (
            clone_with_capacities,
            processing_capacities_for_fraction,
            storage_capacities_for_fraction,
        )

        ref = partition_all(small_model)
        clone = clone_with_capacities(
            small_model,
            storage=storage_capacities_for_fraction(small_model, ref, 0.6),
            processing=processing_capacities_for_fraction(small_model, 0.7),
        )
        result = RepositoryReplicationPolicy().run(clone)
        assert result.feasible
        result.allocation.check_invariants()

    def test_deterministic(self, tiny_model):
        a = RepositoryReplicationPolicy().run(tiny_model)
        b = RepositoryReplicationPolicy().run(tiny_model)
        assert a.allocation == b.allocation
        assert a.objective == b.objective

"""Shared fixtures.

Three tiers of models:

* ``micro_model`` — a hand-built 2-server universe with round numbers,
  used wherever a test asserts *exact* cost-model values against
  hand-computed Eq. 3-10 arithmetic.
* ``tiny_model`` — generated :meth:`WorkloadParams.tiny` (2 servers,
  ~12 pages), cheap enough for per-test mutation.
* ``small_model`` / ``small_trace`` — generated
  :meth:`WorkloadParams.small`, session-scoped, for integration tests.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.cost_model import CostModel
from repro.core.types import (
    ObjectSpec,
    PageSpec,
    RepositorySpec,
    ServerSpec,
    SystemModel,
)
from repro.workload.generator import generate_workload
from repro.workload.params import WorkloadParams
from repro.workload.trace import generate_trace


def build_micro_model(
    storage: tuple[float, float] = (math.inf, math.inf),
    processing: tuple[float, float] = (math.inf, math.inf),
    repo_capacity: float = math.inf,
) -> SystemModel:
    """Two servers, four pages, six objects — all sizes round numbers.

    Server 0: rate 10 B/s (spb 0.1), overhead 1 s, repo rate 2 B/s
    (spb 0.5), repo overhead 2 s.
    Server 1: rate 5 B/s, overhead 1.5 s, repo rate 1 B/s, repo
    overhead 2.5 s.

    Objects: sizes 100, 200, 300, 400, 50, 60 bytes.

    Pages (html size, freq, compulsory, optional):
      0 @S0: (100, 1.0, [0, 1], [4])   optional_prob 0.1
      1 @S0: (200, 2.0, [2], [])
      2 @S1: (100, 0.5, [1, 3], [5])   optional_prob 0.2
      3 @S1: (300, 1.0, [0, 2, 3], [])
    """
    servers = [
        ServerSpec(
            server_id=0,
            storage_capacity=storage[0],
            processing_capacity=processing[0],
            rate=10.0,
            overhead=1.0,
            repo_rate=2.0,
            repo_overhead=2.0,
            name="s0",
        ),
        ServerSpec(
            server_id=1,
            storage_capacity=storage[1],
            processing_capacity=processing[1],
            rate=5.0,
            overhead=1.5,
            repo_rate=1.0,
            repo_overhead=2.5,
            name="s1",
        ),
    ]
    objects = [
        ObjectSpec(object_id=k, size=s)
        for k, s in enumerate([100, 200, 300, 400, 50, 60])
    ]
    pages = [
        PageSpec(
            page_id=0,
            server=0,
            html_size=100,
            frequency=1.0,
            compulsory=(0, 1),
            optional=(4,),
            optional_prob=0.1,
        ),
        PageSpec(
            page_id=1,
            server=0,
            html_size=200,
            frequency=2.0,
            compulsory=(2,),
        ),
        PageSpec(
            page_id=2,
            server=1,
            html_size=100,
            frequency=0.5,
            compulsory=(1, 3),
            optional=(5,),
            optional_prob=0.2,
        ),
        PageSpec(
            page_id=3,
            server=1,
            html_size=300,
            frequency=1.0,
            compulsory=(0, 2, 3),
        ),
    ]
    return SystemModel(servers, RepositorySpec(repo_capacity), pages, objects)


@pytest.fixture
def micro_model() -> SystemModel:
    return build_micro_model()


@pytest.fixture
def micro_cost(micro_model: SystemModel) -> CostModel:
    return CostModel(micro_model, alpha1=2.0, alpha2=1.0)


@pytest.fixture
def tiny_params() -> WorkloadParams:
    return WorkloadParams.tiny()


@pytest.fixture
def tiny_model(tiny_params: WorkloadParams) -> SystemModel:
    return generate_workload(tiny_params, seed=5)


@pytest.fixture(scope="session")
def small_params() -> WorkloadParams:
    return WorkloadParams.small()


@pytest.fixture(scope="session")
def small_model(small_params: WorkloadParams) -> SystemModel:
    return generate_workload(small_params, seed=7)


@pytest.fixture(scope="session")
def small_trace(small_model, small_params):
    return generate_trace(small_model, small_params, seed=1)

"""Smoke tests: every example script runs green and prints its story.

Examples are documentation that executes; a broken example is a broken
promise to the first user.  Each runs in a subprocess exactly as the
README instructs.
"""

import pathlib
import subprocess
import sys

import pytest

pytestmark = pytest.mark.slow  # full-figure / subprocess suites; excluded by -m "not slow"

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

CASES = [
    ("quickstart.py", ["policy run:", "vs proposed"]),
    ("news_agency.py", ["Replica sets", "Reference database"]),
    ("capacity_planning.py", ["storage budget", "Smallest storage"]),
    ("distributed_offloading.py", ["allocations identical: True", "wire traffic"]),
    ("policy_comparison.py", ["perturbation regime", "proposed"]),
    ("breaking_news.py", ["oracle", "staleness"]),
    ("estimation_error.py", ["observation window", "oracle"]),
    ("log_import.py", ["parsed", "switchover cost"]),
]


@pytest.mark.parametrize("script,expected", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, expected):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    for token in expected:
        assert token in result.stdout, (
            f"{script}: expected {token!r} in output\n{result.stdout[-2000:]}"
        )


def test_all_examples_covered():
    """Every example script on disk has a smoke test."""
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    tested = {c[0] for c in CASES}
    assert on_disk == tested

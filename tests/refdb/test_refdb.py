"""Tests for repro.refdb — documents, parsing, URL rewriting."""

import re

import numpy as np
import pytest

from repro.core.partition import partition_all
from repro.refdb import (
    LOCAL_BASE,
    REPO_BASE,
    ReferenceDatabase,
    render_html,
)
from repro.refdb.documents import object_url


class TestRenderHtml:
    def test_size_matches_model_when_achievable(self, tiny_model):
        # micro-model pages are smaller than the markup skeleton (the
        # documented unpadded fallback); generated pages are >= 1 KB and
        # must match Size(H_j) exactly
        for j in range(tiny_model.n_pages):
            doc = render_html(tiny_model, j)
            assert len(doc) == tiny_model.pages[j].html_size

    def test_contains_all_urls(self, micro_model):
        doc = render_html(micro_model, 0)
        page = micro_model.pages[0]
        for k in page.compulsory + page.optional:
            assert object_url(k) in doc

    def test_compulsory_as_img_optional_as_link(self, micro_model):
        doc = render_html(micro_model, 0)
        assert f'<img src="{object_url(0)}"' in doc
        assert f'<a href="{object_url(4)}"' in doc

    def test_deterministic(self, micro_model):
        assert render_html(micro_model, 2) == render_html(micro_model, 2)

    def test_generated_pages(self, tiny_model):
        for j in range(tiny_model.n_pages):
            doc = render_html(tiny_model, j)
            assert len(doc) == tiny_model.pages[j].html_size


class TestIndexing:
    def test_entry_count(self, micro_model):
        db = ReferenceDatabase.build(micro_model)
        page = micro_model.pages[0]
        assert len(db.entries(0)) == page.n_compulsory + page.n_optional

    def test_spans_point_at_urls(self, micro_model):
        db = ReferenceDatabase.build(micro_model)
        doc = db.document(0)
        for e in db.entries(0):
            assert doc[e.start : e.end] == object_url(e.object_id)

    def test_kinds(self, micro_model):
        db = ReferenceDatabase.build(micro_model)
        kinds = {e.object_id: e.kind for e in db.entries(0)}
        assert kinds[0] == "compulsory" and kinds[1] == "compulsory"
        assert kinds[4] == "optional"

    def test_undeclared_object_rejected(self, micro_model):
        db = ReferenceDatabase(micro_model)
        rogue = f'<img src="{object_url(3)}">'  # page 0 does not use M_3
        with pytest.raises(ValueError, match="does not declare"):
            db.index_page(0, document=rogue)

    def test_reindex_updated_document(self, micro_model):
        db = ReferenceDatabase.build(micro_model)
        updated = f'<html><img src="{object_url(0)}"></html>'
        db.index_page(0, document=updated)
        assert len(db.entries(0)) == 1
        assert db.document(0) == updated


class TestServe:
    def test_local_marks_rewritten(self, micro_model):
        db = ReferenceDatabase.build(micro_model)
        alloc = partition_all(micro_model)
        served = db.serve(0, alloc)
        page = micro_model.pages[0]
        local_base = LOCAL_BASE.format(server_id=page.server)
        marks = dict(zip(page.compulsory, alloc.page_comp_marks(0)))
        for k, local in marks.items():
            if local:
                assert object_url(k, local_base) in served
                assert object_url(k) not in served or served.count(
                    object_url(k)
                ) < db.document(0).count(object_url(k))
            else:
                assert object_url(k) in served

    def test_remote_allocation_serves_original(self, micro_model):
        from repro.baselines.remote import RemotePolicy

        db = ReferenceDatabase.build(micro_model)
        served = db.serve(0, RemotePolicy().allocate(micro_model))
        assert served == db.document(0)

    def test_local_allocation_rewrites_everything(self, micro_model):
        from repro.baselines.local import LocalPolicy

        db = ReferenceDatabase.build(micro_model)
        served = db.serve(0, LocalPolicy().allocate(micro_model))
        assert REPO_BASE not in served

    def test_length_preserved(self, micro_model):
        """Local and repository URLs are equal-length by construction,
        so rewriting never changes Size(H_j)... unless server ids grow
        digits — assert the invariant that matters: non-URL bytes are
        untouched."""
        from repro.baselines.local import LocalPolicy

        db = ReferenceDatabase.build(micro_model)
        original = db.document(0)
        served = db.serve(0, LocalPolicy().allocate(micro_model))
        stripped_o = re.sub(r"http://\S+?\.bin", "URL", original)
        stripped_s = re.sub(r"http://\S+?\.bin", "URL", served)
        assert stripped_o == stripped_s

    def test_split_matches_marks(self, micro_model):
        db = ReferenceDatabase.build(micro_model)
        alloc = partition_all(micro_model)
        local, remote = db.split_for(3, alloc)
        assert set(local) == {2, 3}
        assert set(remote) == {0}

    def test_model_mismatch_rejected(self, micro_model, tiny_model):
        db = ReferenceDatabase.build(micro_model)
        with pytest.raises(ValueError, match="share the model"):
            db.serve(0, partition_all(tiny_model))

    def test_serve_counter(self, micro_model):
        db = ReferenceDatabase.build(micro_model)
        alloc = partition_all(micro_model)
        db.serve(0, alloc)
        db.serve(1, alloc)
        assert db.rewrites_served == 2

    def test_served_consistent_with_simulator_masks(self, tiny_model):
        """The HTML split and the simulator's mask split agree page-wise."""
        db = ReferenceDatabase.build(tiny_model)
        alloc = partition_all(tiny_model)
        for j in range(tiny_model.n_pages):
            local, remote = db.split_for(j, alloc)
            marks = alloc.page_comp_marks(j)
            page = tiny_model.pages[j]
            assert local == [k for k, m in zip(page.compulsory, marks) if m]
            assert remote == [
                k for k, m in zip(page.compulsory, marks) if not m
            ]

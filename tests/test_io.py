"""Tests for repro.io — model/trace persistence."""

import numpy as np
import pytest

from repro.core.cost_model import CostModel
from repro.core.partition import partition_all
from repro.io import load_model, load_trace, save_model, save_trace
from repro.workload.generator import generate_workload
from repro.workload.params import WorkloadParams
from repro.workload.trace import generate_trace


class TestModelRoundTrip:
    def test_micro(self, micro_model, tmp_path):
        path = tmp_path / "m.json"
        save_model(micro_model, path)
        back = load_model(path)
        assert back.n_pages == micro_model.n_pages
        assert np.array_equal(back.sizes, micro_model.sizes)
        assert np.array_equal(back.frequencies, micro_model.frequencies)
        assert np.array_equal(back.comp_objects, micro_model.comp_objects)
        assert np.array_equal(back.server_rate, micro_model.server_rate)

    def test_infinite_capacities_survive(self, micro_model, tmp_path):
        path = tmp_path / "m.json"
        save_model(micro_model, path)
        back = load_model(path)
        assert np.all(np.isinf(back.server_storage))
        assert np.isinf(back.repository.processing_capacity)

    def test_generated_round_trip_same_allocation(self, tmp_path):
        model = generate_workload(WorkloadParams.tiny(), seed=3)
        path = tmp_path / "gen.json"
        save_model(model, path)
        back = load_model(path)
        a = partition_all(model)
        b = partition_all(back)
        assert np.array_equal(a.comp_local, b.comp_local)
        assert CostModel(model).D(a) == pytest.approx(CostModel(back).D(b))

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError, match="format"):
            load_model(path)

    def test_names_preserved(self, micro_model, tmp_path):
        path = tmp_path / "m.json"
        save_model(micro_model, path)
        back = load_model(path)
        assert back.servers[0].name == "s0"


class TestTraceRoundTrip:
    def test_round_trip(self, micro_model, tmp_path):
        params = WorkloadParams.tiny()
        trace = generate_trace(micro_model, params, seed=1, requests_per_server=50)
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        back = load_trace(path, micro_model)
        assert np.array_equal(back.page_of_request, trace.page_of_request)
        assert np.array_equal(back.opt_entries, trace.opt_entries)
        assert np.array_equal(back.opt_owner, trace.opt_owner)

    def test_wrong_model_rejected(self, micro_model, tiny_model, tmp_path):
        params = WorkloadParams.tiny()
        trace = generate_trace(micro_model, params, seed=1, requests_per_server=20)
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        with pytest.raises(ValueError, match="different model"):
            load_trace(path, tiny_model)

    def test_saved_model_plus_trace_pipeline(self, tmp_path):
        """Full reproducibility loop: save, reload, simulate — identical."""
        from repro.simulation.engine import simulate_allocation

        params = WorkloadParams.tiny()
        model = generate_workload(params, seed=6)
        trace = generate_trace(model, params, seed=7, requests_per_server=100)
        save_model(model, tmp_path / "m.json")
        save_trace(trace, tmp_path / "t.npz")

        model2 = load_model(tmp_path / "m.json")
        trace2 = load_trace(tmp_path / "t.npz", model2)
        a = simulate_allocation(partition_all(model), trace, seed=8)
        b = simulate_allocation(partition_all(model2), trace2, seed=8)
        assert np.allclose(a.page_times, b.page_times)

#!/usr/bin/env python
"""Merge per-scale bench timing JSONs into one ``BENCH_trajectory.json``.

The kernel benches persist machine-readable timings under
``benchmarks/out/<scale>/BENCH_<name>.json`` (see the ``save_timings``
fixture in ``benchmarks/conftest.py``) — one file per bench per scale,
each stamped with the git revision that produced it.  Diffing the
performance trajectory across PRs therefore means opening a dozen files
per scale.  This script collects them into a single top-level document::

    {
      "generated_from": ["benchmarks/out/small/BENCH_policy_end_to_end.json", ...],
      "scales": {
        "small": {
          "policy_end_to_end": {"git_sha": ..., "headline": {...}},
          ...
        }
      }
    }

Per bench, the full payload is kept under ``"raw"`` and the
scalar-valued summary fields (medians, speedups, counts — anything
numeric or string at the top level of the payload) are duplicated under
``"headline"``, so ``git diff BENCH_trajectory.json`` shows the numbers
that move without the per-repeat noise arrays.

Usage::

    python scripts/collect_bench.py            # writes BENCH_trajectory.json
    python scripts/collect_bench.py --check    # exit 1 if the file is stale
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT_DIR = REPO_ROOT / "benchmarks" / "out"
TRAJECTORY = REPO_ROOT / "BENCH_trajectory.json"

#: Per-repeat sample arrays — kept in ``raw``, excluded from the
#: ``headline`` summary so the trajectory diff tracks medians, not noise.
_NOISE_SUFFIXES = ("_seconds", "_samples", "_times")


def _headline(payload: dict) -> dict:
    """Scalar summary of one bench payload (see module docstring)."""
    out: dict = {}
    for key, value in sorted(payload.items()):
        if key in ("bench", "git_sha") or key.endswith(_NOISE_SUFFIXES):
            continue
        if isinstance(value, (int, float, str, bool)) or value is None:
            out[key] = value
    return out


def collect(out_dir: pathlib.Path = OUT_DIR, strict: bool = False) -> dict:
    """Gather every ``BENCH_*.json`` under ``out_dir`` into one document.

    ``strict`` turns a malformed timing file from a skip-with-warning
    into a hard :class:`ValueError` — the ``--check`` CI mode uses it so
    a truncated or hand-mangled bench record fails the gate instead of
    silently dropping out of the trajectory.
    """
    sources: list[str] = []
    scales: dict[str, dict] = {}
    for path in sorted(out_dir.glob("*/BENCH_*.json")):
        scale = path.parent.name
        name = path.stem.removeprefix("BENCH_")
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            if strict:
                raise ValueError(
                    f"malformed bench record {path}: {exc}"
                ) from exc
            print(f"collect_bench: skipping malformed {path}: {exc}",
                  file=sys.stderr)
            continue
        if not isinstance(payload, dict):
            if strict:
                raise ValueError(
                    f"malformed bench record {path}: expected a JSON "
                    f"object, got {type(payload).__name__}"
                )
            print(f"collect_bench: skipping malformed {path}: not an object",
                  file=sys.stderr)
            continue
        sources.append(str(path.relative_to(REPO_ROOT)))
        scales.setdefault(scale, {})[name] = {
            "git_sha": payload.get("git_sha"),
            "headline": _headline(payload),
            "raw": payload,
        }
    return {"generated_from": sources, "scales": scales}


def render(doc: dict) -> str:
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify BENCH_trajectory.json matches benchmarks/out "
        "without rewriting it (exit 1 when stale)",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=TRAJECTORY,
        help=f"output path (default: {TRAJECTORY.name} at the repo root)",
    )
    args = parser.parse_args(argv)

    if args.check:
        try:
            text = render(collect(strict=True))
        except ValueError as exc:
            print(f"collect_bench: {exc}", file=sys.stderr)
            return 1
        current = args.out.read_text() if args.out.exists() else ""
        if current != text:
            print(
                f"collect_bench: {args.out.name} is stale — "
                "re-run scripts/collect_bench.py",
                file=sys.stderr,
            )
            return 1
        print(f"collect_bench: {args.out.name} is up to date")
        return 0
    text = render(collect())
    args.out.write_text(text)
    n_benches = sum(len(v) for v in collect()["scales"].values())
    print(f"collect_bench: wrote {args.out} ({n_benches} bench entries)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

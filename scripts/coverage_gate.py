#!/usr/bin/env python
"""Coverage gate: fail the build if line coverage drops below the floor.

Runs ``pytest --cov=repro --cov-fail-under=<floor>`` with the floor taken
from ``[tool.coverage.report] fail_under`` in ``pyproject.toml`` (the
seed's measured line-coverage floor — raise it when coverage legitimately
rises, never lower it to make a PR pass).

Usage:

    python scripts/coverage_gate.py            # full suite + coverage
    python scripts/coverage_gate.py --fast     # -m "not slow" split
    python scripts/coverage_gate.py --strict   # missing pytest-cov fails

``pytest-cov`` is an optional dev dependency (``pip install -e .[dev]``).
When it is absent — e.g. in the minimal runtime container — the gate
SKIPS with exit code 0 (or fails with exit code 3 under ``--strict``)
instead of crashing, so the functional suite can still run everywhere.

Under ``--fast`` the gate additionally runs a **parallel smoke job**: the
executor test file once more with ``REPRO_JOBS=2`` at tiny scale (and
``-p no:cacheprovider``, so two concurrent pytest processes can never
race on ``.pytest_cache``), proving the multi-process path works in the
gate environment and not just on developer machines — followed by a
**sharded-kernel smoke**: tiny-scale CLI ``analyze`` runs with
``REPRO_KERNEL=sharded REPRO_SHARDS=2`` — once with the default
transport and once with ``REPRO_SHM=0`` — exercising both the
shared-memory and the pickle-fallback fork → ship → reconcile paths end
to end — a **delta-rounds smoke** plus a **forced-resync smoke**: the
off-loading scatter identity tests re-run with ``REPRO_SHM=0`` and with
``REPRO_OFFLOAD_RESYNC_EVERY=1``, covering the worker-resident delta
protocol's pickle transport and its epoch-mismatch recovery path — and a
a **mesh smoke**: one tiny-scale CLI ``analyze`` run with
``--streams 3``, exercising the k-stream argmin-over-k engine beyond
the degenerate k=2 topology — and a
**dynamic smoke**: one small-scale CLI ``dynamic`` run with the
``incremental`` strategy, exercising the incremental re-replication
engine (dirty-set detection, frequency-context adoption, localized
repair) end to end.
"""

from __future__ import annotations

import importlib.util
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def main(argv: list[str]) -> int:
    strict = "--strict" in argv
    fast = "--fast" in argv
    # Static layering lint first: an import-layer break fails the build
    # before any test runs (it is milliseconds, and a violation would
    # invalidate the coverage attribution below anyway).
    lint = [sys.executable, str(REPO_ROOT / "scripts" / "check_layering.py")]
    print("layering check:", " ".join(lint))
    code = subprocess.call(lint, cwd=REPO_ROOT)
    if code != 0:
        return code
    # Bench-record check next (also milliseconds): a stale or malformed
    # BENCH_trajectory.json fails the gate before the test run, so bench
    # refreshes can never be forgotten silently.
    bench_check = [
        sys.executable,
        str(REPO_ROOT / "scripts" / "collect_bench.py"),
        "--check",
    ]
    print("bench-record check:", " ".join(bench_check))
    code = subprocess.call(bench_check, cwd=REPO_ROOT)
    if code != 0:
        return code
    if importlib.util.find_spec("pytest_cov") is None:
        msg = (
            "coverage gate: pytest-cov is not installed "
            "(pip install -e .[dev]); "
        )
        if strict:
            print(msg + "failing (--strict).", file=sys.stderr)
            return 3
        print(msg + "skipping gate, running plain test suite instead.")
        cmd = [sys.executable, "-m", "pytest", "-q"]
    else:
        # --cov-fail-under is left to [tool.coverage.report] fail_under.
        # repro.obs, the experiment executor/cache modules, and the
        # batched kernels are named explicitly so the observability,
        # parallelism, and performance layers stay in the measured set
        # even if the source tree is ever split.
        cmd = [
            sys.executable,
            "-m",
            "pytest",
            "-q",
            "--cov=repro",
            "--cov=repro.obs",
            "--cov=repro.experiments.executor",
            "--cov=repro.experiments.cache",
            "--cov=repro.core.fast_partition",
            "--cov=repro.core.fast_restoration",
            "--cov=repro.core.context",
            "--cov=repro.core.shard",
            "--cov=repro.core.shm",
            "--cov=repro.dynamic.incremental",
            "--cov=repro.baselines.closest",
            "--cov=repro.experiments.extension_streams",
        ]
    if fast:
        cmd += ["-m", "not slow"]
    env_src = str(REPO_ROOT / "src")
    import os

    env = dict(os.environ)
    env["PYTHONPATH"] = env_src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    print("coverage gate:", " ".join(cmd))
    code = subprocess.call(cmd, cwd=REPO_ROOT, env=env)
    if code != 0 or not fast:
        return code

    # Parallel smoke: the executor determinism tests once more with the
    # multi-process path forced on via the environment.  No coverage
    # (subprocess coverage needs extra wiring) and no pytest cache, so
    # this job can never interfere with the main run's artifacts.
    smoke = [
        sys.executable,
        "-m",
        "pytest",
        "-q",
        "-p",
        "no:cacheprovider",
        "tests/experiments/test_executor.py",
    ]
    smoke_env = dict(env)
    smoke_env.update(
        REPRO_JOBS="2", REPRO_BENCH_SCALE="tiny", REPRO_BENCH_RUNS="2"
    )
    print("parallel smoke:", " ".join(smoke), "(REPRO_JOBS=2)")
    code = subprocess.call(smoke, cwd=REPO_ROOT, env=smoke_env)
    if code != 0:
        return code

    # Sharded-kernel smoke: one end-to-end CLI run with the process-
    # parallel policy kernel forced on via the environment, proving the
    # fork → pickle → reconcile path works in the gate environment.
    shard_smoke = [
        sys.executable,
        "-m",
        "repro",
        "--scale",
        "tiny",
        "analyze",
    ]
    shard_env = dict(env)
    shard_env.update(REPRO_KERNEL="sharded", REPRO_SHARDS="2")
    print("sharded smoke:", " ".join(shard_smoke), "(REPRO_KERNEL=sharded)")
    code = subprocess.call(shard_smoke, cwd=REPO_ROOT, env=shard_env)
    if code != 0:
        return code

    # The same sharded run with shared-memory transport forced OFF,
    # proving the pickle fallback stays healthy on platforms without
    # usable /dev/shm (the bug class this guards against: a change that
    # only works when ShmArena is available).
    shm_off_env = dict(shard_env)
    shm_off_env.update(REPRO_SHM="0")
    print(
        "sharded smoke:", " ".join(shard_smoke),
        "(REPRO_KERNEL=sharded REPRO_SHM=0)",
    )
    code = subprocess.call(shard_smoke, cwd=REPO_ROOT, env=shm_off_env)
    if code != 0:
        return code

    # Delta-rounds smoke: the off-loading scatter identity tests with
    # shared memory forced OFF, driving the worker-resident delta-round
    # protocol (batched absorptions, epoch bookkeeping) through a real
    # process pool over the pickle transport.
    delta_smoke = [
        sys.executable,
        "-m",
        "pytest",
        "-q",
        "-p",
        "no:cacheprovider",
        "tests/core/test_shard_reconcile.py",
        "-k",
        "scatter or delta",
    ]
    delta_env = dict(env)
    delta_env.update(REPRO_SHM="0")
    print("delta-rounds smoke:", " ".join(delta_smoke), "(REPRO_SHM=0)")
    code = subprocess.call(delta_smoke, cwd=REPO_ROOT, env=delta_env)
    if code != 0:
        return code

    # Forced-resync smoke: the same scatter tests with a full epoch
    # resync forced on every batch, proving the mismatch-recovery path
    # (full state re-ship, frontier reads when shm is on) stays
    # bit-identical — not just the steady-state fast path.
    resync_env = dict(env)
    resync_env.update(REPRO_OFFLOAD_RESYNC_EVERY="1")
    print(
        "forced-resync smoke:", " ".join(delta_smoke),
        "(REPRO_OFFLOAD_RESYNC_EVERY=1)",
    )
    code = subprocess.call(delta_smoke, cwd=REPO_ROOT, env=resync_env)
    if code != 0:
        return code

    # Mesh smoke: one end-to-end CLI run over a 3-stream replica mesh,
    # proving the argmin-over-k engine (k-way PARTITION, stream-aware
    # restoration, Eq. 8-10 reporting) works in the gate environment
    # beyond the degenerate k=2 topology.
    mesh_smoke = [
        sys.executable,
        "-m",
        "repro",
        "--scale",
        "tiny",
        "--streams",
        "3",
        "analyze",
    ]
    print("mesh smoke:", " ".join(mesh_smoke), "(--streams 3)")
    code = subprocess.call(mesh_smoke, cwd=REPO_ROOT, env=env)
    if code != 0:
        return code

    # Dynamic smoke: the incremental re-replication strategy end to end
    # through the CLI (dirty-set detection, frequency-context adoption,
    # localized repair), at small scale with a short trace.
    dyn_smoke = [
        sys.executable,
        "-m",
        "repro",
        "--scale",
        "small",
        "--requests",
        "200",
        "dynamic",
        "--epochs",
        "3",
        "--strategies",
        "static,incremental",
    ]
    print("dynamic smoke:", " ".join(dyn_smoke))
    return subprocess.call(dyn_smoke, cwd=REPO_ROOT, env=env)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

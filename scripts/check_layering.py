#!/usr/bin/env python
"""Import-layering lint: keep the dependency DAG of ``src/repro`` acyclic.

The package is layered (ROADMAP/DESIGN): ``util`` and ``obs`` at the
bottom, ``core`` above them, and the orchestration layers
(``simulation``, ``baselines``, ``dynamic``, ``experiments``,
``analysis``) on top.  Two rules keep the shared-state work of the
EvalContext refactor honest:

* ``repro.core`` must never import the layers above it —
  ``experiments``, ``simulation``, ``baselines``, ``dynamic``,
  ``analysis`` — so the kernels and the evaluation context stay usable
  from any orchestrator (and from the executor's worker processes)
  without dragging the experiment stack in;
* ``repro.obs`` imports nothing above ``util`` — observability must be
  embeddable everywhere, so it can depend on nothing that depends on it.

On top of the layer rules, ``MODULE_FORBIDDEN`` pins *module-specific*
contracts with their rationale: ``core/shard.py`` fans work out to
processes but must receive its pool **by injection** (the ``ShardPool``
protocol) — importing ``repro.experiments`` (e.g. the executor's
persistent pool) from there would invert the layering that lets the
sharded kernel run inside executor workers in the first place.

The check is purely static (``ast`` parse, no imports executed), walks
every module including function-local imports, and prints each
violation as ``file:line: <importing layer> imports <forbidden>``.

Usage::

    python scripts/check_layering.py        # exit 0 clean, 1 violations

Run alongside ``scripts/coverage_gate.py`` (the gate invokes this first;
a layering break fails the build before any test runs).
"""

from __future__ import annotations

import ast
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
PACKAGE_ROOT = REPO_ROOT / "src" / "repro"

#: layer -> subpackages it must never import (directly or via
#: ``from repro.<x> import ...`` anywhere in the module, including
#: function bodies).
FORBIDDEN: dict[str, frozenset[str]] = {
    "core": frozenset(
        {"experiments", "simulation", "baselines", "dynamic", "analysis"}
    ),
    # obs may import only util below itself (and itself).
    "obs": frozenset(
        {
            "analysis",
            "baselines",
            "cli",
            "core",
            "dynamic",
            "experiments",
            "io",
            "network",
            "refdb",
            "simulation",
            "workload",
        }
    ),
}


#: module (path relative to src/repro) -> (forbidden subpackages, why).
#: These refine the layer rules with a per-file contract and a message
#: explaining the sanctioned alternative.
MODULE_FORBIDDEN: dict[str, tuple[frozenset[str], str]] = {
    "core/shard.py": (
        frozenset(
            {"experiments", "analysis", "cli", "network", "simulation"}
        ),
        "the sharded kernel must take its worker pool by injection "
        "(ShardPool protocol) — pass experiments.executor."
        "persistent_pool(n) in from above, never import it here — and "
        "its delta-round wire helpers (_absorb_shard_batch, "
        "_ShardedScatter, the resident-shard store) must stay below "
        "experiments/cli/network so pool workers import nothing above "
        "core when they unpickle a batch",
    ),
    "core/shm.py": (
        frozenset(
            {
                "analysis",
                "baselines",
                "cli",
                "core",
                "dynamic",
                "experiments",
                "io",
                "network",
                "obs",
                "refdb",
                "simulation",
                "workload",
            }
        ),
        "the shared-memory arena sits below the core layer proper — it "
        "imports nothing above util, so any layer (including future "
        "non-core pools) can use it without dragging the kernels in",
    ),
    "core/types.py": (
        frozenset(
            {
                "analysis",
                "baselines",
                "cli",
                "dynamic",
                "experiments",
                "network",
                "simulation",
                "workload",
            }
        ),
        "StreamTopology/resolve_streams are consumed by the workload "
        "generator, the CLI, and every layer above — the foundation "
        "module must stay import-free of them all (notably "
        "repro.workload, which the core-layer rule alone does not "
        "forbid), or replica-mesh scenario plumbing would cycle back "
        "into the type definitions it is built from",
    ),
    "core/context.py": (
        frozenset({"dynamic", "experiments"}),
        "the frequency-clone adoption hook (adopt_frequency_context) is "
        "called *from* repro.dynamic.drift — the dependency must point "
        "down only, or the incremental re-planner would drag the "
        "dynamic/experiment stack into every kernel import",
    ),
}


def _layer_of(path: pathlib.Path) -> str:
    """The top-level subpackage (or module stem) a file belongs to."""
    rel = path.relative_to(PACKAGE_ROOT)
    return rel.parts[0] if len(rel.parts) > 1 else rel.stem


def _imported_subpackages(tree: ast.AST):
    """Yield ``(lineno, subpackage)`` for every ``repro.*`` import."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                parts = alias.name.split(".")
                if parts[0] == "repro" and len(parts) > 1:
                    yield node.lineno, parts[1]
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            parts = (node.module or "").split(".")
            if parts[0] == "repro":
                if len(parts) > 1:
                    yield node.lineno, parts[1]
                else:
                    # ``from repro import X``: the imported names are
                    # the subpackages being depended on.
                    for alias in node.names:
                        yield node.lineno, alias.name


def check() -> list[str]:
    """All layering violations in the tree, as printable strings."""
    violations = []
    for path in sorted(PACKAGE_ROOT.rglob("*.py")):
        layer = _layer_of(path)
        forbidden = FORBIDDEN.get(layer, frozenset())
        module_key = path.relative_to(PACKAGE_ROOT).as_posix()
        module_forbidden, module_why = MODULE_FORBIDDEN.get(
            module_key, (frozenset(), "")
        )
        if not forbidden and not module_forbidden:
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        for lineno, target in _imported_subpackages(tree):
            rel = path.relative_to(REPO_ROOT)
            if target in module_forbidden:
                violations.append(
                    f"{rel}:{lineno}: {module_key} imports repro.{target} "
                    f"({module_why})"
                )
            elif target in forbidden:
                violations.append(
                    f"{rel}:{lineno}: repro.{layer} imports repro.{target}"
                )
    return violations


def main() -> int:
    violations = check()
    if violations:
        print("import layering violations:", file=sys.stderr)
        for v in violations:
            print(f"  {v}", file=sys.stderr)
        return 1
    n = len(FORBIDDEN)
    m = len(MODULE_FORBIDDEN)
    print(
        f"layering check: OK ({n} constrained layers, "
        f"{m} module rules, no violations)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Persistence: save/load system models and request traces.

Models serialise to JSON (they are small: specs + reference lists);
traces serialise to ``.npz`` (they are large flat arrays).  Both formats
are versioned so files survive library evolution, and loading validates
through the normal constructors — a corrupted file fails loudly, not
with NaNs downstream.

Typical uses: pinning a generated workload for cross-machine
reproducibility, or handing a colleague the exact universe behind a
plot.
"""

from __future__ import annotations

import json
import math
import pathlib
from typing import Any

import numpy as np

from repro.core.types import (
    ObjectSpec,
    PageSpec,
    RepositorySpec,
    ServerSpec,
    SystemModel,
)
from repro.workload.trace import RequestTrace

__all__ = ["save_model", "load_model", "save_trace", "load_trace"]

_MODEL_FORMAT = "repro-model-v1"
_TRACE_FORMAT = "repro-trace-v1"


def _enc_float(x: float) -> Any:
    """JSON has no Infinity; encode it portably."""
    if math.isinf(x):
        return "inf"
    return x


def _dec_float(x: Any) -> float:
    if x == "inf":
        return math.inf
    return float(x)


def save_model(model: SystemModel, path: str | pathlib.Path) -> None:
    """Write ``model`` to ``path`` as versioned JSON."""
    doc = {
        "format": _MODEL_FORMAT,
        "repository": {
            "processing_capacity": _enc_float(
                model.repository.processing_capacity
            )
        },
        "servers": [
            {
                "server_id": s.server_id,
                "name": s.name,
                "storage_capacity": _enc_float(s.storage_capacity),
                "processing_capacity": _enc_float(s.processing_capacity),
                "rate": s.rate,
                "overhead": s.overhead,
                "repo_rate": s.repo_rate,
                "repo_overhead": s.repo_overhead,
            }
            for s in model.servers
        ],
        "objects": [o.size for o in model.objects],
        "pages": [
            {
                "server": p.server,
                "html_size": p.html_size,
                "frequency": p.frequency,
                "compulsory": list(p.compulsory),
                "optional": list(p.optional),
                "optional_prob": p.optional_prob,
                "optional_rate_scale": p.optional_rate_scale,
            }
            for p in model.pages
        ],
    }
    pathlib.Path(path).write_text(json.dumps(doc))


def load_model(path: str | pathlib.Path) -> SystemModel:
    """Read a model written by :func:`save_model`.

    Raises
    ------
    ValueError
        If the file is not a v1 model document (or fails the
        :class:`SystemModel` constructors' validation).
    """
    doc = json.loads(pathlib.Path(path).read_text())
    if doc.get("format") != _MODEL_FORMAT:
        raise ValueError(
            f"{path} is not a {_MODEL_FORMAT} document "
            f"(found format={doc.get('format')!r})"
        )
    servers = [
        ServerSpec(
            server_id=s["server_id"],
            name=s.get("name", ""),
            storage_capacity=_dec_float(s["storage_capacity"]),
            processing_capacity=_dec_float(s["processing_capacity"]),
            rate=float(s["rate"]),
            overhead=float(s["overhead"]),
            repo_rate=float(s["repo_rate"]),
            repo_overhead=float(s["repo_overhead"]),
        )
        for s in doc["servers"]
    ]
    objects = [
        ObjectSpec(object_id=k, size=int(size))
        for k, size in enumerate(doc["objects"])
    ]
    pages = [
        PageSpec(
            page_id=j,
            server=int(p["server"]),
            html_size=int(p["html_size"]),
            frequency=float(p["frequency"]),
            compulsory=tuple(int(k) for k in p["compulsory"]),
            optional=tuple(int(k) for k in p["optional"]),
            optional_prob=float(p["optional_prob"]),
            optional_rate_scale=float(p.get("optional_rate_scale", 1.0)),
        )
        for j, p in enumerate(doc["pages"])
    ]
    repository = RepositorySpec(
        processing_capacity=_dec_float(doc["repository"]["processing_capacity"])
    )
    return SystemModel(servers, repository, pages, objects)


def save_trace(trace: RequestTrace, path: str | pathlib.Path) -> None:
    """Write a trace's arrays to ``path`` as compressed ``.npz``.

    The model itself is *not* embedded — pass it to :func:`load_trace`
    (traces are bound to a model instance; a content fingerprint guards
    against reattaching to the wrong universe).
    """
    np.savez_compressed(
        path,
        format=np.array(_TRACE_FORMAT),
        page_of_request=trace.page_of_request,
        opt_entries=trace.opt_entries,
        opt_owner=trace.opt_owner,
        model_fingerprint=np.array(_model_fingerprint(trace.model)),
    )


def _model_fingerprint(model: SystemModel) -> str:
    """Cheap structural fingerprint to pair traces with their model."""
    return (
        f"{model.n_servers}/{model.n_pages}/{model.n_objects}/"
        f"{int(model.sizes.sum())}/{int(model.comp_objects.sum())}"
    )


def load_trace(path: str | pathlib.Path, model: SystemModel) -> RequestTrace:
    """Read a trace written by :func:`save_trace` and bind it to ``model``.

    Raises
    ------
    ValueError
        On format mismatch or when ``model`` does not match the
        fingerprint recorded at save time.
    """
    with np.load(path, allow_pickle=False) as data:
        if str(data["format"]) != _TRACE_FORMAT:
            raise ValueError(
                f"{path} is not a {_TRACE_FORMAT} archive "
                f"(found {data['format']})"
            )
        fingerprint = str(data["model_fingerprint"])
        if fingerprint != _model_fingerprint(model):
            raise ValueError(
                "trace was recorded against a different model "
                f"(fingerprint {fingerprint}, model "
                f"{_model_fingerprint(model)})"
            )
        page_of_request = data["page_of_request"].astype(np.intp)
        trace = RequestTrace(
            model=model,
            page_of_request=page_of_request,
            server_of_request=model.page_server[page_of_request].astype(np.intp),
            opt_entries=data["opt_entries"].astype(np.intp),
            opt_owner=data["opt_owner"].astype(np.intp),
        )
    trace.validate()
    return trace

"""Typed message vocabulary of the off-loading protocol (Section 4.2).

Four message kinds flow between the repository and the local servers:

* :class:`StatusMessage` — server → repository, after local allocation:
  free space, spare processing capacity, imposed repository workload.
* :class:`NewRequirementMessage` — repository → server: "absorb this
  much workload" (``Send_Message(S_i, NewReq(S_i))``).
* :class:`WorkloadAnswerMessage` — server → repository: how much it
  actually absorbed, and whether it is now exhausted (joins ``L3``).
* :class:`OffloadEndMessage` — repository → all servers: negotiation
  over (``Send_Message(Off_Loading_END)``).

Messages carry a nominal wire size so the bus can account for bytes as
well as message counts; the sizes are small constants — the paper's
point is precisely that this negotiation is cheap compared with
per-object replication chatter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.offload import ServerStatus

__all__ = [
    "Message",
    "StatusMessage",
    "NewRequirementMessage",
    "WorkloadAnswerMessage",
    "OffloadEndMessage",
]

#: Node id used for the repository on the bus.
REPOSITORY_NODE = "repository"


def server_node(server_id: int) -> str:
    """Bus address of local server ``server_id``."""
    return f"server:{server_id}"


@dataclass(frozen=True)
class Message:
    """Base envelope: sender/recipient are bus node ids."""

    sender: str
    recipient: str

    @property
    def wire_bytes(self) -> int:
        """Nominal payload size in bytes (headers excluded)."""
        return 16


@dataclass(frozen=True)
class StatusMessage(Message):
    """``S_i`` → ``R``: Space(S_i), P(S_i), P(S_i, R)."""

    status: ServerStatus = field(kw_only=True)

    @property
    def wire_bytes(self) -> int:
        return 16 + 3 * 8  # three 64-bit quantities


@dataclass(frozen=True)
class NewRequirementMessage(Message):
    """``R`` → ``S_i``: absorb ``amount`` req/s of repository workload."""

    amount: float = field(kw_only=True)

    @property
    def wire_bytes(self) -> int:
        return 16 + 8


@dataclass(frozen=True)
class WorkloadAnswerMessage(Message):
    """``S_i`` → ``R``: ``achieved`` req/s absorbed; ``exhausted`` marks
    the server as belonging to ``L3`` from now on.  The answer piggybacks
    the server's refreshed status so the repository never needs an extra
    status round-trip."""

    achieved: float = field(kw_only=True)
    exhausted: bool = field(kw_only=True, default=False)
    status: ServerStatus = field(kw_only=True)

    @property
    def wire_bytes(self) -> int:
        return 16 + 8 + 1 + 3 * 8


@dataclass(frozen=True)
class OffloadEndMessage(Message):
    """``R`` → all: the negotiation has terminated."""

    restored: bool = field(kw_only=True, default=True)

    @property
    def wire_bytes(self) -> int:
        return 16 + 1

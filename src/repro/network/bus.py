"""Synchronous in-process message bus with delivery accounting.

Nodes register handlers; :meth:`MessageBus.send` enqueues, and
:meth:`MessageBus.run_until_idle` drains the queue in FIFO order,
invoking each recipient's handler (which may send further messages).
The bus records per-kind message counts and total wire bytes so
experiments can report the protocol's communication cost.

The bus is deliberately synchronous and deterministic: the paper's
protocol is round-based (collect statuses → assign → collect answers),
and determinism is what lets the distributed run be asserted
bit-identical to the centralised one.

Failure injection: a :class:`FaultModel` can silently drop messages
(lossy links) or blackhole everything addressed to crashed nodes
(crash-stop servers).  Dropped messages are *recorded* (they were sent)
but never delivered; the protocol layer is responsible for recovering —
see :func:`repro.network.protocol.run_distributed_policy`'s stall
handling.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.network.messages import Message
from repro.util.rng import as_generator

__all__ = ["MessageBus", "BusStats", "FaultModel", "LatencyModel"]


class LatencyModel:
    """One-way message delays for virtual-time delivery.

    The paper's Table 1 estimates put client↔repository RTTs at 200 ms
    and client↔local RTTs at 50 ms; server↔repository control messages
    ride the same wide-area paths, so the default one-way delay is
    100 ms, overridable per link.  With a latency model installed the
    bus orders deliveries by arrival time and tracks a virtual clock —
    :attr:`MessageBus.clock` after a drain is the protocol's makespan.
    """

    def __init__(
        self,
        default_delay: float = 0.1,
        per_link: dict[tuple[str, str], float] | None = None,
    ):
        if default_delay < 0:
            raise ValueError(f"default_delay must be >= 0, got {default_delay}")
        self.default_delay = float(default_delay)
        self.per_link = dict(per_link or {})
        for (a, b), d in self.per_link.items():
            if d < 0:
                raise ValueError(f"delay for link {(a, b)} must be >= 0, got {d}")

    def delay(self, sender: str, recipient: str) -> float:
        """One-way delay for a message on this link."""
        return self.per_link.get((sender, recipient), self.default_delay)


class FaultModel:
    """Seeded message-loss and crash-stop fault injection.

    Parameters
    ----------
    drop_probability:
        Each message is silently lost with this probability (independent
        draws from ``seed``).
    crashed:
        Node ids whose inbound messages are blackholed (crash-stop: a
        dead server neither receives nor answers).  The set may be
        mutated mid-run to crash nodes at a chosen protocol phase.
    seed:
        RNG for the loss draws.
    """

    def __init__(
        self,
        drop_probability: float = 0.0,
        crashed: set[str] | None = None,
        seed: int | np.random.Generator | None = 0,
    ):
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError(
                f"drop_probability must be in [0, 1], got {drop_probability}"
            )
        self.drop_probability = drop_probability
        self.crashed: set[str] = set(crashed or ())
        self._rng = as_generator(seed)
        self.dropped = 0

    def crash(self, node_id: str) -> None:
        """Mark ``node_id`` crashed from now on."""
        self.crashed.add(node_id)

    def should_drop(self, msg: Message) -> bool:
        """Decide (and account) whether ``msg`` is lost."""
        if msg.recipient in self.crashed or msg.sender in self.crashed:
            self.dropped += 1
            return True
        if self.drop_probability > 0.0 and self._rng.random() < self.drop_probability:
            self.dropped += 1
            return True
        return False


@dataclass
class BusStats:
    """Aggregate traffic statistics."""

    messages: int = 0
    bytes: int = 0
    by_kind: dict[str, int] = field(default_factory=dict)

    def record(self, msg: Message) -> None:
        self.messages += 1
        self.bytes += msg.wire_bytes
        kind = type(msg).__name__
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1

    def summary(self) -> str:
        """Human-readable digest of the traffic."""
        kinds = ", ".join(f"{k}: {v}" for k, v in sorted(self.by_kind.items()))
        return f"{self.messages} messages / {self.bytes} B ({kinds})"


class MessageBus:
    """Deterministic delivery between named nodes.

    Without a :class:`LatencyModel` delivery is FIFO (send order); with
    one, messages arrive in virtual-time order and :attr:`clock` tracks
    the latest delivery — the protocol makespan.  Optional
    :class:`FaultModel` injection applies in either mode.
    """

    def __init__(
        self,
        faults: FaultModel | None = None,
        latency: LatencyModel | None = None,
    ):
        self._handlers: dict[str, Callable[[Message], None]] = {}
        self._queue: list[tuple[float, int, Message]] = []
        self._seq = itertools.count()
        self.stats = BusStats()
        self.faults = faults
        self.latency = latency
        self.clock = 0.0

    def register(self, node_id: str, handler: Callable[[Message], None]) -> None:
        """Attach ``handler`` for messages addressed to ``node_id``."""
        if node_id in self._handlers:
            raise ValueError(f"node {node_id!r} is already registered")
        self._handlers[node_id] = handler

    def send(self, msg: Message) -> None:
        """Enqueue ``msg`` for delivery (or lose it, per the fault model).

        With a latency model the message is stamped to arrive one
        link-delay after the *current* virtual time (handlers execute at
        their message's arrival instant, so replies chain correctly).
        """
        if msg.recipient not in self._handlers:
            raise KeyError(f"unknown recipient {msg.recipient!r}")
        self.stats.record(msg)
        if self.faults is not None and self.faults.should_drop(msg):
            return
        arrival = (
            self.clock + self.latency.delay(msg.sender, msg.recipient)
            if self.latency is not None
            else self.clock
        )
        heapq.heappush(self._queue, (arrival, next(self._seq), msg))

    def run_until_idle(self, max_deliveries: int = 1_000_000) -> int:
        """Deliver queued messages (and any they trigger) until quiet.

        Returns the number of deliveries.  ``max_deliveries`` guards
        against protocol bugs that would loop forever.
        """
        delivered = 0
        while self._queue:
            if delivered >= max_deliveries:
                raise RuntimeError(
                    f"message bus exceeded {max_deliveries} deliveries — "
                    "protocol livelock?"
                )
            arrival, _, msg = heapq.heappop(self._queue)
            self.clock = max(self.clock, arrival)
            self._handlers[msg.recipient](msg)
            delivered += 1
        return delivered

    @property
    def pending(self) -> int:
        """Messages currently queued."""
        return len(self._queue)

"""Drive a full distributed policy run over the message bus.

:func:`run_distributed_policy` is the decentralised twin of
:class:`repro.core.policy.RepositoryReplicationPolicy.run`:

1. every :class:`~repro.network.nodes.LocalServerNode` computes its own
   allocation (PARTITION + restoration) using only its local pages,
2. all servers send status messages,
3. the :class:`~repro.network.nodes.RepositoryNode` runs the off-loading
   rounds until Eq. 9 holds or no server can absorb more,
4. the bus drains; the final allocation and full traffic statistics are
   returned.

The result is asserted (by tests) to be identical to the centralised
pipeline — the protocol moves control flow, not decisions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.allocation import Allocation
from repro.core.constraints import ConstraintReport, evaluate_constraints
from repro.core.cost_model import CostModel
from repro.core.partition import OptionalPolicy
from repro.core.types import SystemModel
from repro.network.bus import BusStats, FaultModel, LatencyModel, MessageBus
from repro.network.nodes import LocalServerNode, RepositoryNode

__all__ = ["DistributedRunResult", "run_distributed_policy"]

#: Safety bound on stall-recovery iterations (each recovery demotes at
#: least one server or finalises, so n_servers + 2 always suffices).
_MAX_RECOVERIES = 1000


@dataclass
class DistributedRunResult:
    """Outcome of a distributed policy execution."""

    allocation: Allocation
    objective: float
    constraints: ConstraintReport
    bus_stats: BusStats
    offload_rounds: int
    offload_restored: bool
    absorbed_by_server: dict[int, float]
    makespan: float = 0.0
    """Virtual-time length of the negotiation (0 without a latency
    model): status collection through the END broadcast."""

    @property
    def feasible(self) -> bool:
        """Whether all constraints hold at exit."""
        return self.constraints.ok

    def summary(self) -> str:
        """Human-readable digest including protocol traffic."""
        return (
            f"D = {self.objective:.4g}; {self.constraints.summary()}; "
            f"off-loading rounds: {self.offload_rounds} "
            f"({'restored' if self.offload_restored else 'NOT restored'}); "
            f"traffic: {self.bus_stats.summary()}"
        )


def run_distributed_policy(
    model: SystemModel,
    alpha1: float = 2.0,
    alpha2: float = 1.0,
    optional_policy: OptionalPolicy = "all",
    max_rounds: int = 50,
    allow_swap: bool = True,
    faults: FaultModel | None = None,
    latency: LatencyModel | None = None,
) -> DistributedRunResult:
    """Execute the Section 4 scheme as an actual message protocol.

    Parameters
    ----------
    latency:
        Optional :class:`~repro.network.bus.LatencyModel`; when given,
        the bus delivers in virtual-time order and the result's
        ``makespan`` reports how long the negotiation takes on the wire
        (the off-peak-hours window it must fit into).
    faults:
        Optional :class:`~repro.network.bus.FaultModel` injecting message
        loss and crash-stop servers.  The repository recovers from
        resulting stalls by demoting unresponsive servers to ``L3``
        (see :meth:`RepositoryNode.recover_from_stall`), so the protocol
        always terminates — possibly with Eq. 9 unrestored, never hung.
    """
    cost = CostModel(model, alpha1, alpha2)
    alloc = Allocation(model)
    bus = MessageBus(faults=faults, latency=latency)
    repo = RepositoryNode(
        capacity=model.repository.processing_capacity,
        n_servers=model.n_servers,
        bus=bus,
        max_rounds=max_rounds,
    )
    servers = [
        LocalServerNode(
            i, alloc, cost, bus, optional_policy=optional_policy, allow_swap=allow_swap
        )
        for i in range(model.n_servers)
    ]

    # Phase 1: each server decides locally (may run in any order).
    for node in servers:
        if faults is None or node.node_id not in faults.crashed:
            node.run_local_allocation()
    # Phase 2: statuses flow to the repository; the bus drives the rest.
    for node in servers:
        if faults is None or node.node_id not in faults.crashed:
            node.send_status()
    bus.run_until_idle()
    for _ in range(_MAX_RECOVERIES):
        if repo.finished:
            break
        progressed = repo.recover_from_stall()
        bus.run_until_idle()
        if not progressed and not repo.finished:  # pragma: no cover
            raise RuntimeError("off-loading protocol cannot make progress")

    if not repo.finished:  # pragma: no cover - defensive
        raise RuntimeError("protocol ended with the repository mid-round")

    return DistributedRunResult(
        allocation=alloc,
        objective=cost.D(alloc),
        constraints=evaluate_constraints(alloc),
        bus_stats=bus.stats,
        offload_rounds=repo.rounds,
        offload_restored=repo.restored,
        absorbed_by_server=dict(repo.absorbed_by_server),
        makespan=bus.clock,
    )

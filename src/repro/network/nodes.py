"""Actors: local servers and the repository on the message bus.

Each :class:`LocalServerNode` owns the decisions for the pages its
server hosts: it runs PARTITION plus storage/processing restoration
locally ("we let the local servers decide which MOs should be kept and
downloaded by them"), then reports a status message.  The
:class:`RepositoryNode` aggregates statuses and drives the off-loading
rounds.

The shared :class:`~repro.core.allocation.Allocation` object plays the
role of each server's local state — nodes only ever read/write entries
belonging to their own server, so the sharing is an implementation
convenience, not hidden coordination.  The decision procedures are the
exact functions used by the centralised
:class:`~repro.core.policy.RepositoryReplicationPolicy`, which is what
makes the two execution styles bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.allocation import Allocation
from repro.core.cost_model import CostModel
from repro.core.offload import (
    ServerStatus,
    absorb_extra_workload,
    compute_server_status,
    plan_offload_round,
)
from repro.core.partition import OptionalPolicy, _optional_marks, partition_page
from repro.core.restoration import (
    restore_processing_capacity,
    restore_storage_capacity,
)
from repro.core.constraints import evaluate_constraints
from repro.network.bus import MessageBus
from repro.network.messages import (
    Message,
    NewRequirementMessage,
    OffloadEndMessage,
    REPOSITORY_NODE,
    StatusMessage,
    WorkloadAnswerMessage,
    server_node,
)

__all__ = ["LocalServerNode", "RepositoryNode"]

_TOL = 1e-9


class LocalServerNode:
    """One local server ``S_i`` as a protocol participant."""

    def __init__(
        self,
        server_id: int,
        alloc: Allocation,
        cost: CostModel,
        bus: MessageBus,
        optional_policy: OptionalPolicy = "all",
        allow_swap: bool = True,
    ):
        self.server_id = server_id
        self.alloc = alloc
        self.cost = cost
        self.bus = bus
        self.optional_policy: OptionalPolicy = optional_policy
        self.allow_swap = allow_swap
        self.node_id = server_node(server_id)
        self.offload_done = False
        bus.register(self.node_id, self.handle)

    # ------------------------------------------------------------------
    def run_local_allocation(self) -> None:
        """PARTITION + restoration for this server's pages only."""
        m = self.alloc.model
        for j in m.pages_by_server[self.server_id]:
            marks, _, _ = partition_page(m, j)
            sl = m.comp_slice(j)
            for off, val in enumerate(marks):
                if val:
                    self.alloc.set_comp_local(sl.start + off, True)
            opt_marks = _optional_marks(m, j, self.optional_policy, None)
            slo = m.opt_slice(j)
            for off, val in enumerate(opt_marks):
                if val:
                    self.alloc.set_opt_local(slo.start + off, True)
        report = evaluate_constraints(self.alloc)
        if self.server_id in report.violated_servers_storage():
            restore_storage_capacity(self.alloc, self.cost, self.server_id)
        if self.server_id in report.violated_servers_processing():
            restore_processing_capacity(self.alloc, self.cost, self.server_id)

    def send_status(self) -> None:
        """Report Space(S_i), P(S_i), P(S_i, R) to the repository."""
        self.bus.send(
            StatusMessage(
                sender=self.node_id,
                recipient=REPOSITORY_NODE,
                status=compute_server_status(self.alloc, self.server_id),
            )
        )

    # ------------------------------------------------------------------
    def handle(self, msg: Message) -> None:
        """Protocol handler for repository-originated messages."""
        if isinstance(msg, NewRequirementMessage):
            st = compute_server_status(self.alloc, self.server_id)
            achieved = absorb_extra_workload(
                self.alloc,
                self.cost,
                self.server_id,
                msg.amount,
                allow_new_replicas=st.free_space > _TOL,
                allow_swap=self.allow_swap,
            )
            exhausted = achieved < msg.amount - _TOL
            self.bus.send(
                WorkloadAnswerMessage(
                    sender=self.node_id,
                    recipient=REPOSITORY_NODE,
                    achieved=achieved,
                    exhausted=exhausted,
                    status=compute_server_status(self.alloc, self.server_id),
                )
            )
        elif isinstance(msg, OffloadEndMessage):
            self.offload_done = True
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected message at {self.node_id}: {msg!r}")


@dataclass
class _RoundState:
    """Repository-side bookkeeping for one negotiation round."""

    awaiting: set[int] = field(default_factory=set)


class RepositoryNode:
    """The repository ``R`` as protocol coordinator."""

    def __init__(
        self,
        capacity: float,
        n_servers: int,
        bus: MessageBus,
        max_rounds: int = 50,
    ):
        self.capacity = float(capacity)
        self.n_servers = n_servers
        self.bus = bus
        self.max_rounds = max_rounds
        self.statuses: dict[int, ServerStatus] = {}
        self.demoted: set[int] = set()
        self.absorbed_by_server: dict[int, float] = {}
        self.rounds = 0
        self.finished = False
        self.restored = False
        self._round = _RoundState()
        bus.register(REPOSITORY_NODE, self.handle)

    # ------------------------------------------------------------------
    @property
    def estimated_load(self) -> float:
        """``P(R)`` from the latest known statuses."""
        return sum(s.repo_share for s in self.statuses.values())

    def handle(self, msg: Message) -> None:
        """Protocol handler for server-originated messages."""
        if isinstance(msg, StatusMessage):
            self.statuses[msg.status.server_id] = msg.status
            if len(self.statuses) == self.n_servers:
                self._maybe_start_round()
        elif isinstance(msg, WorkloadAnswerMessage):
            sid = msg.status.server_id
            self.statuses[sid] = msg.status
            self.absorbed_by_server[sid] = (
                self.absorbed_by_server.get(sid, 0.0) + msg.achieved
            )
            if msg.exhausted:
                self.demoted.add(sid)
            self._round.awaiting.discard(sid)
            if not self._round.awaiting:
                self._maybe_start_round()
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected message at repository: {msg!r}")

    # ------------------------------------------------------------------
    def _maybe_start_round(self) -> None:
        if self.finished:
            return
        load = self.estimated_load
        if (
            np.isinf(self.capacity)
            or load <= self.capacity + _TOL
            or self.rounds >= self.max_rounds
        ):
            self._finish(load <= self.capacity + _TOL or np.isinf(self.capacity))
            return
        plan = plan_offload_round(
            list(self.statuses.values()), self.capacity, self.demoted
        )
        if plan is None or not plan:
            # CONSTRAINT CAN NOT BE RESTORED (or nothing to do)
            self._finish(bool(plan == {}))
            return
        self.rounds += 1
        self._round = _RoundState(awaiting=set(plan.keys()))
        for sid in sorted(plan.keys()):
            self.bus.send(
                NewRequirementMessage(
                    sender=REPOSITORY_NODE,
                    recipient=server_node(sid),
                    amount=plan[sid],
                )
            )

    def _finish(self, restored: bool) -> None:
        self.finished = True
        self.restored = restored
        for sid in range(self.n_servers):
            self.bus.send(
                OffloadEndMessage(
                    sender=REPOSITORY_NODE,
                    recipient=server_node(sid),
                    restored=restored,
                )
            )

    # ------------------------------------------------------------------
    def recover_from_stall(self) -> bool:
        """Handle lost messages after the bus drained without finishing.

        A real repository would run timeouts; in the synchronous
        simulation a "timeout" is the driver observing an idle bus with
        the negotiation incomplete.  Recovery is crash-stop-conservative:

        * servers whose answer is outstanding are demoted to ``L3`` (we
          cannot know how much they absorbed — assume nothing more is
          coming from them),
        * servers that never delivered a status are presumed crashed:
          recorded with zero slack and zero repository share, demoted.

        Returns ``True`` if the protocol can proceed (another round was
        attempted or the negotiation was finalised).
        """
        if self.finished:
            return True
        if self._round.awaiting:
            for sid in sorted(self._round.awaiting):
                self.demoted.add(sid)
            self._round = _RoundState()
            self._maybe_start_round()
            return True
        missing = set(range(self.n_servers)) - set(self.statuses)
        if missing:
            for sid in sorted(missing):
                self.statuses[sid] = ServerStatus(
                    server_id=sid,
                    free_space=0.0,
                    free_capacity=0.0,
                    repo_share=0.0,
                )
                self.demoted.add(sid)
            self._maybe_start_round()
            return True
        # idle with full information but unfinished: force evaluation
        self._maybe_start_round()
        return self.finished

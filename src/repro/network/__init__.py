"""Message-passing substrate for the distributed algorithm (Section 4).

The paper's scheme is decentralised: each local server decides its own
replica set, then the repository and the servers negotiate the Eq. 9
off-loading by exchanging messages.  :mod:`repro.core.offload`
implements the decision logic as plain functions; this package runs the
same logic as an **actual protocol** over an in-process message bus —
actors, typed messages, rounds — with full message accounting, so the
communication cost the paper argues about ("a rather high amount of
messages ..." vs its own scheme) is measurable.

* :mod:`repro.network.messages` — the typed message vocabulary,
* :mod:`repro.network.bus`      — synchronous in-process message bus,
* :mod:`repro.network.nodes`    — ``LocalServerNode`` / ``RepositoryNode``,
* :mod:`repro.network.protocol` — drives a full distributed policy run.

The distributed run is bit-identical to
:class:`repro.core.policy.RepositoryReplicationPolicy` (tested), because
the decision procedures are shared; only the control flow moves onto the
bus.
"""

from repro.network.bus import BusStats, FaultModel, LatencyModel, MessageBus
from repro.network.messages import (
    Message,
    NewRequirementMessage,
    OffloadEndMessage,
    StatusMessage,
    WorkloadAnswerMessage,
)
from repro.network.nodes import LocalServerNode, RepositoryNode
from repro.network.protocol import DistributedRunResult, run_distributed_policy

__all__ = [
    "MessageBus",
    "BusStats",
    "FaultModel",
    "LatencyModel",
    "Message",
    "StatusMessage",
    "NewRequirementMessage",
    "WorkloadAnswerMessage",
    "OffloadEndMessage",
    "LocalServerNode",
    "RepositoryNode",
    "DistributedRunResult",
    "run_distributed_policy",
]

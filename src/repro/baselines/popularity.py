"""Popularity-greedy replication — the classic caching heuristic.

A natural competitor the paper does not evaluate: fill each server's
storage with the objects its pages request most (popularity per byte),
ignoring the two-connection structure entirely.  Two marking variants
isolate *where the paper's gain comes from*:

* ``marking="all-stored"`` — every stored object is downloaded locally
  (what a conventional push-cache does); the replica *set* is greedy-
  popular and the streams are whatever they end up being.
* ``marking="balanced"`` — same replica set, but each page re-runs
  PARTITION restricted to the stored objects, splitting its downloads
  across the two connections.

Comparing the two against the full policy shows that (1) balancing the
streams matters even for a popularity-chosen replica set, and (2) the
policy's D-aware eviction beats popularity-per-byte at equal storage.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.baselines.base import AllocationPolicy
from repro.core.allocation import Allocation, ReverseIndex
from repro.core.partition import _optional_marks, partition_page
from repro.core.types import SystemModel

__all__ = ["PopularityPolicy"]

Marking = Literal["all-stored", "balanced"]


class PopularityPolicy(AllocationPolicy):
    """Greedy popularity-per-byte replication under Eq. 10 budgets.

    Parameters
    ----------
    storage_bytes:
        Per-server MO storage budget in bytes (scalar broadcasts).
        ``None`` uses each server's Eq. 10 capacity minus hosted HTML.
    marking:
        How downloads are assigned once the replica set is fixed (see
        module docstring).
    """

    def __init__(
        self,
        storage_bytes: float | np.ndarray | None = None,
        marking: Marking = "all-stored",
    ):
        if marking not in ("all-stored", "balanced"):
            raise ValueError(f"unknown marking {marking!r}")
        self.storage_bytes = storage_bytes
        self.marking: Marking = marking
        self.name = f"popularity-{marking}"

    # ------------------------------------------------------------------
    def _budgets(self, model: SystemModel) -> np.ndarray:
        if self.storage_bytes is not None:
            return np.broadcast_to(
                np.asarray(self.storage_bytes, dtype=float), (model.n_servers,)
            ).copy()
        budgets = model.server_storage - model.html_bytes_by_server()
        return np.maximum(budgets, 0.0)

    def _popular_set(self, model: SystemModel, server_id: int, budget: float) -> set[int]:
        """Objects ranked by request rate per byte, greedily packed."""
        rev = ReverseIndex.for_model(model)
        scores: list[tuple[float, int, float]] = []
        refs = model.objects_referenced_by_server(server_id)
        for k in refs:
            comp_e, opt_e = rev.entries_for(server_id, k)
            rate = 0.0
            for e in comp_e:
                j = int(model.comp_pages[e])
                rate += float(model.frequencies[j])
            for e in opt_e:
                j = int(model.opt_pages[e])
                rate += float(
                    model.frequencies[j]
                    * model.optional_rate_scale[j]
                    * model.opt_probs[e]
                )
            size = float(model.sizes[k])
            scores.append((rate / size, k, size))
        scores.sort(key=lambda t: (-t[0], t[1]))
        chosen: set[int] = set()
        used = 0.0
        for _, k, size in scores:
            if used + size <= budget:
                chosen.add(k)
                used += size
        return chosen

    # ------------------------------------------------------------------
    def allocate(self, model: SystemModel) -> Allocation:
        """Build the popularity replica sets and mark downloads."""
        budgets = self._budgets(model)
        alloc = Allocation(model)
        for i in range(model.n_servers):
            stored = self._popular_set(model, i, float(budgets[i]))
            for j in model.pages_by_server[i]:
                sl = model.comp_slice(j)
                if self.marking == "all-stored":
                    for e in range(sl.start, sl.stop):
                        if int(model.comp_objects[e]) in stored:
                            alloc.set_comp_local(e, True)
                else:
                    marks, _, _ = partition_page(model, j, allowed=stored)
                    for off, val in enumerate(marks):
                        if val:
                            alloc.set_comp_local(sl.start + off, True)
                omarks = _optional_marks(model, j, "all", stored)
                slo = model.opt_slice(j)
                for off, val in enumerate(omarks):
                    if val:
                        alloc.set_opt_local(slo.start + off, True)
            # stored-but-unmarked objects still occupy the budget
            for k in stored:
                alloc.store(i, k)
        return alloc

"""Popularity-greedy replication — the classic caching heuristic.

A natural competitor the paper does not evaluate: fill each server's
storage with the objects its pages request most (popularity per byte),
ignoring the two-connection structure entirely.  Two marking variants
isolate *where the paper's gain comes from*:

* ``marking="all-stored"`` — every stored object is downloaded locally
  (what a conventional push-cache does); the replica *set* is greedy-
  popular and the streams are whatever they end up being.
* ``marking="balanced"`` — same replica set, but each page re-runs
  PARTITION restricted to the stored objects, splitting its downloads
  across the two connections.

Comparing the two against the full policy shows that (1) balancing the
streams matters even for a popularity-chosen replica set, and (2) the
policy's D-aware eviction beats popularity-per-byte at equal storage.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.baselines.base import AllocationPolicy
from repro.core.allocation import Allocation
from repro.core.context import EvalContext
from repro.core.fast_partition import partition_pages_batched
from repro.core.types import SystemModel

__all__ = ["PopularityPolicy"]

Marking = Literal["all-stored", "balanced"]


class PopularityPolicy(AllocationPolicy):
    """Greedy popularity-per-byte replication under Eq. 10 budgets.

    Parameters
    ----------
    storage_bytes:
        Per-server MO storage budget in bytes (scalar broadcasts).
        ``None`` uses each server's Eq. 10 capacity minus hosted HTML.
    marking:
        How downloads are assigned once the replica set is fixed (see
        module docstring).
    """

    def __init__(
        self,
        storage_bytes: float | np.ndarray | None = None,
        marking: Marking = "all-stored",
    ):
        if marking not in ("all-stored", "balanced"):
            raise ValueError(f"unknown marking {marking!r}")
        self.storage_bytes = storage_bytes
        self.marking: Marking = marking
        self.name = f"popularity-{marking}"

    # ------------------------------------------------------------------
    def _budgets(self, model: SystemModel) -> np.ndarray:
        if self.storage_bytes is not None:
            return np.broadcast_to(
                np.asarray(self.storage_bytes, dtype=float), (model.n_servers,)
            ).copy()
        budgets = model.server_storage - model.html_bytes_by_server()
        return np.maximum(budgets, 0.0)

    def _popular_set(self, model: SystemModel, server_id: int, budget: float) -> set[int]:
        """Objects ranked by request rate per byte, greedily packed.

        The per-object rates come from one ``np.bincount`` over the
        server's compulsory-then-optional entries (the context's groups
        are object-sorted with ascending entries — the exact order the
        old per-object ``+=`` loop over ``ReverseIndex.entries_for``
        accumulated in, so the folds are bit-identical).
        """
        ctx = EvalContext.for_model(model)
        ce = ctx.comp_group(server_id)[0]
        oe = ctx.opt_group(server_id)[0]
        objs = np.concatenate([ctx.comp_objects[ce], ctx.opt_objects[oe]])
        w = np.concatenate([ctx.comp_freq[ce], ctx.opt_freq_weight[oe]])
        rate = np.bincount(objs, weights=w, minlength=len(model.sizes))
        scores: list[tuple[float, int, float]] = []
        for k in model.objects_referenced_by_server(server_id):
            size = float(model.sizes[k])
            scores.append((float(rate[k]) / size, k, size))
        scores.sort(key=lambda t: (-t[0], t[1]))
        chosen: set[int] = set()
        used = 0.0
        for _, k, size in scores:
            if used + size <= budget:
                chosen.add(k)
                used += size
        return chosen

    # ------------------------------------------------------------------
    def allocate(self, model: SystemModel) -> Allocation:
        """Build the popularity replica sets and mark downloads.

        Marks are installed through the bulk APIs; for ``"balanced"``
        the per-page PARTITION runs on the batched kernel restricted to
        the stored set — both bit-identical to the scalar assembly.
        """
        budgets = self._budgets(model)
        alloc = Allocation(model)
        ctx = alloc.ctx
        for i in range(model.n_servers):
            stored = self._popular_set(model, i, float(budgets[i]))
            stored_arr = np.fromiter(stored, dtype=np.intp, count=len(stored))
            ce = ctx.comp_group(i)[0]
            if self.marking == "all-stored":
                sel = np.isin(ctx.comp_objects[ce], stored_arr)
                alloc.set_comp_local_bulk(ce[sel], True)
            else:
                pages = np.asarray(model.pages_by_server[i], dtype=np.intp)
                if len(pages):
                    allowed_mask = np.zeros(len(ctx.comp_objects), dtype=bool)
                    allowed_mask[ce] = np.isin(ctx.comp_objects[ce], stored_arr)
                    marks, _, _ = partition_pages_batched(
                        model, page_ids=pages, allowed_mask=allowed_mask
                    )
                    alloc.set_comp_local_bulk(marks.nonzero()[0], True)
            oe = ctx.opt_group(i)[0]
            osel = np.isin(ctx.opt_objects[oe], stored_arr)
            alloc.set_opt_local_bulk(oe[osel], True)
            # stored-but-unmarked objects still occupy the budget
            for k in stored:
                alloc.store(i, k)
        return alloc

"""The Remote baseline: download everything from the repository.

Every compulsory and optional MO is fetched over the repository stream;
local servers store nothing beyond their HTML.  The paper applies **no**
capacity constraints to this baseline (they would be meaningless — it
imposes the maximum possible repository workload by construction) and
reports it at roughly **+335%** average response time versus the
unconstrained proposed policy: the repository's transfer rate
(0.3-2 KB/s per region) is far below the local servers' (3-10 KB/s), so
serialising every object onto the slow stream dominates.
"""

from __future__ import annotations

from repro.baselines.base import AllocationPolicy
from repro.core.allocation import Allocation
from repro.core.types import SystemModel

__all__ = ["RemotePolicy"]


class RemotePolicy(AllocationPolicy):
    """All-zero ``X``/``X'``: the repository serves every MO."""

    name = "remote"

    def allocate(self, model: SystemModel) -> Allocation:
        """Return the empty allocation (no marks, no replicas)."""
        return Allocation(model)

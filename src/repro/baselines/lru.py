"""The ideal-LRU baseline policy object.

Wraps :func:`repro.simulation.lru_sim.simulate_lru` with the Figure 1
configuration surface: a per-server cache budget (usually expressed as a
fraction of the storage the unconstrained proposed policy would use) and
the Eq. 8-derived probability that an overloaded server can actually
serve a hit locally.  Redirection overhead is zero — the paper grants
LRU an *ideal* redirection mechanism to make the comparison conservative.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simulation.lru_sim import LruStats, simulate_lru
from repro.simulation.metrics import SimulationResult
from repro.simulation.perturbation import PAPER_PERTURBATION, PerturbationModel
from repro.workload.trace import RequestTrace

__all__ = ["IdealLRUPolicy"]


@dataclass(frozen=True)
class IdealLRUPolicy:
    """Ideal LRU caching/redirection with zero redirection overhead.

    Attributes
    ----------
    cache_bytes:
        Per-server cache budget in bytes (scalar broadcasts to all
        servers).
    local_service_prob:
        Probability a cache hit is actually served locally — 1.0 means
        the Eq. 8 constraint is slack (Figure 1's setting).
    """

    cache_bytes: float | np.ndarray
    local_service_prob: float = 1.0
    name: str = "ideal-lru"

    def evaluate(
        self,
        trace: RequestTrace,
        perturbation: PerturbationModel = PAPER_PERTURBATION,
        seed: int | np.random.Generator | None = 2,
    ) -> tuple[SimulationResult, LruStats]:
        """Replay ``trace`` through the LRU caches and measure times."""
        return simulate_lru(
            trace,
            cache_bytes=self.cache_bytes,
            perturbation=perturbation,
            seed=seed,
            local_service_prob=self.local_service_prob,
            extra_remote_overhead=0.0,
        )

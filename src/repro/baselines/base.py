"""Common interface for static allocation policies.

A *static* policy maps a :class:`~repro.core.types.SystemModel` to an
:class:`~repro.core.allocation.Allocation` once, offline; the simulator
then replays any trace against it.  (The LRU baseline is stateful per
request and therefore lives outside this interface — see
:class:`repro.baselines.lru.IdealLRUPolicy`.)
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.allocation import Allocation
from repro.core.types import SystemModel

__all__ = ["AllocationPolicy"]


class AllocationPolicy(ABC):
    """A policy that produces a static ``X``/``X'`` assignment."""

    #: Short identifier used in experiment reports.
    name: str = "policy"

    @abstractmethod
    def allocate(self, model: SystemModel) -> Allocation:
        """Compute the allocation for ``model``."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"

"""Baseline policies the paper compares against (Section 5.2).

* :class:`RemotePolicy` — "download all from the repository": every MO
  travels on the repository stream; no replicas, no constraints applied.
* :class:`LocalPolicy` — "download all from the local servers": every MO
  referenced by a server's pages is replicated there; no constraints
  applied.
* :class:`IdealLRUPolicy` — an LRU caching/redirection scheme with zero
  redirection overhead, subjected only to the Eq. 8 processing
  constraint; see :mod:`repro.simulation.lru_sim`.
* :class:`PopularityPolicy` — popularity-per-byte greedy replication
  (not in the paper; isolates how much of the win is stream balancing).
* :class:`ClosestStreamPolicy` — winner-takes-all routing onto the
  lowest per-byte-latency stream per server (not in the paper; the
  k-stream replica-mesh strawman).
"""

from repro.baselines.base import AllocationPolicy
from repro.baselines.closest import ClosestStreamPolicy
from repro.baselines.local import LocalPolicy
from repro.baselines.lru import IdealLRUPolicy
from repro.baselines.popularity import PopularityPolicy
from repro.baselines.remote import RemotePolicy

__all__ = [
    "AllocationPolicy",
    "RemotePolicy",
    "LocalPolicy",
    "IdealLRUPolicy",
    "PopularityPolicy",
    "ClosestStreamPolicy",
]

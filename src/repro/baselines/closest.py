"""The Closest baseline: every download rides its fastest connection.

For each server the policy compares the per-byte latency of the local
connection (``1/B(S_i)``) against every remote stream's
(``1/B(R_r, S_i)``) and assigns *all* of the server's downloads —
compulsory and optional alike — to the single cheapest stream.  Local
winning means full replication on that server; a remote stream winning
leaves the server empty and serialises everything onto that one remote
connection.  Ties go to the local connection, and among remote streams
to the lowest stream index, matching the engine's PARTITION tie rule.

Like the Local/Remote baselines it applies **no** capacity constraints
and no balancing: it is the "pick the best pipe, ignore queueing"
strawman.  Under Table 1 rates (local 3-10 KB/s vs repository
0.3-2 KB/s) it degenerates to the Local baseline at k = 2; its value is
in k > 2 replica meshes, where a fast mesh site can out-rate the local
connection and the baseline quantifies how much of the proposed
policy's win survives naive closest-source routing.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import AllocationPolicy
from repro.core.allocation import Allocation
from repro.core.types import SystemModel

__all__ = ["ClosestStreamPolicy"]


class ClosestStreamPolicy(AllocationPolicy):
    """Per-server winner-takes-all assignment to the lowest-latency stream."""

    name = "closest"

    def allocate(self, model: SystemModel) -> Allocation:
        """Route every download of each server onto its fastest stream."""
        # Per-byte latency of each connection, shape (n_servers,) and
        # (n_servers, k-1).  Rates are validated positive at model build.
        spb_local = 1.0 / model.server_rate
        spb_streams = 1.0 / model.stream_rates
        best_remote = np.argmin(spb_streams, axis=1)  # lowest index wins ties
        rows = np.arange(model.n_servers)
        local_wins = spb_local <= spb_streams[rows, best_remote]

        comp_server = model.page_server[model.comp_pages]
        opt_server = model.page_server[model.opt_pages]
        comp_local = local_wins[comp_server]
        opt_local = local_wins[opt_server]
        comp_stream = (best_remote + 1)[comp_server].astype(np.int8)
        return Allocation(
            model, comp_local, opt_local, comp_stream=comp_stream
        )

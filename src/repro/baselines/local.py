"""The Local baseline: download everything from the local server.

Every MO referenced by a server's pages is replicated onto that server
and every download is marked local — the repository stream stays empty.
The paper applies **no** capacity constraints to this baseline (it needs
unbounded storage by construction) and reports it at roughly **+23.8%**
average response time versus the unconstrained proposed policy: even
though local links are fast, serialising *all* objects onto one pipelined
connection forfeits the free parallelism of the idle repository stream.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import AllocationPolicy
from repro.core.allocation import Allocation
from repro.core.types import SystemModel

__all__ = ["LocalPolicy"]


class LocalPolicy(AllocationPolicy):
    """All-ones ``X``/``X'``: the local server serves every MO."""

    name = "local"

    def allocate(self, model: SystemModel) -> Allocation:
        """Mark every compulsory and optional download local."""
        comp_local = np.ones(len(model.comp_objects), dtype=bool)
        opt_local = np.ones(len(model.opt_objects), dtype=bool)
        return Allocation(model, comp_local, opt_local)

"""Structured summaries of an allocation's state.

:func:`describe_allocation` walks a :class:`~repro.core.allocation.
Allocation` and produces per-server and global statistics: replica
counts and bytes, storage/processing utilisation, repository workload
shares, and the distribution of per-page stream balance (how close the
two parallel downloads are to equal — the quantity PARTITION optimises).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.allocation import Allocation
from repro.core.constraints import (
    local_processing_load,
    repository_load_by_server,
    storage_used,
)
from repro.core.cost_model import CostModel
from repro.util.tables import format_table
from repro.util.units import MB

__all__ = ["StreamBalance", "ServerReport", "AllocationReport", "describe_allocation"]


@dataclass(frozen=True)
class StreamBalance:
    """Distribution of per-page stream imbalance.

    Imbalance of a page is ``|local - remote| / max(local, remote)`` of
    its two estimated stream times: 0 = perfectly balanced parallel
    downloads, 1 = one stream idle.
    """

    mean: float
    median: float
    p90: float
    fraction_local_bound: float
    """Share of pages whose local stream is the longer one."""


@dataclass(frozen=True)
class ServerReport:
    """Per-server allocation statistics."""

    server_id: int
    name: str
    n_replicas: int
    replica_bytes: float
    storage_used: float
    storage_capacity: float
    processing_load: float
    processing_capacity: float
    local_download_share: float
    """Fraction of the server's compulsory downloads marked local."""
    repo_share: float
    """Repository workload imposed by this server (req/s)."""
    unmarked_replicas: int
    """Stored objects no page currently downloads locally."""

    @property
    def storage_utilisation(self) -> float:
        """``used / capacity`` (0 when capacity is infinite)."""
        if not np.isfinite(self.storage_capacity) or self.storage_capacity <= 0:
            return 0.0
        return self.storage_used / self.storage_capacity


@dataclass(frozen=True)
class AllocationReport:
    """Global + per-server allocation description."""

    servers: tuple[ServerReport, ...]
    balance: StreamBalance
    objective: float
    total_replica_bytes: float
    local_download_share: float

    def render(self) -> str:
        """ASCII rendering for examples and the CLI."""
        rows = [
            (
                s.name or f"S{s.server_id}",
                s.n_replicas,
                f"{s.replica_bytes / MB:.0f} MB",
                (
                    f"{s.storage_utilisation:.0%}"
                    if np.isfinite(s.storage_capacity)
                    else "-"
                ),
                f"{s.local_download_share:.0%}",
                f"{s.repo_share:.1f} req/s",
                s.unmarked_replicas,
            )
            for s in self.servers
        ]
        table = format_table(
            [
                "server",
                "replicas",
                "bytes",
                "disk util",
                "local dl share",
                "repo share",
                "unmarked",
            ],
            rows,
            title="Allocation summary",
        )
        return (
            f"{table}\n"
            f"objective D = {self.objective:.4g}; "
            f"{self.local_download_share:.0%} of compulsory downloads local; "
            f"stream imbalance mean {self.balance.mean:.0%} "
            f"(median {self.balance.median:.0%}, p90 {self.balance.p90:.0%}); "
            f"{self.balance.fraction_local_bound:.0%} of pages local-bound"
        )


def describe_allocation(
    alloc: Allocation, cost: CostModel | None = None
) -> AllocationReport:
    """Compute the full report for ``alloc``."""
    m = alloc.model
    cost = cost or CostModel(m)
    times = cost.page_times(alloc)

    hi = np.maximum(times.local, times.remote)
    lo = np.minimum(times.local, times.remote)
    with np.errstate(divide="ignore", invalid="ignore"):
        imbalance = np.where(hi > 0, (hi - lo) / hi, 0.0)
    balance = StreamBalance(
        mean=float(imbalance.mean()) if len(imbalance) else 0.0,
        median=float(np.median(imbalance)) if len(imbalance) else 0.0,
        p90=float(np.percentile(imbalance, 90)) if len(imbalance) else 0.0,
        fraction_local_bound=(
            float((times.local >= times.remote).mean()) if len(imbalance) else 0.0
        ),
    )

    loads = local_processing_load(alloc)
    used = storage_used(alloc)
    shares = repository_load_by_server(alloc)
    srv_of_entry = m.page_server[m.comp_pages]

    reports = []
    for i, srv in enumerate(m.servers):
        mask = srv_of_entry == i
        n_entries = int(mask.sum())
        local_share = (
            float(alloc.comp_local[mask].mean()) if n_entries else 0.0
        )
        reports.append(
            ServerReport(
                server_id=i,
                name=srv.name,
                n_replicas=len(alloc.replicas[i]),
                replica_bytes=alloc.stored_bytes(i),
                storage_used=float(used[i]),
                storage_capacity=float(srv.storage_capacity),
                processing_load=float(loads[i]),
                processing_capacity=float(srv.processing_capacity),
                local_download_share=local_share,
                repo_share=float(shares[i]),
                unmarked_replicas=len(alloc.unmarked_stored(i)),
            )
        )
    return AllocationReport(
        servers=tuple(reports),
        balance=balance,
        objective=cost.D(alloc),
        total_replica_bytes=float(alloc.stored_bytes_all().sum()),
        local_download_share=(
            float(alloc.comp_local.mean()) if len(alloc.comp_local) else 0.0
        ),
    )

"""Allocation diffs: what a re-allocation actually changes.

Re-running the policy (nightly, per :mod:`repro.dynamic`) produces a new
allocation; the *operational* cost of adopting it is the replica churn —
every newly stored object must be copied from the repository during the
off-peak window.  :func:`diff_allocations` quantifies that: per-server
replica additions/removals (count and bytes) and download-mark flips.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.allocation import Allocation

__all__ = ["ServerDiff", "AllocationDiff", "diff_allocations"]


@dataclass(frozen=True)
class ServerDiff:
    """Replica-set changes at one server."""

    server_id: int
    added: frozenset[int]
    removed: frozenset[int]
    bytes_added: float
    bytes_removed: float

    @property
    def churn_bytes(self) -> float:
        """Bytes that must move (copies in; deletions are free but
        counted for reporting)."""
        return self.bytes_added


@dataclass(frozen=True)
class AllocationDiff:
    """Full comparison of two allocations over the same model."""

    servers: tuple[ServerDiff, ...]
    comp_flips_to_local: int
    comp_flips_to_remote: int
    opt_flips_to_local: int
    opt_flips_to_remote: int

    @property
    def total_bytes_added(self) -> float:
        """Repository → server copy volume a switchover requires."""
        return sum(s.bytes_added for s in self.servers)

    @property
    def total_bytes_removed(self) -> float:
        """Server-side deletion volume of a switchover.  Free in transfer
        terms but operationally real (cache invalidation, GC pressure) —
        the dynamic harness reports both directions."""
        return sum(s.bytes_removed for s in self.servers)

    @property
    def total_replicas_added(self) -> int:
        """Count of new replicas across all servers."""
        return sum(len(s.added) for s in self.servers)

    @property
    def total_replicas_removed(self) -> int:
        """Count of dropped replicas across all servers."""
        return sum(len(s.removed) for s in self.servers)

    @property
    def is_noop(self) -> bool:
        """True when the allocations are identical."""
        return (
            self.total_replicas_added == 0
            and self.total_replicas_removed == 0
            and self.comp_flips_to_local == 0
            and self.comp_flips_to_remote == 0
            and self.opt_flips_to_local == 0
            and self.opt_flips_to_remote == 0
        )

    def summary(self) -> str:
        """One-line digest for logs and examples."""
        return (
            f"replicas: +{self.total_replicas_added}/-"
            f"{self.total_replicas_removed} "
            f"({self.total_bytes_added / 2**20:.1f} MiB to copy); "
            f"marks: {self.comp_flips_to_local}+{self.opt_flips_to_local} "
            f"to local, {self.comp_flips_to_remote}+"
            f"{self.opt_flips_to_remote} to remote"
        )


def diff_allocations(old: Allocation, new: Allocation) -> AllocationDiff:
    """Compare two allocations over the same (or structurally identical)
    model.

    Raises
    ------
    ValueError
        If the allocations' models differ structurally.
    """
    mo, mn = old.model, new.model
    if (
        mo.n_servers != mn.n_servers
        or not np.array_equal(mo.comp_objects, mn.comp_objects)
        or not np.array_equal(mo.opt_objects, mn.opt_objects)
        or not np.array_equal(mo.sizes, mn.sizes)
    ):
        raise ValueError("allocations belong to structurally different models")

    servers = []
    for i in range(mo.n_servers):
        added = frozenset(new.replicas[i] - old.replicas[i])
        removed = frozenset(old.replicas[i] - new.replicas[i])
        servers.append(
            ServerDiff(
                server_id=i,
                added=added,
                removed=removed,
                bytes_added=float(sum(mo.sizes[k] for k in added)),
                bytes_removed=float(sum(mo.sizes[k] for k in removed)),
            )
        )
    comp_to_local = int(np.sum(~old.comp_local & new.comp_local))
    comp_to_remote = int(np.sum(old.comp_local & ~new.comp_local))
    opt_to_local = int(np.sum(~old.opt_local & new.opt_local))
    opt_to_remote = int(np.sum(old.opt_local & ~new.opt_local))
    return AllocationDiff(
        servers=tuple(servers),
        comp_flips_to_local=comp_to_local,
        comp_flips_to_remote=comp_to_remote,
        opt_flips_to_local=opt_to_local,
        opt_flips_to_remote=opt_to_remote,
    )

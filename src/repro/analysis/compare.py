"""Allocation diffs: what a re-allocation actually changes.

Re-running the policy (nightly, per :mod:`repro.dynamic`) produces a new
allocation; the *operational* cost of adopting it is the replica churn —
every newly stored object must be copied from the repository during the
off-peak window.  :func:`diff_allocations` quantifies that: per-server
replica additions/removals (count and bytes) and download-mark flips.

:func:`compare_baselines` answers the adjacent question — how do the
baseline policies stack up on one model?  It scores every arg-free
static baseline (Remote, Local, Closest) plus any caller-supplied
allocations (the proposed policy's, typically) under the Eq. 7
objective and reports each as a percentage over the best.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.allocation import Allocation
from repro.core.cost_model import CostModel

__all__ = [
    "ServerDiff",
    "AllocationDiff",
    "diff_allocations",
    "BaselineScore",
    "compare_baselines",
]


@dataclass(frozen=True)
class ServerDiff:
    """Replica-set changes at one server."""

    server_id: int
    added: frozenset[int]
    removed: frozenset[int]
    bytes_added: float
    bytes_removed: float

    @property
    def churn_bytes(self) -> float:
        """Bytes that must move (copies in; deletions are free but
        counted for reporting)."""
        return self.bytes_added


@dataclass(frozen=True)
class AllocationDiff:
    """Full comparison of two allocations over the same model."""

    servers: tuple[ServerDiff, ...]
    comp_flips_to_local: int
    comp_flips_to_remote: int
    opt_flips_to_local: int
    opt_flips_to_remote: int

    @property
    def total_bytes_added(self) -> float:
        """Repository → server copy volume a switchover requires."""
        return sum(s.bytes_added for s in self.servers)

    @property
    def total_bytes_removed(self) -> float:
        """Server-side deletion volume of a switchover.  Free in transfer
        terms but operationally real (cache invalidation, GC pressure) —
        the dynamic harness reports both directions."""
        return sum(s.bytes_removed for s in self.servers)

    @property
    def total_replicas_added(self) -> int:
        """Count of new replicas across all servers."""
        return sum(len(s.added) for s in self.servers)

    @property
    def total_replicas_removed(self) -> int:
        """Count of dropped replicas across all servers."""
        return sum(len(s.removed) for s in self.servers)

    @property
    def is_noop(self) -> bool:
        """True when the allocations are identical."""
        return (
            self.total_replicas_added == 0
            and self.total_replicas_removed == 0
            and self.comp_flips_to_local == 0
            and self.comp_flips_to_remote == 0
            and self.opt_flips_to_local == 0
            and self.opt_flips_to_remote == 0
        )

    def summary(self) -> str:
        """One-line digest for logs and examples."""
        return (
            f"replicas: +{self.total_replicas_added}/-"
            f"{self.total_replicas_removed} "
            f"({self.total_bytes_added / 2**20:.1f} MiB to copy); "
            f"marks: {self.comp_flips_to_local}+{self.opt_flips_to_local} "
            f"to local, {self.comp_flips_to_remote}+"
            f"{self.opt_flips_to_remote} to remote"
        )


def diff_allocations(old: Allocation, new: Allocation) -> AllocationDiff:
    """Compare two allocations over the same (or structurally identical)
    model.

    Raises
    ------
    ValueError
        If the allocations' models differ structurally.
    """
    mo, mn = old.model, new.model
    if (
        mo.n_servers != mn.n_servers
        or not np.array_equal(mo.comp_objects, mn.comp_objects)
        or not np.array_equal(mo.opt_objects, mn.opt_objects)
        or not np.array_equal(mo.sizes, mn.sizes)
    ):
        raise ValueError("allocations belong to structurally different models")

    servers = []
    for i in range(mo.n_servers):
        added = frozenset(new.replicas[i] - old.replicas[i])
        removed = frozenset(old.replicas[i] - new.replicas[i])
        servers.append(
            ServerDiff(
                server_id=i,
                added=added,
                removed=removed,
                bytes_added=float(sum(mo.sizes[k] for k in added)),
                bytes_removed=float(sum(mo.sizes[k] for k in removed)),
            )
        )
    comp_to_local = int(np.sum(~old.comp_local & new.comp_local))
    comp_to_remote = int(np.sum(old.comp_local & ~new.comp_local))
    opt_to_local = int(np.sum(~old.opt_local & new.opt_local))
    opt_to_remote = int(np.sum(old.opt_local & ~new.opt_local))
    return AllocationDiff(
        servers=tuple(servers),
        comp_flips_to_local=comp_to_local,
        comp_flips_to_remote=comp_to_remote,
        opt_flips_to_local=opt_to_local,
        opt_flips_to_remote=opt_to_remote,
    )


# ----------------------------------------------------------------------
# Baseline scoreboard
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BaselineScore:
    """One policy's Eq. 7 objective on a model, relative to the best."""

    name: str
    objective: float
    over_best_pct: float
    """``100 * (D - D_best) / D_best`` — 0 for the winner."""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}: D={self.objective:.1f} (+{self.over_best_pct:.1f}%)"


def compare_baselines(
    model,
    extra: dict[str, Allocation] | None = None,
    alpha1: float = 2.0,
    alpha2: float = 1.0,
) -> tuple[BaselineScore, ...]:
    """Score the static baselines (and any ``extra`` allocations) on
    ``model``, sorted best-first.

    The roster is every arg-free static policy: Remote (all downloads on
    stream 1), Local (full replication), and Closest (winner-takes-all
    onto the lowest per-byte-latency stream; distinct from Local only in
    ``k > 2`` replica meshes).  ``extra`` maps a display name to a
    ready-made allocation — pass the proposed policy's result to see the
    baselines' percentage gap above it.
    """
    # Late import: analysis sits beside baselines in the orchestration
    # layer, but keeping the dependency out of module import time lets
    # ``repro.analysis.describe`` load without the policy roster.
    from repro.baselines.closest import ClosestStreamPolicy
    from repro.baselines.local import LocalPolicy
    from repro.baselines.remote import RemotePolicy

    cost = CostModel(model, alpha1=alpha1, alpha2=alpha2)
    scored: list[tuple[str, float]] = []
    for policy in (RemotePolicy(), LocalPolicy(), ClosestStreamPolicy()):
        scored.append((policy.name, cost.D(policy.allocate(model))))
    for name, alloc in (extra or {}).items():
        scored.append((name, cost.D(alloc)))
    best = min(d for _, d in scored)
    scored.sort(key=lambda item: (item[1], item[0]))
    return tuple(
        BaselineScore(
            name=name,
            objective=d,
            over_best_pct=100.0 * (d - best) / best if best > 0 else 0.0,
        )
        for name, d in scored
    )

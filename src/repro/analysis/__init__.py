"""Allocation introspection and reporting.

Answers the operator's questions about an allocation: how full is each
server, how balanced are the page streams, where does the repository
workload come from — as dataclasses plus ASCII renderings used by the
examples and the CLI.
"""

from repro.analysis.compare import (
    AllocationDiff,
    BaselineScore,
    ServerDiff,
    compare_baselines,
    diff_allocations,
)
from repro.analysis.describe import (
    AllocationReport,
    ServerReport,
    StreamBalance,
    describe_allocation,
)

__all__ = [
    "AllocationDiff",
    "AllocationReport",
    "BaselineScore",
    "ServerDiff",
    "ServerReport",
    "StreamBalance",
    "compare_baselines",
    "describe_allocation",
    "diff_allocations",
]

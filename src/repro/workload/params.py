"""Workload parameters — one field per Table 1 row.

:class:`WorkloadParams` is a frozen dataclass whose defaults reproduce
Table 1 verbatim.  Two smaller presets (:meth:`WorkloadParams.small`,
:meth:`WorkloadParams.tiny`) keep the same *shape* (ratios, mixtures,
rates) at a fraction of the size, for tests and quick examples.

One parameter is not in Table 1 and is documented here:
``page_rate_per_server`` — the aggregate peak-hour page-request rate of
one local server, which turns the paper's relative frequencies into
requests/second for the Eq. 8/9 workload terms.  The default (5.8 req/s)
is chosen so that the *all-local* assignment of an average server loads
it at roughly its Table 1 processing capacity of 150 HTTP req/s
(1 HTML + ~25 compulsory MOs per page view ≈ 26 requests/view), which is
the operating point the paper's capacity percentages are measured
against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any

from repro.core.types import resolve_streams
from repro.workload.sizes import DEFAULT_HTML_SIZES, DEFAULT_MO_SIZES, SizeMixture

__all__ = ["WorkloadParams"]


@dataclass(frozen=True)
class WorkloadParams:
    """Synthetic-workload configuration (defaults = Table 1)."""

    n_servers: int = 10
    """Number of Local Sites (LS)."""

    pages_per_server: tuple[int, int] = (400, 800)
    """Number of web pages per LS (uniform integer range, inclusive)."""

    hot_page_fraction: float = 0.10
    """Fraction of pages classed hot."""

    hot_traffic_fraction: float = 0.60
    """Fraction of traffic the hot pages account for."""

    compulsory_per_page: tuple[int, int] = (5, 45)
    """Number of compulsory MOs per page (uniform range, inclusive)."""

    optional_per_page: tuple[int, int] = (10, 85)
    """Number of optional MO links, for pages that have any."""

    optional_page_fraction: float = 0.10
    """Fraction of pages that carry optional objects."""

    n_objects: int = 15_000
    """Number of MOs in the network (the repository's catalogue)."""

    objects_per_server: tuple[int, int] = (1500, 4500)
    """Number of distinct MOs referenced by one LS's pages."""

    html_sizes: SizeMixture = DEFAULT_HTML_SIZES
    """Small/medium/large HTML size mixture."""

    mo_sizes: SizeMixture = DEFAULT_MO_SIZES
    """Small/medium/large MO size mixture."""

    optional_interest_prob: float = 0.10
    """Probability that a user requests one or more optional MOs."""

    optional_request_fraction: float = 0.30
    """Number of optional MOs requested per interested view, as a
    fraction of the page's optional links."""

    processing_capacity: float = 150.0
    """Processing capacity of an LS in HTTP requests/second."""

    repository_capacity: float = math.inf
    """Processing capacity of the repository (Table 1: infinite)."""

    storage_capacity: float = math.inf
    """LS storage in bytes. Table 1 leaves this to the experiments, which
    express it relative to the unconstrained policy's need (Figure 1)."""

    local_overhead_range: tuple[float, float] = (1.275, 1.775)
    """``Ovhd(S_i)`` base value range in seconds."""

    repo_overhead_range: tuple[float, float] = (1.975, 2.475)
    """``Ovhd(R, S_i)`` base value range in seconds."""

    local_rate_range_kbps: tuple[float, float] = (3.0, 10.0)
    """Estimated ``B(S_i)`` range in KB/s."""

    repo_rate_range_kbps: tuple[float, float] = (0.3, 2.0)
    """Estimated ``B(R, S_i)`` range in KB/s."""

    requests_per_server: int = 10_000
    """Page requests generated per server in the evaluation trace."""

    alpha1: float = 2.0
    """Weight of the page-retrieval objective ``D1``."""

    alpha2: float = 1.0
    """Weight of the optional-object objective ``D2``."""

    page_rate_per_server: float = 5.8
    """Aggregate page-request rate per LS (req/s); see module docstring."""

    mirrored_page_fraction: float = 0.0
    """Fraction of each server's pages that are copies of globally shared
    pages (same MO sets on every server — the company's world-wide
    content).  The paper: "if multiple copies of it exist we treat each
    copy as a different page"; Table 1 does not quantify sharing, so the
    default keeps sharing implicit (overlapping per-server object pools)
    and this knob makes it explicit for sharing-sensitivity studies."""

    n_streams: int = 2
    """Download stream count ``k`` per page view: the local server plus
    ``k-1`` remote sources.  ``2`` is the paper's model (local +
    repository); ``k > 2`` builds a replica mesh whose extra sites draw
    their network estimates from the repository's Table 1 ranges."""

    n_repositories: int = 1
    """Repository-grade remote sources the scenario provisions (the
    repository itself plus mirrored replica sites).  ``n_streams`` may
    not exceed ``1 + n_repositories`` — every remote stream needs a
    source to serve it."""

    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        def _range_ok(name: str, rng: tuple[float, float], lo_min: float = 0) -> None:
            lo, hi = rng
            if not (lo_min <= lo <= hi):
                raise ValueError(f"{name} must satisfy {lo_min} <= low <= high, got {rng}")

        if self.n_servers <= 0:
            raise ValueError(f"n_servers must be positive, got {self.n_servers}")
        if self.n_objects <= 0:
            raise ValueError(f"n_objects must be positive, got {self.n_objects}")
        _range_ok("pages_per_server", self.pages_per_server, 1)
        _range_ok("compulsory_per_page", self.compulsory_per_page, 0)
        _range_ok("optional_per_page", self.optional_per_page, 0)
        _range_ok("objects_per_server", self.objects_per_server, 1)
        _range_ok("local_overhead_range", self.local_overhead_range)
        _range_ok("repo_overhead_range", self.repo_overhead_range)
        _range_ok("local_rate_range_kbps", self.local_rate_range_kbps)
        _range_ok("repo_rate_range_kbps", self.repo_rate_range_kbps)
        for frac_name in (
            "hot_page_fraction",
            "hot_traffic_fraction",
            "optional_page_fraction",
            "optional_interest_prob",
            "optional_request_fraction",
            "mirrored_page_fraction",
        ):
            v = getattr(self, frac_name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{frac_name} must be in [0, 1], got {v}")
        if self.objects_per_server[1] > self.n_objects:
            raise ValueError(
                "objects_per_server upper bound exceeds the network's object "
                f"count ({self.objects_per_server[1]} > {self.n_objects})"
            )
        if self.compulsory_per_page[1] + self.optional_per_page[1] > self.objects_per_server[0]:
            raise ValueError(
                "a page could reference more objects than its server's pool "
                "guarantees: compulsory+optional upper bounds "
                f"({self.compulsory_per_page[1]}+{self.optional_per_page[1]}) "
                f"exceed objects_per_server lower bound "
                f"({self.objects_per_server[0]})"
            )
        if self.alpha1 <= 0 or self.alpha2 <= 0:
            raise ValueError("alpha weights must be positive")
        if self.page_rate_per_server <= 0:
            raise ValueError("page_rate_per_server must be positive")
        if self.requests_per_server <= 0:
            raise ValueError("requests_per_server must be positive")
        if (
            isinstance(self.n_repositories, bool)
            or not isinstance(self.n_repositories, int)
            or self.n_repositories < 1
        ):
            raise ValueError(
                "n_repositories must be a positive integer, got "
                f"{self.n_repositories!r}"
            )
        # same rejection surface as the engine entry points: non-positive,
        # non-integer, or more streams than remote sources all raise here
        resolve_streams(self.n_streams, self.n_repositories)

    # ------------------------------------------------------------------
    @property
    def optional_prob_per_object(self) -> float:
        """``U'_jk`` for an optional link: P(interested) x fraction requested."""
        return self.optional_interest_prob * self.optional_request_fraction

    def with_(self, **overrides: Any) -> "WorkloadParams":
        """Functional update (wraps :func:`dataclasses.replace`)."""
        return replace(self, **overrides)

    # ------------------------------------------------------------------
    @classmethod
    def paper(cls) -> "WorkloadParams":
        """Table 1 verbatim."""
        return cls()

    @classmethod
    def small(cls) -> "WorkloadParams":
        """~25x smaller than Table 1; same shape. Good for integration
        tests and examples (runs in a couple of seconds)."""
        return cls(
            n_servers=4,
            pages_per_server=(40, 80),
            n_objects=1200,
            objects_per_server=(150, 400),
            compulsory_per_page=(5, 25),
            optional_per_page=(10, 40),
            requests_per_server=1000,
            processing_capacity=150.0,
        )

    @classmethod
    def tiny(cls) -> "WorkloadParams":
        """Minimal instance for unit tests and the ILP reference."""
        return cls(
            n_servers=2,
            pages_per_server=(4, 8),
            n_objects=60,
            objects_per_server=(20, 40),
            compulsory_per_page=(2, 8),
            optional_per_page=(2, 6),
            requests_per_server=200,
            processing_capacity=150.0,
        )

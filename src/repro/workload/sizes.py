"""Size mixtures for HTML documents and multimedia objects (Table 1).

The paper partitions both populations into small/medium/large classes
with uniform sizes inside each class:

=================  ========  ==============
population         fraction  size range
=================  ========  ==============
HTML small         35%       1 KB - 6 KB
HTML medium        60%       6 KB - 20 KB
HTML large         5%        20 KB - 50 KB
MO small (gif)     30%       40 KB - 300 KB
MO medium (audio)  60%       300 KB - 800 KB
MO large (video)   10%       800 KB - 4 MB
=================  ========  ==============
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.units import KB, MB

__all__ = ["SizeClass", "SizeMixture", "DEFAULT_HTML_SIZES", "DEFAULT_MO_SIZES"]


@dataclass(frozen=True)
class SizeClass:
    """One mixture component: ``fraction`` of items sized uniformly in
    ``[low, high]`` bytes."""

    fraction: float
    low: int
    high: int
    label: str = ""

    def __post_init__(self) -> None:
        if not 0 < self.fraction <= 1:
            raise ValueError(f"fraction must be in (0, 1], got {self.fraction}")
        if not 0 < self.low <= self.high:
            raise ValueError(
                f"need 0 < low <= high, got low={self.low}, high={self.high}"
            )


@dataclass(frozen=True)
class SizeMixture:
    """A mixture of :class:`SizeClass` components summing to 1."""

    classes: tuple[SizeClass, ...]

    def __post_init__(self) -> None:
        total = sum(c.fraction for c in self.classes)
        if not np.isclose(total, 1.0, atol=1e-9):
            raise ValueError(
                f"size-class fractions must sum to 1, got {total:.6f}"
            )

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` integer sizes (bytes).

        Class membership is sampled per item so realised class shares
        fluctuate around the nominal fractions, as in any finite
        synthetic population.
        """
        if n < 0:
            raise ValueError(f"cannot sample a negative count: {n}")
        fractions = np.array([c.fraction for c in self.classes])
        which = rng.choice(len(self.classes), size=n, p=fractions)
        sizes = np.empty(n, dtype=np.int64)
        for idx, cls in enumerate(self.classes):
            mask = which == idx
            cnt = int(mask.sum())
            if cnt:
                sizes[mask] = rng.integers(cls.low, cls.high + 1, size=cnt)
        return sizes

    def mean(self) -> float:
        """Expected size in bytes."""
        return float(
            sum(c.fraction * (c.low + c.high) / 2.0 for c in self.classes)
        )

    def bounds(self) -> tuple[int, int]:
        """(min, max) possible size."""
        return (
            min(c.low for c in self.classes),
            max(c.high for c in self.classes),
        )


#: Table 1 HTML size mixture.
DEFAULT_HTML_SIZES = SizeMixture(
    classes=(
        SizeClass(0.35, 1 * KB, 6 * KB, "small"),
        SizeClass(0.60, 6 * KB, 20 * KB, "medium"),
        SizeClass(0.05, 20 * KB, 50 * KB, "large"),
    )
)

#: Table 1 multimedia-object size mixture.
DEFAULT_MO_SIZES = SizeMixture(
    classes=(
        SizeClass(0.30, 40 * KB, 300 * KB, "small"),
        SizeClass(0.60, 300 * KB, 800 * KB, "medium"),
        SizeClass(0.10, 800 * KB, 4 * MB, "large"),
    )
)

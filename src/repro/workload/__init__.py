"""Synthetic workload generation reproducing Table 1 of the paper.

* :mod:`repro.workload.params` — every Table 1 row as a dataclass field,
* :mod:`repro.workload.sizes` — the small/medium/large HTML and MO size
  mixtures,
* :mod:`repro.workload.popularity` — hot-page traffic skew (10% of pages
  account for 60% of requests),
* :mod:`repro.workload.generator` — assembles a
  :class:`~repro.core.types.SystemModel`,
* :mod:`repro.workload.trace` — samples the 10,000-request-per-server
  evaluation traces, including optional-object sub-requests.
"""

from repro.workload.clf import ClfParseResult, parse_clf
from repro.workload.generator import generate_workload
from repro.workload.params import WorkloadParams
from repro.workload.popularity import hot_cold_frequencies, zipf_frequencies
from repro.workload.sizes import (
    DEFAULT_HTML_SIZES,
    DEFAULT_MO_SIZES,
    SizeClass,
    SizeMixture,
)
from repro.workload.trace import RequestTrace, generate_trace

__all__ = [
    "ClfParseResult",
    "parse_clf",
    "WorkloadParams",
    "generate_workload",
    "hot_cold_frequencies",
    "zipf_frequencies",
    "SizeClass",
    "SizeMixture",
    "DEFAULT_HTML_SIZES",
    "DEFAULT_MO_SIZES",
    "RequestTrace",
    "generate_trace",
]

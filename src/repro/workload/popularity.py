"""Page popularity models.

The paper cites Arlitt & Williamson's and Bestavros' server-workload
characterisations ("a small percentage of pages accounted for a
disproportionally large number of requests") and adopts a two-class
model: **10% of pages account for 60% of traffic**, uniform within each
class.  :func:`hot_cold_frequencies` implements exactly that;
:func:`zipf_frequencies` is provided as a drop-in alternative for
sensitivity studies (the classic web-trace model the cited papers fit).
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_fraction, check_positive

__all__ = ["hot_cold_frequencies", "zipf_frequencies"]


def hot_cold_frequencies(
    n_pages: int,
    total_rate: float,
    hot_fraction: float = 0.10,
    hot_traffic: float = 0.60,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Two-class (hot/cold) page access frequencies.

    Parameters
    ----------
    n_pages:
        Number of pages on the server.
    total_rate:
        Aggregate page-request rate in requests/second (peak hours).
    hot_fraction:
        Fraction of pages classed hot (Table 1: 10%).
    hot_traffic:
        Fraction of traffic the hot pages draw (Table 1: 60%).
    rng:
        If given, hot pages are chosen at random; otherwise the first
        ``ceil(hot_fraction * n)`` pages are hot (deterministic layout).

    Returns
    -------
    (frequencies, hot_mask):
        Per-page requests/second summing to ``total_rate``, and the
        boolean hot-page mask.
    """
    if n_pages <= 0:
        raise ValueError(f"n_pages must be positive, got {n_pages}")
    check_positive("total_rate", total_rate)
    check_fraction("hot_fraction", hot_fraction)
    check_fraction("hot_traffic", hot_traffic)

    n_hot = int(np.ceil(hot_fraction * n_pages))
    n_hot = min(max(n_hot, 0), n_pages)
    hot_mask = np.zeros(n_pages, dtype=bool)
    if n_hot:
        if rng is not None:
            hot_idx = rng.choice(n_pages, size=n_hot, replace=False)
        else:
            hot_idx = np.arange(n_hot)
        hot_mask[hot_idx] = True

    freqs = np.zeros(n_pages)
    n_cold = n_pages - n_hot
    if n_hot == 0:
        freqs[:] = total_rate / n_pages
    elif n_cold == 0:
        freqs[:] = total_rate / n_pages
    else:
        freqs[hot_mask] = total_rate * hot_traffic / n_hot
        freqs[~hot_mask] = total_rate * (1.0 - hot_traffic) / n_cold
    return freqs, hot_mask


def zipf_frequencies(
    n_pages: int,
    total_rate: float,
    exponent: float = 0.8,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Zipf-like page frequencies (rank ``r`` gets weight ``r^-exponent``).

    Provided for sensitivity studies beyond the paper's two-class model.
    Ranks are assigned randomly when ``rng`` is given, else by index.
    """
    if n_pages <= 0:
        raise ValueError(f"n_pages must be positive, got {n_pages}")
    check_positive("total_rate", total_rate)
    check_positive("exponent", exponent)
    ranks = np.arange(1, n_pages + 1, dtype=float)
    weights = ranks**-exponent
    weights /= weights.sum()
    if rng is not None:
        rng.shuffle(weights)
    return total_rate * weights

"""Assemble a :class:`~repro.core.types.SystemModel` from
:class:`~repro.workload.params.WorkloadParams` (Section 5.1 / Table 1).

Generation proceeds in labelled RNG streams (see
:class:`repro.util.rng.RngFactory`) so that, for a fixed seed, the object
catalogue is identical regardless of how many servers/pages are drawn —
useful when sweeping a single parameter.

Steps:

1. Draw the global MO catalogue sizes from the Table 1 mixture.
2. Per server: draw its page count, its referenced-object pool
   (1,500-4,500 of the 15,000 network MOs), its estimated network
   attributes (``B``, ``Ovhd`` for both connections).
3. Per page: HTML size, compulsory MOs (5-45, sampled from the server's
   pool without replacement), optional MOs (10-85 for the 10% of pages
   that have any), and the access frequency from the hot/cold model.
"""

from __future__ import annotations

import numpy as np

from repro.core.types import (
    ObjectSpec,
    PageSpec,
    RepositorySpec,
    ServerSpec,
    StreamTopology,
    SystemModel,
)
from repro.util.rng import RngFactory
from repro.util.units import kbps_to_bps
from repro.workload.params import WorkloadParams
from repro.workload.popularity import hot_cold_frequencies

__all__ = ["generate_workload"]


def _uniform_in(rng: np.random.Generator, bounds: tuple[float, float]) -> float:
    lo, hi = bounds
    return float(rng.uniform(lo, hi)) if hi > lo else float(lo)


def _randint_in(rng: np.random.Generator, bounds: tuple[int, int]) -> int:
    lo, hi = bounds
    return int(rng.integers(lo, hi + 1))


def generate_workload(
    params: WorkloadParams | None = None,
    seed: int | None = 0,
) -> SystemModel:
    """Generate a synthetic system per ``params`` (default: Table 1).

    Parameters
    ----------
    params:
        Workload configuration; ``None`` means :meth:`WorkloadParams.paper`.
    seed:
        Root seed for the labelled RNG tree. The same seed reproduces the
        same model bit-for-bit.

    Returns
    -------
    SystemModel
        Fully validated universe, ready for any policy.
    """
    p = params or WorkloadParams.paper()
    factory = RngFactory(seed)

    # 1. global object catalogue ---------------------------------------
    rng_obj = factory.generator("objects")
    sizes = p.mo_sizes.sample(rng_obj, p.n_objects)
    objects = [ObjectSpec(object_id=k, size=int(sizes[k])) for k in range(p.n_objects)]

    # 1b. globally shared page templates (optional): the company-wide
    # pages every site mirrors ("we treat each copy as a different page")
    templates: list[tuple[int, tuple[int, ...], tuple[int, ...]]] = []
    if p.mirrored_page_fraction > 0.0:
        rng_tpl = factory.generator("templates")
        avg_pages = (p.pages_per_server[0] + p.pages_per_server[1]) // 2
        n_templates = max(1, int(round(p.mirrored_page_fraction * avg_pages)))
        html_tpl = p.html_sizes.sample(rng_tpl, n_templates)
        for t in range(n_templates):
            n_comp = _randint_in(rng_tpl, p.compulsory_per_page)
            has_opt = rng_tpl.random() < p.optional_page_fraction
            n_opt = _randint_in(rng_tpl, p.optional_per_page) if has_opt else 0
            refs = rng_tpl.choice(p.n_objects, size=n_comp + n_opt, replace=False)
            templates.append(
                (
                    int(html_tpl[t]),
                    tuple(int(k) for k in refs[:n_comp]),
                    tuple(int(k) for k in refs[n_comp:]),
                )
            )

    # 2. servers ---------------------------------------------------------
    rng_srv = factory.generator("servers")
    servers: list[ServerSpec] = []
    pools: list[np.ndarray] = []
    for i in range(p.n_servers):
        pool_size = _randint_in(rng_srv, p.objects_per_server)
        pool = rng_srv.choice(p.n_objects, size=pool_size, replace=False)
        pools.append(pool)
        servers.append(
            ServerSpec(
                server_id=i,
                name=f"LS{i}",
                storage_capacity=p.storage_capacity,
                processing_capacity=p.processing_capacity,
                rate=float(kbps_to_bps(_uniform_in(rng_srv, p.local_rate_range_kbps))),
                overhead=_uniform_in(rng_srv, p.local_overhead_range),
                repo_rate=float(
                    kbps_to_bps(_uniform_in(rng_srv, p.repo_rate_range_kbps))
                ),
                repo_overhead=_uniform_in(rng_srv, p.repo_overhead_range),
            )
        )

    # 3. pages -------------------------------------------------------------
    pages: list[PageSpec] = []
    page_id = 0
    for i in range(p.n_servers):
        rng_pages = factory.generator(f"pages/{i}")
        n_pages = _randint_in(rng_pages, p.pages_per_server)
        html = p.html_sizes.sample(rng_pages, n_pages)
        freqs, _hot = hot_cold_frequencies(
            n_pages,
            p.page_rate_per_server,
            p.hot_page_fraction,
            p.hot_traffic_fraction,
            rng=rng_pages,
        )
        pool = pools[i]
        n_mirrored = min(len(templates), n_pages)
        for local_j in range(n_pages):
            if local_j < n_mirrored:
                # a copy of a shared template (distinct page per server)
                html_size, compulsory, optional = templates[local_j]
            else:
                n_comp = _randint_in(rng_pages, p.compulsory_per_page)
                n_comp = min(n_comp, len(pool))
                has_optional = rng_pages.random() < p.optional_page_fraction
                n_opt = 0
                if has_optional:
                    n_opt = _randint_in(rng_pages, p.optional_per_page)
                    n_opt = min(n_opt, len(pool) - n_comp)
                refs = rng_pages.choice(pool, size=n_comp + n_opt, replace=False)
                compulsory = tuple(int(k) for k in refs[:n_comp])
                optional = tuple(int(k) for k in refs[n_comp:])
                html_size = int(html[local_j])
            pages.append(
                PageSpec(
                    page_id=page_id,
                    server=i,
                    html_size=html_size,
                    frequency=float(freqs[local_j]),
                    compulsory=compulsory,
                    optional=optional,
                    optional_prob=(
                        p.optional_prob_per_object if optional else 0.0
                    ),
                )
            )
            page_id += 1

    # 4. replica mesh (k > 2 only) ---------------------------------------
    # The "mesh" RNG stream is only ever created when extra replica
    # sites exist, so every k = 2 workload remains bit-identical to the
    # pre-mesh generator at any seed.
    topology = None
    if p.n_streams > 2:
        rng_mesh = factory.generator("mesh")
        n_extra = p.n_streams - 2
        extra_rates = np.empty((p.n_servers, n_extra))
        extra_ovhd = np.empty((p.n_servers, n_extra))
        for i in range(p.n_servers):
            for r in range(n_extra):
                extra_rates[i, r] = kbps_to_bps(
                    _uniform_in(rng_mesh, p.repo_rate_range_kbps)
                )
                extra_ovhd[i, r] = _uniform_in(rng_mesh, p.repo_overhead_range)
        topology = StreamTopology(
            rates=np.column_stack(
                [np.array([s.repo_rate for s in servers]), extra_rates]
            ),
            overheads=np.column_stack(
                [np.array([s.repo_overhead for s in servers]), extra_ovhd]
            ),
        )

    repository = RepositorySpec(processing_capacity=p.repository_capacity)
    return SystemModel(servers, repository, pages, objects, topology=topology)

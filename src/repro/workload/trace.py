"""Request traces for the evaluation (Section 5.1).

The paper generates **10,000 page requests at each server**; a request
for a page that carries optional objects turns, with probability 10%,
into an interested user who then requests 30% of the page's optional
links (each over a fresh TCP connection).

:class:`RequestTrace` stores the sampled trace in flat NumPy arrays so
the simulator can evaluate any allocation over it fully vectorised:

* ``page_of_request`` — page id per page request (grouped by server),
* ``server_of_request`` — hosting server per request,
* ``opt_entries`` — flat optional-entry indices (into the model's
  ``opt_objects``) of every optional download in the trace,
* ``opt_owner`` — the page-request index each optional download belongs
  to.

The same trace is reused across policies inside one experiment run, so
policy comparisons are paired (common random numbers) — this mirrors the
paper's setup where all policies face the same request stream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import SystemModel
from repro.util.rng import as_generator
from repro.workload.params import WorkloadParams

__all__ = ["RequestTrace", "generate_trace"]


@dataclass(frozen=True)
class RequestTrace:
    """A sampled request stream over a :class:`SystemModel`."""

    model: SystemModel
    page_of_request: np.ndarray
    """Page id per page request, dtype intp."""
    server_of_request: np.ndarray
    """Hosting server per page request (redundant with page but cheap)."""
    opt_entries: np.ndarray
    """Flat optional-entry indices of every optional download requested."""
    opt_owner: np.ndarray
    """Index into ``page_of_request`` owning each optional download."""

    @property
    def n_requests(self) -> int:
        """Number of page requests in the trace."""
        return len(self.page_of_request)

    @property
    def n_optional_downloads(self) -> int:
        """Number of optional-object downloads in the trace."""
        return len(self.opt_entries)

    def requests_for_server(self, server_id: int) -> np.ndarray:
        """Indices of page requests hitting ``server_id``."""
        return np.flatnonzero(self.server_of_request == server_id)

    def comp_expansion(
        self, indptr: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Memoised ragged expansion of the trace over ``indptr``.

        Returns the ``(owner, entries)`` pairs of
        :func:`repro.simulation.engine.expand_ragged` for
        ``page_of_request``.  The expansion only depends on the trace and
        the CSR row pointers, and the simulator replays the *same* trace
        against many allocations per experiment — caching it here removes
        the dominant repeated setup cost of ``simulate_allocation``.  The
        cache is keyed by ``indptr`` identity so a trace replayed against
        a structurally different model never sees stale pairs.
        """
        cached = getattr(self, "_comp_expansion_cache", None)
        if cached is not None and cached[0] is indptr:
            return cached[1], cached[2]
        # local import: trace.py must stay importable without the
        # simulation package (workload generation is dependency-light)
        from repro.simulation.engine import expand_ragged

        owner, entries = expand_ragged(self.page_of_request, indptr)
        # frozen dataclass: the cache is private mutable state, not a field
        object.__setattr__(
            self, "_comp_expansion_cache", (indptr, owner, entries)
        )
        return owner, entries

    def validate(self) -> None:
        """Sanity-check the trace's internal consistency (for tests)."""
        m = self.model
        assert self.page_of_request.min(initial=0) >= 0
        if self.n_requests:
            assert self.page_of_request.max() < m.n_pages
            expect_srv = m.page_server[self.page_of_request]
            assert np.array_equal(expect_srv, self.server_of_request)
        if self.n_optional_downloads:
            assert self.opt_entries.max() < len(m.opt_objects)
            owners = self.page_of_request[self.opt_owner]
            assert np.array_equal(m.opt_pages[self.opt_entries], owners)


def generate_trace(
    model: SystemModel,
    params: WorkloadParams | None = None,
    seed: int | np.random.Generator | None = 1,
    requests_per_server: int | None = None,
) -> RequestTrace:
    """Sample a request trace from the model's page frequencies.

    Page requests at each server are i.i.d. draws proportional to
    ``f(W_j)`` (the hot/cold skew realises itself in the trace).  For
    each request whose page has optional links, with probability
    ``optional_interest_prob`` the user requests
    ``round(optional_request_fraction x n_links)`` distinct optional
    objects chosen uniformly.

    Parameters
    ----------
    model:
        The universe to sample over.
    params:
        Supplies trace-shape knobs; default Table 1.
    seed:
        RNG seed or generator.
    requests_per_server:
        Override for ``params.requests_per_server``.
    """
    p = params or WorkloadParams.paper()
    rng = as_generator(seed)
    n_req = requests_per_server or p.requests_per_server

    pages_list: list[np.ndarray] = []
    for i in range(model.n_servers):
        page_ids = np.asarray(model.pages_by_server[i], dtype=np.intp)
        if len(page_ids) == 0:
            continue
        weights = model.frequencies[page_ids]
        total = weights.sum()
        if total <= 0:
            probs = np.full(len(page_ids), 1.0 / len(page_ids))
        else:
            probs = weights / total
        draws = rng.choice(page_ids, size=n_req, p=probs)
        pages_list.append(draws)
    page_of_request = (
        np.concatenate(pages_list) if pages_list else np.empty(0, dtype=np.intp)
    )
    server_of_request = model.page_server[page_of_request]

    # optional downloads -------------------------------------------------
    n_opt_links = np.diff(model.opt_indptr)
    has_optional = n_opt_links[page_of_request] > 0
    interested = has_optional & (
        rng.random(len(page_of_request)) < p.optional_interest_prob
    )
    opt_entries: list[np.ndarray] = []
    opt_owner: list[np.ndarray] = []
    for r in np.flatnonzero(interested):
        j = int(page_of_request[r])
        sl = model.opt_slice(j)
        n_links = sl.stop - sl.start
        n_take = max(1, int(round(p.optional_request_fraction * n_links)))
        n_take = min(n_take, n_links)
        chosen = rng.choice(n_links, size=n_take, replace=False) + sl.start
        opt_entries.append(np.sort(chosen))
        opt_owner.append(np.full(n_take, r, dtype=np.intp))
    return RequestTrace(
        model=model,
        page_of_request=page_of_request.astype(np.intp),
        server_of_request=server_of_request.astype(np.intp),
        opt_entries=(
            np.concatenate(opt_entries).astype(np.intp)
            if opt_entries
            else np.empty(0, dtype=np.intp)
        ),
        opt_owner=(
            np.concatenate(opt_owner)
            if opt_owner
            else np.empty(0, dtype=np.intp)
        ),
    )

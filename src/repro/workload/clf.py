"""Import real access logs (Common Log Format) as request traces.

A deployed operator has Apache/NCSA logs, not synthetic traces.  This
module parses CLF lines,

``host ident user [timestamp] "GET /path HTTP/1.0" status bytes``

maps request paths onto the model's pages and optional objects, and
assembles a :class:`~repro.workload.trace.RequestTrace` the simulator
and estimator consume directly.  Conventions (overridable via
``page_resolver``):

* ``/page/<id>`` or ``/w/<id>``            — a page request,
* ``/mo/<id>.bin``                          — an optional-object request,
  attributed to the most recent page request from the same host that
  links the object (browsers fetch optionals after the page),
* anything else (compulsory MOs ride the page's pipelined connections
  and never appear as separate entries in this model) is ignored.

Malformed lines are counted, not fatal — logs are dirty.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.types import SystemModel
from repro.workload.trace import RequestTrace

__all__ = ["ClfParseResult", "parse_clf"]

_LINE_RE = re.compile(
    r'^(?P<host>\S+) \S+ \S+ \[(?P<ts>[^\]]*)\] '
    r'"(?P<method>\S+) (?P<path>\S+)[^"]*" (?P<status>\d{3}) (?P<bytes>\S+)'
)
_PAGE_RE = re.compile(r"^/(?:page|w)/(\d+)$")
_MO_RE = re.compile(r"^/mo/(\d+)(?:\.bin)?$")


@dataclass
class ClfParseResult:
    """A parsed trace plus parse diagnostics."""

    trace: RequestTrace
    page_requests: int
    optional_downloads: int
    malformed_lines: int = 0
    unresolved_paths: int = 0
    orphan_optionals: int = 0
    """Optional-object requests with no owning page request to attach to."""
    non_success: int = 0
    """Lines with non-2xx statuses (skipped)."""


def parse_clf(
    lines,
    model: SystemModel,
    page_resolver: Callable[[str], int | None] | None = None,
) -> ClfParseResult:
    """Parse CLF ``lines`` into a trace over ``model``.

    Parameters
    ----------
    lines:
        Iterable of log lines (strings).
    model:
        The universe the paths refer to.
    page_resolver:
        Optional ``path -> page_id`` override for custom URL layouts
        (return ``None`` for non-page paths; optional-object paths still
        follow the ``/mo/<id>`` convention).
    """
    m = model
    pages: list[int] = []
    opt_entries: list[int] = []
    opt_owner: list[int] = []
    malformed = unresolved = orphans = non_success = 0

    # last page request index per client host, for optional attribution
    last_page_req: dict[str, int] = {}
    # per page: object id -> flat optional entry index
    opt_index: list[dict[int, int]] = [dict() for _ in range(m.n_pages)]
    for j in range(m.n_pages):
        sl = m.opt_slice(j)
        for e in range(sl.start, sl.stop):
            opt_index[j][int(m.opt_objects[e])] = e

    for line in lines:
        line = line.strip()
        if not line:
            continue
        match = _LINE_RE.match(line)
        if not match:
            malformed += 1
            continue
        if not match.group("status").startswith("2"):
            non_success += 1
            continue
        path = match.group("path")
        host = match.group("host")

        page_id: int | None = None
        if page_resolver is not None:
            page_id = page_resolver(path)
        if page_id is None:
            pm = _PAGE_RE.match(path)
            if pm:
                page_id = int(pm.group(1))
        if page_id is not None:
            if not 0 <= page_id < m.n_pages:
                unresolved += 1
                continue
            last_page_req[host] = len(pages)
            pages.append(page_id)
            continue

        mo = _MO_RE.match(path)
        if mo:
            k = int(mo.group(1))
            owner = last_page_req.get(host)
            if owner is None:
                orphans += 1
                continue
            entry = opt_index[pages[owner]].get(k)
            if entry is None:
                # a compulsory MO (pipelined with the page) or a foreign
                # object — neither is a separate download in the model
                orphans += 1
                continue
            opt_entries.append(entry)
            opt_owner.append(owner)
            continue
        unresolved += 1

    page_arr = np.asarray(pages, dtype=np.intp)
    trace = RequestTrace(
        model=m,
        page_of_request=page_arr,
        server_of_request=(
            m.page_server[page_arr].astype(np.intp)
            if len(page_arr)
            else np.empty(0, dtype=np.intp)
        ),
        opt_entries=np.asarray(opt_entries, dtype=np.intp),
        opt_owner=np.asarray(opt_owner, dtype=np.intp),
    )
    trace.validate()
    return ClfParseResult(
        trace=trace,
        page_requests=len(pages),
        optional_downloads=len(opt_entries),
        malformed_lines=malformed,
        unresolved_paths=unresolved,
        orphan_optionals=orphans,
        non_success=non_success,
    )

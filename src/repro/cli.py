"""Command-line interface: ``python -m repro <command>``.

Commands map one-to-one onto the experiment harnesses:

* ``table1`` — nominal-vs-realised workload parameters,
* ``fig1`` / ``fig2`` / ``fig3`` — regenerate the paper's figures,
* ``claims`` — the Section 5.2 scalar claims,
* ``ablation`` — ablation A5: replica selection vs stream balancing,
* ``dynamic`` — the extension E1 epoch experiment,
* ``demo`` — one quick end-to-end policy-vs-baselines comparison.

All commands print ASCII artifacts to stdout.  ``--scale`` and
``--runs`` control workload size and averaging (defaults match the
benchmark suite's quick settings; ``--scale paper`` is Table 1), and
``--jobs`` fans the sweep work units out over worker processes
(default: ``$REPRO_JOBS`` or serial; the results are bit-identical
either way).

``--metrics-out PATH`` (or the ``REPRO_METRICS`` environment variable)
enables the :mod:`repro.obs` observability layer for the command and
writes a JSON run manifest — per-phase wall-clock spans, restoration and
simulation counters, seed/scale/kernel/git-SHA provenance — to ``PATH``
(a ``.json`` file, or a directory receiving a timestamped file).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from repro import obs
from repro.core.partition import resolve_kernel
from repro.core.shard import resolve_shards
from repro.core.types import resolve_streams
from repro.experiments.executor import resolve_jobs
from repro.experiments.runner import ExperimentConfig
from repro.workload.params import WorkloadParams

__all__ = ["main", "build_parser"]

_SCALES = {
    "paper": WorkloadParams.paper,
    "small": WorkloadParams.small,
    "tiny": WorkloadParams.tiny,
}


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Replicating the Contents of a WWW "
            "Multimedia Repository to Minimize Download Time' "
            "(Loukopoulos & Ahmad, IPPS 2000)"
        ),
    )
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="small",
        help="workload size (paper = Table 1 verbatim)",
    )
    parser.add_argument(
        "--runs", type=int, default=3, help="independent runs to average"
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=None,
        help="trace length per server (defaults to the scale's setting)",
    )
    parser.add_argument("--seed", type=int, default=2000, help="root seed")
    parser.add_argument(
        "--kernel",
        choices=("batched", "scalar", "sharded"),
        default=os.environ.get("REPRO_KERNEL", "batched").lower(),
        help="policy kernel (default: $REPRO_KERNEL or 'batched'; all "
        "choices produce bit-identical allocations; 'sharded' fans "
        "per-server shards over worker processes)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="server shards for --kernel sharded (default: $REPRO_SHARDS "
        "if set, else min(servers, cores); results are bit-identical)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for sweep work units (default: $REPRO_JOBS "
        "if set, else 1 = serial; results are bit-identical)",
    )
    parser.add_argument(
        "--streams",
        type=int,
        default=None,
        metavar="K",
        help="download streams per page view (default: $REPRO_STREAMS if "
        "set, else 2 = the paper's local+repository model; K>2 adds "
        "replica-mesh sites as extra parallel sources)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="collect metrics and write a JSON run manifest to PATH "
        "(default: $REPRO_METRICS if set, else disabled)",
    )

    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("table1", help="Table 1: nominal vs realised workload")
    sub.add_parser("fig1", help="Figure 1: response time vs storage")
    sub.add_parser("fig2", help="Figure 2: response time vs local capacity")
    sub.add_parser("fig3", help="Figure 3: constrained repository capacity")
    sub.add_parser("claims", help="Section 5.2 scalar claims")
    sub.add_parser(
        "ablation", help="ablation A5: replica selection vs stream balancing"
    )
    dyn = sub.add_parser("dynamic", help="extension E1: re-allocation cadence")
    dyn.add_argument("--epochs", type=int, default=6)
    dyn.add_argument("--drift-every", type=int, default=2)
    dyn.add_argument(
        "--strategies",
        default=None,
        metavar="LIST",
        help="comma-separated subset of static,periodic,incremental,oracle "
        "(default: all four; named RNG streams keep the rest paired)",
    )
    sub.add_parser("demo", help="one policy-vs-baselines comparison")
    sub.add_parser(
        "analyze", help="run the policy once and describe the allocation"
    )
    sub.add_parser(
        "linkspeed", help="extension E2: repository link-speed sensitivity"
    )
    ksw = sub.add_parser(
        "ksweep", help="extension E4: value of extra download streams"
    )
    ksw.add_argument(
        "--max-streams",
        type=int,
        default=5,
        metavar="K",
        help="sweep k = 2..K (default: 5)",
    )
    rep = sub.add_parser(
        "reproduce", help="every paper artifact in one combined report"
    )
    rep.add_argument(
        "--charts", action="store_true", help="append ASCII bar charts"
    )
    return parser


def _config(args: argparse.Namespace) -> ExperimentConfig:
    params = _SCALES[args.scale]()
    if args.requests:
        params = params.with_(requests_per_server=args.requests)
    params = _apply_streams(params, args)
    return ExperimentConfig(
        params=params,
        n_runs=args.runs,
        base_seed=args.seed,
        kernel=args.kernel,
        jobs=args.jobs,
    )


def _apply_streams(params, args: argparse.Namespace):
    """Apply a validated ``--streams``/``$REPRO_STREAMS`` request.

    ``k > 2`` provisions enough repository-grade sources for the mesh;
    the default ``k = 2`` leaves the scenario untouched.
    """
    k = getattr(args, "streams", None)
    if not k or k == params.n_streams:
        return params
    return params.with_(
        n_streams=k, n_repositories=max(params.n_repositories, k - 1)
    )


def _cmd_table1(args: argparse.Namespace) -> str:
    from repro.experiments.table1 import run_table1

    return run_table1(
        _apply_streams(_SCALES[args.scale](), args), seed=args.seed
    ).render()


def _cmd_fig1(args: argparse.Namespace) -> str:
    from repro.experiments.fig1_storage import run_fig1

    return run_fig1(_config(args)).render()


def _cmd_fig2(args: argparse.Namespace) -> str:
    from repro.experiments.fig2_processing import run_fig2

    return run_fig2(_config(args)).render()


def _cmd_fig3(args: argparse.Namespace) -> str:
    from repro.experiments.fig3_central import run_fig3

    return run_fig3(_config(args)).render()


def _cmd_claims(args: argparse.Namespace) -> str:
    from repro.experiments.claims import run_headline_claims

    return run_headline_claims(_config(args)).render()


def _cmd_ablation(args: argparse.Namespace) -> str:
    from repro.experiments.ablation_popularity import run_ablation_popularity

    return run_ablation_popularity(_config(args)).render()


def _cmd_dynamic(args: argparse.Namespace) -> str:
    from repro.dynamic import STRATEGIES, EpochConfig, run_dynamic_experiment

    params = _apply_streams(_SCALES[args.scale](), args)
    epoch_kwargs = {}
    if args.requests:
        epoch_kwargs["requests_per_server"] = args.requests
    cfg = EpochConfig(
        n_epochs=args.epochs, drift_every=args.drift_every, **epoch_kwargs
    )
    strategies = None
    if args.strategies:
        strategies = [
            s.strip() for s in args.strategies.split(",") if s.strip()
        ]
        bad = [s for s in strategies if s not in STRATEGIES]
        if bad:
            raise SystemExit(
                f"--strategies: unknown {bad}; valid: {','.join(STRATEGIES)}"
            )
    return run_dynamic_experiment(
        params, cfg, seed=args.seed, strategies=strategies
    ).render()


def _cmd_demo(args: argparse.Namespace) -> str:
    from repro.baselines import IdealLRUPolicy, LocalPolicy, RemotePolicy
    from repro.core.policy import RepositoryReplicationPolicy
    from repro.simulation.engine import simulate_allocation
    from repro.util.tables import format_table
    from repro.workload.generator import generate_workload
    from repro.workload.trace import generate_trace

    params = _SCALES[args.scale]()
    if args.requests:
        params = params.with_(requests_per_server=args.requests)
    params = _apply_streams(params, args)
    model = generate_workload(params, seed=args.seed)
    result = RepositoryReplicationPolicy(
        kernel=args.kernel, shards=args.shards
    ).run(model)
    trace = generate_trace(model, params, seed=args.seed + 1)
    sims = {
        "proposed": simulate_allocation(result.allocation, trace, seed=2),
        "local": simulate_allocation(LocalPolicy().allocate(model), trace, seed=2),
        "remote": simulate_allocation(RemotePolicy().allocate(model), trace, seed=2),
    }
    lru, _ = IdealLRUPolicy(
        cache_bytes=result.allocation.stored_bytes_all()
    ).evaluate(trace, seed=2)
    sims["ideal-lru"] = lru
    base = sims["proposed"].mean_page_time
    rows = [
        (
            name,
            f"{sim.mean_page_time:.0f}s",
            f"{sim.mean_page_time / base - 1:+.1%}",
        )
        for name, sim in sims.items()
    ]
    return format_table(
        ["policy", "mean page time", "vs proposed"],
        rows,
        title=f"{model} / {trace.n_requests} requests",
    )


def _cmd_analyze(args: argparse.Namespace) -> str:
    from repro.analysis import describe_allocation
    from repro.core.policy import RepositoryReplicationPolicy
    from repro.workload.generator import generate_workload

    params = _apply_streams(_SCALES[args.scale](), args)
    model = generate_workload(params, seed=args.seed)
    result = RepositoryReplicationPolicy(
        kernel=args.kernel, shards=args.shards
    ).run(model)
    cost = RepositoryReplicationPolicy(kernel=args.kernel).cost_model(model)
    report = describe_allocation(result.allocation, cost)
    return f"{result.summary()}\n\n{report.render()}"


def _cmd_linkspeed(args: argparse.Namespace) -> str:
    from repro.experiments.extension_link_speed import run_link_speed

    return run_link_speed(_config(args)).render()


def _cmd_ksweep(args: argparse.Namespace) -> str:
    from repro.experiments.extension_streams import run_streams

    if args.max_streams < 2:
        raise SystemExit("--max-streams must be at least 2")
    return run_streams(
        _config(args), streams=range(2, args.max_streams + 1)
    ).render()


def _cmd_reproduce(args: argparse.Namespace) -> str:
    from repro.experiments.report import reproduce_all

    return reproduce_all(_config(args)).render(charts=args.charts)


_COMMANDS = {
    "reproduce": _cmd_reproduce,
    "table1": _cmd_table1,
    "fig1": _cmd_fig1,
    "fig2": _cmd_fig2,
    "fig3": _cmd_fig3,
    "claims": _cmd_claims,
    "ablation": _cmd_ablation,
    "dynamic": _cmd_dynamic,
    "demo": _cmd_demo,
    "analyze": _cmd_analyze,
    "linkspeed": _cmd_linkspeed,
    "ksweep": _cmd_ksweep,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        # argparse only validates explicit values, not the env default
        args.kernel = resolve_kernel(args.kernel)
    except ValueError as exc:
        parser.error(f"--kernel/$REPRO_KERNEL: {exc}")
    try:
        # explicit --jobs, else $REPRO_JOBS (validated), else 1 = serial
        args.jobs = resolve_jobs(args.jobs)
    except ValueError as exc:
        parser.error(f"--jobs/$REPRO_JOBS: {exc}")
    try:
        # explicit --shards, else $REPRO_SHARDS (validated), else auto
        # at run time (the model's server count is not known here)
        args.shards = resolve_shards(args.shards)
    except ValueError as exc:
        parser.error(f"--shards/$REPRO_SHARDS: {exc}")
    try:
        # explicit --streams, else $REPRO_STREAMS (validated), else 2
        args.streams = resolve_streams(args.streams)
    except ValueError as exc:
        parser.error(f"--streams/$REPRO_STREAMS: {exc}")
    if args.streams > 2 and args.kernel == "sharded":
        parser.error(
            "--kernel sharded supports the k=2 topology only; use "
            "--kernel batched or scalar with --streams > 2"
        )
    metrics_out = args.metrics_out or obs.env_metrics_path()
    if metrics_out:
        run_info = {
            "entry": "cli",
            "command": args.command,
            "scale": args.scale,
            "seed": args.seed,
            "runs": args.runs,
            "kernel": args.kernel,
            "jobs": args.jobs,
            "shards": args.shards,
        }
        with obs.collect(run=run_info, out=metrics_out, name=args.command):
            output = _COMMANDS[args.command](args)
    else:
        output = _COMMANDS[args.command](args)
    print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

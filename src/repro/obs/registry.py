"""Zero-dependency metrics registry: counters, gauges, phase spans.

The policy pipeline (PARTITION → restoration → OFF_LOADING) and the
simulation replay report into whatever registry is *active*:

* :class:`MetricsRegistry` — records everything: monotonically increasing
  **counters** (``count``), last-write-wins **gauges** (``gauge``), and
  nestable wall-clock **spans** (``span``) whose slash-joined paths mirror
  the call nesting (``policy/storage-restoration``).
* :class:`NullRegistry` — the default.  Every method is a no-op and
  ``span`` hands back one shared reusable null context manager, so
  instrumented call sites cost a dict-free attribute lookup and an empty
  call when observability is off.  Golden regressions and the
  bit-identical kernel guarantee are therefore untouched by default.

Call sites always go through :func:`get_registry` — swapping the active
registry (:func:`set_registry`, :func:`use_registry`, or the higher-level
:func:`repro.obs.collect`) flips the whole library between the two modes
without any plumbing through function signatures.

Instrumentation is deliberately *phase-grained*: spans and counters wrap
entry points (one policy phase, one restoration sweep, one simulation
replay), never the greedy inner loops, so the enabled-mode overhead is
also negligible.
"""

from __future__ import annotations

import contextlib
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "MetricsRegistry",
    "NullRegistry",
    "SpanRecord",
    "get_registry",
    "set_registry",
    "use_registry",
    "metrics_enabled",
]


@dataclass
class SpanRecord:
    """One completed (or in-flight) wall-clock span."""

    name: str
    path: str
    """Slash-joined nesting path, e.g. ``policy/partition``."""
    seconds: float = 0.0

    def as_dict(self) -> dict:
        return {"name": self.name, "path": self.path, "seconds": self.seconds}


class MetricsRegistry:
    """Recording registry (see module docstring).

    Not thread-safe by design — one registry per run/process, matching the
    single-threaded pipeline.  All state is plain dicts/lists so a
    snapshot is trivially JSON-serialisable.
    """

    enabled: bool = True

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.spans: list[SpanRecord] = []
        self._stack: list[str] = []

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def count(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to counter ``name`` (created at 0)."""
        self.counters[name] = self.counters.get(name, 0.0) + float(value)

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self.gauges[name] = float(value)

    @contextmanager
    def span(self, name: str) -> Iterator[SpanRecord]:
        """Time a block; spans nest and their paths record the nesting."""
        self._stack.append(name)
        rec = SpanRecord(name=name, path="/".join(self._stack))
        start = time.perf_counter()
        try:
            yield rec
        finally:
            rec.seconds = time.perf_counter() - start
            self._stack.pop()
            self.spans.append(rec)

    @contextmanager
    def timer(self, name: str) -> Iterator[SpanRecord]:
        """Alias of :meth:`span` for non-phase one-off timings."""
        with self.span(name) as rec:
            yield rec

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def phase_seconds(self) -> dict[str, float]:
        """Total recorded seconds per span path."""
        out: dict[str, float] = {}
        for rec in self.spans:
            out[rec.path] = out.get(rec.path, 0.0) + rec.seconds
        return out

    def span_seconds(self, path: str) -> float:
        """Total seconds of spans whose path equals ``path``."""
        return sum(r.seconds for r in self.spans if r.path == path)

    def snapshot(self) -> dict:
        """JSON-ready dump of all recorded metrics."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "spans": [r.as_dict() for r in self.spans],
            "phase_seconds": self.phase_seconds(),
        }

    def merge_snapshot(self, snap: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        The merge semantics match what a single registry would have
        recorded had the work run in-process: counters are **added**,
        spans are **appended** (so per-path phase seconds sum), and
        gauges are **last-write-wins** in merge order.  The parallel
        experiment executor (:mod:`repro.experiments.executor`) merges
        worker snapshots in work-unit order, which makes merged counters
        and deterministic gauges independent of the worker count.
        """
        for name, value in snap.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0.0) + float(value)
        for name, value in snap.get("gauges", {}).items():
            self.gauges[name] = float(value)
        for rec in snap.get("spans", []):
            self.spans.append(
                SpanRecord(
                    name=rec["name"],
                    path=rec["path"],
                    seconds=float(rec["seconds"]),
                )
            )

    def clear(self) -> None:
        """Forget everything recorded so far (open spans survive)."""
        self.counters.clear()
        self.gauges.clear()
        self.spans.clear()


#: One reusable, reentrant no-op context manager shared by every
#: ``NullRegistry.span`` call (``contextlib.nullcontext`` keeps no state).
_NULL_SPAN = contextlib.nullcontext(SpanRecord(name="", path=""))


class NullRegistry(MetricsRegistry):
    """No-op registry — the default when observability is disabled."""

    enabled = False

    def count(self, name: str, value: float = 1.0) -> None:  # noqa: D102
        pass

    def gauge(self, name: str, value: float) -> None:  # noqa: D102
        pass

    def span(self, name: str):  # noqa: D102 - returns shared nullcontext
        return _NULL_SPAN

    timer = span

    def merge_snapshot(self, snap: dict) -> None:  # noqa: D102
        pass


_NULL_REGISTRY = NullRegistry()
_active: MetricsRegistry = _NULL_REGISTRY


def get_registry() -> MetricsRegistry:
    """The registry instrumented call sites report into."""
    return _active


def set_registry(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Install ``registry`` as the active one (``None`` disables)."""
    global _active
    _active = registry if registry is not None else _NULL_REGISTRY
    return _active


def metrics_enabled() -> bool:
    """Whether a recording registry is currently active."""
    return _active.enabled


@contextmanager
def use_registry(registry: MetricsRegistry | None) -> Iterator[MetricsRegistry]:
    """Swap the active registry for the duration of a block."""
    previous = _active
    installed = set_registry(registry)
    try:
        yield installed
    finally:
        set_registry(previous)

"""repro.obs — observability: metrics registry + structured run manifests.

Lightweight, zero-dependency instrumentation for the replication
pipeline.  Disabled by default: the active registry is a
:class:`~repro.obs.registry.NullRegistry` whose every operation is a
no-op, so the instrumented hot paths (and the golden-pinned numerical
results) are untouched until a caller opts in.

Opting in
---------
* **Library**: wrap any block in :func:`collect` —

  >>> import repro, repro.obs
  >>> model = repro.generate_workload(repro.WorkloadParams.tiny(), seed=3)
  >>> with repro.obs.collect() as reg:
  ...     result = repro.RepositoryReplicationPolicy().run(model)
  >>> reg.counters["policy.runs"]
  1.0

  Pass ``out="path/to.json"`` (or a directory) and :func:`collect` writes
  a run manifest on exit.
* **CLI**: ``python -m repro --metrics-out PATH <command>``.
* **Environment**: set ``REPRO_METRICS=PATH`` — honoured by the CLI, the
  benchmark suite, and bare :meth:`RepositoryReplicationPolicy.run`
  calls (each policy run then writes its own manifest).

See :mod:`repro.obs.registry` for the metric primitives and
:mod:`repro.obs.manifest` for the manifest schema.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Iterator

from repro.obs.manifest import (
    ENV_VAR,
    SCHEMA,
    WORKER_ENV_VAR,
    build_manifest,
    git_revision,
    policy_section,
    resolve_manifest_path,
    simulation_section,
    write_manifest,
)
from repro.obs.registry import (
    MetricsRegistry,
    NullRegistry,
    SpanRecord,
    get_registry,
    metrics_enabled,
    set_registry,
    use_registry,
)

__all__ = [
    "ENV_VAR",
    "SCHEMA",
    "WORKER_ENV_VAR",
    "MetricsRegistry",
    "NullRegistry",
    "SpanRecord",
    "build_manifest",
    "collect",
    "env_metrics_path",
    "get_registry",
    "git_revision",
    "metrics_enabled",
    "policy_section",
    "resolve_manifest_path",
    "set_registry",
    "simulation_section",
    "use_registry",
    "write_manifest",
]


def env_metrics_path() -> str | None:
    """The ``REPRO_METRICS`` output spec, or ``None`` when unset/empty."""
    value = os.environ.get(ENV_VAR, "").strip()
    return value or None


@contextmanager
def collect(
    run: dict | None = None,
    out: str | os.PathLike | None = None,
    name: str = "run",
    policy: Any | None = None,
) -> Iterator[MetricsRegistry]:
    """Enable metrics for a block; optionally write a manifest on exit.

    Parameters
    ----------
    run:
        Identity fields recorded under the manifest's ``"run"`` key.
    out:
        Manifest destination (see
        :func:`~repro.obs.manifest.resolve_manifest_path`).  ``None``
        collects without writing — read the yielded registry instead.
    name:
        Manifest filename stem when ``out`` is a directory.
    policy:
        Optional mutable mapping; if it holds a ``"result"``
        :class:`~repro.core.policy.PolicyResult` (or ``"simulation"``
        result) at exit, the corresponding manifest sections are filled.
    """
    registry = MetricsRegistry()
    with use_registry(registry):
        yield registry
    if out is not None:
        extras = policy or {}
        write_manifest(
            resolve_manifest_path(out, name=name),
            build_manifest(
                registry,
                run=run,
                policy=extras.get("result"),
                simulation=extras.get("simulation"),
            ),
        )

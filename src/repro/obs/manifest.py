"""Structured run manifests: one JSON document per policy/experiment run.

A manifest is the machine-readable record the benchmark suite and the
CLI emit so the performance trajectory of this repository stays diffable
across PRs: what ran (command, seed, workload scale, kernel, git SHA),
how long each phase took (wall-clock spans from the active
:class:`~repro.obs.registry.MetricsRegistry`), and what the run did
(restoration counters, off-loading rounds, simulation percentiles,
constraint status).

Schema (``repro/run-manifest-v1``)
----------------------------------
::

    {
      "schema": "repro/run-manifest-v1",
      "created_at": "2026-08-05T12:00:00Z",   # UTC, ISO-8601
      "git_sha": "abc123..." | null,          # null outside a checkout
      "run": {...},                            # caller-supplied identity:
                                               # command, seed, scale,
                                               # kernel, n_runs, ...
      "phases": [                              # every span, in completion
        {"name": "...", "path": "policy/partition", "seconds": 0.12}
      ],
      "phase_seconds": {"policy/partition": 0.12, ...},  # per-path totals
      "counters": {"restoration.storage.evictions": 42.0, ...},
      "gauges": {"policy.objective": 123.4, ...},
      "policy": {...},                         # optional PolicyResult digest
      "simulation": {...}                      # optional SimulationResult digest
    }

``policy`` and ``simulation`` sections are populated from live result
objects when the caller has them (:func:`policy_section`,
:func:`simulation_section`); registry counters/gauges carry the same
information in aggregate form when it does not.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import time
from typing import Any

from repro.obs.registry import MetricsRegistry

__all__ = [
    "SCHEMA",
    "ENV_VAR",
    "WORKER_ENV_VAR",
    "build_manifest",
    "write_manifest",
    "policy_section",
    "simulation_section",
    "resolve_manifest_path",
    "git_revision",
]

SCHEMA = "repro/run-manifest-v1"

#: Environment variable enabling metrics globally: its value is the
#: manifest output path (a ``.json`` file, or a directory that receives
#: one timestamped manifest per run).
ENV_VAR = "REPRO_METRICS"

#: Set (to the worker's pid) inside the parallel experiment executor's
#: worker processes.  :func:`resolve_manifest_path` appends a
#: ``-w<pid>`` suffix to explicit ``.json`` targets when it is present,
#: so concurrent workers can never clobber each other's manifests.
WORKER_ENV_VAR = "REPRO_EXECUTOR_WORKER"


def git_revision(cwd: str | os.PathLike | None = None) -> str | None:
    """Current git commit SHA, or ``None`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def policy_section(result: Any) -> dict:
    """Digest a :class:`~repro.core.policy.PolicyResult` for the manifest."""
    storage = result.storage_stats
    processing = result.processing_stats
    section = {
        "objective": result.objective,
        "unconstrained_objective": result.unconstrained_objective,
        "feasible": result.feasible,
        "phases_run": list(result.phases_run),
        "phase_seconds": dict(result.phase_seconds),
        "constraints": {
            "storage_ok": result.constraints.storage_ok,
            "local_ok": result.constraints.local_ok,
            "repo_ok": result.constraints.repo_ok,
        },
        "storage_restoration": {
            "evictions": storage.evictions,
            "repartitioned_pages": storage.repartitioned_pages,
            "bytes_freed": storage.bytes_freed,
            "objective_delta": storage.objective_delta,
        },
        "processing_restoration": {
            "switches": processing.switches,
            "deallocations": processing.deallocations,
            "load_shed": processing.load_shed,
            "objective_delta": processing.objective_delta,
        },
    }
    offload = result.offload_outcome
    section["offload"] = (
        None
        if offload is None
        else {
            "restored": offload.restored,
            "rounds": offload.rounds,
            "messages": offload.messages,
            "initial_repo_load": offload.initial_repo_load,
            "final_repo_load": offload.final_repo_load,
            "total_absorbed": offload.total_absorbed,
        }
    )
    return section


def simulation_section(sim: Any) -> dict:
    """Digest a :class:`~repro.simulation.metrics.SimulationResult`."""
    quantiles = (50, 90, 95, 99)
    values = sim.percentile_page_times(quantiles)
    return {
        "n_requests": sim.n_requests,
        "n_optional_downloads": len(sim.optional_times),
        "mean_page_time": sim.mean_page_time,
        "mean_optional_time": sim.mean_optional_time,
        "percentiles": {
            f"p{q}": float(v) for q, v in zip(quantiles, values)
        },
        "bottleneck_fraction_remote": sim.bottleneck_fraction_remote(),
    }


def build_manifest(
    registry: MetricsRegistry,
    run: dict | None = None,
    policy: Any | None = None,
    simulation: Any | None = None,
) -> dict:
    """Assemble a manifest document from the registry and run identity.

    Parameters
    ----------
    registry:
        The metrics registry that observed the run.
    run:
        Caller-supplied identity fields (command, seed, scale, kernel,
        n_runs, ...) — copied verbatim under ``"run"``.
    policy:
        Optional :class:`~repro.core.policy.PolicyResult` to digest.
    simulation:
        Optional :class:`~repro.simulation.metrics.SimulationResult`.
    """
    doc: dict = {
        "schema": SCHEMA,
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "git_sha": git_revision(),
        "run": dict(run or {}),
        "phases": [rec.as_dict() for rec in registry.spans],
        "phase_seconds": registry.phase_seconds(),
        "counters": dict(registry.counters),
        "gauges": dict(registry.gauges),
    }
    if policy is not None:
        doc["policy"] = policy_section(policy)
    if simulation is not None:
        doc["simulation"] = simulation_section(simulation)
    return doc


def resolve_manifest_path(
    spec: str | os.PathLike, name: str = "run"
) -> pathlib.Path:
    """Turn a ``--metrics-out`` / ``REPRO_METRICS`` value into a file path.

    A value ending in ``.json`` names the file directly; anything else is
    treated as a directory receiving ``<name>-<utc-timestamp>.json``
    (collisions disambiguated by pid so parallel runs never clobber).
    Inside an executor worker process (``REPRO_EXECUTOR_WORKER`` set)
    explicit ``.json`` targets additionally gain a ``-w<pid>`` suffix,
    keeping per-artifact manifest paths unique per worker/run.
    """
    path = pathlib.Path(spec)
    worker = os.environ.get(WORKER_ENV_VAR, "").strip()
    if path.suffix == ".json":
        if worker:
            return path.with_name(f"{path.stem}-w{worker}{path.suffix}")
        return path
    stamp = time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())
    return path / f"{name}-{stamp}-{os.getpid()}.json"


def write_manifest(
    path: str | os.PathLike, manifest: dict
) -> pathlib.Path:
    """Serialise ``manifest`` to ``path`` (parents created), return it."""
    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return out

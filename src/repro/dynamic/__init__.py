"""Dynamic re-replication — the paper's deferred extension.

Section 4.1 notes that "allocation decisions made off-line using the
past access patterns may be inaccurate due to the dynamic nature of the
Web, e.g., breaking news", and proposes running the (static) algorithm
during off-peak hours, optionally coupled with a dynamic scheme.  This
package builds that machinery:

* :mod:`repro.dynamic.drift` — access-pattern drift models (hot-set
  rotation for breaking news, multiplicative jitter for gradual decay),
* :mod:`repro.dynamic.estimator` — frequency estimation from observed
  request traces (what a real deployment plans from),
* :mod:`repro.dynamic.epochs` — an epoch-driven harness comparing
  re-allocation cadences: allocate-once (static), re-allocate every
  ``k`` epochs (the paper's off-peak-hours proposal), the incremental
  re-planner, and an oracle that re-allocates with perfect knowledge
  each epoch,
* :mod:`repro.dynamic.incremental` — the incremental re-replication
  engine: dirty-set detection, localized PARTITION + restoration, and
  hysteresis-gated fallback to a from-scratch solve.

The headline finding (bench E1): under hot-set rotation a stale
allocation degrades by tens of percent within a few epochs, while
nightly re-allocation tracks the oracle closely — quantifying the
paper's qualitative argument for periodic off-peak re-runs.  The
incremental re-planner reaches the same neighbourhood at a fraction of
the per-epoch planning cost when only a few pages drift.
"""

from repro.dynamic.drift import jitter_frequencies, rotate_hot_set
from repro.dynamic.epochs import (
    STRATEGIES,
    DynamicExperimentResult,
    EpochConfig,
    run_dynamic_experiment,
)
from repro.dynamic.estimator import estimate_frequencies, with_frequencies
from repro.dynamic.incremental import (
    IncrementalConfig,
    IncrementalReplanner,
    ReplanStats,
)

__all__ = [
    "rotate_hot_set",
    "jitter_frequencies",
    "estimate_frequencies",
    "with_frequencies",
    "EpochConfig",
    "DynamicExperimentResult",
    "run_dynamic_experiment",
    "STRATEGIES",
    "IncrementalConfig",
    "IncrementalReplanner",
    "ReplanStats",
]

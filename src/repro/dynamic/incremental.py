"""Incremental re-replication: repair only what drifted.

The paper re-runs the whole Section 4 pipeline "during off-peak hours"
from collected statistics; :mod:`repro.dynamic.epochs` measured exactly
that (the ``periodic`` strategy).  But between consecutive epochs most
pages keep their popularity, so a from-scratch ``policy.run`` re-derives
an allocation that is almost entirely unchanged.  This module is the
incremental alternative, in the spirit of adaptive replication in CDNs
(PAPERS.md):

1. **Dirty-set detection** — diff the previous epoch's planner model
   against the new one.  A page is *dirty* when its popularity moved by
   more than ``dirty_threshold`` relative to ``max(f_old, f_new)``; any
   structural change (pages, objects, sizes, capacities — detected by
   :func:`repro.core.context.is_frequency_clone`) dirties everything and
   forces a full re-solve.
2. **Localized PARTITION** — re-run the batched PARTITION kernel on the
   *affected servers* only: those hosting a dirty page, plus those whose
   Eq. 8/10 constraint broke under the new frequencies.  The new model
   is a ``replace_frequencies`` clone, so its :class:`EvalContext`
   reuses the previous epoch's structural columns by reference
   (:func:`repro.core.context.adopt_frequency_context`) and only the
   frequency columns are refreshed — no structural rebuild per epoch.
3. **Localized repair** — Eq. 8-10 feasibility is restored with the
   existing greedy loops restricted (``servers=``) to the affected
   servers; OFF_LOADING (Eq. 9) is globally coupled and runs as-is when
   violated.  PARTITION decides each page independently and the
   restoration greedies sweep one server at a time, so a rebuilt server
   lands exactly on the marks a from-scratch solve would give it —
   drift relative to ``policy.run`` comes only from *untouched* servers
   whose pages moved sub-threshold.
4. **Hysteresis** — a from-scratch ``policy.run`` is triggered only when
   the incremental path stops paying: the dirty fraction exceeds
   ``full_resolve_dirty_fraction``, the accumulated replica churn since
   the last full solve exceeds ``churn_budget_bytes``, or a periodic
   audit (every ``audit_every`` re-plans) finds the incremental
   objective more than ``gap_threshold`` above the from-scratch one.

When the dirty set is empty and no constraint is violated, the result is
bit-identical to transplanting the previous allocation — and therefore
to a full re-solve on an identical-frequency clone (property-tested).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.allocation import Allocation, transplant_allocation
from repro.core.constraints import evaluate_constraints
from repro.core.context import (
    EvalContext,
    IncrementalObjective,
    adopt_frequency_context,
    engine_kernel,
    is_frequency_clone,
)
from repro.core.fast_partition import (
    optional_marks_batched,
    partition_pages_batched,
)
from repro.core.offload import offload_repository
from repro.core.policy import RepositoryReplicationPolicy
from repro.core.restoration import (
    restore_processing_capacity,
    restore_storage_capacity,
)
from repro.core.types import SystemModel

__all__ = ["IncrementalConfig", "IncrementalReplanner", "ReplanStats"]


@dataclass(frozen=True)
class IncrementalConfig:
    """Tunables of the incremental re-planner."""

    dirty_threshold: float = 0.05
    """Relative frequency change marking a page dirty:
    ``|f_new - f_old| > dirty_threshold * max(f_old, f_new)``."""
    full_resolve_dirty_fraction: float = 0.25
    """Dirty-page fraction beyond which a from-scratch solve is cheaper
    than piecewise repair (hysteresis trigger #1)."""
    churn_budget_bytes: float | None = None
    """Cost-of-change budget: replica bytes moved (both directions) since
    the last full solve; exceeding it forces one (hysteresis trigger #2).
    ``None`` disables the budget."""
    audit_every: int = 4
    """Every ``audit_every``-th incremental re-plan also runs the full
    policy and compares objectives (hysteresis trigger #3).  ``0``
    disables auditing."""
    gap_threshold: float = 0.02
    """Relative objective gap (incremental vs from-scratch) above which
    an audit adopts the full solution."""

    def __post_init__(self) -> None:
        if self.dirty_threshold < 0:
            raise ValueError(
                f"dirty_threshold must be >= 0, got {self.dirty_threshold}"
            )
        if not 0.0 < self.full_resolve_dirty_fraction <= 1.0:
            raise ValueError(
                "full_resolve_dirty_fraction must be in (0, 1], got "
                f"{self.full_resolve_dirty_fraction}"
            )
        if self.churn_budget_bytes is not None and self.churn_budget_bytes <= 0:
            raise ValueError(
                f"churn_budget_bytes must be positive or None, got "
                f"{self.churn_budget_bytes}"
            )
        if self.audit_every < 0:
            raise ValueError(
                f"audit_every must be >= 0, got {self.audit_every}"
            )
        if self.gap_threshold < 0:
            raise ValueError(
                f"gap_threshold must be >= 0, got {self.gap_threshold}"
            )


@dataclass
class ReplanStats:
    """Accounting of one :meth:`IncrementalReplanner.replan` call."""

    mode: str
    """``"incremental"`` or ``"full"``."""
    full_reason: str | None
    """Why a full solve ran: ``"structural"``, ``"dirty-fraction"``,
    ``"churn-budget"``, ``"audit-gap"``; ``None`` for incremental."""
    n_dirty: int
    dirty_fraction: float
    objective: float
    """Exact composite ``D`` of the adopted allocation."""
    audit_gap: float | None = None
    """Relative objective gap measured by an audit (``None`` otherwise)."""
    rebuilt_servers: tuple[int, ...] = ()
    """Servers whose pages were re-partitioned and constraints restored
    (hosting a dirty page, or in violation after the frequency shift)."""
    offload_ran: bool = False
    churn_bytes_added: float = 0.0
    churn_bytes_removed: float = 0.0


class IncrementalReplanner:
    """Stateful epoch-to-epoch re-planner (see module docstring).

    Parameters
    ----------
    policy:
        The full pipeline used for epoch 0, for hysteresis full solves,
        and as the source of cost-model weights / kernel / optional
        policy for the incremental path.
    model:
        The epoch-0 planner model.
    config:
        Hysteresis and dirty-set knobs.
    initial_allocation:
        Epoch-0 allocation over ``model``, if the caller already solved
        it (the epoch harness shares the ``static`` solve); ``None`` runs
        ``policy.run(model)``.
    """

    def __init__(
        self,
        policy: RepositoryReplicationPolicy,
        model: SystemModel,
        config: IncrementalConfig | None = None,
        initial_allocation: Allocation | None = None,
    ):
        self.policy = policy
        self.config = config or IncrementalConfig()
        self.model = model
        if initial_allocation is None:
            result = policy.run(model)
            self.allocation = result.allocation
            self.objective = result.objective
        else:
            if initial_allocation.model is not model:
                initial_allocation = transplant_allocation(
                    initial_allocation, model
                )
            self.allocation = initial_allocation
            self.objective = policy.cost_model(model).D(initial_allocation)
        self.full_resolves = 0
        self.incremental_replans = 0
        self._replans_since_audit = 0
        self._churn_since_full = 0.0

    # ------------------------------------------------------------------
    def dirty_pages(self, new_model: SystemModel) -> np.ndarray:
        """Page ids whose popularity drifted beyond the threshold."""
        f_old = self.model.frequencies
        f_new = new_model.frequencies
        denom = np.maximum(np.abs(f_old), np.abs(f_new))
        mask = np.abs(f_new - f_old) > self.config.dirty_threshold * denom
        return np.flatnonzero(mask)

    # ------------------------------------------------------------------
    def replan(self, new_model: SystemModel) -> ReplanStats:
        """Adopt ``new_model`` and repair the allocation; returns stats.

        Mutates the replanner's state: ``self.model``, ``self.allocation``
        and ``self.objective`` describe the adopted plan afterwards.
        """
        cfg = self.config
        if not is_frequency_clone(self.model, new_model):
            return self._full_resolve(new_model, "structural", dirty=None)

        dirty = self.dirty_pages(new_model)
        frac = len(dirty) / max(new_model.n_pages, 1)
        if frac > cfg.full_resolve_dirty_fraction:
            return self._full_resolve(new_model, "dirty-fraction", dirty)
        if (
            cfg.churn_budget_bytes is not None
            and self._churn_since_full >= cfg.churn_budget_bytes
        ):
            return self._full_resolve(new_model, "churn-budget", dirty)

        prev_alloc = self.allocation
        alloc, stats = self._replan_incremental(new_model, dirty)

        self._replans_since_audit += 1
        if cfg.audit_every and self._replans_since_audit >= cfg.audit_every:
            self._replans_since_audit = 0
            full = self.policy.run(new_model)
            gap = (
                (stats.objective - full.objective) / abs(full.objective)
                if full.objective
                else 0.0
            )
            stats.audit_gap = gap
            if gap > cfg.gap_threshold:
                return self._adopt(
                    new_model,
                    full.allocation,
                    full.objective,
                    prev_alloc,
                    ReplanStats(
                        mode="full",
                        full_reason="audit-gap",
                        n_dirty=stats.n_dirty,
                        dirty_fraction=stats.dirty_fraction,
                        objective=full.objective,
                        audit_gap=gap,
                    ),
                    reset_churn=True,
                )

        self.incremental_replans += 1
        return self._adopt(
            new_model, alloc, stats.objective, prev_alloc, stats,
            reset_churn=False,
        )

    # ------------------------------------------------------------------
    def _replan_incremental(
        self, new_model: SystemModel, dirty: np.ndarray
    ) -> tuple[Allocation, ReplanStats]:
        policy = self.policy
        kernel = engine_kernel(policy.kernel)
        # Frequency-only clone: reuse the previous epoch's structural
        # context columns (no-op when the clone came through
        # replace_frequencies, which already adopted them).
        adopt_frequency_context(self.model, new_model)
        ctx = EvalContext.for_model(new_model, kernel)
        alloc = transplant_allocation(self.allocation, new_model)
        cost = policy.cost_model(new_model)
        inc = IncrementalObjective(
            ctx, alloc, alpha1=policy.alpha1, alpha2=policy.alpha2
        )

        stats = ReplanStats(
            mode="incremental",
            full_reason=None,
            n_dirty=len(dirty),
            dirty_fraction=len(dirty) / max(new_model.n_pages, 1),
            objective=inc.D,
        )

        # Affected servers: those hosting a dirty page, plus those whose
        # constraint broke under the new frequencies alone (loads scale
        # with f even when marks are unchanged).
        report = evaluate_constraints(alloc)
        affected = sorted(
            set(new_model.page_server[dirty].tolist())
            | set(report.violated_servers_storage())
            | set(report.violated_servers_processing())
        )
        stats.rebuilt_servers = tuple(affected)

        if affected:
            # Re-run PARTITION on *every* page of the affected servers —
            # per-page independent, so this is exactly what a
            # from-scratch solve would decide for them before
            # restoration.  Newly needed replicas join the server's set
            # through the bulk mutators; replicas left unmarked stay
            # stored (the storage loop evicts them first, at zero cost).
            page_sel = np.isin(new_model.page_server, affected)
            rebuild = np.flatnonzero(page_sel)
            marks, _, _ = partition_pages_batched(new_model, page_ids=rebuild)
            comp_e = np.flatnonzero(page_sel[ctx.comp_pages])
            to_local = comp_e[marks[comp_e]]
            to_remote = comp_e[~marks[comp_e]]
            alloc.set_comp_local_bulk(to_local, True)
            alloc.set_comp_local_bulk(to_remote, False)

            opt_marks = optional_marks_batched(
                new_model, policy.optional_policy
            )
            opt_e = np.flatnonzero(page_sel[ctx.opt_pages])
            alloc.set_opt_local_bulk(opt_e[opt_marks[opt_e]], True)
            alloc.set_opt_local_bulk(opt_e[~opt_marks[opt_e]], False)

            # Localized Eq. 8/10 repair: the greedy loops sweep one
            # server at a time and exit immediately on feasible ones, so
            # restricting them to the affected servers is the full-sweep
            # result without paying for the untouched servers.  Starting
            # from the unconstrained PARTITION marks, each rebuilt
            # server's final marks match the from-scratch pipeline's.
            restore_storage_capacity(
                alloc, cost, servers=affected, kernel=kernel
            )
            restore_processing_capacity(
                alloc, cost, servers=affected, kernel=kernel
            )
            report = evaluate_constraints(alloc)

        if not report.repo_ok:
            # Eq. 9 couples every server through the shared repository;
            # OFF_LOADING stays global.
            offload_repository(alloc, cost, policy.offload_config, kernel=kernel)
            stats.offload_ran = True

        # The kernels above mutate the allocation directly; fold their
        # flips back and recompute exactly (resync is the bit-exact
        # escape hatch of IncrementalObjective).
        inc.comp_local = alloc.comp_local.copy()
        inc.opt_local = alloc.opt_local.copy()
        stats.objective = inc.resync()
        return alloc, stats

    # ------------------------------------------------------------------
    def _full_resolve(
        self,
        new_model: SystemModel,
        reason: str,
        dirty: np.ndarray | None,
    ) -> ReplanStats:
        n_pages = max(new_model.n_pages, 1)
        n_dirty = len(dirty) if dirty is not None else new_model.n_pages
        result = self.policy.run(new_model)
        return self._adopt(
            new_model,
            result.allocation,
            result.objective,
            self.allocation,
            ReplanStats(
                mode="full",
                full_reason=reason,
                n_dirty=n_dirty,
                dirty_fraction=n_dirty / n_pages,
                objective=result.objective,
            ),
            reset_churn=True,
        )

    def _adopt(
        self,
        new_model: SystemModel,
        alloc: Allocation,
        objective: float,
        prev_alloc: Allocation,
        stats: ReplanStats,
        reset_churn: bool,
    ) -> ReplanStats:
        from repro.analysis.compare import diff_allocations

        if is_frequency_clone(prev_alloc.model, new_model):
            diff = diff_allocations(prev_alloc, alloc)
            stats.churn_bytes_added = diff.total_bytes_added
            stats.churn_bytes_removed = diff.total_bytes_removed
        else:
            # A structural change re-provisions everything: no replica of
            # the old universe is meaningful in the new one, so the churn
            # is the full footprint out and the full footprint in.
            stats.churn_bytes_removed = float(
                prev_alloc.stored_bytes_all().sum()
            )
            stats.churn_bytes_added = float(alloc.stored_bytes_all().sum())
        if reset_churn:
            self.full_resolves += 1
            self._churn_since_full = 0.0
            self._replans_since_audit = 0
        else:
            self._churn_since_full += (
                stats.churn_bytes_added + stats.churn_bytes_removed
            )
        self.model = new_model
        self.allocation = alloc
        self.objective = objective
        return stats

"""Frequency estimation from observed traffic.

A deployed system does not know ``f(W_j)``; it counts requests ("based
on statistics collected, such as page access frequency", Section 2).
:func:`estimate_frequencies` converts a trace into per-page
requests/second with additive smoothing (unseen pages must keep a small
positive frequency or the planner would treat them as free), and
:func:`with_frequencies` plants the estimates into a model clone the
policy can plan against — enabling estimated-vs-true planning studies.
"""

from __future__ import annotations

import numpy as np

from repro.core.types import SystemModel
from repro.dynamic.drift import replace_frequencies
from repro.workload.trace import RequestTrace

__all__ = ["estimate_frequencies", "with_frequencies"]


def estimate_frequencies(
    trace: RequestTrace,
    observation_window: float | None = None,
    smoothing: float = 0.5,
) -> np.ndarray:
    """Per-page requests/second estimated from a trace.

    Parameters
    ----------
    trace:
        The observed request stream.
    observation_window:
        Wall-clock seconds the trace spans.  ``None`` infers the window
        per server from the model's true aggregate rate — convenient in
        simulations where the trace length is set in *requests*, not
        seconds (estimates then converge to the true frequencies as the
        trace grows).
    smoothing:
        Additive (Laplace) count smoothing so unseen pages keep a small
        positive frequency.
    """
    if smoothing < 0:
        raise ValueError(f"smoothing must be >= 0, got {smoothing}")
    m = trace.model
    raw = np.bincount(trace.page_of_request, minlength=m.n_pages).astype(float)
    counts = raw + smoothing
    est = np.zeros(m.n_pages)
    for i in range(m.n_servers):
        ids = np.asarray(m.pages_by_server[i], dtype=np.intp)
        if not len(ids):
            continue
        # The inferred window must cover the same requests the numerator
        # counts: those addressed *to pages hosted on* server ``i``
        # (pre-smoothing ``raw[ids]``).  Counting the requests *issued
        # by* server i's clients instead (``server_of_request == i``)
        # biases every estimate whenever clients fetch remote pages —
        # the two happen to coincide for generator-produced traces, so
        # the bug only bit hand-built / replayed cross-server traces.
        n_req = float(raw[ids].sum()) + smoothing * len(ids)
        if observation_window is None:
            true_rate = m.frequencies[ids].sum()
            window = n_req / true_rate if true_rate > 0 else 1.0
        else:
            window = observation_window
        est[ids] = counts[ids] / max(window, 1e-12)
    return est


def with_frequencies(model: SystemModel, frequencies: np.ndarray) -> SystemModel:
    """Clone ``model`` with the estimated frequencies planted in.

    The clone is what the *planner* sees; evaluate the resulting
    allocation against a trace from the true model to measure the cost
    of estimation error.  (Traces pin their model instance, so regenerate
    the trace over whichever model you simulate with.)
    """
    return replace_frequencies(model, frequencies)

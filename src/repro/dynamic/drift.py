"""Access-pattern drift models.

Both drift operators return a *new* :class:`SystemModel` sharing the
immutable servers/objects and re-built pages with updated frequencies —
page structure (which MOs a page embeds) never changes, only who is
popular.  Per-server total request rates are preserved, so capacity
percentages keep their meaning across epochs.

Because every clone produced here is frequency-only by construction,
:func:`replace_frequencies` seeds the clone's derived-state caches from
the source model (:func:`repro.core.context.adopt_frequency_context`):
structural EvalContext columns — sizes, CSR groups, pair tables — carry
over by reference and only the frequency columns are recomputed, so
consecutive epoch models never rebuild structural state.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.context import adopt_frequency_context
from repro.core.types import PageSpec, SystemModel
from repro.util.rng import as_generator

__all__ = ["rotate_hot_set", "jitter_frequencies", "replace_frequencies"]


def replace_frequencies(model: SystemModel, frequencies: np.ndarray) -> SystemModel:
    """Rebuild ``model`` with the given per-page frequencies.

    The clone adopts ``model``'s cached derived state (context, reverse
    index, PARTITION views) with only frequency columns recomputed —
    see the module docstring.
    """
    frequencies = np.asarray(frequencies, dtype=float)
    if frequencies.shape != (model.n_pages,):
        raise ValueError(
            f"frequencies must have shape ({model.n_pages},), got "
            f"{frequencies.shape}"
        )
    if np.any(frequencies < 0):
        raise ValueError("frequencies must be non-negative")
    pages = [
        PageSpec(
            page_id=p.page_id,
            server=p.server,
            html_size=p.html_size,
            frequency=float(frequencies[j]),
            compulsory=p.compulsory,
            optional=p.optional,
            optional_prob=p.optional_prob,
            optional_rate_scale=p.optional_rate_scale,
        )
        for j, p in enumerate(model.pages)
    ]
    clone = SystemModel(model.servers, model.repository, pages, model.objects)
    adopt_frequency_context(model, clone)
    return clone


def rotate_hot_set(
    model: SystemModel,
    fraction: float = 0.5,
    seed: int | np.random.Generator | None = 0,
    servers: Iterable[int] | None = None,
) -> SystemModel:
    """Breaking news: part of the hot set goes cold and vice versa.

    Per server, ``fraction`` of the hottest 10% of pages swap their
    frequencies with randomly chosen cold pages.  ``fraction=1`` replaces
    the entire hot set; ``0`` is the identity.

    Parameters
    ----------
    model:
        Universe to drift.
    fraction:
        Share of each server's hot set that rotates.
    seed:
        RNG selecting which pages swap.
    servers:
        Rotate only these servers' hot sets (default: all).  A news
        cycle rarely hits every site at once; localized drift is what
        the incremental re-planner exploits.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    rng = as_generator(seed)
    freqs = model.frequencies.copy()
    if servers is None:
        server_list = range(model.n_servers)
    else:
        server_list = sorted({int(i) for i in servers})
        for i in server_list:
            if not 0 <= i < model.n_servers:
                raise ValueError(
                    f"server index {i} out of range [0, {model.n_servers})"
                )
    for i in server_list:
        ids = np.asarray(model.pages_by_server[i], dtype=np.intp)
        if len(ids) < 2:
            continue
        f = freqs[ids]
        n_hot = max(1, int(np.ceil(0.10 * len(ids))))
        # Stable sort on the negated array: equal-frequency pages keep
        # ascending page-id order in the hot/cold split.  A plain
        # ``argsort(f)[::-1]`` reverses the (unstable) introsort's tie
        # order, making the split platform/numpy-version dependent.
        order = np.argsort(-f, kind="stable")
        hot = ids[order[:n_hot]]
        cold = ids[order[n_hot:]]
        n_swap = int(round(fraction * len(hot)))
        if n_swap == 0 or len(cold) == 0:
            continue
        swap_hot = rng.choice(hot, size=min(n_swap, len(hot)), replace=False)
        swap_cold = rng.choice(
            cold, size=len(swap_hot), replace=False
        )
        freqs[swap_hot], freqs[swap_cold] = (
            freqs[swap_cold].copy(),
            freqs[swap_hot].copy(),
        )
    return replace_frequencies(model, freqs)


def jitter_frequencies(
    model: SystemModel,
    sigma: float = 0.2,
    seed: int | np.random.Generator | None = 0,
) -> SystemModel:
    """Gradual drift: multiply each frequency by lognormal noise and
    renormalise per server (total request rate preserved)."""
    if sigma < 0:
        raise ValueError(f"sigma must be >= 0, got {sigma}")
    rng = as_generator(seed)
    freqs = model.frequencies.copy()
    noisy = freqs * rng.lognormal(mean=0.0, sigma=sigma, size=len(freqs))
    for i in range(model.n_servers):
        ids = np.asarray(model.pages_by_server[i], dtype=np.intp)
        if not len(ids):
            continue
        total = freqs[ids].sum()
        got = noisy[ids].sum()
        if got > 0:
            noisy[ids] *= total / got
    return replace_frequencies(model, noisy)

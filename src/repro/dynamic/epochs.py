"""Epoch-driven dynamic replication harness (extension experiment E1).

Time is divided into epochs (think: days).  Each epoch the access
pattern drifts (hot-set rotation and/or jitter), a fresh request trace
is sampled from the *current* truth, and four strategies are measured
on it:

* ``static``      — the allocation computed in epoch 0, never updated;
* ``periodic``    — re-run the policy every ``reallocate_every`` epochs
  using the frequencies *observed in the previous epoch's trace* (the
  paper's "executed during off-peak hours" proposal, planning from
  measured statistics);
* ``incremental`` — same cadence and same observed statistics as
  ``periodic``, but through :class:`~repro.dynamic.incremental.
  IncrementalReplanner`: re-partition only the pages whose estimated
  popularity drifted, repair constraints on the affected servers, and
  fall back to a full solve only when hysteresis says it pays;
* ``oracle``      — re-run every epoch with the true current frequencies.

All strategies face the same traces and perturbation streams: the RNG
factory hands out named streams, so enabling or disabling a strategy
never shifts another one's draws (paired comparisons stay paired).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.core.allocation import transplant_allocation
from repro.core.policy import RepositoryReplicationPolicy
from repro.dynamic.drift import jitter_frequencies, rotate_hot_set
from repro.dynamic.estimator import estimate_frequencies, with_frequencies
from repro.dynamic.incremental import IncrementalConfig, IncrementalReplanner
from repro.simulation.engine import simulate_allocation
from repro.simulation.perturbation import PAPER_PERTURBATION, PerturbationModel
from repro.util.rng import RngFactory
from repro.util.tables import format_table
from repro.workload.params import WorkloadParams
from repro.workload.trace import generate_trace

__all__ = [
    "EpochConfig",
    "DynamicExperimentResult",
    "run_dynamic_experiment",
    "STRATEGIES",
]

#: Every strategy the harness knows, in reporting order.
STRATEGIES = ("static", "periodic", "incremental", "oracle")


@dataclass(frozen=True)
class EpochConfig:
    """Knobs for the epoch harness."""

    n_epochs: int = 6
    """Number of epochs simulated."""
    rotation_fraction: float = 0.5
    """Hot-set share rotating at each drift event (breaking news)."""
    drift_every: int = 2
    """Epoch period of hot-set rotations.  A news cycle that persists for
    a few epochs (> ``reallocate_every``) is the regime where periodic
    re-allocation pays off; ``drift_every=1`` (drift faster than the
    planner's statistics) makes any history-based plan chase noise —
    both regimes are worth measuring."""
    jitter_sigma: float = 0.1
    """Lognormal sigma of the gradual per-epoch drift (every epoch)."""
    reallocate_every: int = 1
    """Epoch period of the ``periodic`` strategy's re-allocation."""
    requests_per_server: int = 1000
    """Trace length measured each epoch."""
    storage_fraction: float = 0.6
    """Per-server storage as a fraction of the epoch-0 unconstrained
    replica footprint.  Frequencies only influence the allocation through
    the constrained phases (unconstrained PARTITION is per-page and
    frequency-blind), so the experiment runs storage-constrained."""

    def __post_init__(self) -> None:
        if self.n_epochs <= 0:
            raise ValueError(f"n_epochs must be positive, got {self.n_epochs}")
        if self.reallocate_every <= 0:
            raise ValueError(
                f"reallocate_every must be positive, got {self.reallocate_every}"
            )
        if not 0.0 <= self.rotation_fraction <= 1.0:
            raise ValueError(
                f"rotation_fraction must be in [0, 1], got {self.rotation_fraction}"
            )
        if self.storage_fraction <= 0:
            raise ValueError(
                f"storage_fraction must be > 0, got {self.storage_fraction}"
            )
        if self.drift_every <= 0:
            raise ValueError(
                f"drift_every must be positive, got {self.drift_every}"
            )


@dataclass
class DynamicExperimentResult:
    """Per-epoch mean page response times of the measured strategies.

    Strategy series not requested by the run stay empty lists.  Churn
    lists are aligned one-entry-per-re-allocation — ``len(churn_bytes)
    == reallocations`` always, with ``0.0`` recorded for no-op re-plans
    — and count bytes in **both** directions (copied in / deleted).
    """

    epochs: list[int] = field(default_factory=list)
    static: list[float] = field(default_factory=list)
    periodic: list[float] = field(default_factory=list)
    oracle: list[float] = field(default_factory=list)
    incremental: list[float] = field(default_factory=list)
    reallocations: int = 0
    """How many times the periodic strategy re-ran the policy."""
    churn_bytes: list[float] = field(default_factory=list)
    """Replica bytes the periodic strategy copied per re-allocation —
    the off-peak transfer volume a nightly re-plan actually costs."""
    churn_bytes_removed: list[float] = field(default_factory=list)
    """Replica bytes the periodic strategy *deleted* per re-allocation."""
    incremental_reallocations: int = 0
    """How many times the incremental strategy re-planned (any mode)."""
    incremental_full_resolves: int = 0
    """How many of those re-plans fell back to a from-scratch solve."""
    incremental_churn_bytes: list[float] = field(default_factory=list)
    incremental_churn_bytes_removed: list[float] = field(default_factory=list)

    def staleness_penalty(self) -> float:
        """Mean relative penalty of never re-allocating, vs the oracle,
        over the post-drift epochs."""
        s = np.asarray(self.static[1:])
        o = np.asarray(self.oracle[1:])
        return float((s / o - 1.0).mean()) if len(s) else 0.0

    def periodic_gap(self) -> float:
        """Mean relative gap of the periodic strategy vs the oracle."""
        p = np.asarray(self.periodic[1:])
        o = np.asarray(self.oracle[1:])
        return float((p / o - 1.0).mean()) if len(p) else 0.0

    def incremental_gap(self) -> float:
        """Mean relative gap of the incremental strategy vs the oracle."""
        p = np.asarray(self.incremental[1:])
        o = np.asarray(self.oracle[1:])
        return float((p / o - 1.0).mean()) if len(p) else 0.0

    def render(self) -> str:
        """ASCII table of the epoch series (measured strategies only)."""
        columns = [
            ("static (allocate once)", self.static),
            ("periodic", self.periodic),
            ("incremental", self.incremental),
            ("oracle", self.oracle),
        ]
        columns = [(h, s) for h, s in columns if s]
        rows = [
            tuple([e] + [f"{series[i]:.0f}s" for _, series in columns])
            for i, e in enumerate(self.epochs)
        ]
        table = format_table(
            ["epoch"] + [h for h, _ in columns],
            rows,
            title="Extension E1: dynamic re-replication under access drift",
        )
        lines = [table]
        if self.static and self.oracle:
            lines.append(
                "staleness penalty (static vs oracle): "
                f"{self.staleness_penalty():+.1%}"
            )
        if self.periodic:
            churn = (
                f", moving {sum(self.churn_bytes) / 2**20:.0f} MiB in / "
                f"{sum(self.churn_bytes_removed) / 2**20:.0f} MiB out"
                if self.churn_bytes
                else ""
            )
            gap = (
                f"periodic gap: {self.periodic_gap():+.1%} "
                if self.oracle
                else "periodic: "
            )
            lines.append(
                f"{gap}({self.reallocations} re-allocations{churn})"
            )
        if self.incremental:
            churn = (
                ", moving "
                f"{sum(self.incremental_churn_bytes) / 2**20:.0f} MiB in / "
                f"{sum(self.incremental_churn_bytes_removed) / 2**20:.0f} "
                "MiB out"
                if self.incremental_churn_bytes
                else ""
            )
            gap = (
                f"incremental gap: {self.incremental_gap():+.1%} "
                if self.oracle
                else "incremental: "
            )
            lines.append(
                f"{gap}({self.incremental_reallocations} re-plans, "
                f"{self.incremental_full_resolves} full resolves{churn})"
            )
        return "\n".join(lines)


def run_dynamic_experiment(
    params: WorkloadParams | None = None,
    config: EpochConfig | None = None,
    seed: int = 0,
    perturbation: PerturbationModel = PAPER_PERTURBATION,
    strategies: Iterable[str] | None = None,
    incremental_config: IncrementalConfig | None = None,
) -> DynamicExperimentResult:
    """Run the epoch harness; see module docstring for the protocol.

    Each drifted/jittered epoch model is a ``replace_frequencies`` clone,
    so its :class:`~repro.core.context.EvalContext` adopts the previous
    epoch's structural columns (only frequency columns are refreshed);
    every planner run, transplant, and replay within the epoch then
    shares those columns.  Superseded models (and their cached contexts)
    are garbage-collected when the epoch advances.

    Parameters
    ----------
    strategies:
        Subset of :data:`STRATEGIES` to measure (default: all four).
        Because every random stream is named, dropping a strategy never
        changes another's draws.
    incremental_config:
        Hysteresis knobs for the ``incremental`` strategy.
    """
    from repro.analysis.compare import diff_allocations
    from repro.core.partition import partition_all
    from repro.experiments.scaling import (
        clone_with_capacities,
        storage_capacities_for_fraction,
    )
    from repro.workload.generator import generate_workload

    chosen = tuple(STRATEGIES if strategies is None else strategies)
    unknown = [s for s in chosen if s not in STRATEGIES]
    if unknown:
        raise ValueError(
            f"unknown strategies {unknown}; valid: {list(STRATEGIES)}"
        )
    want = set(chosen)

    p = (params or WorkloadParams.small()).with_(storage_capacity=np.inf)
    cfg = config or EpochConfig()
    factory = RngFactory(seed)

    base = generate_workload(p, seed=int(factory.generator("model").integers(2**31)))
    # Fix storage budgets once (relative to the epoch-0 unconstrained
    # footprint) — real disks don't grow when the news cycle turns.
    caps = storage_capacities_for_fraction(
        base, partition_all(base), cfg.storage_fraction
    )
    truth = clone_with_capacities(base, storage=caps)
    policy = RepositoryReplicationPolicy(alpha1=p.alpha1, alpha2=p.alpha2)

    static_alloc = policy.run(truth).allocation
    periodic_alloc = static_alloc
    replanner = (
        IncrementalReplanner(
            policy, truth, incremental_config, initial_allocation=static_alloc
        )
        if "incremental" in want
        else None
    )
    reallocations = 0

    result = DynamicExperimentResult()
    prev_trace = None
    for epoch in range(cfg.n_epochs):
        if epoch > 0:
            drift_rng = factory.generator(f"drift/{epoch}")
            if epoch % cfg.drift_every == 0:
                truth = rotate_hot_set(truth, cfg.rotation_fraction, drift_rng)
            if cfg.jitter_sigma > 0:
                truth = jitter_frequencies(truth, cfg.jitter_sigma, drift_rng)

        trace = generate_trace(
            truth,
            p,
            seed=factory.generator(f"trace/{epoch}"),
            requests_per_server=cfg.requests_per_server,
        )
        sim_seed = int(factory.generator(f"sim/{epoch}").integers(2**31))

        # periodic + incremental: re-plan from last epoch's *observed*
        # statistics (the same estimates — the comparison is paired).
        replan_due = (
            epoch > 0
            and epoch % cfg.reallocate_every == 0
            and prev_trace is not None
        )
        if replan_due and ("periodic" in want or replanner is not None):
            est = estimate_frequencies(prev_trace)
            planner_view = with_frequencies(truth, est)
            if "periodic" in want:
                new_alloc = policy.run(planner_view).allocation
                diff = diff_allocations(periodic_alloc, new_alloc)
                # Record every re-allocation, no-ops included, in both
                # directions: len(churn_bytes) == reallocations always.
                result.churn_bytes.append(diff.total_bytes_added)
                result.churn_bytes_removed.append(diff.total_bytes_removed)
                periodic_alloc = new_alloc
                reallocations += 1
            if replanner is not None:
                stats = replanner.replan(planner_view)
                result.incremental_churn_bytes.append(stats.churn_bytes_added)
                result.incremental_churn_bytes_removed.append(
                    stats.churn_bytes_removed
                )
                result.incremental_reallocations += 1

        oracle_alloc = (
            policy.run(truth).allocation if "oracle" in want else None
        )

        result.epochs.append(epoch)
        if "static" in want:
            result.static.append(
                simulate_allocation(
                    transplant_allocation(static_alloc, truth),
                    trace,
                    perturbation,
                    seed=sim_seed,
                ).mean_page_time
            )
        if "periodic" in want:
            result.periodic.append(
                simulate_allocation(
                    transplant_allocation(periodic_alloc, truth),
                    trace,
                    perturbation,
                    seed=sim_seed,
                ).mean_page_time
            )
        if replanner is not None:
            result.incremental.append(
                simulate_allocation(
                    transplant_allocation(replanner.allocation, truth),
                    trace,
                    perturbation,
                    seed=sim_seed,
                ).mean_page_time
            )
        if oracle_alloc is not None:
            result.oracle.append(
                simulate_allocation(
                    oracle_alloc, trace, perturbation, seed=sim_seed
                ).mean_page_time
            )
        prev_trace = trace
    result.reallocations = reallocations
    if replanner is not None:
        result.incremental_full_resolves = replanner.full_resolves
    return result

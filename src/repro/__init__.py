"""repro — reproduction of *Replicating the Contents of a WWW Multimedia
Repository to Minimize Download Time* (Loukopoulos & Ahmad, IPPS 2000).

The library models a company with geographically dispersed web servers
and a central multimedia repository, and decides — per page, per object —
whether each multimedia object should be downloaded from the local
server or from the repository, exploiting the browser's two parallel
HTTP connections to minimise the slower of the two pipelined streams.

Quickstart
----------
>>> import repro
>>> model = repro.generate_workload(repro.WorkloadParams.small(), seed=7)
>>> result = repro.RepositoryReplicationPolicy().run(model)
>>> trace = repro.generate_trace(model, repro.WorkloadParams.small(), seed=1)
>>> sim = repro.simulate_allocation(result.allocation, trace)
>>> sim.n_requests > 0
True

Package layout
--------------
* :mod:`repro.core` — cost model (Eq. 3-7), constraints (Eq. 8-10),
  PARTITION, restoration, off-loading, the end-to-end policy, and an ILP
  reference solver.
* :mod:`repro.workload` — Table 1 synthetic workload and request traces.
* :mod:`repro.baselines` — Remote / Local / ideal-LRU comparison policies.
* :mod:`repro.simulation` — Section 5.1 perturbed request-level replay.
* :mod:`repro.network` — message-passing substrate running the
  off-loading negotiation as an actual protocol.
* :mod:`repro.experiments` — harnesses regenerating Figures 1-3 and the
  headline Section 5.2 claims.
"""

from repro.analysis import describe_allocation
from repro.baselines import (
    AllocationPolicy,
    IdealLRUPolicy,
    LocalPolicy,
    PopularityPolicy,
    RemotePolicy,
)
from repro.core import (
    Allocation,
    ConstraintReport,
    CostModel,
    MatrixSet,
    ObjectSpec,
    OffloadConfig,
    OffloadOutcome,
    PageSpec,
    PageTimes,
    PolicyResult,
    RepositoryReplicationPolicy,
    RepositorySpec,
    ServerSpec,
    SystemModel,
    evaluate_constraints,
    offload_repository,
    partition_all,
    partition_page,
    restore_processing_capacity,
    restore_storage_capacity,
)
from repro.simulation import (
    IDENTITY_PERTURBATION,
    PAPER_PERTURBATION,
    PerturbationModel,
    SimulationResult,
    simulate_allocation,
    simulate_lru,
)
from repro.network import FaultModel, run_distributed_policy
from repro.workload import (
    RequestTrace,
    WorkloadParams,
    generate_trace,
    generate_workload,
)

__version__ = "1.0.0"

__all__ = [
    "Allocation",
    "AllocationPolicy",
    "ConstraintReport",
    "CostModel",
    "IDENTITY_PERTURBATION",
    "IdealLRUPolicy",
    "LocalPolicy",
    "MatrixSet",
    "ObjectSpec",
    "OffloadConfig",
    "OffloadOutcome",
    "PAPER_PERTURBATION",
    "PageSpec",
    "PageTimes",
    "PerturbationModel",
    "PolicyResult",
    "RemotePolicy",
    "RepositoryReplicationPolicy",
    "RepositorySpec",
    "RequestTrace",
    "ServerSpec",
    "SimulationResult",
    "SystemModel",
    "WorkloadParams",
    "FaultModel",
    "PopularityPolicy",
    "describe_allocation",
    "evaluate_constraints",
    "generate_trace",
    "generate_workload",
    "offload_repository",
    "run_distributed_policy",
    "partition_all",
    "partition_page",
    "restore_processing_capacity",
    "restore_storage_capacity",
    "simulate_allocation",
    "simulate_lru",
    "__version__",
]

"""Shared utilities: seeded RNG management, unit conversions, ASCII tables.

These helpers are deliberately dependency-light; everything in
:mod:`repro` that needs randomness, unit handling, or human-readable
reporting goes through this package so that behaviour is consistent and
deterministic across the library.
"""

from repro.util.rng import RngFactory, as_generator, spawn_generators
from repro.util.tables import format_table, format_series
from repro.util.units import (
    GB,
    KB,
    MB,
    kbps_to_bps,
    rate_to_spb,
    seconds_per_byte,
    spb_to_rate,
)
from repro.util.validation import (
    check_fraction,
    check_nonnegative,
    check_positive,
    check_probability_matrix,
)

__all__ = [
    "RngFactory",
    "as_generator",
    "spawn_generators",
    "format_table",
    "format_series",
    "KB",
    "MB",
    "GB",
    "kbps_to_bps",
    "rate_to_spb",
    "spb_to_rate",
    "seconds_per_byte",
    "check_fraction",
    "check_nonnegative",
    "check_positive",
    "check_probability_matrix",
]

"""Argument-validation helpers used across the library.

All validators raise :class:`ValueError` with a message naming the
offending parameter, so configuration errors surface at construction
time instead of as NaNs deep inside a sweep.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = [
    "check_positive",
    "check_nonnegative",
    "check_fraction",
    "check_probability_matrix",
    "env_positive_int",
]


def env_positive_int(name: str, default: int | None = None) -> int | None:
    """Read environment variable ``name`` as a strictly positive integer.

    Unset or empty values return ``default``.  Anything that is not an
    integer literal (``"2.5"``, ``"four"``) or is non-positive raises
    :class:`ValueError` naming the variable, so the ``REPRO_BENCH_RUNS``
    / ``REPRO_BENCH_REQUESTS`` / ``REPRO_JOBS`` overrides fail loudly at
    configuration time instead of deep inside a sweep.
    """
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{name} must be a positive integer, got {raw!r}"
        ) from None
    if value <= 0:
        raise ValueError(f"{name} must be a positive integer, got {raw!r}")
    return value


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``; return it."""
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a finite positive number, got {value!r}")
    return float(value)


def check_nonnegative(name: str, value: float) -> float:
    """Require ``value >= 0``; return it."""
    if not np.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be a finite non-negative number, got {value!r}")
    return float(value)


def check_fraction(name: str, value: float, *, allow_zero: bool = True) -> float:
    """Require ``value`` in ``[0, 1]`` (or ``(0, 1]``); return it."""
    lo_ok = value >= 0 if allow_zero else value > 0
    if not np.isfinite(value) or not lo_ok or value > 1:
        lo = "0" if allow_zero else "(0"
        raise ValueError(f"{name} must lie in [{lo}, 1], got {value!r}")
    return float(value)


def check_probability_matrix(name: str, values: np.ndarray) -> np.ndarray:
    """Require every entry of ``values`` to be a probability in [0, 1]."""
    arr = np.asarray(values, dtype=float)
    if arr.size and (np.any(~np.isfinite(arr)) or arr.min() < 0 or arr.max() > 1):
        raise ValueError(f"{name} entries must all lie in [0, 1]")
    return arr

"""Terminal bar charts for sweep results.

The figure harnesses print tables; for a quicker read the CLI can also
render each series as horizontal bars.  Pure string assembly — no
plotting dependency — and deterministic, so it is testable.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["bar_chart", "series_chart"]


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    fill: str = "#",
    value_format: str = "{:+.1%}",
    title: str | None = None,
) -> str:
    """Horizontal bars scaled to the largest |value|.

    Negative values render with ``-`` fills so improvement vs
    degradation is visible at a glance.
    """
    if len(labels) != len(values):
        raise ValueError(
            f"{len(labels)} labels for {len(values)} values"
        )
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    peak = max((abs(v) for v in values), default=0.0)
    label_w = max((len(l) for l in labels), default=0)
    lines: list[str] = []
    if title:
        lines.append(title)
    for label, v in zip(labels, values):
        if peak > 0:
            n = int(round(abs(v) / peak * width))
        else:
            n = 0
        bar = (fill if v >= 0 else "-") * n
        lines.append(
            f"{label.rjust(label_w)} | {bar.ljust(width)} {value_format.format(v)}"
        )
    return "\n".join(lines)


def series_chart(
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    width: int = 40,
    title: str | None = None,
) -> str:
    """One bar block per series, sharing the x labels and scale."""
    labels = [str(x) for x in x_values]
    blocks: list[str] = []
    if title:
        blocks.append(title)
    all_values = [v for ys in series.values() for v in ys]
    peak = max((abs(v) for v in all_values), default=0.0)
    for name, ys in series.items():
        if len(ys) != len(labels):
            raise ValueError(
                f"series {name!r} has {len(ys)} points for {len(labels)} x"
            )
        block = [f"[{name}]"]
        label_w = max(len(l) for l in labels)
        for label, v in zip(labels, ys):
            n = int(round(abs(v) / peak * width)) if peak > 0 else 0
            bar = ("#" if v >= 0 else "-") * n
            block.append(f"{label.rjust(label_w)} | {bar.ljust(width)} {v:+.1%}")
        blocks.append("\n".join(block))
    return "\n\n".join(blocks)

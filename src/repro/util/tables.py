"""Plain-text rendering of result tables and series.

The experiment harness reports everything as ASCII so that benchmark
output can be diffed against the paper's tables/figures without a
plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["format_table", "format_series"]


def _stringify(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as a boxed ASCII table.

    All rows must have the same number of cells as ``headers``.
    """
    str_rows = [[_stringify(c) for c in row] for row in rows]
    for r in str_rows:
        if len(r) != len(headers):
            raise ValueError(
                f"row has {len(r)} cells but table has {len(headers)} columns"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"

    sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(sep)
    lines.append(fmt_row(list(headers)))
    lines.append(sep)
    for row in str_rows:
        lines.append(fmt_row(row))
    lines.append(sep)
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    title: str | None = None,
    y_format: str = "{:+.1%}",
) -> str:
    """Render one or more y-series against shared x-values.

    This is the textual stand-in for the paper's figures: one row per
    x tick, one column per plotted policy/configuration.
    """
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(ys)} points for {len(x_values)} x-values"
            )
    headers = [x_label] + list(series.keys())
    rows = []
    for i, x in enumerate(x_values):
        row: list[object] = [x]
        for ys in series.values():
            row.append(y_format.format(ys[i]))
        rows.append(row)
    return format_table(headers, rows, title=title)

"""Unit helpers.

The paper states sizes in KB/MB and transfer rates in KB/s, but its time
equations (Eq. 3, 4, 6) multiply ``B(S_i)`` by ``Size(M_k)`` to obtain a
*time* — an abuse of notation only consistent if ``B`` is interpreted as
seconds-per-byte.  Internally :mod:`repro` stores

* sizes in **bytes**,
* rates in **bytes/second**,

and converts rates to seconds-per-byte (``spb``) at the point where time
is computed.  This module centralises those conversions.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "KB",
    "MB",
    "GB",
    "kbps_to_bps",
    "rate_to_spb",
    "spb_to_rate",
    "seconds_per_byte",
]

#: One kilobyte in bytes.  The paper predates KiB pedantry; it means 1024.
KB: int = 1024
#: One megabyte in bytes.
MB: int = 1024 * KB
#: One gigabyte in bytes.
GB: int = 1024 * MB


def kbps_to_bps(rate_kb_per_s: float | np.ndarray) -> float | np.ndarray:
    """Convert a rate in KB/s (the paper's unit) to bytes/s."""
    return np.multiply(rate_kb_per_s, KB)


def rate_to_spb(rate_bytes_per_s: float | np.ndarray) -> float | np.ndarray:
    """Convert bytes/second to seconds/byte (the ``B(·)`` of Eq. 3-6).

    Raises
    ------
    ValueError
        If any rate is not strictly positive — a zero rate would make
        transfer time infinite and signals a configuration bug.
    """
    arr = np.asarray(rate_bytes_per_s, dtype=float)
    if np.any(arr <= 0.0):
        raise ValueError("transfer rates must be strictly positive")
    out = 1.0 / arr
    if np.isscalar(rate_bytes_per_s) or arr.ndim == 0:
        return float(out)
    return out


#: Alias matching the paper's reading of ``B``.
seconds_per_byte = rate_to_spb


def spb_to_rate(spb: float | np.ndarray) -> float | np.ndarray:
    """Inverse of :func:`rate_to_spb`."""
    arr = np.asarray(spb, dtype=float)
    if np.any(arr <= 0.0):
        raise ValueError("seconds-per-byte values must be strictly positive")
    out = 1.0 / arr
    if np.isscalar(spb) or arr.ndim == 0:
        return float(out)
    return out

"""Deterministic random-number management.

Every stochastic component in :mod:`repro` accepts either an integer
seed, a :class:`numpy.random.Generator`, or ``None`` (fresh OS entropy).
Experiments that average over many runs derive *independent* child
generators through :class:`numpy.random.SeedSequence` spawning, so that

* a given seed always reproduces the same workload, trace, and
  simulation, and
* parallel/sequential execution order of the runs cannot change results.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["as_generator", "spawn_generators", "RngFactory"]


def as_generator(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` for a reproducible stream, or
        an existing generator (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(
    seed: int | np.random.Generator | None, n: int
) -> list[np.random.Generator]:
    """Create ``n`` statistically independent generators from one seed.

    When ``seed`` is already a generator, children are derived from its
    bit generator's seed sequence where available, falling back to
    integers drawn from the generator itself.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    if isinstance(seed, np.random.Generator):
        ss = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
        if isinstance(ss, np.random.SeedSequence):
            return [np.random.default_rng(child) for child in ss.spawn(n)]
        draws = seed.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(d)) for d in draws]
    root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(n)]


class RngFactory:
    """A labelled tree of reproducible generators.

    The same ``(seed, label)`` pair always yields the same stream, no
    matter how many other labels were requested before it and in what
    order.  This is what lets e.g. the workload generator and the trace
    sampler stay bit-identical while the simulation's perturbation
    stream is varied.

    Examples
    --------
    >>> f = RngFactory(42)
    >>> g1 = f.generator("workload")
    >>> g2 = RngFactory(42).generator("workload")
    >>> bool(g1.integers(0, 100) == g2.integers(0, 100))
    True
    """

    def __init__(self, seed: int | None = 0):
        if seed is not None and not isinstance(seed, (int, np.integer)):
            raise TypeError(f"RngFactory seed must be int or None, got {type(seed)!r}")
        self._seed = None if seed is None else int(seed)

    @property
    def seed(self) -> int | None:
        """The root seed this factory was built from."""
        return self._seed

    def _entropy_for(self, label: str | Sequence[int]) -> np.random.SeedSequence:
        if isinstance(label, str):
            key = [b for b in label.encode("utf-8")]
        else:
            key = list(label)
        base = [] if self._seed is None else [self._seed]
        return np.random.SeedSequence(entropy=base + key)

    def generator(self, label: str) -> np.random.Generator:
        """Return the generator associated with ``label``."""
        return np.random.default_rng(self._entropy_for(label))

    def generators(self, label: str, n: int) -> list[np.random.Generator]:
        """Return ``n`` independent generators under ``label``."""
        return [
            np.random.default_rng(child) for child in self._entropy_for(label).spawn(n)
        ]

    def child(self, label: str) -> "RngFactory":
        """Derive a sub-factory whose streams are independent of the parent's."""
        sub = self._entropy_for(label).generate_state(1, dtype=np.uint64)[0]
        return RngFactory(int(sub % (2**63)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RngFactory(seed={self._seed!r})"

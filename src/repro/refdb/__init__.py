"""The reference database and on-the-fly URL rewriting (Section 2).

The paper's serving path: when an HTML file is created or updated, the
local server parses it, records every multimedia URL and its position in
a **reference database**, and — on each request — "replaces on the fly
the remote URLs with the local ones" for the objects the allocation
marks for local download.  This is how the scheme avoids all redirection
latency: the split is baked into the HTML the client receives, and the
rewrite is pure in-memory computation ("minimal compared to the network
latency").

* :mod:`repro.refdb.documents` — synthesises the HTML documents of a
  :class:`~repro.core.types.SystemModel` (deterministic, sized to each
  page's ``Size(H_j)``),
* :mod:`repro.refdb.database` — parses documents into positional URL
  entries and serves allocation-rewritten HTML.

``benchmarks/bench_refdb_latency.py`` quantifies the paper's claim by
comparing the rewrite latency against the connection overheads of
Table 1.
"""

from repro.refdb.database import ReferenceDatabase, ReferenceEntry
from repro.refdb.documents import LOCAL_BASE, REPO_BASE, render_html

__all__ = [
    "ReferenceDatabase",
    "ReferenceEntry",
    "render_html",
    "REPO_BASE",
    "LOCAL_BASE",
]

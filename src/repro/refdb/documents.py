"""Synthetic HTML documents for the system's pages.

Each page's document embeds its compulsory MOs as ``<img>``/``<embed>``
tags and its optional MOs as ``<a href>`` links, all initially pointing
at the repository (the authoring convention of Section 2: authors
"refer to distant sites holding large multimedia objects without
necessarily copying them locally").  Deterministic filler text pads the
document to the page's ``Size(H_j)``, so the byte sizes the cost model
uses and the documents the reference database parses agree.
"""

from __future__ import annotations

from repro.core.types import SystemModel

__all__ = ["render_html", "REPO_BASE", "LOCAL_BASE", "object_url"]

#: URL prefix of the central repository.
REPO_BASE = "http://repository.example.com/mo"
#: URL prefix template of a local server (formatted with the server id).
LOCAL_BASE = "http://ls{server_id}.example.com/mo"

_FILLER = (
    "Lorem ipsum dolor sit amet, consectetur adipiscing elit, sed do "
    "eiusmod tempor incididunt ut labore et dolore magna aliqua. "
)


def object_url(object_id: int, base: str = REPO_BASE) -> str:
    """Canonical URL of ``M_k`` under ``base``."""
    return f"{base}/{object_id:06d}.bin"


def render_html(model: SystemModel, page_id: int) -> str:
    """The authored document of ``W_j`` (every MO URL points at ``R``).

    The document is padded with filler text to the page's ``Size(H_j)``
    bytes; when the structural markup alone exceeds the target size the
    document is returned unpadded (sizes in generated workloads are
    large enough that this only happens in hand-built toy models).
    """
    page = model.pages[page_id]
    lines = [
        "<!DOCTYPE html>",
        "<html>",
        f"<head><title>Page {page_id}</title></head>",
        "<body>",
        f"<h1>W_{page_id}</h1>",
    ]
    for k in page.compulsory:
        lines.append(f'<img src="{object_url(k)}" alt="mo-{k}">')
    for k in page.optional:
        lines.append(f'<a href="{object_url(k)}">extra {k}</a>')
    lines.append("<p>")
    skeleton = "\n".join(lines) + "\n"
    suffix = "</p>\n</body>\n</html>\n"
    target = int(page.html_size)
    need = target - len(skeleton) - len(suffix)
    filler = ""
    if need > 0:
        reps = need // len(_FILLER) + 1
        filler = (_FILLER * reps)[:need]
    return skeleton + filler + suffix

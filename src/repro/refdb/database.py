"""The reference database: positional URL index + on-the-fly rewriting.

Build once per document update (:meth:`ReferenceDatabase.index_page` —
the parse the paper performs "upon creation or update of an HTML file"),
then serve each request by splicing the stored document around the
recorded URL spans, pointing every locally-marked object at the local
server (:meth:`ReferenceDatabase.serve`).  Serving is O(document size)
string assembly with zero parsing — the "fast indexing scheme" the paper
assumes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.core.allocation import Allocation
from repro.core.types import SystemModel
from repro.refdb.documents import LOCAL_BASE, REPO_BASE, object_url, render_html

__all__ = ["ReferenceEntry", "ReferenceDatabase"]

_URL_RE = re.compile(
    re.escape(REPO_BASE) + r"/(?P<oid>\d{6})\.bin"
)


@dataclass(frozen=True)
class ReferenceEntry:
    """One multimedia URL occurrence inside a stored document."""

    object_id: int
    start: int
    """Byte offset of the URL in the document."""
    end: int
    """One past the URL's last byte."""
    kind: str
    """``"compulsory"`` or ``"optional"`` (from the page's structure)."""


class ReferenceDatabase:
    """Per-page positional URL index over authored documents."""

    def __init__(self, model: SystemModel):
        self.model = model
        self._documents: dict[int, str] = {}
        self._entries: dict[int, tuple[ReferenceEntry, ...]] = {}
        self.rewrites_served = 0

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, model: SystemModel) -> "ReferenceDatabase":
        """Author + index every page of ``model``."""
        db = cls(model)
        for j in range(model.n_pages):
            db.index_page(j)
        return db

    def index_page(self, page_id: int, document: str | None = None) -> None:
        """(Re-)parse one page's document into positional entries.

        Parameters
        ----------
        page_id:
            The page to index.
        document:
            Updated document text; ``None`` re-authors the canonical one.

        Raises
        ------
        ValueError
            If the document references an object the page's structure
            does not declare (a stale page/DB mismatch).
        """
        page = self.model.pages[page_id]
        doc = document if document is not None else render_html(self.model, page_id)
        compulsory = set(page.compulsory)
        optional = set(page.optional)
        entries = []
        for match in _URL_RE.finditer(doc):
            oid = int(match.group("oid"))
            if oid in compulsory:
                kind = "compulsory"
            elif oid in optional:
                kind = "optional"
            else:
                raise ValueError(
                    f"page {page_id}: document references object {oid} "
                    "which the page structure does not declare"
                )
            entries.append(
                ReferenceEntry(
                    object_id=oid, start=match.start(), end=match.end(), kind=kind
                )
            )
        self._documents[page_id] = doc
        self._entries[page_id] = tuple(entries)

    # ------------------------------------------------------------------
    def entries(self, page_id: int) -> tuple[ReferenceEntry, ...]:
        """The positional index of ``page_id`` (indexed pages only)."""
        return self._entries[page_id]

    def document(self, page_id: int) -> str:
        """The stored (authored) document."""
        return self._documents[page_id]

    def serve(self, page_id: int, alloc: Allocation) -> str:
        """The HTML a client receives under ``alloc``.

        Every URL whose object is marked for local download (``X'``) is
        rewritten to the hosting server's base; the rest keep their
        repository URLs.  Pure splicing around the pre-parsed spans.
        """
        if alloc.model is not self.model:
            raise ValueError("allocation and database must share the model")
        page = self.model.pages[page_id]
        doc = self._documents[page_id]
        local_base = LOCAL_BASE.format(server_id=page.server)

        comp_marks = dict(zip(page.compulsory, alloc.page_comp_marks(page_id)))
        opt_marks = dict(zip(page.optional, alloc.page_opt_marks(page_id)))

        pieces: list[str] = []
        cursor = 0
        for entry in self._entries[page_id]:
            local = (
                comp_marks.get(entry.object_id, False)
                if entry.kind == "compulsory"
                else opt_marks.get(entry.object_id, False)
            )
            if local:
                pieces.append(doc[cursor : entry.start])
                pieces.append(object_url(entry.object_id, local_base))
                cursor = entry.end
        pieces.append(doc[cursor:])
        self.rewrites_served += 1
        return "".join(pieces)

    def split_for(self, page_id: int, alloc: Allocation) -> tuple[list[int], list[int]]:
        """Convenience: ``(local_object_ids, remote_object_ids)`` of the
        page's compulsory set under ``alloc`` — what the served HTML
        implies the browser will fetch from each connection."""
        page = self.model.pages[page_id]
        marks = alloc.page_comp_marks(page_id)
        local = [k for k, m in zip(page.compulsory, marks) if m]
        remote = [k for k, m in zip(page.compulsory, marks) if not m]
        return local, remote

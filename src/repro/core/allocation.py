"""Allocation state: the decision matrices ``X``/``X'`` plus replica sets.

The paper's decision variables are

* ``X_jk = 1``  — compulsory object ``M_k`` of page ``W_j`` is downloaded
  from the *local* server (Eq. 3/4),
* ``X'_jk = 1`` — as ``X`` but extended to optional objects (Eq. 6), and
* the implied **replica set** of each server: every object some hosted
  page marks local must be stored there (text below Eq. 2).

Two subtleties the paper relies on and we model explicitly:

1. A server may *store* an object that no page currently marks for local
   download ("some MOs although stored in the server may not be marked
   for a local download", Section 4.2) — the storage-restoration loop
   exploits exactly this.  Hence replicas are independent state, with the
   invariant ``marked ⊆ stored``.
2. An object marked local by several co-hosted pages is stored **once**
   (the set-union in Eq. 10).

:class:`Allocation` keeps the flat boolean mark arrays aligned with
:class:`repro.core.types.SystemModel`'s flattened ``U``/``U'`` entries,
plus one replica set per server, and maintains per-server mark counts so
the greedy loops can find fully-unmarked (deallocatable) objects in O(1).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.context import EvalContext
from repro.core.types import SystemModel

__all__ = ["Allocation", "ReverseIndex", "transplant_allocation"]


def transplant_allocation(alloc: "Allocation", model: SystemModel) -> "Allocation":
    """Rebind ``alloc``'s decisions onto a structurally identical model.

    Used when planning and evaluation happen on different model
    instances — e.g. an allocation computed against *estimated* page
    frequencies replayed on the *true* model, or across frequency-drift
    epochs.  Both models must have the same pages/objects layout (only
    attributes like frequencies or capacities may differ).
    """
    src = alloc.model
    if (
        src.n_pages != model.n_pages
        or src.n_servers != model.n_servers
        or not np.array_equal(src.comp_objects, model.comp_objects)
        or not np.array_equal(src.opt_objects, model.opt_objects)
        or not np.array_equal(src.page_server, model.page_server)
    ):
        raise ValueError(
            "models are structurally different; transplant requires "
            "identical page/object layout"
        )
    return Allocation(
        model,
        alloc.comp_local,
        alloc.opt_local,
        replicas=[set(r) for r in alloc.replicas],
        comp_stream=alloc.comp_stream,
    )


class ReverseIndex:
    """Static reverse maps from (server, object) to flat matrix entries.

    Built once per :class:`SystemModel` (it does not depend on any
    allocation decisions) and shared by all allocations over that model.

    Attributes
    ----------
    comp_entries:
        ``comp_entries[i][k]`` — tuple of flat compulsory-entry indices of
        pages hosted on server ``i`` that reference object ``k``.
    opt_entries:
        The analogous map for optional entries.
    """

    _CACHE_ATTR = "_repro_reverse_index_cache"

    def __init__(self, model: SystemModel):
        self.model = model
        ctx = EvalContext.for_model(model)
        self.comp_entries: tuple[dict[int, tuple[int, ...]], ...] = tuple(
            self._server_map(*ctx.comp_group(i)) for i in range(model.n_servers)
        )
        self.opt_entries: tuple[dict[int, tuple[int, ...]], ...] = tuple(
            self._server_map(*ctx.opt_group(i)) for i in range(model.n_servers)
        )

    @staticmethod
    def _server_map(
        entries: np.ndarray, starts: np.ndarray, counts: np.ndarray
    ) -> dict[int, tuple[int, ...]]:
        """``{object: (entries…)}`` from one server's CSR group.

        The context groups entries by ``(object, entry)`` ascending, so
        the per-object tuples come out in the same order the old
        append-per-entry build produced.
        """
        ge = entries.tolist()
        st = starts.tolist()
        ct = counts.tolist()
        d: dict[int, tuple[int, ...]] = {}
        for k in counts.nonzero()[0].tolist():
            s = st[k]
            d[k] = tuple(ge[s : s + ct[k]])
        return d

    @classmethod
    def for_model(cls, model: SystemModel) -> "ReverseIndex":
        """Return the (cached) reverse index of ``model``."""
        cached = getattr(model, cls._CACHE_ATTR, None)
        if cached is None:
            cached = cls(model)
            setattr(model, cls._CACHE_ATTR, cached)
        return cached

    def entries_for(self, server_id: int, object_id: int) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """``(compulsory_entries, optional_entries)`` for the pair."""
        return (
            self.comp_entries[server_id].get(object_id, ()),
            self.opt_entries[server_id].get(object_id, ()),
        )


class Allocation:
    """Mutable decision state over a :class:`SystemModel`.

    Parameters
    ----------
    model:
        The system universe the decisions refer to.
    comp_local:
        Flat boolean array over the model's compulsory entries (``X``).
        Defaults to all-``False`` (everything from the repository).
    opt_local:
        Flat boolean array over the optional entries (the optional part of
        ``X'``). Defaults to all-``False``.
    replicas:
        Per-server sets of stored object ids. Defaults to exactly the
        objects required by the marks. Supplying a superset is allowed
        (stored-but-unmarked objects); a subset raises.
    comp_stream:
        Per-compulsory-entry remote stream assignment (``int8``, values
        in ``1..n_streams-1``) — which of the k−1 remote streams serves
        the entry when ``comp_local`` is ``False``.  Meaningful only for
        remote entries; defaults to all-``1`` (the repository stream,
        the only remote stream of the degenerate k=2 topology).
    """

    def __init__(
        self,
        model: SystemModel,
        comp_local: np.ndarray | None = None,
        opt_local: np.ndarray | None = None,
        replicas: Iterable[Iterable[int]] | None = None,
        comp_stream: np.ndarray | None = None,
    ):
        self.model = model
        #: shared columnar derived state (see :mod:`repro.core.context`)
        self.ctx = EvalContext.for_model(model)
        ne_c = len(model.comp_objects)
        ne_o = len(model.opt_objects)
        self.comp_local = (
            np.zeros(ne_c, dtype=bool) if comp_local is None else np.asarray(comp_local, dtype=bool).copy()
        )
        self.opt_local = (
            np.zeros(ne_o, dtype=bool) if opt_local is None else np.asarray(opt_local, dtype=bool).copy()
        )
        if self.comp_local.shape != (ne_c,):
            raise ValueError(
                f"comp_local must have shape ({ne_c},), got {self.comp_local.shape}"
            )
        if self.opt_local.shape != (ne_o,):
            raise ValueError(
                f"opt_local must have shape ({ne_o},), got {self.opt_local.shape}"
            )
        if comp_stream is None:
            self.comp_stream = np.ones(ne_c, dtype=np.int8)
        else:
            self.comp_stream = np.asarray(comp_stream, dtype=np.int8).copy()
            if self.comp_stream.shape != (ne_c,):
                raise ValueError(
                    f"comp_stream must have shape ({ne_c},), got "
                    f"{self.comp_stream.shape}"
                )
        self._rebuild_mark_counts()
        required = self._required_replicas()
        if replicas is None:
            self.replicas: list[set[int]] = [set(r) for r in required]
        else:
            self.replicas = [set(r) for r in replicas]
            if len(self.replicas) != model.n_servers:
                raise ValueError(
                    f"replicas must have one set per server "
                    f"({model.n_servers}), got {len(self.replicas)}"
                )
            for i, (have, need) in enumerate(zip(self.replicas, required)):
                missing = need - have
                if missing:
                    raise ValueError(
                        f"server {i}: objects {sorted(missing)[:5]}... are "
                        "marked for local download but absent from the "
                        "replica set"
                    )

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _rebuild_mark_counts(self) -> None:
        """Recompute the per-server ``{object: #marking entries}`` maps.

        One ``np.bincount`` over the context's precomputed per-entry
        ``(server, object)`` pair indices — integer counts, so the totals
        are exact regardless of accumulation order.  Python-level work is
        one dict write per *replica*, not per mark.
        """
        ctx = self.ctx
        self._mark_counts: list[dict[int, int]] = [
            dict() for _ in range(self.model.n_servers)
        ]
        cnt = np.bincount(
            np.concatenate(
                [ctx.comp_pair[self.comp_local], ctx.opt_pair[self.opt_local]]
            ),
            minlength=ctx.n_pairs,
        )
        nz = cnt.nonzero()[0]
        # nz is ascending and the pair table is server-contiguous
        bounds = nz.searchsorted(ctx.pair_indptr)
        obj_of = ctx.pair_object
        for i in range(self.model.n_servers):
            lo, hi = bounds[i], bounds[i + 1]
            if lo < hi:
                sel = nz[lo:hi]
                self._mark_counts[i] = dict(
                    zip(obj_of[sel].tolist(), cnt[sel].tolist())
                )

    def _required_replicas(self) -> list[set[int]]:
        return [set(d.keys()) for d in self._mark_counts]

    def mark_count(self, server_id: int, object_id: int) -> int:
        """Number of entries on ``server_id`` marking ``object_id`` local."""
        return self._mark_counts[server_id].get(object_id, 0)

    # ------------------------------------------------------------------
    # mutation (keeps marks ⊆ replicas)
    # ------------------------------------------------------------------
    def set_comp_local(self, entry: int, value: bool) -> None:
        """Set ``X`` for one flat compulsory entry, updating replica state."""
        old = bool(self.comp_local[entry])
        if old == bool(value):
            return
        ctx = self.ctx
        i = int(ctx.comp_server[entry])
        k = int(ctx.comp_objects[entry])
        self.comp_local[entry] = value
        self._bump(i, k, +1 if value else -1)

    def set_opt_local(self, entry: int, value: bool) -> None:
        """Set the optional part of ``X'`` for one flat entry."""
        old = bool(self.opt_local[entry])
        if old == bool(value):
            return
        ctx = self.ctx
        i = int(ctx.opt_server[entry])
        k = int(ctx.opt_objects[entry])
        self.opt_local[entry] = value
        self._bump(i, k, +1 if value else -1)

    def set_comp_local_bulk(self, entries: np.ndarray, value: bool) -> None:
        """Set ``X`` for many flat compulsory entries in one batch.

        Equivalent to ``for e in entries: set_comp_local(e, value)`` but
        with the replica/mark-count bookkeeping grouped per unique
        ``(server, object)`` pair instead of per entry.  Duplicate
        entries are collapsed (setting is idempotent).
        """
        changed = self._changed_entries(entries, self.comp_local, value)
        if len(changed) == 0:
            return
        self.comp_local[changed] = value
        self._bump_bulk(self.ctx.comp_pair[changed], +1 if value else -1)

    def set_opt_local_bulk(self, entries: np.ndarray, value: bool) -> None:
        """Batched :meth:`set_opt_local` (see :meth:`set_comp_local_bulk`)."""
        changed = self._changed_entries(entries, self.opt_local, value)
        if len(changed) == 0:
            return
        self.opt_local[changed] = value
        self._bump_bulk(self.ctx.opt_pair[changed], +1 if value else -1)

    def apply_server_delta(
        self,
        server_id: int,
        comp_set: np.ndarray,
        comp_clear: np.ndarray,
        opt_set: np.ndarray,
        opt_clear: np.ndarray,
        replica_add: np.ndarray,
        replica_remove: np.ndarray,
    ) -> None:
        """Apply one server's mark/replica delta (the sharded wire format).

        ``comp_set``/``comp_clear``/``opt_set``/``opt_clear`` are flat
        global entry ids on ``server_id`` whose marks flipped to / away
        from local; ``replica_add``/``replica_remove`` are object ids
        entering / leaving the server's replica set.  The arrays come
        from a shard worker diffing its resident allocation before and
        after an absorption (DESIGN.md Appendix I), so set/clear pairs
        are disjoint and ``replica_remove`` never strands a mark — the
        result is bit-identical to replaying the absorption in place.

        Clears run before sets so the replica bookkeeping in
        :meth:`set_comp_local_bulk` only ever sees the final state;
        explicit replica edits run last (mark flips never *remove*
        replicas, and stored-but-unmarked additions have no mark at
        all, so both directions need the explicit pass).
        """
        if len(comp_clear):
            self.set_comp_local_bulk(comp_clear, False)
        if len(opt_clear):
            self.set_opt_local_bulk(opt_clear, False)
        if len(comp_set):
            self.set_comp_local_bulk(comp_set, True)
        if len(opt_set):
            self.set_opt_local_bulk(opt_set, True)
        reps = self.replicas[server_id]
        for k in replica_remove.tolist():
            reps.discard(int(k))
        for k in replica_add.tolist():
            reps.add(int(k))

    @staticmethod
    def _changed_entries(
        entries: np.ndarray, marks: np.ndarray, value: bool
    ) -> np.ndarray:
        """Deduplicated subset of ``entries`` whose mark actually flips."""
        entries = np.asarray(entries, dtype=np.intp)
        changed = entries[marks[entries] != bool(value)]
        if len(changed) > 1 and not (changed[1:] > changed[:-1]).all():
            changed = np.unique(changed)
        return changed

    def _bump_bulk(self, pair_ids: np.ndarray, delta: int) -> None:
        """Apply a bulk mark delta grouped per ``(server, object)`` pair.

        ``pair_ids`` are context pair-table rows of the flipped entries;
        unique-with-counts over them yields each pair's multiplicity in
        ascending (server, object) order, exactly like the sort-based
        grouping it replaces.
        """
        ctx = self.ctx
        uniq, counts = np.unique(pair_ids, return_counts=True)
        usrv = ctx.pair_server[uniq]
        uobj = ctx.pair_object[uniq]
        bounds = (usrv[1:] != usrv[:-1]).nonzero()[0] + 1
        for lo, hi in zip(
            np.concatenate(([0], bounds)), np.concatenate((bounds, [len(uniq)]))
        ):
            i = int(usrv[lo])
            objs = uobj[lo:hi].tolist()
            cnts = counts[lo:hi].tolist()
            d = self._mark_counts[i]
            if delta > 0 and not d:
                self._mark_counts[i] = dict(zip(objs, cnts))
                self.replicas[i].update(objs)
                continue
            for k, c in zip(objs, cnts):
                new = d.get(k, 0) + delta * c
                if new < 0:  # pragma: no cover - defensive
                    raise RuntimeError("mark count underflow")
                if new == 0:
                    d.pop(k, None)
                else:
                    d[k] = new
            if delta > 0:
                self.replicas[i].update(objs)

    def _bump(self, server_id: int, object_id: int, delta: int) -> None:
        d = self._mark_counts[server_id]
        new = d.get(object_id, 0) + delta
        if new < 0:  # pragma: no cover - defensive
            raise RuntimeError("mark count underflow")
        if new == 0:
            d.pop(object_id, None)
        else:
            d[object_id] = new
        if delta > 0:
            self.replicas[server_id].add(object_id)

    def store(self, server_id: int, object_id: int) -> None:
        """Add a replica of ``object_id`` at ``server_id`` (idempotent)."""
        self.replicas[server_id].add(object_id)

    def deallocate(self, server_id: int, object_id: int) -> tuple[int, ...]:
        """Drop the replica of ``object_id`` at ``server_id``.

        All entries on that server marking the object local are flipped to
        remote first (a page cannot download locally what is not stored).

        Returns
        -------
        tuple of page ids whose marks were flipped (useful for the
        re-partitioning step of storage restoration).
        """
        if object_id not in self.replicas[server_id]:
            raise KeyError(
                f"object {object_id} is not stored at server {server_id}"
            )
        rev = ReverseIndex.for_model(self.model)
        comp_e, opt_e = rev.entries_for(server_id, object_id)
        affected: list[int] = []
        for e in comp_e:
            if self.comp_local[e]:
                self.set_comp_local(e, False)
                affected.append(int(self.model.comp_pages[e]))
        for e in opt_e:
            if self.opt_local[e]:
                self.set_opt_local(e, False)
                affected.append(int(self.model.opt_pages[e]))
        self.replicas[server_id].discard(object_id)
        return tuple(dict.fromkeys(affected))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def stored_bytes(self, server_id: int) -> float:
        """MO bytes stored at ``server_id`` (the set-union term of Eq. 10)."""
        sizes = self.model.sizes
        return float(sum(sizes[k] for k in self.replicas[server_id]))

    def stored_bytes_all(self) -> np.ndarray:
        """Per-server stored MO bytes."""
        return np.array(
            [self.stored_bytes(i) for i in range(self.model.n_servers)]
        )

    def unmarked_stored(self, server_id: int) -> set[int]:
        """Objects stored at ``server_id`` with zero local-download marks."""
        d = self._mark_counts[server_id]
        return {k for k in self.replicas[server_id] if k not in d}

    def page_comp_marks(self, page_id: int) -> np.ndarray:
        """View of this page's compulsory marks (aligned with
        ``model.pages[page_id].compulsory``)."""
        return self.comp_local[self.model.comp_slice(page_id)]

    def page_opt_marks(self, page_id: int) -> np.ndarray:
        """View of this page's optional marks."""
        return self.opt_local[self.model.opt_slice(page_id)]

    def copy(self) -> "Allocation":
        """Deep copy of marks and replica sets (model is shared)."""
        dup = Allocation.__new__(Allocation)
        dup.model = self.model
        dup.ctx = self.ctx
        dup.comp_local = self.comp_local.copy()
        dup.opt_local = self.opt_local.copy()
        dup.comp_stream = self.comp_stream.copy()
        dup.replicas = [set(r) for r in self.replicas]
        dup._mark_counts = [dict(d) for d in self._mark_counts]
        return dup

    def check_invariants(self) -> None:
        """Raise :class:`AssertionError` if marks/replicas are inconsistent.

        Intended for tests and debugging; production paths maintain the
        invariants incrementally.
        """
        k = getattr(self.model, "n_streams", 2)
        assert (self.comp_stream >= 1).all() and (
            self.comp_stream <= k - 1
        ).all(), "comp_stream out of 1..n_streams-1 range"
        fresh = Allocation(self.model, self.comp_local, self.opt_local)
        for i in range(self.model.n_servers):
            need = set(fresh._mark_counts[i].keys())
            assert need <= self.replicas[i], (
                f"server {i}: marked objects {sorted(need - self.replicas[i])} "
                "missing from replica set"
            )
            assert self._mark_counts[i] == fresh._mark_counts[i], (
                f"server {i}: stale mark counts"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Allocation):
            return NotImplemented
        return (
            self.model is other.model
            and np.array_equal(self.comp_local, other.comp_local)
            and np.array_equal(self.opt_local, other.opt_local)
            # stream assignments only matter where the entry is remote
            and np.array_equal(
                np.where(self.comp_local, 0, self.comp_stream),
                np.where(other.comp_local, 0, other.comp_stream),
            )
            and self.replicas == other.replicas
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        stored = sum(len(r) for r in self.replicas)
        return (
            f"Allocation(local_comp={int(self.comp_local.sum())}/"
            f"{len(self.comp_local)}, local_opt={int(self.opt_local.sum())}/"
            f"{len(self.opt_local)}, replicas={stored})"
        )

"""Shared-memory arena for zero-copy model/result shipping.

The sharded kernel (:mod:`repro.core.shard`) moves two kinds of bulk
array data between the parent and its worker processes:

* the model's **immutable flat columns** (``MODEL_COLUMN_FIELDS`` of
  :mod:`repro.core.types`) — identical for every worker and every run
  over the same model, yet previously re-pickled per run and
  re-unpickled per worker;
* each shard's **result arrays** (mark-index frontiers, replica lists)
  — produced once in a worker and read exactly once by the parent's
  reconcile.

:class:`ShmArena` packs a ``{name: ndarray}`` mapping into **one**
``multiprocessing.shared_memory`` segment with an 64-byte-aligned
layout, and re-exposes the arrays as zero-copy views on attach.  The
picklable :attr:`ShmArena.handle` (segment name + layout) is all that
crosses the process boundary.

Lifecycle (and the CPython < 3.13 resource-tracker pitfall)
-----------------------------------------------------------
``SharedMemory.__init__`` registers the segment with the process's
resource tracker *unconditionally* — on attach as well as on create
(CPython gh-82300).  Two failure modes follow.  A pool worker forked
*before* the parent's tracker existed spawns its own tracker on first
attach, and that tracker **unlinks** the parent's live segment when the
worker exits.  A worker forked *after* shares the parent's tracker, so
any per-process unregister silently erases the creator's registration
too (the tracker keys by name, not by process).  Since "who registered"
cannot be controlled, the arena takes the tracker out of the picture
entirely: **every** create and attach unregisters immediately, and
:meth:`unlink` re-registers just before unlinking so the library's own
unregister-on-unlink finds the name (no tracker KeyError noise).
Cleanup is therefore explicit — the designated *owner* process must
call :meth:`unlink`/:meth:`destroy` (the sharded kernel does so after
reconcile and from its ``atexit`` pool shutdown).  Ownership follows
the reader for result arenas (worker creates, parent owns and unlinks
after reading) and the writer for model arenas (parent creates and
owns, workers only attach).

Callers must drop every view before :meth:`close`.  Depending on the
platform's buffer accounting, closing with live views either raises
:class:`BufferError` inside the stdlib (caught here — ``close``
returns ``False`` and the mapping stays pinned until the views die) or
succeeds and leaves the views **dangling** (reads segfault) — CPython
3.11 + NumPy on Linux does the latter, because NumPy's buffer export
lands on the memoryview chain rather than the ``mmap``.  The consumers
in :mod:`repro.core.shard` therefore always null their array
references before closing.  Once the owner has unlinked, the segment's
memory is reclaimed when the last mapping goes away (at process exit
at the latest).

This module sits below the core layer proper: it imports nothing above
``util`` (enforced by ``scripts/check_layering.py``), so any layer —
including future non-core pools — can use it without dragging the
kernels in.
"""

from __future__ import annotations

import os
from typing import Mapping

import numpy as np

__all__ = ["ShmArena", "shm_available", "resolve_shm", "ENV_FLAG"]

#: Environment flag gating shared-memory transport: ``0/false/no/off``
#: forces the pickle fallback, ``1/true/yes/on`` requests shm (still
#: subject to availability), unset means "use it when available".
ENV_FLAG = "REPRO_SHM"

_ALIGN = 64

_TRUE = frozenset({"1", "true", "yes", "on"})
_FALSE = frozenset({"0", "false", "no", "off"})


def shm_available() -> bool:
    """Whether ``multiprocessing.shared_memory`` is usable here."""
    try:
        from multiprocessing import shared_memory
    except Exception:  # pragma: no cover - platform without shm
        return False
    return hasattr(shared_memory, "SharedMemory")


def resolve_shm(flag: bool | None = None) -> bool:
    """Resolve the shm on/off decision: explicit → ``REPRO_SHM`` → probe.

    An explicit ``flag`` wins; otherwise the :data:`ENV_FLAG`
    environment variable decides (malformed values raise
    :class:`ValueError` naming the variable); otherwise shm is used
    whenever the platform provides it.  A ``True`` from any source is
    still conditioned on :func:`shm_available` — callers always get a
    decision they can act on, with the pickle path as the fallback.
    """
    if flag is not None:
        return bool(flag) and shm_available()
    raw = os.environ.get(ENV_FLAG)
    if raw is not None:
        value = raw.strip().lower()
        if value in _FALSE:
            return False
        if value in _TRUE:
            return shm_available()
        raise ValueError(
            f"{ENV_FLAG} must be one of "
            f"{'/'.join(sorted(_TRUE | _FALSE))}, got {raw!r}"
        )
    return shm_available()


def _untrack(shm) -> None:
    """Unregister ``shm`` from the resource tracker (see module docstring).

    Best-effort — tracker internals vary across CPython versions, and a
    failed unregister only risks a spurious unlink at tracker exit,
    never data loss in the explicit-owner protocol used here.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker not running / renamed
        pass


def _retrack(shm) -> None:
    """Re-register ``shm`` so the next unregister (inside
    ``SharedMemory.unlink``) balances instead of KeyError-ing in the
    tracker process."""
    try:
        from multiprocessing import resource_tracker

        resource_tracker.register(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker not running / renamed
        pass


class ShmArena:
    """Named NumPy arrays packed into one shared-memory segment.

    Construct with :meth:`create` (allocates + copies) or
    :meth:`attach` (maps an existing segment from its picklable
    :attr:`handle`).  Exactly one process should hold ``owner=True``
    and eventually call :meth:`unlink` (or :meth:`destroy`).
    """

    def __init__(self, shm, layout: dict, owner: bool):
        self._shm = shm
        self._layout = layout
        self._owner = owner
        self._closed = False
        self._unlinked = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls, arrays: Mapping[str, np.ndarray], owner: bool = True
    ) -> "ShmArena":
        """Allocate a segment holding copies of ``arrays``.

        ``owner`` records lifecycle responsibility: the owning process
        must eventually :meth:`unlink`.  Tracker registration is dropped
        either way (see the module docstring).
        """
        from multiprocessing import shared_memory

        layout: dict[str, tuple[int, str, tuple[int, ...]]] = {}
        staged: list[tuple[np.ndarray, int]] = []
        offset = 0
        for name, arr in arrays.items():
            a = np.ascontiguousarray(arr)
            offset = -(-offset // _ALIGN) * _ALIGN
            layout[name] = (offset, a.dtype.str, a.shape)
            staged.append((a, offset))
            offset += a.nbytes
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        _untrack(shm)
        for a, off in staged:
            dst = np.ndarray(a.shape, dtype=a.dtype, buffer=shm.buf, offset=off)
            dst[...] = a
        return cls(shm, layout, owner=owner)

    @classmethod
    def attach(cls, handle: dict, owner: bool = False) -> "ShmArena":
        """Map an existing segment from a :attr:`handle`.

        ``owner=True`` adopts lifecycle responsibility — this process
        must eventually :meth:`unlink` (the protocol for worker-created
        result arenas read once by the parent).
        """
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=handle["name"])
        _untrack(shm)
        return cls(shm, dict(handle["layout"]), owner=owner)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @property
    def handle(self) -> dict:
        """Picklable descriptor: segment name plus the array layout."""
        return {"name": self._shm.name, "layout": self._layout}

    @property
    def nbytes(self) -> int:
        """Size of the backing segment in bytes."""
        return int(self._shm.size)

    def keys(self):
        """The packed array names."""
        return self._layout.keys()

    def get(self, name: str, writeable: bool = False) -> np.ndarray:
        """Zero-copy view of one packed array (read-only by default)."""
        offset, dtype, shape = self._layout[name]
        view = np.ndarray(
            shape, dtype=np.dtype(dtype), buffer=self._shm.buf, offset=offset
        )
        view.flags.writeable = writeable
        return view

    def arrays(self, writeable: bool = False) -> dict[str, np.ndarray]:
        """All packed arrays as views, keyed by name."""
        return {name: self.get(name, writeable) for name in self._layout}

    def put(self, name: str, values: np.ndarray) -> None:
        """Overwrite one packed array in place (shape/dtype must match).

        This is the parent's write half of the mark-frontier protocol
        (DESIGN.md Appendix I): the owner updates the shared copy
        between rounds while workers hold read-only attachments, so a
        frontier resync ships only the segment *handle*.  No
        synchronisation is provided — callers must not write while a
        reader is mid-read (the sharded scatter writes strictly between
        round submissions).
        """
        offset, dtype, shape = self._layout[name]
        arr = np.asarray(values)
        if arr.shape != tuple(shape) or arr.dtype != np.dtype(dtype):
            raise ValueError(
                f"put({name!r}): expected {shape} {dtype}, "
                f"got {arr.shape} {arr.dtype.str}"
            )
        dst = np.ndarray(
            shape, dtype=np.dtype(dtype), buffer=self._shm.buf, offset=offset
        )
        dst[...] = arr

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> bool:
        """Drop this process's mapping; ``False`` if views still pin it.

        Only call after releasing every view from :meth:`get` /
        :meth:`arrays` — on platforms where NumPy's export does not pin
        the mmap (CPython 3.11 + Linux), a close with live views
        *succeeds* and the views dangle (see the module docstring).  A
        ``False`` return is not a leak in the owner-driven protocol:
        the mapping is released when the views die or at process exit,
        and the memory itself is reclaimed once the owner has unlinked.
        """
        if self._closed:
            return True
        try:
            self._shm.close()
        except BufferError:
            return False
        self._closed = True
        return True

    def unlink(self) -> None:
        """Remove the segment name (owner's responsibility, idempotent)."""
        if self._unlinked:
            return
        try:
            _retrack(self._shm)  # balance unlink's internal unregister
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double unlink race
            pass
        self._unlinked = True

    def destroy(self) -> bool:
        """:meth:`unlink` then :meth:`close`; returns the close result."""
        self.unlink()
        return self.close()

"""One columnar home for per-model derived state: the :class:`EvalContext`.

Every layer of the pipeline — PARTITION (Section 4.2), the Eq. 8/10
restoration loops, OFF_LOADING (Eq. 9), the Eq. 3-7 cost model, the
baselines and the request-level simulator — evaluates the same matrices
``U``, ``U'``, ``A``, ``X``, ``X'`` over the same per-entry attributes.
Before this module each consumer re-derived its own slice of that state
(`CostModel` columns, `Allocation`'s pair grouping, the eviction
scorer's per-server gather, ad-hoc ``ReverseIndex`` threading …), once
per phase or worse.

:class:`EvalContext` is the consolidation: an immutable struct-of-arrays
built **once per** ``(SystemModel, kernel)`` and cached on the model
(mirroring ``ReverseIndex.for_model``).  The columns are plain NumPy
arrays shared by reference between the two kernel variants, so asking
for the ``"scalar"`` context after the ``"batched"`` one costs nothing.
All expressions here are copied *verbatim* from the consumers they
replace — the arrays are bit-identical to what each consumer used to
compute privately, which is what keeps the golden regressions and the
differential kernel oracles unchanged.

:class:`IncrementalObjective` layers delta evaluation of the composite
objective ``D = α₁·D₁ + α₂·D₂`` on top of the context: bulk mark flips
update the per-page byte totals and stream times of only the touched
pages.  Per-page byte totals are maintained *additively*, so ``D`` can
drift from the exact value by float-rounding ulps over long edit
sequences; :meth:`IncrementalObjective.resync` is the exact-recompute
escape hatch, restoring bit-equality with ``CostModel.D`` (the identity
argument lives in DESIGN.md Appendix E).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Iterator, Literal

import numpy as np

from repro.core.types import SystemModel, restrict_to_servers

__all__ = [
    "EvalContext",
    "IncrementalObjective",
    "ScalarViews",
    "Kernel",
    "resolve_kernel",
    "engine_kernel",
    "rebuild_contexts",
    "clear_derived_state",
    "is_frequency_clone",
    "adopt_frequency_context",
]

Kernel = Literal["batched", "scalar", "sharded"]

_KERNELS = ("batched", "scalar", "sharded")

#: Kernels that name an actual evaluation engine.  ``"sharded"`` is a
#: *dispatch* kernel: it fans servers out over worker processes and runs
#: the batched engine inside each shard (see :mod:`repro.core.shard`).
_ENGINE_KERNELS = ("batched", "scalar")


def resolve_kernel(value: str | None, default: Kernel = "batched") -> Kernel:
    """Validate a kernel name from CLI / env / API callers.

    The single source of truth for kernel validation — the CLI
    ``--kernel`` flag, the ``REPRO_KERNEL`` environment override, and the
    restoration/partition entry points all funnel through here, so the
    accepted values and the error text cannot diverge.

    Parameters
    ----------
    value:
        Raw kernel name; surrounding whitespace and case are ignored.
        ``None`` or ``""`` selects ``default``.
    default:
        Kernel returned for unset values.

    Raises
    ------
    ValueError
        If ``value`` names none of ``"batched"``, ``"scalar"``,
        ``"sharded"``.
    """
    if value is None or value == "":
        return default
    kernel = str(value).strip().lower()
    if kernel not in _KERNELS:
        raise ValueError(
            f"kernel must be one of {'|'.join(_KERNELS)}, got {value!r}"
        )
    return kernel  # type: ignore[return-value]


def engine_kernel(kernel: Kernel) -> Kernel:
    """The evaluation engine behind a (validated) kernel name.

    ``"sharded"`` is process-level orchestration, not a third set of
    numerics: inside every shard (and for any phase a caller runs
    directly with ``kernel="sharded"``) the batched engine does the
    work, so all three names produce bit-identical allocations.
    """
    return "batched" if kernel == "sharded" else kernel


@dataclass(frozen=True)
class ScalarViews:
    """Plain-list per-page attribute views (see :attr:`EvalContext.scalars`).

    NumPy scalar indexing costs ~1 microsecond per access; the greedy
    restoration loops evaluate millions of single-page times, so they
    read these plain ``list`` views instead.
    """

    ovhd_local: list[float]
    spb_local: list[float]
    ovhd_repo: list[float]
    spb_repo: list[float]
    html: list[float]
    freq: list[float]
    #: per-remote-stream views; element 0 is the repository stream and
    #: shares the exact list objects of ``ovhd_repo`` / ``spb_repo``
    ovhd_streams: tuple[list[float], ...] = ()
    spb_streams: tuple[list[float], ...] = ()


_CACHE_ATTR = "_repro_eval_context_cache"
#: Per-model cache of server-subset contexts, keyed by
#: ``(server-id tuple, engine kernel)`` (see ``EvalContext.for_servers``).
_SUBSET_CACHE_ATTR = "_repro_subset_context_cache"

#: Derived-state cache attributes attached to SystemModel instances.
_MODEL_CACHE_ATTRS = (
    _CACHE_ATTR,
    _SUBSET_CACHE_ATTR,
    "_repro_reverse_index_cache",
    "_fast_comp_cache",
)

_CACHE_ENABLED = [True]


@contextlib.contextmanager
def rebuild_contexts() -> Iterator[None]:
    """Disable the per-model context cache inside the ``with`` block.

    Every :meth:`EvalContext.for_model` call then builds a fresh context
    — the pre-consolidation behaviour where each consumer re-derived its
    own columns.  Used by ``benchmarks/bench_policy_end_to_end.py`` as
    the rebuild baseline arm; never use it in production paths.
    """
    _CACHE_ENABLED[0] = False
    try:
        yield
    finally:
        _CACHE_ENABLED[0] = True


def clear_derived_state(model: SystemModel) -> None:
    """Drop every derived-state cache attached to ``model``.

    Covers the eval context, the reverse index, and the plain-list
    PARTITION views.  Benchmark helper (cold-start timings); production
    code never needs it — the caches are pure functions of the model.
    """
    for attr in _MODEL_CACHE_ATTRS:
        if hasattr(model, attr):
            delattr(model, attr)


#: Shared-slot names that depend on the page frequencies.  A
#: frequency-only model clone (see :func:`adopt_frequency_context`)
#: recomputes exactly these; everything else in ``_SHARED_SLOTS`` is
#: structural and transfers by reference.
_FREQUENCY_SLOTS = frozenset(
    {
        "frequencies",
        "comp_freq",
        "opt_freq_weight",
        "html_request_load",
        "scalars",
    }
)


def is_frequency_clone(base: SystemModel, model: SystemModel) -> bool:
    """Whether ``model`` differs from ``base`` only in page frequencies.

    Checks every structural input the :class:`EvalContext` columns are
    derived from — page/object layout, sizes, per-server network
    attributes and capacities, optional probabilities and rate scales.
    ``True`` means all non-frequency derived state (CSR groups, pair
    tables, size expansions, Eq. 6 single-download times) is valid for
    ``model`` as-is, so :func:`adopt_frequency_context` may transfer it
    instead of rebuilding.  O(entries) array comparisons — orders of
    magnitude cheaper than a context rebuild.
    """
    if base is model:
        return True
    return (
        base.n_pages == model.n_pages
        and base.n_servers == model.n_servers
        and base.n_objects == model.n_objects
        and np.array_equal(base.comp_objects, model.comp_objects)
        and np.array_equal(base.opt_objects, model.opt_objects)
        and np.array_equal(base.page_server, model.page_server)
        and np.array_equal(base.sizes, model.sizes)
        and np.array_equal(base.html_sizes, model.html_sizes)
        and np.array_equal(base.opt_probs, model.opt_probs)
        and np.array_equal(base.optional_rate_scale, model.optional_rate_scale)
        and np.array_equal(base.server_rate, model.server_rate)
        and np.array_equal(base.server_overhead, model.server_overhead)
        and np.array_equal(base.server_repo_rate, model.server_repo_rate)
        and np.array_equal(base.server_repo_overhead, model.server_repo_overhead)
        and np.array_equal(base.stream_rates, model.stream_rates)
        and np.array_equal(base.stream_overheads, model.stream_overheads)
        and np.array_equal(base.server_storage, model.server_storage)
        and np.array_equal(base.server_capacity, model.server_capacity)
        and base.repository == model.repository
    )


def adopt_frequency_context(base: SystemModel, model: SystemModel) -> bool:
    """Seed ``model``'s derived-state caches from ``base``'s.

    ``model`` must be a frequency-only clone of ``base`` (same pages,
    objects, servers, sizes; only ``frequencies`` may differ — verified,
    raising :class:`ValueError` otherwise).  When ``base`` carries a
    cached :class:`EvalContext`, a refreshed context is installed on
    ``model``: structural columns (sizes, CSR groups, pair tables,
    stream-seed expansions) are shared **by reference** and only the
    frequency-derived columns are recomputed.  The (purely structural)
    reverse index and plain-list PARTITION views transfer too.

    Returns ``True`` when a context was transferred, ``False`` when
    ``base`` had none cached (nothing to do — ``model`` will build its
    own lazily).  The dynamic re-replication loop calls this through
    ``repro.dynamic.drift.replace_frequencies`` so consecutive epoch
    models never rebuild structural state.
    """
    if not is_frequency_clone(base, model):
        raise ValueError(
            "adopt_frequency_context requires a frequency-only clone: "
            "the models differ structurally"
        )
    if base is model:
        return True
    # Structural caches outside the context: plain-list PARTITION views
    # (sizes/order only) and the (server, object) -> entries reverse
    # index.  Both are pure functions of the structure.
    src_fast = getattr(base, "_fast_comp_cache", None)
    if src_fast is not None and getattr(model, "_fast_comp_cache", None) is None:
        model._fast_comp_cache = src_fast
    src_rev = getattr(base, "_repro_reverse_index_cache", None)
    if src_rev is not None and (
        getattr(model, "_repro_reverse_index_cache", None) is None
    ):
        from repro.core.allocation import ReverseIndex

        rev = ReverseIndex.__new__(ReverseIndex)
        rev.model = model
        rev.comp_entries = src_rev.comp_entries
        rev.opt_entries = src_rev.opt_entries
        setattr(model, "_repro_reverse_index_cache", rev)

    src_cache: dict[str, EvalContext] | None = getattr(base, _CACHE_ATTR, None)
    if not src_cache or not _CACHE_ENABLED[0]:
        return False
    if getattr(model, _CACHE_ATTR, None):
        return False  # model already has its own contexts; keep them
    kern, src_ctx = next(iter(src_cache.items()))
    ctx = EvalContext(model, kern, _share=src_ctx)
    ctx._refresh_frequency_columns()
    setattr(model, _CACHE_ATTR, {kern: ctx})
    return True


#: Attribute names copied by reference between kernel-sibling contexts.
_SHARED_SLOTS = (
    "n_pages",
    "n_servers",
    "n_objects",
    "page_server",
    "html_sizes",
    "frequencies",
    "page_spb_local",
    "page_spb_repo",
    "page_ovhd_local",
    "page_ovhd_repo",
    "comp_pages",
    "comp_objects",
    "comp_server",
    "comp_sizes",
    "comp_freq",
    "opt_pages",
    "opt_objects",
    "opt_server",
    "opt_sizes",
    "opt_probs",
    "opt_time_local",
    "opt_time_repo",
    "opt_freq_weight",
    "n_streams",
    "page_spb_streams",
    "page_ovhd_streams",
    "opt_time_streams",
    "opt_time_remote",
    "opt_best_stream",
    "html_bytes_by_server",
    "html_request_load",
    "scalars",
    "n_pairs",
    "pair_server",
    "pair_object",
    "comp_pair",
    "opt_pair",
    "pair_indptr",
    "_comp_grouped",
    "_comp_srv_indptr",
    "_comp_starts",
    "_comp_counts",
    "_opt_grouped",
    "_opt_srv_indptr",
    "_opt_starts",
    "_opt_counts",
)


class EvalContext:
    """Immutable columnar derived state of one :class:`SystemModel`.

    Obtain instances through :meth:`for_model` — direct construction
    bypasses the per-model cache.  All array attributes are read-only
    views shared across every consumer; treat them as immutable.

    Column groups
    -------------
    * **per page** — ``page_spb_local``/``page_spb_repo`` (seconds per
      byte on the local / repository connection), ``page_ovhd_local``/
      ``page_ovhd_repo`` (connection overheads), plus the ``html_sizes``
      and ``frequencies`` aliases.
    * **per compulsory entry** (aligned with ``Allocation.comp_local``) —
      owning page/server, object id, object size, page frequency.
    * **per optional entry** — the same index columns plus the Eq. 6
      single-download times (``opt_time_local``/``opt_time_repo``) and
      the expected request weight ``opt_freq_weight`` =
      ``f(W_j)·scale·U'_jk``.
    * **per server** — hosted-HTML bytes (the fixed Eq. 10 term) and the
      HTML request load (the fixed Eq. 8 term).
    * **pair table** — the distinct ``(server, object)`` pairs any entry
      can mark, with per-entry pair indices (``comp_pair``/``opt_pair``)
      so mark-count bookkeeping reduces to ``np.bincount``.
    * **per-server CSR groups** — every server's entries sorted by
      object, with dense per-object ``starts``/``counts`` tables (see
      :meth:`comp_group`), feeding the eviction scorer and the reverse
      index without any per-phase scan-and-sort.
    """

    #: Global↔local maps of a server-subset context (see
    #: :meth:`for_servers`); ``None`` on a full-model context.
    global_servers: np.ndarray | None = None
    global_pages: np.ndarray | None = None
    global_comp_entries: np.ndarray | None = None
    global_opt_entries: np.ndarray | None = None

    def __init__(
        self,
        model: SystemModel,
        kernel: Kernel = "batched",
        _share: "EvalContext | None" = None,
    ):
        self.model = model
        self.kernel = resolve_kernel(kernel)
        if _share is not None:
            for name in _SHARED_SLOTS:
                setattr(self, name, getattr(_share, name))
        else:
            self._build()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        m = self.model
        self.n_pages = m.n_pages
        self.n_servers = m.n_servers
        self.n_objects = m.n_objects

        srv = m.page_server
        self.page_server = srv
        self.html_sizes = m.html_sizes
        self.frequencies = m.frequencies
        #: per-page seconds-per-byte on the local / repository connection
        self.page_spb_local = 1.0 / m.server_rate[srv]
        self.page_spb_repo = 1.0 / m.server_repo_rate[srv]
        #: per-page connection overheads
        self.page_ovhd_local = m.server_overhead[srv]
        self.page_ovhd_repo = m.server_repo_overhead[srv]

        self.comp_pages = m.comp_pages
        self.comp_objects = m.comp_objects
        self.comp_server = srv[m.comp_pages]
        self.comp_sizes = m.sizes[m.comp_objects]
        self.comp_freq = m.frequencies[m.comp_pages]

        po = m.opt_pages
        self.opt_pages = po
        self.opt_objects = m.opt_objects
        self.opt_server = srv[po]
        self.opt_sizes = m.sizes[m.opt_objects]
        self.opt_probs = m.opt_probs
        # Per-optional-entry single-download times (each needs its own TCP
        # connection, Eq. 6): local vs repository.
        self.opt_time_local = (
            self.page_ovhd_local[po] + self.page_spb_local[po] * self.opt_sizes
        )
        self.opt_time_repo = (
            self.page_ovhd_repo[po] + self.page_spb_repo[po] * self.opt_sizes
        )
        #: expected weight of each optional entry: f(W_j)·scale·U'_jk
        self.opt_freq_weight = (
            m.frequencies[po] * m.optional_rate_scale[po] * m.opt_probs
        )

        # Per-remote-stream seed columns (the k-stream generalization of
        # the Eq. 3-5 local/repository pair).  Element 0 IS the
        # repository column — the same array objects as
        # ``page_spb_repo`` / ``page_ovhd_repo`` / ``opt_time_repo`` —
        # so the degenerate k=2 topology adds no new arrays and every
        # k=2 expression stays bit-identical to the pre-stream code.
        self.n_streams = int(getattr(m, "n_streams", 2))
        spb_rows = [self.page_spb_repo]
        ovhd_rows = [self.page_ovhd_repo]
        opt_rows = [self.opt_time_repo]
        for r in range(1, self.n_streams - 1):
            spb_r = 1.0 / m.stream_rates[srv, r]
            ovhd_r = m.stream_overheads[srv, r]
            spb_rows.append(spb_r)
            ovhd_rows.append(ovhd_r)
            opt_rows.append(ovhd_r[po] + spb_r[po] * self.opt_sizes)
        self.page_spb_streams = tuple(spb_rows)
        self.page_ovhd_streams = tuple(ovhd_rows)
        self.opt_time_streams = tuple(opt_rows)
        if self.n_streams == 2:
            # alias, not a copy: Eq. 6 consumers switching from
            # ``opt_time_repo`` to ``opt_time_remote`` read the exact
            # same array at k=2
            self.opt_time_remote = self.opt_time_repo
            self.opt_best_stream = np.ones(len(po), dtype=np.int8)
        else:
            stack = np.stack(opt_rows)
            best = stack.argmin(axis=0)
            self.opt_time_remote = stack[best, np.arange(stack.shape[1])]
            self.opt_best_stream = (best + 1).astype(np.int8)

        self.html_bytes_by_server = m.html_bytes_by_server()
        load = np.zeros(m.n_servers)
        np.add.at(load, srv, m.frequencies)
        self.html_request_load = load

        ovhd_repo_list = self.page_ovhd_repo.tolist()
        spb_repo_list = self.page_spb_repo.tolist()
        self.scalars = ScalarViews(
            ovhd_local=self.page_ovhd_local.tolist(),
            spb_local=self.page_spb_local.tolist(),
            ovhd_repo=ovhd_repo_list,
            spb_repo=spb_repo_list,
            html=m.html_sizes.tolist(),
            freq=m.frequencies.tolist(),
            ovhd_streams=tuple(
                [ovhd_repo_list] + [a.tolist() for a in ovhd_rows[1:]]
            ),
            spb_streams=tuple(
                [spb_repo_list] + [a.tolist() for a in spb_rows[1:]]
            ),
        )

        self._build_pair_table()
        (
            self._comp_grouped,
            self._comp_srv_indptr,
            self._comp_starts,
            self._comp_counts,
        ) = self._build_groups(self.comp_server, self.comp_objects)
        (
            self._opt_grouped,
            self._opt_srv_indptr,
            self._opt_starts,
            self._opt_counts,
        ) = self._build_groups(self.opt_server, self.opt_objects)

    def _build_pair_table(self) -> None:
        """The distinct ``(server, object)`` pairs, sorted ascending.

        ``comp_pair[e]`` / ``opt_pair[e]`` give each entry's row in the
        table; ``pair_indptr`` slices the (server-contiguous) table per
        server.  Mark counting becomes ``np.bincount`` over pair indices
        — integer counts, so exact regardless of accumulation order.
        """
        n_obj = self.n_objects
        key_c = self.comp_server * n_obj + self.comp_objects
        key_o = self.opt_server * n_obj + self.opt_objects
        keys = np.unique(np.concatenate([key_c, key_o]))
        self.n_pairs = len(keys)
        self.pair_server = keys // n_obj
        self.pair_object = keys % n_obj
        self.comp_pair = keys.searchsorted(key_c)
        self.opt_pair = keys.searchsorted(key_o)
        self.pair_indptr = self.pair_server.searchsorted(
            np.arange(self.n_servers + 1)
        )

    def _build_groups(
        self, entry_server: np.ndarray, entry_objects: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, tuple, tuple]:
        """Per-server entries grouped by object (stable: entry ascending).

        Returns ``(grouped, srv_indptr, starts, counts)`` where
        ``grouped[srv_indptr[i]:srv_indptr[i+1]]`` are server ``i``'s
        entries sorted by ``(object, entry)``, and ``starts[i]`` /
        ``counts[i]`` are dense per-object tables into that slice —
        the same layout ``fast_restoration._group_by_object`` produced
        per phase, now built once per model.
        """
        ne = len(entry_server)
        order = np.lexsort((np.arange(ne), entry_objects, entry_server))
        srv_indptr = entry_server[order].searchsorted(
            np.arange(self.n_servers + 1)
        )
        starts: list[np.ndarray] = []
        counts: list[np.ndarray] = []
        for i in range(self.n_servers):
            sl_objs = entry_objects[order[srv_indptr[i] : srv_indptr[i + 1]]]
            cnt = np.bincount(sl_objs, minlength=self.n_objects)
            starts.append(cnt.cumsum() - cnt)
            counts.append(cnt)
        return order, srv_indptr, tuple(starts), tuple(counts)

    def _refresh_frequency_columns(self) -> None:
        """Recompute the frequency-derived columns from ``self.model``.

        Called on a context whose structural columns were shared from a
        frequency-only sibling (see :func:`adopt_frequency_context`).
        Exactly the ``_FREQUENCY_SLOTS`` are rebuilt — the expressions
        are copied verbatim from :meth:`_build`, so a refreshed context
        is bit-identical to a from-scratch build on the same model
        (property-tested in ``tests/core/test_context.py``).
        """
        m = self.model
        self.frequencies = m.frequencies
        self.comp_freq = m.frequencies[self.comp_pages]
        self.opt_freq_weight = (
            m.frequencies[self.opt_pages]
            * m.optional_rate_scale[self.opt_pages]
            * self.opt_probs
        )
        load = np.zeros(m.n_servers)
        np.add.at(load, self.page_server, m.frequencies)
        self.html_request_load = load
        old = self.scalars
        self.scalars = ScalarViews(
            ovhd_local=old.ovhd_local,
            spb_local=old.spb_local,
            ovhd_repo=old.ovhd_repo,
            spb_repo=old.spb_repo,
            html=old.html,
            freq=m.frequencies.tolist(),
            ovhd_streams=old.ovhd_streams,
            spb_streams=old.spb_streams,
        )

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def comp_group(self, server_id: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(entries, starts, counts)`` — server's compulsory entries
        grouped by object.  ``entries[starts[k]:starts[k]+counts[k]]``
        are the (ascending) entries referencing object ``k``; the dense
        tables span all ``n_objects``."""
        sl = slice(
            self._comp_srv_indptr[server_id], self._comp_srv_indptr[server_id + 1]
        )
        return (
            self._comp_grouped[sl],
            self._comp_starts[server_id],
            self._comp_counts[server_id],
        )

    def opt_group(self, server_id: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Optional-entry counterpart of :meth:`comp_group`."""
        sl = slice(
            self._opt_srv_indptr[server_id], self._opt_srv_indptr[server_id + 1]
        )
        return (
            self._opt_grouped[sl],
            self._opt_starts[server_id],
            self._opt_counts[server_id],
        )

    def comp_entries_of(self, server_id: int) -> np.ndarray:
        """Server's compulsory entries in **ascending entry order**.

        Unlike :meth:`comp_group` (grouped by object), this is the raw
        per-entry id list sorted ascending — the order in which
        ``Allocation.comp_local`` slices enumerate a server and the
        order the sharded delta wire format ships mark columns in
        (DESIGN.md Appendix I).  Built once per context via a stable
        argsort over ``comp_server`` and cached.
        """
        order, bounds = self._entries_by_server("comp")
        return order[bounds[server_id] : bounds[server_id + 1]]

    def opt_entries_of(self, server_id: int) -> np.ndarray:
        """Optional-entry counterpart of :meth:`comp_entries_of`."""
        order, bounds = self._entries_by_server("opt")
        return order[bounds[server_id] : bounds[server_id + 1]]

    def _entries_by_server(self, which: str) -> tuple[np.ndarray, np.ndarray]:
        attr = f"_lazy_{which}_by_server"
        cached = getattr(self, attr, None)
        if cached is None:
            entry_server = (
                self.comp_server if which == "comp" else self.opt_server
            )
            order = np.argsort(entry_server, kind="stable")
            bounds = entry_server[order].searchsorted(
                np.arange(self.n_servers + 1)
            )
            cached = (order, bounds)
            setattr(self, attr, cached)
        return cached

    @property
    def reverse_index(self):
        """The (cached) ``(server, object) → entries`` dict maps."""
        from repro.core.allocation import ReverseIndex

        return ReverseIndex.for_model(self.model)

    @property
    def fast_comp(self):
        """Plain-list PARTITION views (see ``SystemModel.fast_comp``)."""
        return self.model.fast_comp

    # ------------------------------------------------------------------
    # cache
    # ------------------------------------------------------------------
    @classmethod
    def for_model(
        cls, model: SystemModel, kernel: str | None = "batched"
    ) -> "EvalContext":
        """The (cached) context of ``model`` for ``kernel``.

        Kernel siblings share every column array by reference — only the
        first call per model pays the build.  Dispatch kernels collapse
        onto their engine (``"sharded"`` → ``"batched"``), so a sharded
        run never builds a third context.
        """
        kern = engine_kernel(resolve_kernel(kernel))
        if not _CACHE_ENABLED[0]:
            return cls(model, kern)
        cache: dict[str, EvalContext] | None = getattr(model, _CACHE_ATTR, None)
        if cache is None:
            cache = {}
            setattr(model, _CACHE_ATTR, cache)
        ctx = cache.get(kern)
        if ctx is None:
            share = next(iter(cache.values()), None)
            ctx = cls(model, kern, _share=share)
            cache[kern] = ctx
        return ctx

    @classmethod
    def for_servers(
        cls,
        model: SystemModel,
        servers,
        kernel: str | None = "batched",
    ) -> "EvalContext":
        """A context over only the sub-universe hosted by ``servers``.

        Builds a :func:`repro.core.types.restrict_to_servers` submodel
        (vectorised column slicing — objects keep global ids, pages and
        entries are renumbered densely in global order) and runs the
        normal :meth:`_build` over it, so **every** derived structure —
        entry columns, Eq. 3-5 stream seeds, pair table, per-server CSR
        groups, scalar views — is sized to the subset.  This is what
        makes a shard worker's setup cost proportional to its shard
        instead of to the whole model (DESIGN.md Appendix H).

        The returned context carries the global↔local index maps as
        ``global_servers`` / ``global_pages`` / ``global_comp_entries``
        / ``global_opt_entries`` (ascending global ids per local
        position), and its model is cached under the parent model per
        server subset so repeated requests (e.g. benchmark runs) build
        once.  Because the restriction preserves relative order
        everywhere — including the filtered ``comp_sorted`` permutation
        — any per-server decision sequence computed on the subset is
        bit-identical to the same computation on the full model masked
        to those servers (property-tested in
        ``tests/properties/test_property_sharded_policy.py``).
        """
        key = tuple(int(i) for i in servers)
        kern = engine_kernel(resolve_kernel(kernel))
        cache: dict | None = None
        if _CACHE_ENABLED[0]:
            cache = getattr(model, _SUBSET_CACHE_ATTR, None)
            if cache is None:
                cache = {}
                setattr(model, _SUBSET_CACHE_ATTR, cache)
            ctx = cache.get((key, kern))
            if ctx is not None:
                return ctx
        sub, maps = restrict_to_servers(model, key)
        ctx = cls.for_model(sub, kern)
        ctx.global_servers = maps["servers"]
        ctx.global_pages = maps["pages"]
        ctx.global_comp_entries = maps["comp_entries"]
        ctx.global_opt_entries = maps["opt_entries"]
        if cache is not None:
            cache[(key, kern)] = ctx
        return ctx


class IncrementalObjective:
    """Delta-maintained composite objective ``D = α₁·D₁ + α₂·D₂``.

    Tracks its own copy of the mark arrays plus the per-page stream byte
    totals and times (Eq. 3-6).  :meth:`flip_comp` / :meth:`flip_opt`
    update only the touched pages; :meth:`resync` is the exact-recompute
    escape hatch whose result is bit-identical to ``CostModel.D`` on the
    same marks (both run the identical bincount → stream-time → dot
    pipeline).  Between resyncs ``D`` may drift from the exact value by
    accumulated float-rounding ulps — bounded in practice well below the
    greedy loops' ``1e-9`` tie tolerance, and property-tested against
    the exact evaluator.

    Parameters
    ----------
    ctx:
        The model's :class:`EvalContext`.
    alloc:
        Allocation whose marks seed the objective (copied, not aliased).
    alpha1, alpha2:
        Objective weights (Table 1 uses ``(2, 1)``).
    resync_every:
        Optional flip-batch period of automatic exact recomputes
        (mirroring the greedy loops' drift resyncs); ``None`` disables.
    """

    def __init__(
        self,
        ctx: EvalContext,
        alloc,
        alpha1: float = 2.0,
        alpha2: float = 1.0,
        resync_every: int | None = None,
    ):
        if alpha1 <= 0 or alpha2 <= 0:
            raise ValueError(
                f"alpha weights must be positive, got ({alpha1}, {alpha2})"
            )
        if resync_every is not None and resync_every <= 0:
            raise ValueError(
                f"resync_every must be positive or None, got {resync_every}"
            )
        self.ctx = ctx
        self.alpha1 = float(alpha1)
        self.alpha2 = float(alpha2)
        self.resync_every = resync_every
        self.comp_local = np.asarray(alloc.comp_local, dtype=bool).copy()
        self.opt_local = np.asarray(alloc.opt_local, dtype=bool).copy()
        streams = getattr(alloc, "comp_stream", None)
        if streams is None:
            streams = np.ones(len(self.comp_local), dtype=np.int8)
        self.comp_stream = np.asarray(streams, dtype=np.int8).copy()
        self._applied = 0
        self.resync()

    # ------------------------------------------------------------------
    def resync(self) -> float:
        """Exact recompute from the tracked marks; returns the fresh ``D``.

        Runs the same expression tree as ``CostModel.D`` (bincount byte
        totals → Eq. 3/4 stream times → Eq. 5 max → Eq. 6 optional sum →
        frequency dots), so the result is bit-identical to the full
        evaluator — the escape hatch that clears accumulated drift.
        """
        c = self.ctx
        k = c.n_streams
        sel = self.comp_local
        self._lb = np.bincount(
            c.comp_pages[sel], weights=c.comp_sizes[sel], minlength=c.n_pages
        )
        local = c.page_ovhd_local + c.page_spb_local * (c.html_sizes + self._lb)
        if k == 2:
            self._rb = np.bincount(
                c.comp_pages[~sel], weights=c.comp_sizes[~sel], minlength=c.n_pages
            )
            remote = c.page_ovhd_repo + c.page_spb_repo * self._rb
            self._page_t = np.maximum(local, remote)
            self._rb_streams = (self._rb,)
        else:
            rem = ~sel
            rb_rows = []
            page_t = local
            for r in range(1, k):
                sel_r = rem & (self.comp_stream == r)
                rb = np.bincount(
                    c.comp_pages[sel_r],
                    weights=c.comp_sizes[sel_r],
                    minlength=c.n_pages,
                )
                rb_rows.append(rb)
                page_t = np.maximum(
                    page_t,
                    c.page_ovhd_streams[r - 1]
                    + c.page_spb_streams[r - 1] * rb,
                )
            self._rb_streams = tuple(rb_rows)
            self._rb = rb_rows[0]
            self._page_t = page_t
        per_entry = np.where(self.opt_local, c.opt_time_local, c.opt_time_remote)
        self._opt_base = np.bincount(
            c.opt_pages, weights=c.opt_probs * per_entry, minlength=c.n_pages
        )
        self._opt_t = self._opt_base * self.ctx.model.optional_rate_scale
        self._d1 = float(np.dot(c.frequencies, self._page_t))
        self._d2 = float(np.dot(c.frequencies, self._opt_t))
        self._applied = 0
        return self.D

    # ------------------------------------------------------------------
    @property
    def D1(self) -> float:
        """:math:`D_1 = \\sum_j f(W_j)\\,Time(W_j)` (Eq. 5 aggregate)."""
        return self._d1

    @property
    def D2(self) -> float:
        """:math:`D_2 = \\sum_j f(W_j)\\,Time(W_j, M)` (Eq. 6 aggregate)."""
        return self._d2

    @property
    def D(self) -> float:
        """The weighted composite :math:`\\alpha_1 D_1 + \\alpha_2 D_2`."""
        return self.alpha1 * self._d1 + self.alpha2 * self._d2

    # ------------------------------------------------------------------
    def _changed(
        self, entries: np.ndarray, marks: np.ndarray, to_local: bool
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(changed entry ids, positions of those ids in ``entries``)``.

        The positions keep any per-entry payload (the k>2 target-stream
        column) aligned with ``changed`` through the no-op filter and
        the duplicate dedup.
        """
        entries = np.asarray(entries, dtype=np.intp)
        idx = np.flatnonzero(marks[entries] != bool(to_local))
        changed = entries[idx]
        if len(changed) > 1 and not (changed[1:] > changed[:-1]).all():
            changed, first = np.unique(changed, return_index=True)
            idx = idx[first]
        return changed, idx

    def flip_comp(
        self,
        entries: np.ndarray,
        to_local: bool,
        streams: np.ndarray | None = None,
    ) -> float:
        """Flip compulsory marks in bulk; returns the updated ``D``.

        Entries already in the target state (and duplicates) are ignored,
        mirroring ``Allocation.set_comp_local_bulk``.  At k>2 a flip to
        remote lands each entry on ``streams`` (aligned with
        ``entries``; default stream 1, the repository), and a flip to
        local debits the stream the entry was previously assigned to.
        """
        changed, idx = self._changed(entries, self.comp_local, to_local)
        if len(changed) == 0:
            return self.D
        c = self.ctx
        k = c.n_streams
        pages = c.comp_pages[changed]
        sizes = c.comp_sizes[changed]
        if k == 2:
            self.comp_local[changed] = to_local
            sign = 1.0 if to_local else -1.0
            np.add.at(self._lb, pages, sign * sizes)
            np.add.at(self._rb, pages, -sign * sizes)
            up = np.unique(pages)
            local = c.page_ovhd_local[up] + c.page_spb_local[up] * (
                c.html_sizes[up] + self._lb[up]
            )
            remote = c.page_ovhd_repo[up] + c.page_spb_repo[up] * self._rb[up]
            new_t = np.maximum(local, remote)
        else:
            if to_local:
                src = self.comp_stream[changed]
                self.comp_local[changed] = True
                np.add.at(self._lb, pages, sizes)
                for r in range(1, k):
                    on_r = src == r
                    if on_r.any():
                        np.add.at(
                            self._rb_streams[r - 1], pages[on_r], -sizes[on_r]
                        )
            else:
                if streams is None:
                    tgt = np.ones(len(changed), dtype=np.int8)
                else:
                    tgt = np.asarray(streams, dtype=np.int8)[idx]
                self.comp_local[changed] = False
                self.comp_stream[changed] = tgt
                np.add.at(self._lb, pages, -sizes)
                for r in range(1, k):
                    on_r = tgt == r
                    if on_r.any():
                        np.add.at(
                            self._rb_streams[r - 1], pages[on_r], sizes[on_r]
                        )
            up = np.unique(pages)
            new_t = c.page_ovhd_local[up] + c.page_spb_local[up] * (
                c.html_sizes[up] + self._lb[up]
            )
            for r in range(1, k):
                new_t = np.maximum(
                    new_t,
                    c.page_ovhd_streams[r - 1][up]
                    + c.page_spb_streams[r - 1][up] * self._rb_streams[r - 1][up],
                )
        self._d1 += float(np.dot(c.frequencies[up], new_t - self._page_t[up]))
        self._page_t[up] = new_t
        return self._bump()

    def flip_opt(self, entries: np.ndarray, to_local: bool) -> float:
        """Flip optional marks in bulk; returns the updated ``D``."""
        changed, _ = self._changed(entries, self.opt_local, to_local)
        if len(changed) == 0:
            return self.D
        c = self.ctx
        self.opt_local[changed] = to_local
        diff = c.opt_time_local[changed] - c.opt_time_remote[changed]
        if not to_local:
            diff = -diff
        pages = c.opt_pages[changed]
        np.add.at(self._opt_base, pages, c.opt_probs[changed] * diff)
        up = np.unique(pages)
        new_t = self._opt_base[up] * self.ctx.model.optional_rate_scale[up]
        self._d2 += float(np.dot(c.frequencies[up], new_t - self._opt_t[up]))
        self._opt_t[up] = new_t
        return self._bump()

    def _bump(self) -> float:
        self._applied += 1
        if self.resync_every is not None and self._applied >= self.resync_every:
            return self.resync()
        return self.D

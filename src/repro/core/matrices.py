"""Sparse-matrix view of the Section 3 formalisation.

The algorithms in :mod:`repro.core` work on the flattened entry arrays of
:class:`~repro.core.types.SystemModel` for speed; this module provides the
paper's actual matrices — ``U``, ``U'``, ``A``, ``X``, ``X'`` — as
:class:`scipy.sparse.csr_matrix` objects, together with validation of the
structural invariants the paper states:

* ``U`` and ``U'`` have disjoint supports (``U_jk = 1 ⇒ U'_jk = 0``),
* ``X ⊆ U`` (only compulsory objects appear in ``X``),
* ``X'`` agrees with ``X`` on compulsory entries and may additionally
  mark optional entries,
* ``A`` allocates each page to exactly one server.

These matrices are the lingua franca for the ILP reference solver and for
tests that verify the vectorised cost model against a literal
matrix-by-matrix transcription of Eq. 3-10.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.core.allocation import Allocation
from repro.core.types import SystemModel

__all__ = ["MatrixSet"]


def _csr(rows: np.ndarray, cols: np.ndarray, vals: np.ndarray, shape: tuple[int, int]) -> sp.csr_matrix:
    return sp.csr_matrix((vals, (rows, cols)), shape=shape)


@dataclass(frozen=True)
class MatrixSet:
    """The five Section 3 matrices for one model + allocation.

    Attributes
    ----------
    U:
        ``n x m`` 0/1 compulsory matrix.
    U_prime:
        ``n x m`` matrix of optional request probabilities ``U'_jk``.
    A:
        ``s x n`` 0/1 page-allocation matrix.
    X:
        ``n x m`` 0/1 local-download matrix for compulsory objects.
    X_prime:
        ``n x m`` 0/1 extension of ``X`` including locally-downloaded
        optional objects.
    """

    U: sp.csr_matrix
    U_prime: sp.csr_matrix
    A: sp.csr_matrix
    X: sp.csr_matrix
    X_prime: sp.csr_matrix

    @classmethod
    def from_allocation(cls, alloc: Allocation) -> "MatrixSet":
        """Build the matrix view of ``alloc``."""
        m = alloc.model
        n, mm, s = m.n_pages, m.n_objects, m.n_servers
        ones_c = np.ones(len(m.comp_objects))
        U = _csr(m.comp_pages, m.comp_objects, ones_c, (n, mm))
        U_prime = _csr(m.opt_pages, m.opt_objects, m.opt_probs.copy(), (n, mm))
        A = _csr(
            m.page_server,
            np.arange(n, dtype=np.intp),
            np.ones(n),
            (s, n),
        )
        X = _csr(
            m.comp_pages[alloc.comp_local],
            m.comp_objects[alloc.comp_local],
            np.ones(int(alloc.comp_local.sum())),
            (n, mm),
        )
        xp_rows = np.concatenate(
            [m.comp_pages[alloc.comp_local], m.opt_pages[alloc.opt_local]]
        )
        xp_cols = np.concatenate(
            [m.comp_objects[alloc.comp_local], m.opt_objects[alloc.opt_local]]
        )
        X_prime = _csr(xp_rows, xp_cols, np.ones(len(xp_rows)), (n, mm))
        ms = cls(U=U, U_prime=U_prime, A=A, X=X, X_prime=X_prime)
        ms.validate()
        return ms

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the paper's structural invariants; raise ``ValueError``."""
        n, mm = self.U.shape
        for name, mat, shape in [
            ("U'", self.U_prime, (n, mm)),
            ("X", self.X, (n, mm)),
            ("X'", self.X_prime, (n, mm)),
        ]:
            if mat.shape != shape:
                raise ValueError(f"{name} has shape {mat.shape}, expected {shape}")
        if self.A.shape[1] != n:
            raise ValueError(
                f"A has {self.A.shape[1]} page columns, expected {n}"
            )
        # disjoint supports of U and U'
        overlap = self.U.multiply(self.U_prime)
        if overlap.nnz:
            raise ValueError(
                "U and U' overlap: the paper requires U'_jk = 0 when U_jk = 1"
            )
        # X subset of U
        if (self.X - self.X.multiply(self.U)).nnz:
            raise ValueError("X marks an entry outside U's support")
        # X' extends X and stays inside U ∪ U'.  Support is *structural*:
        # an optional entry with U'_jk = 0 (stored as an explicit zero)
        # still belongs to the page and may legally carry an X' mark.
        if (self.X_prime.multiply(self.U) - self.X).nnz:
            raise ValueError("X' disagrees with X on compulsory entries")
        up_pattern = self.U_prime.copy()
        if up_pattern.nnz:
            up_pattern.data = np.ones_like(up_pattern.data)
        support = (self.U + up_pattern) > 0
        if (self.X_prime - self.X_prime.multiply(support)).nnz:
            raise ValueError("X' marks an entry outside U ∪ U'")
        # each page on exactly one server
        col_sums = np.asarray(self.A.sum(axis=0)).ravel()
        if not np.all(col_sums == 1):
            bad = np.flatnonzero(col_sums != 1)
            raise ValueError(
                f"pages {bad[:5].tolist()} are allocated to "
                f"{col_sums[bad[:5]].tolist()} servers (must be exactly 1)"
            )

    # ------------------------------------------------------------------
    def local_compulsory_bytes(self, sizes: np.ndarray) -> np.ndarray:
        """Per-page :math:`\\sum_k X_{jk} Size(M_k)` (Eq. 3's sum)."""
        return np.asarray(self.X @ sizes).ravel()

    def remote_compulsory_bytes(self, sizes: np.ndarray) -> np.ndarray:
        """Per-page :math:`\\sum_k (1-X_{jk}) U_{jk} Size(M_k)` (Eq. 4)."""
        return np.asarray((self.U - self.X) @ sizes).ravel()

    def to_allocation(self, model: SystemModel) -> Allocation:
        """Convert back to the flat :class:`Allocation` representation."""
        comp_local = np.zeros(len(model.comp_objects), dtype=bool)
        opt_local = np.zeros(len(model.opt_objects), dtype=bool)
        Xc = self.X.tocoo()
        marked = set(zip(Xc.row.tolist(), Xc.col.tolist()))
        for e, (j, k) in enumerate(zip(model.comp_pages, model.comp_objects)):
            if (int(j), int(k)) in marked:
                comp_local[e] = True
        Xp = self.X_prime.tocoo()
        marked_p = set(zip(Xp.row.tolist(), Xp.col.tolist()))
        for e, (j, k) in enumerate(zip(model.opt_pages, model.opt_objects)):
            if (int(j), int(k)) in marked_p:
                opt_local[e] = True
        return Allocation(model, comp_local, opt_local)

"""End-to-end replication policy: the paper's full Section 4 pipeline.

:class:`RepositoryReplicationPolicy` chains

1. **PARTITION** over every page (unconstrained stream balancing),
2. **storage restoration** (Eq. 10) per server,
3. **local processing restoration** (Eq. 8) per server,
4. **OFF_LOADING_REPOSITORY** (Eq. 9) between repository and servers,

and returns the final :class:`~repro.core.allocation.Allocation` together
with full accounting (:class:`PolicyResult`).  Steps 2-4 are skipped
automatically when the respective constraint already holds, so running
the policy on an unconstrained model reduces to pure PARTITION — the
paper's "optimised" reference point in Figure 1.

Observability: each phase runs inside a :mod:`repro.obs` span and the
result feeds phase-level counters/gauges into the active registry.  With
observability disabled (the default) every hook is a no-op and results
are bit-identical to the uninstrumented pipeline; with ``REPRO_METRICS``
set (and no registry already collecting), each ``run`` writes its own
JSON run manifest.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.core.allocation import Allocation
from repro.core.constraints import ConstraintReport, evaluate_constraints
from repro.core.cost_model import CostModel
from repro.core.offload import OffloadConfig, OffloadOutcome, offload_repository
from repro.core.partition import Kernel, OptionalPolicy, partition_all
from repro.core.restoration import (
    ProcessingRestorationStats,
    StorageRestorationStats,
    restore_processing_capacity,
    restore_storage_capacity,
)
from repro.core.types import SystemModel

__all__ = ["RepositoryReplicationPolicy", "PolicyResult"]


@dataclass
class PolicyResult:
    """Outcome of one policy run."""

    allocation: Allocation
    objective: float
    """Final composite objective ``D`` (Eq. 7)."""
    constraints: ConstraintReport
    storage_stats: StorageRestorationStats
    processing_stats: ProcessingRestorationStats
    offload_outcome: OffloadOutcome | None
    unconstrained_objective: float = 0.0
    """``D`` right after PARTITION, before any restoration."""
    phases_run: list[str] = field(default_factory=list)
    phase_seconds: dict[str, float] = field(default_factory=dict)
    """Wall-clock seconds per executed phase.  Populated only when a
    recording :mod:`repro.obs` registry was active during the run."""

    @property
    def feasible(self) -> bool:
        """Whether all constraints hold at exit (offload may fail to
        restore Eq. 9, mirroring the paper's BREAK branch)."""
        return self.constraints.ok

    def summary(self) -> str:
        """Human-readable one-paragraph account of the run."""
        parts = [
            f"D = {self.objective:.4g} (post-PARTITION "
            f"{self.unconstrained_objective:.4g})",
            f"phases: {', '.join(self.phases_run) or 'partition only'}",
            self.constraints.summary(),
        ]
        if self.storage_stats.evictions:
            parts.append(
                f"storage: {self.storage_stats.evictions} evictions, "
                f"{self.storage_stats.bytes_freed / 2**20:.1f} MiB freed"
            )
        if self.processing_stats.switches:
            parts.append(
                f"processing: {self.processing_stats.switches} downloads "
                "switched to repository"
            )
        if self.offload_outcome and self.offload_outcome.rounds:
            o = self.offload_outcome
            parts.append(
                f"off-loading: {o.rounds} rounds, {o.messages} messages, "
                f"{o.total_absorbed:.2f} req/s absorbed, "
                f"{'restored' if o.restored else 'NOT restored'}"
            )
        return "; ".join(parts)


class RepositoryReplicationPolicy:
    """The proposed replication policy (the paper's "our policy").

    Parameters
    ----------
    alpha1, alpha2:
        Objective weights of Eq. 7 (Table 1 uses ``(2, 1)``).
    optional_policy:
        How optional objects are initially marked; see
        :mod:`repro.core.partition`.
    offload_config:
        Tunables for the Eq. 9 negotiation.
    kernel:
        Policy kernel: ``"batched"`` (default, vectorized), ``"scalar"``
        (the reference oracle), or ``"sharded"`` (per-server shards on a
        process pool; see :mod:`repro.core.shard`).  All three produce
        bit-identical results.
    shards:
        Shard count for ``kernel="sharded"`` (default: ``REPRO_SHARDS``
        if set, else ``min(n_servers, cpu_count)``).  Ignored by the
        single-process kernels.
    pool:
        Worker pool for ``kernel="sharded"`` — anything with a
        ``submit()`` method (e.g.
        ``repro.experiments.executor.persistent_pool(n)`` or
        :class:`repro.core.shard.InlineShardPool`).  ``None`` uses the
        shard module's private persistent pool.

    Examples
    --------
    >>> from repro.workload import WorkloadParams, generate_workload
    >>> model = generate_workload(WorkloadParams.small(), seed=7)
    >>> result = RepositoryReplicationPolicy().run(model)
    >>> result.feasible
    True
    """

    name = "repository-replication"

    def __init__(
        self,
        alpha1: float = 2.0,
        alpha2: float = 1.0,
        optional_policy: OptionalPolicy = "all",
        offload_config: OffloadConfig | None = None,
        kernel: Kernel = "batched",
        shards: int | None = None,
        pool=None,
    ):
        self.alpha1 = alpha1
        self.alpha2 = alpha2
        self.optional_policy: OptionalPolicy = optional_policy
        self.offload_config = offload_config or OffloadConfig()
        self.kernel: Kernel = kernel
        self.shards = shards
        self.pool = pool

    def cost_model(self, model: SystemModel) -> CostModel:
        """The cost model this policy optimises against."""
        return CostModel(model, self.alpha1, self.alpha2)

    def run(self, model: SystemModel) -> PolicyResult:
        """Execute the full pipeline on ``model``.

        When ``REPRO_METRICS`` is set and no registry is already
        collecting (e.g. a bare library call outside the CLI or the
        benchmark suite), the run collects its own metrics and writes a
        manifest to the path the variable names.
        """
        out = obs.env_metrics_path()
        if out is None or obs.metrics_enabled():
            return self._run(model)
        run_info = {
            "entry": "RepositoryReplicationPolicy.run",
            "kernel": self.kernel,
            "alpha1": self.alpha1,
            "alpha2": self.alpha2,
            "optional_policy": self.optional_policy,
            "n_servers": model.n_servers,
            "n_pages": model.n_pages,
            "n_objects": model.n_objects,
        }
        holder: dict = {}
        with obs.collect(run=run_info, out=out, name="policy", policy=holder):
            holder["result"] = self._run(model)
        return holder["result"]

    def _run(self, model: SystemModel) -> PolicyResult:
        if self.kernel == "sharded":
            # Process-parallel dispatch: per-server shards run PARTITION
            # and the restorations in workers, the parent reconciles and
            # replays OFF_LOADING — bit-identical to the inline pipeline
            # below (see repro.core.shard).
            from repro.core.shard import run_sharded_policy

            return run_sharded_policy(
                model,
                alpha1=self.alpha1,
                alpha2=self.alpha2,
                optional_policy=self.optional_policy,
                offload_config=self.offload_config,
                shards=self.shards,
                pool=self.pool,
            )
        reg = obs.get_registry()
        cost = self.cost_model(model)
        spans: dict[str, obs.SpanRecord] = {}
        with reg.span("policy"):
            with reg.span("partition") as sp:
                spans["partition"] = sp
                alloc = partition_all(
                    model,
                    optional_policy=self.optional_policy,
                    kernel=self.kernel,
                )
            unconstrained_d = cost.D(alloc)
            phases: list[str] = ["partition"]

            report = evaluate_constraints(alloc)
            storage_stats = StorageRestorationStats()
            if not report.storage_ok:
                with reg.span("storage-restoration") as sp:
                    spans["storage-restoration"] = sp
                    storage_stats = restore_storage_capacity(
                        alloc, cost, kernel=self.kernel
                    )
                phases.append("storage-restoration")
                report = evaluate_constraints(alloc)

            processing_stats = ProcessingRestorationStats()
            if not report.local_ok:
                with reg.span("processing-restoration") as sp:
                    spans["processing-restoration"] = sp
                    processing_stats = restore_processing_capacity(
                        alloc, cost, kernel=self.kernel
                    )
                phases.append("processing-restoration")
                report = evaluate_constraints(alloc)

            offload_outcome: OffloadOutcome | None = None
            if not report.repo_ok:
                with reg.span("off-loading") as sp:
                    spans["off-loading"] = sp
                    offload_outcome = offload_repository(
                        alloc, cost, self.offload_config, kernel=self.kernel
                    )
                phases.append("off-loading")
                report = evaluate_constraints(alloc)

            objective = cost.D(alloc)

        phase_seconds: dict[str, float] = {}
        if reg.enabled:
            phase_seconds = {name: sp.seconds for name, sp in spans.items()}
            reg.count("policy.runs")
            reg.gauge("policy.objective", objective)
            reg.gauge("policy.unconstrained_objective", unconstrained_d)
            reg.gauge("policy.feasible", float(report.ok))
            reg.gauge("policy.phases_run", float(len(phases)))

        return PolicyResult(
            allocation=alloc,
            objective=objective,
            constraints=report,
            storage_stats=storage_stats,
            processing_stats=processing_stats,
            offload_outcome=offload_outcome,
            unconstrained_objective=unconstrained_d,
            phases_run=phases,
            phase_seconds=phase_seconds,
        )

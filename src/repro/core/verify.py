"""Consolidated allocation/result verification.

One call that checks *everything* checkable about an allocation or a
policy result: structural invariants (marks ⊆ replicas, counts in sync),
constraint consistency (Eq. 8-10 against the model's capacities), and
cross-representation agreement (flat arrays vs sparse matrices).  Used
by the test-suite as a single acceptance gate and handy in notebooks
when building custom policies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.allocation import Allocation
from repro.core.constraints import evaluate_constraints
from repro.core.context import IncrementalObjective
from repro.core.cost_model import CostModel
from repro.core.matrices import MatrixSet

__all__ = ["VerificationReport", "verify_allocation"]


@dataclass
class VerificationReport:
    """Outcome of :func:`verify_allocation`."""

    passed: bool
    failures: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    def raise_if_failed(self) -> None:
        """Raise :class:`AssertionError` listing every failure."""
        if not self.passed:
            raise AssertionError(
                "allocation verification failed:\n- " + "\n- ".join(self.failures)
            )


def verify_allocation(
    alloc: Allocation,
    expect_feasible: bool | None = None,
    cost: CostModel | None = None,
) -> VerificationReport:
    """Run every known consistency check against ``alloc``.

    Parameters
    ----------
    alloc:
        The allocation to verify.
    expect_feasible:
        ``True``/``False`` asserts the Eq. 8-10 feasibility outcome;
        ``None`` records it as a warning only.
    cost:
        Optional cost model (built on demand) for objective sanity.
    """
    failures: list[str] = []
    warnings: list[str] = []

    # 1. structural invariants
    try:
        alloc.check_invariants()
    except AssertionError as exc:
        failures.append(f"structural invariants: {exc}")

    # 2. matrix-representation agreement (also validates X ⊆ U etc.)
    try:
        ms = MatrixSet.from_allocation(alloc)
        back = ms.to_allocation(alloc.model)
        if not np.array_equal(back.comp_local, alloc.comp_local):
            failures.append("matrix round-trip changed compulsory marks")
        if not np.array_equal(back.opt_local, alloc.opt_local):
            failures.append("matrix round-trip changed optional marks")
    except ValueError as exc:
        failures.append(f"matrix validation: {exc}")

    # 3. constraints
    report = evaluate_constraints(alloc)
    if expect_feasible is True and not report.ok:
        failures.append(f"expected feasible, got: {report.summary()}")
    elif expect_feasible is False and report.ok:
        failures.append("expected infeasible, but all constraints hold")
    elif expect_feasible is None and not report.ok:
        warnings.append(f"constraints: {report.summary()}")

    # 4. objective sanity
    c = cost or CostModel(alloc.model)
    d = c.D(alloc)
    if not np.isfinite(d) or d < 0:
        failures.append(f"objective D is not a finite non-negative number: {d}")

    # 5. incremental-objective agreement: a freshly synced
    # IncrementalObjective evaluates the same Eq. 3-7 pipeline from the
    # shared EvalContext columns and must match CostModel.D exactly
    inc = IncrementalObjective(c.ctx, alloc, alpha1=c.alpha1, alpha2=c.alpha2)
    if inc.D != d:
        failures.append(
            f"IncrementalObjective disagrees with CostModel.D: {inc.D!r} != {d!r}"
        )

    return VerificationReport(
        passed=not failures, failures=failures, warnings=warnings
    )

"""Exact mixed-integer reference solver for small instances.

The paper notes the allocation decision problem is NP-complete (knapsack
reduction) and solves it greedily.  For *small* instances we can compute
the true optimum of the weighted objective ``D`` (Eq. 7) under Eq. 8-10
with a MILP, which lets tests and ablation benches quantify the greedy
policy's optimality gap.

Formulation
-----------
Variables:

* ``x_e ∈ {0,1}``  — one per compulsory entry (``X_jk``),
* ``z_e ∈ {0,1}``  — one per optional entry (optional part of ``X'``),
* ``y_{ik} ∈ {0,1}`` — object ``k`` stored at server ``i`` (only pairs
  actually referenced by some hosted page are materialised),
* ``T_j ≥ 0``      — page response time, with ``T_j ≥`` both Eq. 3 and
  Eq. 4 stream times (linearising the max of Eq. 5; minimisation makes
  the bound tight whenever ``T_j`` carries positive weight).

Constraints: mark-implies-stored (``x_e ≤ y``, ``z_e ≤ y``), storage
(Eq. 10 with the union expressed through ``y``), local processing
(Eq. 8), repository processing (Eq. 9).

Only use this for toy models (tens of pages); the variable count grows
as the number of matrix entries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.core.allocation import Allocation
from repro.core.cost_model import CostModel
from repro.core.types import SystemModel

__all__ = ["IlpSolution", "solve_optimal_allocation"]

_MAX_ENTRIES = 2000


@dataclass(frozen=True)
class IlpSolution:
    """Optimal allocation plus the solver's objective value."""

    allocation: Allocation
    objective: float
    status: int
    message: str


def solve_optimal_allocation(
    model: SystemModel,
    alpha1: float = 2.0,
    alpha2: float = 1.0,
    time_limit: float | None = 60.0,
) -> IlpSolution:
    """Solve for the exact optimum of ``D`` on a small instance.

    Raises
    ------
    ValueError
        If the instance is too large (guards against accidentally feeding
        a full Table 1 workload to the MILP).
    RuntimeError
        If the MILP terminates without an optimal solution.
    """
    m = model
    n_comp = len(m.comp_objects)
    n_opt = len(m.opt_objects)
    if n_comp + n_opt > _MAX_ENTRIES:
        raise ValueError(
            f"instance has {n_comp + n_opt} matrix entries; the ILP "
            f"reference is limited to {_MAX_ENTRIES} (use the greedy "
            "policy for real workloads)"
        )
    cost = CostModel(m, alpha1, alpha2)

    # --- variable layout -------------------------------------------------
    pairs: list[tuple[int, int]] = []
    pair_index: dict[tuple[int, int], int] = {}
    srv_c = m.page_server[m.comp_pages]
    srv_o = m.page_server[m.opt_pages]
    for i, k in list(zip(srv_c, m.comp_objects)) + list(zip(srv_o, m.opt_objects)):
        key = (int(i), int(k))
        if key not in pair_index:
            pair_index[key] = len(pairs)
            pairs.append(key)
    n_pairs = len(pairs)
    n_pages = m.n_pages

    # variable vector: [x (n_comp), z (n_opt), y (n_pairs), T (n_pages)]
    off_x, off_z = 0, n_comp
    off_y = n_comp + n_opt
    off_t = off_y + n_pairs
    n_vars = off_t + n_pages

    integrality = np.zeros(n_vars)
    integrality[:off_t] = 1
    lb = np.zeros(n_vars)
    ub = np.ones(n_vars)
    ub[off_t:] = np.inf

    # --- objective --------------------------------------------------------
    c = np.zeros(n_vars)
    c[off_t:] = alpha1 * m.frequencies
    # optional term: w_e [z t_local + (1-z) t_repo] = const + w_e (t_local - t_repo) z
    const = 0.0
    for e in range(n_opt):
        w = alpha2 * cost.opt_freq_weight[e]
        c[off_z + e] += w * (cost.opt_time_local[e] - cost.opt_time_repo[e])
        const += w * cost.opt_time_repo[e]

    constraints: list[LinearConstraint] = []

    # --- T_j >= local stream time (Eq. 3) ----------------------------------
    # T_j - spb_S * sum_e x_e size_e >= ovhd_S + spb_S * html
    rows_A: list[np.ndarray] = []
    rows_lb: list[float] = []
    rows_ub: list[float] = []

    for j in range(n_pages):
        sl = m.comp_slice(j)
        row = np.zeros(n_vars)
        row[off_t + j] = 1.0
        for e in range(sl.start, sl.stop):
            row[off_x + e] = -cost.page_spb_local[j] * cost.comp_sizes[e]
        rows_A.append(row)
        rows_lb.append(
            float(
                cost.page_ovhd_local[j]
                + cost.page_spb_local[j] * m.html_sizes[j]
            )
        )
        rows_ub.append(np.inf)
        # T_j >= remote stream time (Eq. 4):
        # T_j + spb_R * sum_e x_e size_e >= ovhd_R + spb_R * total_comp_bytes
        row2 = np.zeros(n_vars)
        row2[off_t + j] = 1.0
        total = 0.0
        for e in range(sl.start, sl.stop):
            row2[off_x + e] = cost.page_spb_repo[j] * cost.comp_sizes[e]
            total += cost.comp_sizes[e]
        rows_A.append(row2)
        rows_lb.append(
            float(cost.page_ovhd_repo[j] + cost.page_spb_repo[j] * total)
        )
        rows_ub.append(np.inf)

    # --- mark implies stored ------------------------------------------------
    for e in range(n_comp):
        key = (int(srv_c[e]), int(m.comp_objects[e]))
        row = np.zeros(n_vars)
        row[off_x + e] = 1.0
        row[off_y + pair_index[key]] = -1.0
        rows_A.append(row)
        rows_lb.append(-np.inf)
        rows_ub.append(0.0)
    for e in range(n_opt):
        key = (int(srv_o[e]), int(m.opt_objects[e]))
        row = np.zeros(n_vars)
        row[off_z + e] = 1.0
        row[off_y + pair_index[key]] = -1.0
        rows_A.append(row)
        rows_lb.append(-np.inf)
        rows_ub.append(0.0)

    # --- storage (Eq. 10) ----------------------------------------------------
    html_by_srv = m.html_bytes_by_server()
    for i in range(m.n_servers):
        if np.isinf(m.server_storage[i]):
            continue
        row = np.zeros(n_vars)
        any_pair = False
        for (si, k), idx in pair_index.items():
            if si == i:
                row[off_y + idx] = float(m.sizes[k])
                any_pair = True
        if not any_pair:
            continue
        rows_A.append(row)
        rows_lb.append(-np.inf)
        rows_ub.append(float(m.server_storage[i] - html_by_srv[i]))

    # --- local processing (Eq. 8) --------------------------------------------
    for i in range(m.n_servers):
        if np.isinf(m.server_capacity[i]):
            continue
        row = np.zeros(n_vars)
        base = 0.0
        for j in m.pages_by_server[i]:
            base += m.frequencies[j]
            sl = m.comp_slice(j)
            for e in range(sl.start, sl.stop):
                row[off_x + e] = float(m.frequencies[j])
            slo = m.opt_slice(j)
            for e in range(slo.start, slo.stop):
                row[off_z + e] = float(
                    m.frequencies[j]
                    * m.optional_rate_scale[j]
                    * m.opt_probs[e]
                )
        rows_A.append(row)
        rows_lb.append(-np.inf)
        rows_ub.append(float(m.server_capacity[i] - base))

    # --- repository processing (Eq. 9) ----------------------------------------
    if not np.isinf(m.repository.processing_capacity):
        row = np.zeros(n_vars)
        base = 0.0
        for e in range(n_comp):
            f = float(m.frequencies[m.comp_pages[e]])
            base += f
            row[off_x + e] = -f
        for e in range(n_opt):
            j = int(m.opt_pages[e])
            w = float(
                m.frequencies[j] * m.optional_rate_scale[j] * m.opt_probs[e]
            )
            base += w
            row[off_z + e] = -w
        rows_A.append(row)
        rows_lb.append(-np.inf)
        rows_ub.append(float(m.repository.processing_capacity - base))

    A = np.vstack(rows_A)
    constraints.append(LinearConstraint(A, np.array(rows_lb), np.array(rows_ub)))

    options = {}
    if time_limit is not None:
        options["time_limit"] = time_limit
    res = milp(
        c,
        constraints=constraints,
        integrality=integrality,
        bounds=Bounds(lb, ub),
        options=options,
    )
    if res.status != 0 or res.x is None:
        raise RuntimeError(f"MILP failed: status={res.status}, {res.message}")

    x = res.x
    comp_local = x[off_x : off_x + n_comp] > 0.5
    opt_local = x[off_z : off_z + n_opt] > 0.5
    replicas: list[set[int]] = [set() for _ in range(m.n_servers)]
    for (i, k), idx in pair_index.items():
        if x[off_y + idx] > 0.5:
            replicas[i].add(k)
    alloc = Allocation(m, comp_local, opt_local, replicas)
    return IlpSolution(
        allocation=alloc,
        objective=float(res.fun + const),
        status=int(res.status),
        message=str(res.message),
    )

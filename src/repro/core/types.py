"""Typed description of the paper's system universe (Section 2/3).

The universe consists of

* ``s`` local servers :math:`S_1 \\dots S_s` (:class:`ServerSpec`),
* one repository server ``R`` (:class:`RepositorySpec`),
* ``n`` web pages :math:`W_1 \\dots W_n` with their HTML documents
  :math:`H_1 \\dots H_n` (:class:`PageSpec`), and
* ``m`` multimedia objects :math:`M_1 \\dots M_m` (:class:`ObjectSpec`).

:class:`SystemModel` bundles them and pre-computes the flat NumPy views
(`sizes`, per-page compulsory/optional index ranges) every other module
vectorises over.

Units
-----
* sizes — bytes
* rates — bytes/second (``B`` of the paper is derived as 1/rate when
  computing times; see :mod:`repro.util.units`)
* overheads — seconds (``Ovhd`` of the paper)
* frequencies / processing capacities — HTTP requests per second
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.util.validation import check_nonnegative, check_positive, env_positive_int

__all__ = [
    "ObjectSpec",
    "PageSpec",
    "ServerSpec",
    "RepositorySpec",
    "StreamTopology",
    "SystemModel",
    "ColumnarModel",
    "MODEL_COLUMN_FIELDS",
    "restrict_to_servers",
    "resolve_streams",
]


@dataclass(frozen=True)
class ObjectSpec:
    """A multimedia object :math:`M_k` stored at the repository.

    Attributes
    ----------
    object_id:
        Dense index in ``[0, m)``; position in :attr:`SystemModel.objects`.
    size:
        ``Size(M_k)`` in bytes.
    """

    object_id: int
    size: int

    def __post_init__(self) -> None:
        if self.object_id < 0:
            raise ValueError(f"object_id must be >= 0, got {self.object_id}")
        if self.size <= 0:
            raise ValueError(f"object size must be positive, got {self.size}")


@dataclass(frozen=True)
class PageSpec:
    """A web page :math:`W_j` together with its HTML document :math:`H_j`.

    A page is hosted by exactly one local server (``A`` matrix, Section 3);
    replicated pages are modelled as distinct :class:`PageSpec` instances,
    exactly as the paper prescribes.

    Attributes
    ----------
    page_id:
        Dense index in ``[0, n)``.
    server:
        Index of the hosting local server (the ``i`` with ``A_ij = 1``).
    html_size:
        ``Size(H_j)`` in bytes (composite HTML treated as one document).
    frequency:
        ``f(W_j)`` — peak-hour access frequency in requests/second.
    compulsory:
        Object ids ``k`` with ``U_jk = 1``.
    optional:
        Object ids ``k`` with ``U'_jk > 0``; disjoint from ``compulsory``.
    optional_prob:
        The per-object request probability ``U'_jk`` shared by this page's
        optional objects (the Table 1 workload uses
        P(interested) x fraction-requested = 0.1 x 0.3 = 0.03).
    optional_rate_scale:
        The paper's ``f(W_j, M)`` expressed per page view: a multiplier on
        the expected optional download time of Eq. 6. Defaults to 1.
    """

    page_id: int
    server: int
    html_size: int
    frequency: float
    compulsory: tuple[int, ...] = ()
    optional: tuple[int, ...] = ()
    optional_prob: float = 0.0
    optional_rate_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.page_id < 0:
            raise ValueError(f"page_id must be >= 0, got {self.page_id}")
        if self.server < 0:
            raise ValueError(f"server index must be >= 0, got {self.server}")
        if self.html_size <= 0:
            raise ValueError(f"html_size must be positive, got {self.html_size}")
        check_nonnegative("frequency", self.frequency)
        if not 0.0 <= self.optional_prob <= 1.0:
            raise ValueError(
                f"optional_prob must be in [0, 1], got {self.optional_prob}"
            )
        check_nonnegative("optional_rate_scale", self.optional_rate_scale)
        if len(set(self.compulsory)) != len(self.compulsory):
            raise ValueError(f"page {self.page_id}: duplicate compulsory objects")
        if len(set(self.optional)) != len(self.optional):
            raise ValueError(f"page {self.page_id}: duplicate optional objects")
        overlap = set(self.compulsory) & set(self.optional)
        if overlap:
            raise ValueError(
                f"page {self.page_id}: objects {sorted(overlap)} are both "
                "compulsory and optional (the paper requires U'_jk = 0 when "
                "U_jk = 1)"
            )

    @property
    def n_compulsory(self) -> int:
        """Number of compulsory MOs embedded in the page."""
        return len(self.compulsory)

    @property
    def n_optional(self) -> int:
        """Number of optional MO links in the page."""
        return len(self.optional)


@dataclass(frozen=True)
class ServerSpec:
    """A local server :math:`S_i` plus its estimated network attributes.

    The rate/overhead fields are the *estimations used when deciding about
    replica creation* (Section 3); the simulation perturbs them per HTTP
    request (Section 5.1).

    Attributes
    ----------
    server_id:
        Dense index in ``[0, s)``.
    storage_capacity:
        ``Size(S_i)`` in bytes.
    processing_capacity:
        ``C(S_i)`` in HTTP requests/second (``math.inf`` = unconstrained).
    rate:
        Estimated ``B(S_i)`` in bytes/second — the local transfer rate
        clients in this region see.
    overhead:
        Estimated ``Ovhd(S_i)`` in seconds (TCP setup + request processing).
    repo_rate:
        Estimated ``B(R, S_i)`` in bytes/second — the rate at which this
        region's clients are served by the repository.
    repo_overhead:
        Estimated ``Ovhd(R, S_i)`` in seconds.
    name:
        Optional human-readable label used in reports.
    """

    server_id: int
    storage_capacity: float
    processing_capacity: float
    rate: float
    overhead: float
    repo_rate: float
    repo_overhead: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.server_id < 0:
            raise ValueError(f"server_id must be >= 0, got {self.server_id}")
        if not (self.storage_capacity >= 0):
            raise ValueError(
                f"storage_capacity must be >= 0 (math.inf allowed), got "
                f"{self.storage_capacity}"
            )
        if not (self.processing_capacity > 0):
            raise ValueError(
                f"processing_capacity must be > 0 (use math.inf for "
                f"unconstrained), got {self.processing_capacity}"
            )
        check_positive("rate", self.rate)
        check_nonnegative("overhead", self.overhead)
        check_positive("repo_rate", self.repo_rate)
        check_nonnegative("repo_overhead", self.repo_overhead)

    @property
    def spb(self) -> float:
        """Seconds per byte on the local connection (``B(S_i)`` of Eq. 3)."""
        return 1.0 / self.rate

    @property
    def repo_spb(self) -> float:
        """Seconds per byte on the repository connection (Eq. 4)."""
        return 1.0 / self.repo_rate


@dataclass(frozen=True)
class RepositorySpec:
    """The central multimedia repository ``R``.

    Attributes
    ----------
    processing_capacity:
        ``C(R)`` in HTTP requests/second. Table 1 sets this to infinity;
        Figure 3 constrains it.
    """

    processing_capacity: float = math.inf

    def __post_init__(self) -> None:
        if not (self.processing_capacity > 0):
            raise ValueError(
                f"repository processing_capacity must be > 0, got "
                f"{self.processing_capacity}"
            )


@dataclass(frozen=True)
class StreamTopology:
    """The remote half of a k-stream replica mesh (Eq. 3-5 generalised).

    A page hosted on server ``S_i`` downloads over ``k`` pipelined
    parallel streams: the local server (stream 0) plus ``k-1`` remote
    sources — the repository and, for ``k > 2``, additional replica
    sites.  This topology holds the per-server network estimates of the
    **remote** streams as ``(n_servers, k-1)`` arrays; stream index 0 of
    the remote axis (global stream 1) *is* the repository connection and
    must match every server's ``repo_rate`` / ``repo_overhead`` — the
    classic paper model is the degenerate single-column ``k = 2`` case.

    Attributes
    ----------
    rates:
        ``B(r, S_i)`` in bytes/second, shape ``(n_servers, k-1)``.
    overheads:
        ``Ovhd(r, S_i)`` in seconds, same shape.
    """

    rates: np.ndarray
    overheads: np.ndarray

    def __post_init__(self) -> None:
        rates = np.asarray(self.rates, dtype=np.float64)
        overheads = np.asarray(self.overheads, dtype=np.float64)
        object.__setattr__(self, "rates", rates)
        object.__setattr__(self, "overheads", overheads)
        if rates.ndim != 2 or overheads.shape != rates.shape:
            raise ValueError(
                "StreamTopology rates/overheads must be matching "
                f"(n_servers, k-1) matrices, got {rates.shape} and "
                f"{overheads.shape}"
            )
        if rates.shape[1] < 1:
            raise ValueError(
                "StreamTopology needs at least one remote stream (the "
                "repository connection)"
            )
        if not (np.isfinite(rates).all() and (rates > 0).all()):
            raise ValueError("StreamTopology rates must be finite and positive")
        if not (np.isfinite(overheads).all() and (overheads >= 0).all()):
            raise ValueError(
                "StreamTopology overheads must be finite and non-negative"
            )

    @property
    def n_streams(self) -> int:
        """Total stream count ``k`` (local + remote columns)."""
        return 1 + self.rates.shape[1]

    @classmethod
    def degenerate(cls, servers: Sequence[ServerSpec]) -> "StreamTopology":
        """The classic ``k = 2`` topology: repository connection only."""
        return cls(
            rates=np.array([[sv.repo_rate] for sv in servers]),
            overheads=np.array([[sv.repo_overhead] for sv in servers]),
        )


def resolve_streams(
    streams: int | None = None, n_repositories: int | None = None
) -> int:
    """Resolve the stream count ``k``: explicit value, else ``REPRO_STREAMS``.

    Mirrors ``repro.core.shard.resolve_shards``: explicit non-positive /
    non-integer values and malformed environment values raise
    :class:`ValueError` naming the offending source.  Unset values
    default to the paper's ``k = 2`` (local + repository).  With
    ``n_repositories`` known (the scenario's repository-grade remote
    sources), any request exceeding ``1 + n_repositories`` is rejected —
    every remote stream needs a source to serve it.
    """
    if streams is None:
        streams = env_positive_int("REPRO_STREAMS", default=None)
    elif isinstance(streams, bool) or not isinstance(streams, int):
        raise ValueError(f"streams must be a positive integer, got {streams!r}")
    elif streams <= 0:
        raise ValueError(f"streams must be a positive integer, got {streams}")
    if streams is None:
        streams = 2
    if streams < 2:
        raise ValueError(
            f"streams must be at least 2 (the local server plus the "
            f"repository), got {streams}"
        )
    if n_repositories is not None and streams > 1 + n_repositories:
        raise ValueError(
            f"streams must not exceed 1 + the scenario's repository count "
            f"({1 + n_repositories}), got {streams}"
        )
    return streams


class SystemModel:
    """The full ``(servers, repository, pages, objects)`` universe.

    Besides holding the specs, the model pre-computes the flat array views
    used by the vectorised cost model:

    * :attr:`sizes` — ``m``-vector of object sizes,
    * :attr:`comp_pages` / :attr:`comp_objects` — COO-style flattening of
      the compulsory matrix ``U`` (one entry per ``U_jk = 1``),
    * :attr:`comp_indptr` — CSR row pointers into the two arrays above,
    * :attr:`comp_entry_sizes` — per-compulsory-entry object sizes
      (``sizes[comp_objects]``, the batch kernel's gather source),
    * the analogous ``opt_*`` arrays for the optional matrix ``U'`` with
      :attr:`opt_probs` holding the per-entry probabilities.

    Parameters
    ----------
    servers:
        Local server specs, ordered by ``server_id`` (checked).
    repository:
        Repository spec.
    pages:
        Page specs, ordered by ``page_id`` (checked). Every referenced
        object id must exist and each ``server`` index must be valid.
    objects:
        Object specs, ordered by ``object_id`` (checked).
    topology:
        Optional :class:`StreamTopology` describing the remote streams of
        a ``k > 2`` replica mesh.  ``None`` (the default) is the paper's
        two-stream model; the repository columns are then synthesised
        from each server's ``repo_rate`` / ``repo_overhead``, so every
        existing call site sees a degenerate ``k = 2`` topology.
    """

    def __init__(
        self,
        servers: Sequence[ServerSpec],
        repository: RepositorySpec,
        pages: Sequence[PageSpec],
        objects: Sequence[ObjectSpec],
        topology: StreamTopology | None = None,
    ):
        self.servers: tuple[ServerSpec, ...] = tuple(servers)
        self.repository = repository
        self.pages: tuple[PageSpec, ...] = tuple(pages)
        self.objects: tuple[ObjectSpec, ...] = tuple(objects)
        self._validate_ids()
        self._validate_topology(topology)
        self._build_arrays(topology)

    def _validate_topology(self, topology: StreamTopology | None) -> None:
        if topology is None:
            return
        if topology.rates.shape[0] != len(self.servers):
            raise ValueError(
                f"topology covers {topology.rates.shape[0]} servers but the "
                f"model has {len(self.servers)}"
            )
        repo_rate = np.array([sv.repo_rate for sv in self.servers])
        repo_ovhd = np.array([sv.repo_overhead for sv in self.servers])
        if not (
            np.array_equal(topology.rates[:, 0], repo_rate)
            and np.array_equal(topology.overheads[:, 0], repo_ovhd)
        ):
            raise ValueError(
                "topology stream 1 must be the repository connection: its "
                "rates/overheads column 0 must equal every server's "
                "repo_rate/repo_overhead"
            )

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _validate_ids(self) -> None:
        for i, srv in enumerate(self.servers):
            if srv.server_id != i:
                raise ValueError(
                    f"servers must be ordered by server_id: position {i} "
                    f"holds server_id {srv.server_id}"
                )
        for j, page in enumerate(self.pages):
            if page.page_id != j:
                raise ValueError(
                    f"pages must be ordered by page_id: position {j} holds "
                    f"page_id {page.page_id}"
                )
            if page.server >= len(self.servers):
                raise ValueError(
                    f"page {j} references server {page.server} but only "
                    f"{len(self.servers)} servers exist"
                )
        for k, obj in enumerate(self.objects):
            if obj.object_id != k:
                raise ValueError(
                    f"objects must be ordered by object_id: position {k} "
                    f"holds object_id {obj.object_id}"
                )
        m = len(self.objects)
        for page in self.pages:
            for k in page.compulsory + page.optional:
                if not 0 <= k < m:
                    raise ValueError(
                        f"page {page.page_id} references object {k} but only "
                        f"{m} objects exist"
                    )

    # ------------------------------------------------------------------
    # flat array views
    # ------------------------------------------------------------------
    def _build_arrays(self, topology: StreamTopology | None = None) -> None:
        n, m, s = len(self.pages), len(self.objects), len(self.servers)
        self.n_pages = n
        self.n_objects = m
        self.n_servers = s

        self.sizes = np.array([o.size for o in self.objects], dtype=np.float64)
        self.html_sizes = np.array([p.html_size for p in self.pages], dtype=np.float64)
        self.frequencies = np.array([p.frequency for p in self.pages], dtype=np.float64)
        self.page_server = np.array([p.server for p in self.pages], dtype=np.intp)
        self.optional_rate_scale = np.array(
            [p.optional_rate_scale for p in self.pages], dtype=np.float64
        )

        comp_indptr = np.zeros(n + 1, dtype=np.intp)
        opt_indptr = np.zeros(n + 1, dtype=np.intp)
        for j, p in enumerate(self.pages):
            comp_indptr[j + 1] = comp_indptr[j] + len(p.compulsory)
            opt_indptr[j + 1] = opt_indptr[j] + len(p.optional)
        self.comp_indptr = comp_indptr
        self.opt_indptr = opt_indptr

        self.comp_objects = np.fromiter(
            (k for p in self.pages for k in p.compulsory),
            dtype=np.intp,
            count=int(comp_indptr[-1]),
        )
        self.comp_pages = np.repeat(np.arange(n, dtype=np.intp), np.diff(comp_indptr))
        self.opt_objects = np.fromiter(
            (k for p in self.pages for k in p.optional),
            dtype=np.intp,
            count=int(opt_indptr[-1]),
        )
        self.opt_pages = np.repeat(np.arange(n, dtype=np.intp), np.diff(opt_indptr))
        self.opt_probs = np.fromiter(
            (p.optional_prob for p in self.pages for _ in p.optional),
            dtype=np.float64,
            count=int(opt_indptr[-1]),
        )

        # per-server estimated network attributes, index-aligned with pages
        self.server_rate = np.array([sv.rate for sv in self.servers])
        self.server_overhead = np.array([sv.overhead for sv in self.servers])
        self.server_repo_rate = np.array([sv.repo_rate for sv in self.servers])
        self.server_repo_overhead = np.array(
            [sv.repo_overhead for sv in self.servers]
        )
        self.server_storage = np.array(
            [sv.storage_capacity for sv in self.servers], dtype=np.float64
        )
        self.server_capacity = np.array(
            [sv.processing_capacity for sv in self.servers], dtype=np.float64
        )

        # Remote-stream columns, shape (n_servers, k-1): column 0 is the
        # repository connection (identical values to the server_repo_*
        # arrays), further columns are replica-mesh sites.  Always built
        # so every consumer — shm shipping, ColumnarModel, server-subset
        # slicing — handles k uniformly; the classic model is k = 2.
        if topology is None:
            self.stream_rates = self.server_repo_rate.reshape(s, 1).copy()
            self.stream_overheads = self.server_repo_overhead.reshape(s, 1).copy()
        else:
            self.stream_rates = topology.rates
            self.stream_overheads = topology.overheads
        self.n_streams = 1 + self.stream_rates.shape[1]

        pages_by_server: list[list[int]] = [[] for _ in range(s)]
        for j, p in enumerate(self.pages):
            pages_by_server[p.server].append(j)
        self.pages_by_server: tuple[tuple[int, ...], ...] = tuple(
            tuple(lst) for lst in pages_by_server
        )

        # Per-page compulsory entries pre-sorted by decreasing object size
        # (PARTITION's iteration order), as a global permutation: page j's
        # sorted entries are comp_sorted[comp_indptr[j]:comp_indptr[j+1]].
        ne = len(self.comp_objects)
        self.comp_entry_sizes = self.sizes[self.comp_objects]
        if ne:
            self.comp_sorted = np.lexsort(
                (np.arange(ne), -self.comp_entry_sizes, self.comp_pages)
            )
        else:
            self.comp_sorted = np.empty(0, dtype=np.intp)

    @property
    def fast_comp(self) -> tuple[list[int], list[int], list[float]]:
        """Plain-list views of the compulsory entry arrays for hot loops:
        ``(comp_sorted, comp_objects, entry_sizes)`` — built lazily once.
        """
        cached = getattr(self, "_fast_comp_cache", None)
        if cached is None:
            cached = (
                self.comp_sorted.tolist(),
                self.comp_objects.tolist(),
                self.sizes[self.comp_objects].tolist(),
            )
            self._fast_comp_cache = cached
        return cached

    # ------------------------------------------------------------------
    # convenience accessors
    # ------------------------------------------------------------------
    def comp_slice(self, page_id: int) -> slice:
        """Slice into the flat compulsory arrays for ``page_id``."""
        return slice(int(self.comp_indptr[page_id]), int(self.comp_indptr[page_id + 1]))

    def opt_slice(self, page_id: int) -> slice:
        """Slice into the flat optional arrays for ``page_id``."""
        return slice(int(self.opt_indptr[page_id]), int(self.opt_indptr[page_id + 1]))

    def objects_referenced_by_server(self, server_id: int) -> set[int]:
        """All object ids referenced (compulsorily or optionally) by pages
        hosted on ``server_id``."""
        refs: set[int] = set()
        for j in self.pages_by_server[server_id]:
            p = self.pages[j]
            refs.update(p.compulsory)
            refs.update(p.optional)
        return refs

    def html_bytes_by_server(self) -> np.ndarray:
        """Per-server total HTML bytes (the fixed part of Eq. 10's LHS)."""
        out = np.zeros(self.n_servers)
        np.add.at(out, self.page_server, self.html_sizes)
        return out

    def total_object_bytes(self) -> float:
        """Sum of all MO sizes (useful for storage normalisation)."""
        return float(self.sizes.sum())

    def __getstate__(self) -> dict:
        """Pickle without the lazily-attached derived-state caches.

        Consumers attach caches under underscore-prefixed attributes
        (``_repro_eval_context_cache``, ``_repro_reverse_index_cache``,
        ``_fast_comp_cache``); shipping them to worker processes would
        triple the payload for state every worker rebuilds lazily anyway.
        Dropping them keeps the bytes a pure function of the model, so
        the shard executor's content-addressed worker cache gets hits
        across structurally identical clones.
        """
        return {
            k: v for k, v in self.__dict__.items() if not k.startswith("_")
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SystemModel(servers={self.n_servers}, pages={self.n_pages}, "
            f"objects={self.n_objects})"
        )


#: The flat array attributes that fully determine a model's vectorised
#: state (everything :meth:`SystemModel._build_arrays` derives from the
#: specs).  :class:`ColumnarModel` reconstructs a model from exactly
#: these plus the repository spec; the shared-memory shipping path in
#: :mod:`repro.core.shm` / :mod:`repro.core.shard` packs exactly these.
MODEL_COLUMN_FIELDS: tuple[str, ...] = (
    "sizes",
    "html_sizes",
    "frequencies",
    "page_server",
    "optional_rate_scale",
    "comp_indptr",
    "opt_indptr",
    "comp_objects",
    "comp_pages",
    "opt_objects",
    "opt_pages",
    "opt_probs",
    "server_rate",
    "server_overhead",
    "server_repo_rate",
    "server_repo_overhead",
    "server_storage",
    "server_capacity",
    "comp_entry_sizes",
    "comp_sorted",
    "stream_rates",
    "stream_overheads",
)


class ColumnarModel(SystemModel):
    """A :class:`SystemModel` built directly from its flat arrays.

    Two producers need a model *without* paying the spec-tuple path:

    * :func:`restrict_to_servers` — the shard-local submodels of
      ``EvalContext.for_servers`` (vectorised slicing of the parent's
      columns; building ``PageSpec`` tuples for a million-page model
      just to re-flatten them would dominate the shard setup it exists
      to remove);
    * the shared-memory model shipping in :mod:`repro.core.shard` —
      workers attach the parent's column arrays in place and wrap them
      in a model view.

    The spec tuples (``pages``, ``servers``, ``objects``) and
    ``pages_by_server`` are materialised **lazily** from the arrays on
    first access — only the scalar reference kernels (e.g. the
    ``partition_page`` fallback inside batched restoration) touch them,
    and then only for the few pages they re-partition.  The
    reconstructed specs are exact: every spec field round-trips through
    the arrays bit-identically, so scalar and batched consumers see the
    same universe (asserted in ``tests/core/test_context_subset.py``).
    """

    def __init__(self, *args, **kwargs):  # pragma: no cover - guard
        raise TypeError(
            "ColumnarModel is constructed via from_columns(), not __init__"
        )

    @classmethod
    def from_columns(
        cls, columns: dict, repository: RepositorySpec
    ) -> "ColumnarModel":
        """Wrap pre-built flat arrays (see :data:`MODEL_COLUMN_FIELDS`).

        The arrays are adopted by reference — callers hand over
        ownership (or immutable/shared views, e.g. shared-memory
        attachments).
        """
        self = cls.__new__(cls)
        self.repository = repository
        for name in MODEL_COLUMN_FIELDS:
            setattr(self, name, columns[name])
        self.n_pages = len(self.html_sizes)
        self.n_objects = len(self.sizes)
        self.n_servers = len(self.server_rate)
        self.n_streams = 1 + self.stream_rates.shape[1]
        return self

    # ------------------------------------------------------------------
    # lazy spec reconstruction
    # ------------------------------------------------------------------
    @property
    def pages(self) -> tuple[PageSpec, ...]:
        cached = getattr(self, "_lazy_pages", None)
        if cached is None:
            comp = self.comp_objects.tolist()
            opt = self.opt_objects.tolist()
            ci = self.comp_indptr.tolist()
            oi = self.opt_indptr.tolist()
            probs = self.opt_probs.tolist()
            cached = tuple(
                PageSpec(
                    page_id=j,
                    server=int(self.page_server[j]),
                    html_size=int(self.html_sizes[j]),
                    frequency=float(self.frequencies[j]),
                    compulsory=tuple(comp[ci[j] : ci[j + 1]]),
                    optional=tuple(opt[oi[j] : oi[j + 1]]),
                    optional_prob=(
                        float(probs[oi[j]]) if oi[j] < oi[j + 1] else 0.0
                    ),
                    optional_rate_scale=float(self.optional_rate_scale[j]),
                )
                for j in range(self.n_pages)
            )
            self._lazy_pages = cached
        return cached

    @property
    def servers(self) -> tuple[ServerSpec, ...]:
        cached = getattr(self, "_lazy_servers", None)
        if cached is None:
            cached = tuple(
                ServerSpec(
                    server_id=i,
                    storage_capacity=float(self.server_storage[i]),
                    processing_capacity=float(self.server_capacity[i]),
                    rate=float(self.server_rate[i]),
                    overhead=float(self.server_overhead[i]),
                    repo_rate=float(self.server_repo_rate[i]),
                    repo_overhead=float(self.server_repo_overhead[i]),
                )
                for i in range(self.n_servers)
            )
            self._lazy_servers = cached
        return cached

    @property
    def objects(self) -> tuple[ObjectSpec, ...]:
        cached = getattr(self, "_lazy_objects", None)
        if cached is None:
            cached = tuple(
                ObjectSpec(object_id=k, size=int(s))
                for k, s in enumerate(self.sizes.tolist())
            )
            self._lazy_objects = cached
        return cached

    @property
    def pages_by_server(self) -> tuple[tuple[int, ...], ...]:
        cached = getattr(self, "_lazy_pages_by_server", None)
        if cached is None:
            order = np.argsort(self.page_server, kind="stable")
            bounds = self.page_server[order].searchsorted(
                np.arange(self.n_servers + 1)
            )
            lst = order.tolist()
            cached = tuple(
                tuple(lst[bounds[i] : bounds[i + 1]])
                for i in range(self.n_servers)
            )
            self._lazy_pages_by_server = cached
        return cached


def restrict_to_servers(
    model: SystemModel, server_ids: Sequence[int]
) -> tuple[ColumnarModel, dict[str, np.ndarray]]:
    """The sub-universe hosted by ``server_ids``, with global↔local maps.

    Pages are pinned to exactly one server (matrix ``A``), so a server
    subset induces a clean sub-model: its servers (renumbered densely in
    the given order), their pages (global page order preserved), and
    those pages' compulsory/optional entries (global entry order
    preserved).  **Objects keep their global ids** — the object axis is
    shared with the repository, every entry may reference any object,
    and keeping ids global is what lets shard workers hand replica sets
    back to the parent without translation.

    Order preservation is what makes shard-local computation
    bit-identical to masked global computation (DESIGN.md Appendix H):
    ascending local ids enumerate the same pages/entries in the same
    relative order as ascending global ids, and ``comp_sorted`` is
    *filtered* from the parent's permutation rather than re-sorted, so
    PARTITION's per-page size-ties resolve identically.

    Parameters
    ----------
    server_ids:
        Strictly increasing global server ids (ascending order is
        required — it keeps local server enumeration order equal to
        global enumeration order restricted to the subset).

    Returns
    -------
    ``(submodel, maps)`` where ``maps`` holds the global ids of each
    local axis position: ``"servers"``, ``"pages"``,
    ``"comp_entries"``, ``"opt_entries"``.
    """
    srvs = np.asarray(server_ids, dtype=np.intp)
    if srvs.ndim != 1 or len(srvs) == 0:
        raise ValueError("server_ids must be a non-empty 1-D sequence")
    if len(srvs) > 1 and not (srvs[1:] > srvs[:-1]).all():
        raise ValueError("server_ids must be strictly increasing")
    if srvs[0] < 0 or srvs[-1] >= model.n_servers:
        raise ValueError(
            f"server_ids must lie in [0, {model.n_servers}), got "
            f"[{int(srvs[0])}, {int(srvs[-1])}]"
        )
    g2l_server = np.full(model.n_servers, -1, dtype=np.intp)
    g2l_server[srvs] = np.arange(len(srvs), dtype=np.intp)

    page_member = g2l_server[model.page_server] >= 0
    pages_sel = np.flatnonzero(page_member)
    n_pages = len(pages_sel)

    comp_sel = np.flatnonzero(page_member[model.comp_pages])
    opt_sel = np.flatnonzero(page_member[model.opt_pages])
    comp_counts = np.diff(model.comp_indptr)[pages_sel]
    opt_counts = np.diff(model.opt_indptr)[pages_sel]
    comp_indptr = np.zeros(n_pages + 1, dtype=np.intp)
    np.cumsum(comp_counts, out=comp_indptr[1:])
    opt_indptr = np.zeros(n_pages + 1, dtype=np.intp)
    np.cumsum(opt_counts, out=opt_indptr[1:])

    # PARTITION's per-page decreasing-size permutation: filter the
    # parent's (global) permutation down to the kept entries and remap —
    # order-preserving, so equal-size tie-breaks match the parent's.
    g2l_comp = np.full(len(model.comp_objects), -1, dtype=np.intp)
    g2l_comp[comp_sel] = np.arange(len(comp_sel), dtype=np.intp)
    kept = page_member[model.comp_pages[model.comp_sorted]]
    comp_sorted = g2l_comp[model.comp_sorted[kept]]

    columns = {
        "sizes": model.sizes,  # objects stay global — shared by reference
        "html_sizes": model.html_sizes[pages_sel],
        "frequencies": model.frequencies[pages_sel],
        "page_server": g2l_server[model.page_server[pages_sel]],
        "optional_rate_scale": model.optional_rate_scale[pages_sel],
        "comp_indptr": comp_indptr,
        "opt_indptr": opt_indptr,
        "comp_objects": model.comp_objects[comp_sel],
        "comp_pages": np.repeat(
            np.arange(n_pages, dtype=np.intp), comp_counts
        ),
        "opt_objects": model.opt_objects[opt_sel],
        "opt_pages": np.repeat(np.arange(n_pages, dtype=np.intp), opt_counts),
        "opt_probs": model.opt_probs[opt_sel],
        "server_rate": model.server_rate[srvs],
        "server_overhead": model.server_overhead[srvs],
        "server_repo_rate": model.server_repo_rate[srvs],
        "server_repo_overhead": model.server_repo_overhead[srvs],
        "server_storage": model.server_storage[srvs],
        "server_capacity": model.server_capacity[srvs],
        "comp_entry_sizes": model.comp_entry_sizes[comp_sel],
        "comp_sorted": comp_sorted,
        "stream_rates": model.stream_rates[srvs],
        "stream_overheads": model.stream_overheads[srvs],
    }
    sub = ColumnarModel.from_columns(columns, model.repository)
    maps = {
        "servers": srvs,
        "pages": pages_sel,
        "comp_entries": comp_sel,
        "opt_entries": opt_sel,
    }
    return sub, maps


def pack_replicas(
    replicas: Sequence[set[int]],
) -> tuple[np.ndarray, np.ndarray]:
    """Pack per-server replica sets into a CSR pair.

    Returns ``(objects, indptr)`` where ``objects`` concatenates each
    server's replica object ids in ascending order and ``indptr`` holds
    the per-server bounds (``len(replicas) + 1`` entries).  The sorted
    packing makes the encoding canonical: equal replica state always
    produces byte-equal arrays, which keeps delta/frontier payloads
    deterministic across processes.
    """
    indptr = np.zeros(len(replicas) + 1, dtype=np.int64)
    for li, objs in enumerate(replicas):
        indptr[li + 1] = indptr[li] + len(objs)
    objects = np.zeros(int(indptr[-1]), dtype=np.int64)
    for li, objs in enumerate(replicas):
        objects[indptr[li] : indptr[li + 1]] = sorted(objs)
    return objects, indptr


def unpack_replicas(
    objects: np.ndarray, indptr: np.ndarray
) -> list[set[int]]:
    """Invert :func:`pack_replicas` back into per-server sets."""
    return [
        set(int(o) for o in objects[indptr[li] : indptr[li + 1]])
        for li in range(len(indptr) - 1)
    ]

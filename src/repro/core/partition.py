"""The PARTITION algorithm (Section 4.2).

For each page the compulsory MOs are sorted by **decreasing size** and
greedily assigned to whichever of the two parallel streams — local server
or repository — ends up shorter after receiving the object.  This is the
paper's pseudocode verbatim: both running totals are tentatively
incremented, then the loser is rolled back.

The local stream starts at ``Ovhd(S_i) + Size(H_j)/B(S_i)`` (the HTML
document must always come from the local server); the repository stream
starts at ``Ovhd(R, S_i)``.

After partitioning, the paper stores every MO with at least one local
mark, and additionally *stores all optional objects* (downloading an
optional object locally is beneficial whenever ``B(R,S_i) < B(S_i)``).
:func:`partition_all` exposes that choice via ``optional_policy``:

* ``"all"`` (paper default) — mark every optional object local,
* ``"beneficial"`` — mark an optional object local only when its single
  download is faster locally (equivalent under the Table 1 workload,
  strictly better when some region's repository link beats its local
  link).

Re-partitioning during constraint restoration passes ``allowed`` — the
set of objects currently stored at the page's server — so the greedy can
only mark objects that will not grow the replica set.
"""

from __future__ import annotations

from typing import Collection, Literal

import numpy as np

from repro.core.allocation import Allocation
from repro.core.context import EvalContext, Kernel, engine_kernel, resolve_kernel
from repro.core.types import SystemModel
from repro.obs.registry import get_registry

__all__ = [
    "partition_page",
    "partition_page_streams",
    "partition_all",
    "resolve_kernel",
    "OptionalPolicy",
    "SortOrder",
    "Kernel",
]

OptionalPolicy = Literal["all", "beneficial", "none"]
SortOrder = Literal["decreasing", "increasing", "document"]


def partition_page(
    model: SystemModel,
    page_id: int,
    allowed: Collection[int] | None = None,
    order: SortOrder = "decreasing",
) -> tuple[np.ndarray, float, float]:
    """Run PARTITION for one page.

    Parameters
    ----------
    model:
        The system universe.
    page_id:
        Page to partition.
    allowed:
        If given, only these object ids may be marked local; all others
        are forced onto the repository stream.  ``None`` means any object
        may be replicated.
    order:
        Iteration order over the page's compulsory objects.  The paper
        prescribes ``"decreasing"`` size (big objects placed while both
        streams are short, so the greedy can still balance around them);
        ``"increasing"`` and ``"document"`` (the page's embed order) are
        provided for the ablation bench.

    Returns
    -------
    (marks, local_time, remote_time):
        ``marks`` is a boolean array aligned with
        ``model.pages[page_id].compulsory`` (``True`` = download locally,
        i.e. ``X_jk = 1``); the two floats are the resulting estimated
        stream times (Eq. 3 and Eq. 4).
    """
    page = model.pages[page_id]
    srv = model.servers[page.server]
    spb_local = srv.spb
    spb_repo = srv.repo_spb

    local_time = srv.overhead + spb_local * page.html_size
    remote_time = srv.repo_overhead

    n = len(page.compulsory)
    marks = np.zeros(n, dtype=bool)
    if n == 0:
        return marks, local_time, remote_time

    # Pre-sorted by decreasing size (ties broken by entry position); see
    # SystemModel.comp_sorted.  Plain-list views keep this hot loop off
    # NumPy scalar indexing.
    sorted_entries, comp_objects, entry_sizes = model.fast_comp
    sl = model.comp_slice(page_id)
    start = sl.start
    if order == "decreasing":
        iteration = sorted_entries[start : sl.stop]
    elif order == "increasing":
        iteration = sorted_entries[start : sl.stop][::-1]
    elif order == "document":
        iteration = range(start, sl.stop)
    else:
        raise ValueError(f"unknown sort order {order!r}")

    if allowed is None:
        allowed_set = None
    elif isinstance(allowed, (set, frozenset)):
        allowed_set = allowed
    else:
        allowed_set = set(allowed)
    for e in iteration:
        k = comp_objects[e]
        size = entry_sizes[e]
        if allowed_set is not None and k not in allowed_set:
            remote_time += spb_repo * size
            continue
        # Tentatively add the object to both streams (paper pseudocode),
        # then roll back the stream that should not carry it.
        cand_remote = remote_time + spb_repo * size
        cand_local = local_time + spb_local * size
        if cand_remote < cand_local:
            remote_time = cand_remote
            # marks stay False: X_jk = 0
        else:
            local_time = cand_local
            marks[e - start] = True
    return marks, local_time, remote_time


def partition_page_streams(
    model: SystemModel,
    page_id: int,
    allowed: Collection[int] | None = None,
    order: SortOrder = "decreasing",
) -> tuple[np.ndarray, np.ndarray, float, list[float]]:
    """k-way PARTITION for one page: greedy argmin over all streams.

    The k-stream generalization of :func:`partition_page`.  Each object
    lands on whichever stream — local, or any of the k−1 remote streams
    — would end up shortest after receiving it, ties broken by lowest
    stream index (local = 0 beats every remote, the repository beats
    the extra replica sites).  A disallowed object takes the argmin over
    the remote streams only.  With the degenerate k=2 topology every
    comparison collapses to ``cand_remote < cand_local`` — the scalar
    reference's exact tie rule — so marks and times are bit-identical
    to :func:`partition_page`.

    Returns
    -------
    (marks, streams, local_time, stream_times):
        ``marks`` as in :func:`partition_page`; ``streams`` the per-
        entry owning remote stream (``int8``, meaningful where the mark
        is ``False``); ``stream_times[r-1]`` the Eq. 4 analog of remote
        stream ``r``.
    """
    ctx = EvalContext.for_model(model, "scalar")
    s = ctx.scalars
    n_rem = ctx.n_streams - 1
    spb_local = s.spb_local[page_id]
    local_time = s.ovhd_local[page_id] + spb_local * s.html[page_id]
    spb_streams = [col[page_id] for col in s.spb_streams]
    stream_times = [col[page_id] for col in s.ovhd_streams]

    sl = model.comp_slice(page_id)
    start = sl.start
    n = sl.stop - start
    marks = np.zeros(n, dtype=bool)
    streams = np.ones(n, dtype=np.int8)
    if n == 0:
        return marks, streams, local_time, stream_times

    sorted_entries, comp_objects, entry_sizes = model.fast_comp
    if order == "decreasing":
        iteration = sorted_entries[start : sl.stop]
    elif order == "increasing":
        iteration = sorted_entries[start : sl.stop][::-1]
    elif order == "document":
        iteration = range(start, sl.stop)
    else:
        raise ValueError(f"unknown sort order {order!r}")

    if allowed is None:
        allowed_set = None
    elif isinstance(allowed, (set, frozenset)):
        allowed_set = allowed
    else:
        allowed_set = set(allowed)
    for e in iteration:
        k = comp_objects[e]
        size = entry_sizes[e]
        if allowed_set is not None and k not in allowed_set:
            best = 0
            best_t = stream_times[0] + spb_streams[0] * size
            for r in range(1, n_rem):
                t = stream_times[r] + spb_streams[r] * size
                if t < best_t:
                    best, best_t = r, t
            stream_times[best] = best_t
            streams[e - start] = best + 1
            continue
        # argmin over [local, stream 1, …, stream k-1]; a later stream
        # must be STRICTLY shorter to win (lowest index takes ties)
        best = -1
        best_t = local_time + spb_local * size
        for r in range(n_rem):
            t = stream_times[r] + spb_streams[r] * size
            if t < best_t:
                best, best_t = r, t
        if best < 0:
            local_time = best_t
            marks[e - start] = True
        else:
            stream_times[best] = best_t
            streams[e - start] = best + 1
    return marks, streams, local_time, stream_times


def _optional_marks(
    model: SystemModel,
    page_id: int,
    policy: OptionalPolicy,
    allowed: Collection[int] | None,
) -> np.ndarray:
    page = model.pages[page_id]
    n = len(page.optional)
    if n == 0 or policy == "none":
        return np.zeros(n, dtype=bool)
    srv = model.servers[page.server]
    n_streams = getattr(model, "n_streams", 2)
    if policy == "beneficial" and n_streams > 2:
        s = EvalContext.for_model(model, "scalar").scalars
        spb_streams = [col[page_id] for col in s.spb_streams]
        ovhd_streams = [col[page_id] for col in s.ovhd_streams]
    allowed_set = None if allowed is None else set(allowed)
    marks = np.zeros(n, dtype=bool)
    for pos, k in enumerate(page.optional):
        if allowed_set is not None and k not in allowed_set:
            continue
        if policy == "all":
            marks[pos] = True
        else:  # "beneficial"
            size = model.sizes[k]
            t_local = srv.overhead + srv.spb * size
            t_repo = srv.repo_overhead + srv.repo_spb * size
            if n_streams > 2:
                # against the cheapest remote stream, not just the repo
                t_repo = min(
                    o + s_r * size
                    for o, s_r in zip(ovhd_streams, spb_streams)
                )
            marks[pos] = t_local <= t_repo
    return marks


def partition_all(
    model: SystemModel,
    optional_policy: OptionalPolicy = "all",
    allowed_per_server: dict[int, Collection[int]] | None = None,
    order: SortOrder = "decreasing",
    kernel: Kernel = "batched",
) -> Allocation:
    """Run PARTITION over every page and assemble an :class:`Allocation`.

    The resulting replica sets are exactly the marked objects: every MO
    with at least one ``X'_jk = 1`` on the server is stored (the paper's
    "Store the M_k's that have at least one non-zero entry in X matrix.
    Store all optional objects.").

    Parameters
    ----------
    model:
        The system universe.
    optional_policy:
        How optional objects are marked (see module docstring).
    allowed_per_server:
        Optional per-server whitelists restricting which objects may be
        replicated (used by constrained re-partitioning).
    order:
        Greedy iteration order (see :func:`partition_page`).
    kernel:
        ``"batched"`` (default) runs the vectorized pad-and-mask kernel
        of :mod:`repro.core.fast_partition`; ``"scalar"`` runs the
        reference per-page greedy.  Both produce **bit-identical**
        allocations — the scalar path is kept as the differential-testing
        oracle (see ``tests/properties/test_property_fast_partition.py``).
        ``"sharded"`` (the process-parallel policy kernel of
        :mod:`repro.core.shard`) maps to the batched engine here —
        PARTITION called directly is a single-process phase.
    """
    kernel = resolve_kernel(kernel)
    reg = get_registry()
    with reg.span("partition-all"):
        if engine_kernel(kernel) == "batched":
            from repro.core.fast_partition import partition_all_batched

            alloc = partition_all_batched(
                model,
                optional_policy=optional_policy,
                allowed_per_server=allowed_per_server,
                order=order,
            )
        else:
            alloc = Allocation(model)
            multipath = getattr(model, "n_streams", 2) > 2
            for j in range(model.n_pages):
                page = model.pages[j]
                allowed = (
                    None
                    if allowed_per_server is None
                    else allowed_per_server.get(page.server, ())
                )
                sl = model.comp_slice(j)
                if multipath:
                    comp_marks, streams, _, _ = partition_page_streams(
                        model, j, allowed, order=order
                    )
                    alloc.comp_stream[sl] = streams
                else:
                    comp_marks, _, _ = partition_page(
                        model, j, allowed, order=order
                    )
                for off, val in enumerate(comp_marks):
                    if val:
                        alloc.set_comp_local(sl.start + off, True)
                opt_marks = _optional_marks(model, j, optional_policy, allowed)
                slo = model.opt_slice(j)
                for off, val in enumerate(opt_marks):
                    if val:
                        alloc.set_opt_local(slo.start + off, True)
    if reg.enabled:
        reg.count("partition.runs")
        reg.count(f"partition.kernel.{kernel}")
        reg.count("partition.pages", model.n_pages)
    return alloc
